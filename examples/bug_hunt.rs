//! Bug hunt: rediscover the paper's §2.2 isolation bugs with the verifier.
//!
//! Runs the contract verifier over (a) the faithful buggy legacy drivers,
//! (b) the fixed legacy drivers, and (c) TickTock's granular kernel —
//! reproducing the workflow in which Flux surfaced BUG1 (MPU configuration
//! logic), BUG2 (missed mode switch) and BUG3 (brk underflow).
//!
//! ```sh
//! cargo run --example bug_hunt
//! ```

use ticktock_repro::contracts::obligation::Registry;
use ticktock_repro::contracts::verifier::Verifier;
use ticktock_repro::hw::mem::{AccessType, Privilege, ProtectionUnit};
use ticktock_repro::hw::{Permissions, PtrU8};
use ticktock_repro::legacy::{BugVariant, CortexMConfig, LegacyCortexM, LegacyMpu};

fn verify(label: &str, registry: Registry) -> bool {
    let report = Verifier::new().verify(&registry);
    let refuted = report.refuted();
    println!(
        "\n== {label}: {} functions checked ==",
        report.functions.len()
    );
    if refuted.is_empty() {
        println!("   VERIFIED — no isolation bugs");
        true
    } else {
        for f in &refuted {
            println!("   REFUTED {}:", f.function);
            for r in f.refutations.iter().take(2) {
                println!("     counterexample: {r}");
            }
        }
        false
    }
}

fn main() {
    println!("TickTock bug hunt: rediscovering the paper's isolation bugs\n");

    // BUG1 demonstrated concretely first: the subregion/grant overlap.
    println!("== BUG1 (tock#4366): enabled subregion overlaps grant memory ==");
    let buggy = LegacyCortexM::with_fresh_hardware(BugVariant::Buggy);
    let (start, min, app, kernel) = (0x2000_0100usize, 0usize, 3590usize, 500usize);
    let layout = buggy.compute_alloc_layout(start, min, app, kernel);
    println!("   params: unalloc_start={start:#x} app_size={app} kernel_size={kernel}");
    println!(
        "   subregs_enabled_end={:#x}  kernel_mem_break={:#x}  overlap={}",
        layout.subregs_enabled_end,
        layout.kernel_mem_break,
        !layout.isolation_holds()
    );
    let mut config = CortexMConfig::default();
    buggy
        .allocate_app_mem_region(
            PtrU8::new(start),
            0x4_0000,
            min,
            app,
            kernel,
            Permissions::ReadWriteOnly,
            &mut config,
        )
        .unwrap();
    buggy.configure_mpu(&config);
    let exposed = buggy
        .hardware()
        .borrow()
        .check(
            layout.kernel_mem_break,
            1,
            AccessType::Write,
            Privilege::Unprivileged,
        )
        .allowed();
    println!("   hardware admits a user write to the first grant byte: {exposed}");
    assert!(exposed, "BUG1 should be concretely observable");

    // Now the verifier, over all three code bases.
    let mut buggy_registry = Registry::new();
    ticktock_repro::legacy::obligations::register_obligations(
        &mut buggy_registry,
        BugVariant::Buggy,
        1,
    );
    ticktock_repro::fluxarm::contracts::register_buggy_obligations(&mut buggy_registry);
    let buggy_ok = verify(
        "buggy Tock (pre-verification, BUG1+BUG2+BUG3 present)",
        buggy_registry,
    );
    assert!(!buggy_ok, "the buggy kernel must be refuted");

    let mut fixed_registry = Registry::new();
    ticktock_repro::legacy::obligations::register_obligations(
        &mut fixed_registry,
        BugVariant::Fixed,
        1,
    );
    let fixed_ok = verify("fixed Tock (upstreamed patches)", fixed_registry);
    assert!(fixed_ok);

    let mut granular_registry = Registry::new();
    ticktock_repro::ticktock::obligations::register_obligations(&mut granular_registry, 1);
    ticktock_repro::fluxarm::contracts::register_obligations(&mut granular_registry, 2);
    let granular_ok = verify(
        "TickTock (granular + verified interrupts)",
        granular_registry,
    );
    assert!(granular_ok);

    println!("\nsummary: buggy Tock refuted; fixed Tock and TickTock verified.");
    println!("TickTock additionally removes the bug class by construction (§3.5).");
}
