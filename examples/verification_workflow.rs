//! The verification workflow: the §6.3 development loop, end to end.
//!
//! Shows what a TickTock developer's day looks like in this reproduction:
//! a cold full verification, a warm (cached) re-verification after an
//! unrelated edit, a contract change invalidating exactly one function,
//! and a refutation with counterexamples when a bug is introduced.
//!
//! ```sh
//! cargo run --example verification_workflow
//! ```

use std::time::Instant;
use ticktock_repro::contracts::obligation::Registry;
use ticktock_repro::contracts::verifier::{fmt_duration, VerificationCache, Verifier};
use ticktock_repro::contracts::ContractKind;
use ticktock_repro::legacy::BugVariant;

fn build(granular_density: usize, interrupt_depth: usize) -> Registry {
    let mut registry = Registry::new();
    ticktock_repro::ticktock::obligations::register_obligations(&mut registry, granular_density);
    ticktock_repro::fluxarm::contracts::register_obligations(&mut registry, interrupt_depth);
    registry
}

fn main() {
    let verifier = Verifier::new();
    let mut cache = VerificationCache::new();

    // 1. Cold run: everything checked.
    let registry = build(2, 4);
    let t = Instant::now();
    let cold = verifier.verify_with_cache(&registry, &mut cache);
    println!(
        "cold verification: {} functions in {} (all verified: {})",
        cold.functions.len(),
        fmt_duration(t.elapsed()),
        cold.all_verified()
    );

    // 2. Warm run: nothing changed, everything served from the cache —
    //    "incremental and interactive verification during development".
    let t = Instant::now();
    let warm = verifier.verify_with_cache(&registry, &mut cache);
    let cached = warm.functions.iter().filter(|f| f.cached).count();
    println!(
        "warm verification: {cached}/{} functions cached, {}",
        warm.functions.len(),
        fmt_duration(t.elapsed())
    );

    // 3. A spec change on one function invalidates exactly that entry.
    let mut edited = build(2, 4);
    edited.add_fn(
        ticktock_repro::ticktock::obligations::COMPONENT,
        "AppBreaks::invariant",
        ContractKind::Pre,
        || ticktock_repro::contracts::obligation::CheckResult::Verified { cases: 1 },
    );
    let third = verifier.verify_with_cache(&edited, &mut cache);
    let rechecked: Vec<&str> = third
        .functions
        .iter()
        .filter(|f| !f.cached)
        .map(|f| f.function.as_str())
        .collect();
    println!("after editing one contract, re-checked: {rechecked:?}");
    assert_eq!(rechecked, vec!["AppBreaks::invariant"]);

    // 4. Introduce the historical bugs: refutations with counterexamples.
    let mut buggy = Registry::new();
    ticktock_repro::legacy::obligations::register_obligations(&mut buggy, BugVariant::Buggy, 1);
    ticktock_repro::fluxarm::contracts::register_buggy_obligations(&mut buggy);
    let report = verifier.verify(&buggy);
    println!("\nintroducing the §2.2 bugs:");
    for f in report.refuted() {
        println!("  REFUTED {}", f.function);
        if let Some(ce) = f.refutations.first() {
            println!("    {ce}");
        }
    }
    assert!(!report.all_verified());
    println!("\nworkflow complete: verify, iterate from cache, catch bugs on edit.");
}
