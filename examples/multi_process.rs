//! Multi-process scenario: three apps sharing one TickTock kernel —
//! alarms, DMA, console — with pairwise isolation checked on live MPU
//! state, plus the same allocator running on all three RISC-V PMP chips.
//!
//! ```sh
//! cargo run --example multi_process
//! ```

use ticktock_repro::hw::mem::AccessType;
use ticktock_repro::hw::platform::NRF52840DK;
use ticktock_repro::hw::{Permissions, PtrU8};
use ticktock_repro::kernel::apps::release_tests;
use ticktock_repro::kernel::loader::flash_many;
use ticktock_repro::kernel::process::Flavor;
use ticktock_repro::kernel::{App, Kernel};
use ticktock_repro::ticktock::allocator::AppMemoryAllocator;
use ticktock_repro::ticktock::riscv::{GranularPmpE310, GranularPmpIbex};

fn main() {
    // --- Part 1: three processes on one ARM kernel -----------------------
    let mut kernel = Kernel::boot(Flavor::Granular, &NRF52840DK);
    let images = flash_many(
        &mut kernel.mem,
        0x0004_0000,
        &[
            ("alarm_simple", 0x1000, 2048, 512),
            ("dma_xfer", 0x1000, 2048, 512),
            ("blink", 0x1000, 2048, 512),
        ],
    )
    .expect("flash images");
    for img in &images {
        kernel.load_process(img).expect("load");
    }

    let suite = release_tests();
    let pick = |name: &str| {
        let t = suite.iter().find(|t| t.spec.name == name).unwrap();
        (t.make)()
    };
    let mut apps: Vec<Box<dyn App>> = vec![pick("alarm_simple"), pick("dma_xfer"), pick("blink")];
    kernel.run(&mut apps, 200);

    println!(
        "three processes on {} ({}):",
        NRF52840DK.name,
        kernel.flavor.name()
    );
    for p in &kernel.processes {
        println!(
            "  pid {} [{}] state={:?} console={:?}",
            p.pid, p.image.name, p.state, p.console
        );
        assert_eq!(p.state, ticktock_repro::kernel::ProcessState::Exited);
    }

    // Pairwise isolation on live hardware state: for each process's MPU
    // configuration, every OTHER process's memory is unreachable.
    for i in 0..kernel.processes.len() {
        kernel.processes[i].setup_mpu();
        for j in 0..kernel.processes.len() {
            let probe = kernel.processes[j].memory_start() + 64;
            let reachable = kernel.user_probe(probe, AccessType::Read);
            assert_eq!(reachable, i == j, "pid {i} vs pid {j}");
        }
    }
    println!("pairwise isolation verified across all three processes");

    // --- Part 2: the same allocator code on RISC-V PMP chips -------------
    println!("\nthe same AppMemoryAllocator on RISC-V PMP (granular abstraction):");
    let e310 = AppMemoryAllocator::<GranularPmpE310>::allocate_app_memory(
        PtrU8::new(0x8000_0000),
        0x4000,
        0,
        2048,
        512,
        PtrU8::new(0x2000_0000),
        0x1000,
    )
    .expect("e310 allocation");
    println!(
        "  hifive1 (e310):  block {:#x}+{:#x}, app_break {:#x}",
        e310.breaks.memory_start.as_usize(),
        e310.breaks.memory_size,
        e310.breaks.app_break.as_usize()
    );
    e310.check_invariants();

    let ibex = AppMemoryAllocator::<GranularPmpIbex>::allocate_app_memory(
        PtrU8::new(0x1000_0000),
        0x8000,
        0,
        3000,
        768,
        PtrU8::new(0x2000_0000),
        0x1000,
    )
    .expect("ibex allocation");
    println!(
        "  earlgrey (ibex): block {:#x}+{:#x}, app_break {:#x}",
        ibex.breaks.memory_start.as_usize(),
        ibex.breaks.memory_size,
        ibex.breaks.app_break.as_usize()
    );
    ibex.check_invariants();

    // The paper's point: the allocation logic is hardware-agnostic; only
    // the RegionDescriptor implementations differ.
    let _ = Permissions::ReadWriteOnly;
    println!("same kernel allocation code, two architectures, invariants intact");
}
