//! Quickstart: boot a TickTock kernel, load an app, watch isolation work.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ticktock_repro::hw::mem::AccessType;
use ticktock_repro::hw::platform::NRF52840DK;
use ticktock_repro::kernel::apps::release_tests;
use ticktock_repro::kernel::loader::flash_app;
use ticktock_repro::kernel::process::Flavor;
use ticktock_repro::kernel::{App, Kernel};

fn main() {
    // 1. Boot a TickTock (granular) kernel on a simulated NRF52840dk.
    let mut kernel = Kernel::boot(Flavor::Granular, &NRF52840DK);
    println!("booted {} on {}", kernel.flavor.name(), NRF52840DK.name);

    // 2. Flash and load the classic first app.
    let image = flash_app(&mut kernel.mem, 0x0004_0000, "c_hello", 0x1000, 2048, 512)
        .expect("flash app image");
    let pid = kernel.load_process(&image).expect("load process");
    let p = &kernel.processes[pid];
    println!("loaded pid {pid}: {}", p.layout_report());

    // 3. Run it under the round-robin scheduler.
    let hello = release_tests().remove(0);
    let mut apps: Vec<Box<dyn App>> = vec![(hello.make)()];
    kernel.run(&mut apps, 100);
    println!("console: {:?}", kernel.processes[pid].console);

    // 4. Isolation, observably: with the process's MPU configuration
    //    loaded, its own memory is accessible and the kernel-owned grant
    //    region is not.
    kernel.processes[pid].setup_mpu();
    let own = kernel.processes[pid].memory_start() + 64;
    let grant = kernel.processes[pid].memory_start() + kernel.processes[pid].memory_size() - 8;
    println!(
        "user read of own memory  {own:#010x}: {}",
        if kernel.user_probe(own, AccessType::Read) {
            "allowed"
        } else {
            "DENIED"
        }
    );
    println!(
        "user read of grant bytes {grant:#010x}: {}",
        if kernel.user_probe(grant, AccessType::Read) {
            "allowed"
        } else {
            "DENIED"
        }
    );
    assert!(kernel.user_probe(own, AccessType::Read));
    assert!(!kernel.user_probe(grant, AccessType::Read));
    println!("isolation holds: the process can reach its memory and nothing else");
}
