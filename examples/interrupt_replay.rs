//! Interrupt replay: execute the FluxArm model of Tock's context switch,
//! with the verified handlers and with the historical buggy ones (§2.2,
//! §4.5).
//!
//! ```sh
//! cargo run --example interrupt_replay
//! ```

use ticktock_repro::contracts::{take_violations, with_mode, Mode};
use ticktock_repro::fluxarm::cpu::{Arm7, Gpr};
use ticktock_repro::fluxarm::exceptions::ExceptionNumber;
use ticktock_repro::fluxarm::handlers;
use ticktock_repro::fluxarm::switch::{cpu_state_correct, StoredState};
use ticktock_repro::hw::AddrRange;

fn fresh() -> (Arm7, StoredState) {
    let mut cpu = Arm7::new(
        AddrRange::new(0x2000_0000, 0x2000_1000), // Kernel stack.
        AddrRange::new(0x2000_1000, 0x2000_3000), // Process RAM.
    );
    for (i, r) in Gpr::CALLEE_SAVED.iter().enumerate() {
        cpu.set_gpr(*r, 0xCAFE_0000 + i as u32);
    }
    let state = StoredState::new_for_process(&mut cpu, 0x0000_4000, 0x2000_3000);
    (cpu, state)
}

fn replay(label: &str, svc: handlers::IsrFn, tick: handlers::IsrFn) {
    println!("\n== {label} ==");
    let violations = with_mode(Mode::Observe, || {
        let (mut cpu, mut state) = fresh();
        let old = cpu.clone();
        cpu.control_flow_kernel_to_kernel(&mut state, ExceptionNumber::SysTick, svc, tick, 0xBEEF);
        println!("   trace: {}", cpu.trace.join(" -> "));
        println!(
            "   back in kernel: mode_thread_privileged={} msp_preserved={} callee_saved_preserved={}",
            cpu.mode_is_thread_privileged(),
            cpu.msp == old.msp,
            Gpr::CALLEE_SAVED.iter().all(|r| cpu.gpr(*r) == old.gpr(*r)),
        );
        println!("   cpu_state_correct: {}", cpu_state_correct(&cpu, &old));
        take_violations()
    });
    if violations.is_empty() {
        println!("   verification: PASSED");
    } else {
        println!(
            "   verification: {} contract violation(s)",
            violations.len()
        );
        for v in violations.iter().take(3) {
            println!("     {v}");
        }
    }
}

fn main() {
    println!("FluxArm replay of Tock's kernel->process->kernel control flow (Fig. 8)");

    replay(
        "verified handlers",
        handlers::svc_handler_to_process,
        handlers::sys_tick_isr,
    );

    replay(
        "BUGGY SysTick handler (tock#4246): CONTROL write omitted",
        handlers::svc_handler_to_process,
        handlers::sys_tick_isr_buggy,
    );

    replay(
        "BUGGY SVC handler: process entered in privileged mode",
        handlers::svc_handler_to_process_buggy,
        handlers::sys_tick_isr,
    );

    println!("\nThe verified handlers preserve the machine invariants; each buggy");
    println!("variant violates a contract exactly where the paper reports the bug.");
}
