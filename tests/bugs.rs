//! End-to-end reproductions of the paper's §2.2 isolation bugs (the BUG1,
//! BUG2, BUG3 rows of DESIGN.md §3), each demonstrated both as a concrete
//! hardware-observable break and as a verifier refutation.

use ticktock_repro::contracts::obligation::Registry;
use ticktock_repro::contracts::verifier::Verifier;
use ticktock_repro::contracts::{take_violations, with_mode, Mode};
use ticktock_repro::hw::mem::{AccessType, Privilege, ProtectionUnit};
use ticktock_repro::hw::{Permissions, PtrU8};
use ticktock_repro::legacy::{BugVariant, CortexMConfig, LegacyCortexM, LegacyMpu};

/// BUG1 (tock#4366): the Cortex-M allocator's subregion adjustment fails
/// to double `mem_size_po2`, leaving grant memory inside an enabled
/// subregion.
mod bug1 {
    use super::*;

    fn trigger() -> (LegacyCortexM, CortexMConfig, usize) {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Buggy);
        let mut config = CortexMConfig::default();
        let layout = mpu.compute_alloc_layout(0x2000_0100, 0, 3590, 500);
        mpu.allocate_app_mem_region(
            PtrU8::new(0x2000_0100),
            0x4_0000,
            0,
            3590,
            500,
            Permissions::ReadWriteOnly,
            &mut config,
        )
        .unwrap();
        mpu.configure_mpu(&config);
        (mpu, config, layout.kernel_mem_break)
    }

    #[test]
    fn malicious_process_reads_and_writes_grant_memory() {
        let (mpu, _config, grant_start) = trigger();
        let hw_rc = mpu.hardware();
        let hw = hw_rc.borrow();
        // A process could read grant state (e.g. kernel bookkeeping /
        // pointers to kernel objects) and corrupt it.
        assert!(hw
            .check(grant_start, 4, AccessType::Read, Privilege::Unprivileged)
            .allowed());
        assert!(hw
            .check(grant_start, 4, AccessType::Write, Privilege::Unprivileged)
            .allowed());
    }

    #[test]
    fn verifier_refutes_the_buggy_allocator() {
        let mut registry = Registry::new();
        ticktock_repro::legacy::obligations::register_obligations(
            &mut registry,
            BugVariant::Buggy,
            1,
        );
        let report = Verifier::new().verify(&registry);
        let refuted = report.refuted();
        assert!(refuted
            .iter()
            .any(|f| f.function == "CortexM::allocate_app_mem_region"));
    }

    #[test]
    fn fix_restores_isolation_without_shrinking_the_app() {
        let buggy = LegacyCortexM::with_fresh_hardware(BugVariant::Buggy);
        let fixed = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        let lb = buggy.compute_alloc_layout(0x2000_0100, 0, 3590, 500);
        let lf = fixed.compute_alloc_layout(0x2000_0100, 0, 3590, 500);
        assert!(!lb.isolation_holds());
        assert!(lf.isolation_holds());
        // The fix doubles the block; the app-visible region is unchanged.
        assert_eq!(lf.mem_size_po2, lb.mem_size_po2 * 2);
        assert_eq!(lf.subregs_enabled_end, lb.subregs_enabled_end);
    }
}

/// BUG2 (tock#4246): interrupt assembly missed the CPU-mode switch.
mod bug2 {
    use super::*;
    use ticktock_repro::fluxarm::cpu::{Arm7, Gpr};
    use ticktock_repro::fluxarm::exceptions::ExceptionNumber;
    use ticktock_repro::fluxarm::handlers;
    use ticktock_repro::fluxarm::switch::{cpu_state_correct, StoredState};
    use ticktock_repro::hw::AddrRange;

    fn cpu_and_state() -> (Arm7, StoredState) {
        let mut cpu = Arm7::new(
            AddrRange::new(0x2000_0000, 0x2000_1000),
            AddrRange::new(0x2000_1000, 0x2000_3000),
        );
        for (i, r) in Gpr::CALLEE_SAVED.iter().enumerate() {
            cpu.set_gpr(*r, 7 + i as u32);
        }
        let state = StoredState::new_for_process(&mut cpu, 0x4000, 0x2000_3000);
        (cpu, state)
    }

    #[test]
    fn buggy_systick_returns_kernel_unprivileged() {
        let (mut cpu, mut state) = cpu_and_state();
        let old = cpu.clone();
        with_mode(Mode::Observe, || {
            cpu.control_flow_kernel_to_kernel(
                &mut state,
                ExceptionNumber::SysTick,
                handlers::svc_handler_to_process,
                handlers::sys_tick_isr_buggy,
                1,
            );
        });
        let violations = take_violations();
        assert!(!cpu_state_correct(&cpu, &old));
        assert!(!cpu.is_privileged(), "kernel thread resumed unprivileged");
        assert!(violations
            .iter()
            .any(|v| v.site == "control_flow_kernel_to_kernel"));
    }

    #[test]
    fn buggy_svc_runs_process_privileged_bypassing_mpu() {
        let (mut cpu, state) = cpu_and_state();
        with_mode(Mode::Observe, || {
            cpu.switch_to_user_part1(&state, handlers::svc_handler_to_process_buggy);
        });
        let _ = take_violations();
        // The CPU is in thread mode at the process entry point, but still
        // privileged: with PRIVDEFENA set, the MPU no longer constrains it.
        assert_eq!(cpu.pc, 0x4000);
        assert!(cpu.is_privileged());
        let mpu = ticktock_repro::hw::cortexm::CortexMpu::new();
        let mut configured = mpu;
        configured.write_ctrl(true, true);
        assert!(
            configured
                .check(0x2000_0000, 4, AccessType::Write, Privilege::Privileged)
                .allowed(),
            "privileged code bypasses the MPU default-deny"
        );
        assert!(!configured
            .check(0x2000_0000, 4, AccessType::Write, Privilege::Unprivileged)
            .allowed());
    }

    #[test]
    fn verified_handlers_preserve_kernel_state_across_many_seeds() {
        for seed in 0..64u32 {
            let (mut cpu, mut state) = cpu_and_state();
            let old = cpu.clone();
            cpu.control_flow_kernel_to_kernel(
                &mut state,
                ExceptionNumber::SysTick,
                handlers::svc_handler_to_process,
                handlers::sys_tick_isr,
                seed,
            );
            assert!(cpu_state_correct(&cpu, &old), "seed {seed}");
        }
    }
}

/// BUG3 (§2.2): integer underflow in `update_app_mem_region` reachable
/// from an unvalidated `brk` syscall.
mod bug3 {
    use super::*;
    use ticktock_repro::kernel::loader::flash_app;
    use ticktock_repro::kernel::process::Flavor;
    use ticktock_repro::kernel::Kernel;

    #[test]
    fn malicious_brk_underflows_in_buggy_kernel() {
        let mut kernel = Kernel::boot(
            Flavor::Legacy(BugVariant::Buggy),
            &ticktock_repro::hw::platform::NRF52840DK,
        );
        let img = flash_app(&mut kernel.mem, 0x0004_0000, "evil", 0x1000, 2048, 512).unwrap();
        let pid = kernel.load_process(&img).unwrap();
        let violations = with_mode(Mode::Observe, || {
            // brk(0x1000): far below the process block — the missing
            // validation lets this reach `new_app_break - region_start`.
            let _ = kernel.sys_brk(pid, 0x1000);
            take_violations()
        });
        assert!(
            violations
                .iter()
                .any(|v| v.site == "legacy::update" && v.predicate.contains("underflows")),
            "expected the underflow obligation: {violations:?}"
        );
    }

    #[test]
    fn fixed_kernel_rejects_the_same_syscall() {
        let mut kernel = Kernel::boot(
            Flavor::Legacy(BugVariant::Fixed),
            &ticktock_repro::hw::platform::NRF52840DK,
        );
        let img = flash_app(&mut kernel.mem, 0x0004_0000, "evil", 0x1000, 2048, 512).unwrap();
        let pid = kernel.load_process(&img).unwrap();
        assert!(kernel.sys_brk(pid, 0x1000).is_err());
        assert_eq!(ticktock_repro::contracts::violation_count(), 0);
    }

    #[test]
    fn granular_kernel_rejects_by_construction() {
        let mut kernel = Kernel::boot(Flavor::Granular, &ticktock_repro::hw::platform::NRF52840DK);
        let img = flash_app(&mut kernel.mem, 0x0004_0000, "evil", 0x1000, 2048, 512).unwrap();
        let pid = kernel.load_process(&img).unwrap();
        for bad in [0usize, 0x1000, usize::MAX, usize::MAX / 2] {
            assert!(kernel.sys_brk(pid, bad).is_err(), "brk({bad:#x}) accepted");
        }
        assert_eq!(ticktock_repro::contracts::violation_count(), 0);
    }
}

/// The RISC-V comparison-bug class (tock#2173).
mod pmp_bug {
    use super::*;
    use ticktock_repro::hw::riscv::PmpChip;
    use ticktock_repro::legacy::{LegacyRiscv, PmpConfig};

    #[test]
    fn buggy_pmp_update_exposes_grant_after_brk() {
        let mpu = LegacyRiscv::with_fresh_hardware(BugVariant::Buggy, PmpChip::SifiveE310);
        let mut config = PmpConfig::default();
        let (start, total) = mpu
            .allocate_app_mem_region(
                PtrU8::new(0x8000_0000),
                0x4000,
                0,
                2048,
                512,
                Permissions::ReadWriteOnly,
                &mut config,
            )
            .unwrap();
        let kernel_break = PtrU8::new(start.as_usize() + total - 512);
        mpu.update_app_mem_region(
            kernel_break.offset(4),
            kernel_break,
            Permissions::ReadWriteOnly,
            &mut config,
        )
        .unwrap();
        mpu.configure_mpu(&config);
        let hw_rc = mpu.hardware();
        let hw = hw_rc.borrow();
        // The buggy comparison admits the break past the kernel break, so
        // the bytes at the top of the (supposed) grant boundary are user-
        // writable.
        assert!(hw
            .check(
                kernel_break.as_usize(),
                4,
                AccessType::Write,
                Privilege::Unprivileged
            )
            .allowed());
    }
}
