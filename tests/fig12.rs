//! Workspace-level Figure 12 shape test (FIG12 in DESIGN.md §3): the
//! verification-time ordering across the three components, with all crates
//! in scope.

use ticktock_repro::contracts::obligation::Registry;
use ticktock_repro::contracts::verifier::Verifier;
use ticktock_repro::legacy::BugVariant;

const MONOLITHIC: &str = "TickTock (Monolithic)";
const GRANULAR: &str = "TickTock (Granular)";
const INTERRUPTS: &str = "Interrupts";

fn full_registry() -> Registry {
    let mut registry = Registry::new();
    ticktock_repro::legacy::obligations::register_obligations(&mut registry, BugVariant::Fixed, 2);
    ticktock_repro::ticktock::obligations::register_obligations(&mut registry, 2);
    ticktock_repro::fluxarm::contracts::register_obligations(&mut registry, 4);
    registry
}

#[test]
fn monolithic_dominates_granular_at_equal_density() {
    let report = Verifier::new().verify(&full_registry());
    assert!(report.all_verified());
    let mono = report.component_stats(MONOLITHIC);
    let gran = report.component_stats(GRANULAR);
    // The paper's 5m19s vs 36s — an order-of-magnitude-ish gap. We require
    // at least 3x to stay robust across machines.
    assert!(
        mono.total.as_secs_f64() > gran.total.as_secs_f64() * 3.0,
        "monolithic {:?} vs granular {:?}",
        mono.total,
        gran.total
    );
}

#[test]
fn one_function_dominates_monolithic_verification() {
    // "Over 90% of the time verifying the original Tock code was spent
    // checking allocate_app_mem_region" (§6.3).
    let report = Verifier::new().verify(&full_registry());
    let mono = report.component_stats(MONOLITHIC);
    let alloc = report
        .functions
        .iter()
        .find(|f| f.function == "CortexM::allocate_app_mem_region")
        .expect("alloc obligation present");
    assert_eq!(alloc.duration, mono.max);
    assert!(alloc.duration.as_secs_f64() >= mono.total.as_secs_f64() * 0.5);
}

#[test]
fn interrupts_have_fewer_functions_but_higher_mean() {
    let report = Verifier::new().verify(&full_registry());
    let gran = report.component_stats(GRANULAR);
    let intr = report.component_stats(INTERRUPTS);
    assert!(
        intr.fns < gran.fns,
        "intr {} vs gran {}",
        intr.fns,
        gran.fns
    );
    assert!(
        intr.mean.as_secs_f64() > gran.mean.as_secs_f64(),
        "interrupt mean {:?} vs granular mean {:?}",
        intr.mean,
        gran.mean
    );
}

#[test]
fn function_counts_are_in_a_realistic_regime() {
    let registry = full_registry();
    // The paper reports 660/791/95 functions; the reproduction's inventory
    // is smaller but must be non-trivial in every component.
    assert!(registry.function_count(MONOLITHIC) >= 30);
    assert!(registry.function_count(GRANULAR) >= 70);
    assert!(registry.function_count(INTERRUPTS) >= 50);
    // Trusted subsets exist, as in Fig. 10.
    assert!(registry.trusted_function_count(GRANULAR) >= 5);
    assert!(registry.trusted_function_count(INTERRUPTS) >= 5);
}

#[test]
fn rendered_table_matches_paper_layout() {
    let report = Verifier::new().verify(&full_registry());
    let table = report.render_fig12();
    let mut lines = table.lines();
    let header = lines.next().unwrap();
    for column in ["Component", "Fns.", "Total", "Max", "Mean", "StdDev."] {
        assert!(header.contains(column), "missing column {column}");
    }
    assert_eq!(lines.count(), 3, "three component rows");
}
