//! Cross-chip integration: the same kernel code on all four chip profiles
//! (NRF52840dk, HiFive1, ESP32-C3, Earl Grey) in both flavours — the
//! paper's "across all ARMv7-M architectures Tock supports, along with
//! three RISC-V 32 bit chips".

use ticktock_repro::hw::mem::AccessType;
use ticktock_repro::hw::platform::{ALL_CHIPS, EARLGREY, ESP32_C3, HIFIVE1};
use ticktock_repro::kernel::differential::{app_flash_base, run_release_suite_on};
use ticktock_repro::kernel::loader::flash_many;
use ticktock_repro::kernel::process::Flavor;
use ticktock_repro::kernel::{Kernel, ProcessState};
use ticktock_repro::legacy::BugVariant;

fn flavors() -> [Flavor; 2] {
    [Flavor::Legacy(BugVariant::Fixed), Flavor::Granular]
}

#[test]
fn multi_process_isolation_on_every_chip() {
    for chip in &ALL_CHIPS {
        for flavor in flavors() {
            let mut kernel = Kernel::boot(flavor, chip);
            let images = flash_many(
                &mut kernel.mem,
                app_flash_base(chip),
                &[
                    ("a", 0x1000, 2048, 512),
                    ("b", 0x1000, 1536, 384),
                    ("c", 0x1000, 1024, 256),
                ],
            )
            .unwrap();
            for img in &images {
                let pid = kernel.load_process(img).unwrap();
                // Materialize a grant so each process's grant region is
                // non-empty before probing it.
                kernel.processes[pid].allocate_grant(0, 64).unwrap();
            }
            for i in 0..3 {
                kernel.processes[i].setup_mpu();
                for j in 0..3 {
                    let probe = kernel.processes[j].memory_start() + 16;
                    assert_eq!(
                        kernel.user_probe(probe, AccessType::Read),
                        i == j,
                        "{} {flavor:?}: pid {i} probing pid {j}",
                        chip.name
                    );
                }
                // Grant regions of every process are unreachable.
                for j in 0..3 {
                    let grant = kernel.processes[j].kernel_break();
                    assert!(
                        !kernel.user_probe(grant, AccessType::Write),
                        "{} {flavor:?}: grant of pid {j} writable under pid {i}",
                        chip.name
                    );
                }
            }
        }
    }
}

#[test]
fn hifive1_fits_one_process_in_16k_ram() {
    // The smallest chip: one app per kernel instance, as Tock deployments
    // on the HiFive1 actually run.
    for flavor in flavors() {
        let mut kernel = Kernel::boot(flavor, &HIFIVE1);
        let images = flash_many(
            &mut kernel.mem,
            app_flash_base(&HIFIVE1),
            &[("solo", 0x1000, 4096, 1024)],
        )
        .unwrap();
        let pid = kernel.load_process(&images[0]).unwrap();
        kernel.processes[pid].setup_mpu();
        let ms = kernel.processes[pid].memory_start();
        kernel.user_write_u32(pid, ms + 64, 0x5AFE).unwrap();
        assert_eq!(kernel.user_read_u32(pid, ms + 64).unwrap(), 0x5AFE);
        assert!(kernel.processes[pid].memory_size() <= HIFIVE1.map.ram.len());
    }
}

#[test]
fn release_suite_shape_on_riscv_chips() {
    // §6.1's QEMU leg: 21 tests, the same 5 expected differences.
    for chip in [ESP32_C3, EARLGREY] {
        let results = run_release_suite_on(&chip);
        let differing = results.iter().filter(|r| !r.matches()).count();
        assert_eq!(differing, 5, "{}: wrong diff count", chip.name);
        for r in &results {
            assert_eq!(
                !r.matches(),
                r.expect_differs,
                "{} on {}",
                r.name,
                chip.name
            );
        }
    }
}

#[test]
fn faulting_behaviour_is_architecture_independent() {
    for chip in &ALL_CHIPS {
        for flavor in flavors() {
            let mut kernel = Kernel::boot(flavor, chip);
            let images = flash_many(
                &mut kernel.mem,
                app_flash_base(chip),
                &[("f", 0x1000, 2048, 512)],
            )
            .unwrap();
            let pid = kernel.load_process(&images[0]).unwrap();
            kernel.processes[pid].setup_mpu();
            // A wild read faults the process on every chip and flavour.
            assert!(kernel.user_read_u32(pid, 0xE000_0000).is_err());
            assert!(
                matches!(kernel.processes[pid].state, ProcessState::Faulted(_)),
                "{} {flavor:?}",
                chip.name
            );
        }
    }
}

#[test]
fn ram_accounting_never_exceeds_the_chip() {
    // Load processes until the pool refuses; the cursor must never pass
    // the chip's RAM end and every block stays inside RAM.
    for chip in &ALL_CHIPS {
        for flavor in flavors() {
            let mut kernel = Kernel::boot(flavor, chip);
            let mut specs = Vec::new();
            for i in 0..16 {
                specs.push((
                    match i % 4 {
                        0 => "p0",
                        1 => "p1",
                        2 => "p2",
                        _ => "p3",
                    },
                    0x1000usize,
                    1024usize,
                    256usize,
                ));
            }
            let images = flash_many(&mut kernel.mem, app_flash_base(chip), &specs).unwrap();
            let mut loaded = 0;
            for img in &images {
                if kernel.load_process(img).is_err() {
                    break;
                }
                loaded += 1;
            }
            assert!(loaded >= 2, "{}: too few processes fit", chip.name);
            for p in &kernel.processes {
                assert!(p.memory_start() >= chip.map.ram.start);
                assert!(
                    p.memory_start() + p.memory_size() <= chip.map.ram.end,
                    "{} {flavor:?}: block of pid {} leaves RAM",
                    chip.name,
                    p.pid
                );
            }
        }
    }
}
