//! Cross-crate isolation properties (the INV row of DESIGN.md §3).
//!
//! Property-based suites: for arbitrary allocation parameters and syscall
//! sequences, with the granular kernel's configuration loaded into the
//! modelled hardware, an unprivileged access is admitted **iff** it falls
//! in the process's own flash (read/execute) or accessible RAM
//! (read/write) — the paper's isolation theorem, checked end to end.

use proptest::prelude::*;
use ticktock_repro::hw::mem::{AccessType, Privilege, ProtectionUnit};
use ticktock_repro::hw::PtrU8;
use ticktock_repro::ticktock::allocator::AppMemoryAllocator;
use ticktock_repro::ticktock::cortexm::GranularCortexM;
use ticktock_repro::ticktock::riscv::GranularPmpE310;

const RAM: usize = 0x2000_0000;
const FLASH: usize = 0x0004_0000;

/// One mutating operation applied to a live allocator.
#[derive(Debug, Clone)]
enum Op {
    Brk(usize),
    Grant(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..0x3000).prop_map(Op::Brk),
        (1usize..512).prop_map(Op::Grant),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any allocation and op sequence, hardware agrees with the
    /// logical view everywhere that matters.
    #[test]
    fn cortexm_hardware_never_exposes_grant_or_other_memory(
        start_off in 0usize..256,
        app_size in 256usize..5000,
        kernel_size in 64usize..1500,
        ops in prop::collection::vec(op_strategy(), 0..12),
    ) {
        let Ok(mut alloc) = AppMemoryAllocator::<GranularCortexM>::allocate_app_memory(
            PtrU8::new(RAM + start_off * 4),
            0x2_0000,
            0,
            app_size,
            kernel_size,
            PtrU8::new(FLASH),
            0x1000,
        ) else {
            return Ok(()); // Refusal is always safe.
        };

        for op in &ops {
            match op {
                Op::Brk(target_off) => {
                    let target = alloc.breaks.memory_start.as_usize() + target_off;
                    let _ = alloc.update_app_memory(PtrU8::new(target));
                }
                Op::Grant(size) => {
                    let _ = alloc.allocate_grant(*size);
                }
            }
            // The struct invariant holds after every operation.
            prop_assert!(alloc.can_access_flash());
            prop_assert!(alloc.can_access_ram());
            prop_assert!(alloc.cannot_access_other());
        }

        // Load the configuration into real (modelled) hardware and probe.
        let mpu = GranularCortexM::with_fresh_hardware();
        alloc.configure_mpu(&mpu);
        let hw_rc = mpu.hardware();
        let hw = hw_rc.borrow();
        let user =
            |addr: usize, acc| hw.check(addr, 1, acc, Privilege::Unprivileged).allowed();

        let (span_start, span_end) = alloc.accessible_span().unwrap();
        let kb = alloc.breaks.kernel_break.as_usize();
        let mem_end = alloc.breaks.memory_end();

        // Accessible RAM: read-write, never execute (W^X for data).
        for addr in [span_start, (span_start + span_end) / 2, span_end - 1] {
            prop_assert!(user(addr, AccessType::Read), "read {addr:#x}");
            prop_assert!(user(addr, AccessType::Write), "write {addr:#x}");
            prop_assert!(!user(addr, AccessType::Execute), "exec {addr:#x}");
        }
        // The span never reaches the grant region.
        prop_assert!(span_end <= kb);
        // Grant region: fully denied.
        let mut addr = kb;
        while addr < mem_end {
            prop_assert!(!user(addr, AccessType::Read), "grant read {addr:#x}");
            prop_assert!(!user(addr, AccessType::Write), "grant write {addr:#x}");
            addr += 64;
        }
        // Below the block and far above: denied.
        prop_assert!(!user(span_start - 1, AccessType::Read));
        prop_assert!(!user(mem_end + 1024, AccessType::Read));
        // Flash: read/execute only.
        prop_assert!(user(FLASH, AccessType::Read));
        prop_assert!(user(FLASH, AccessType::Execute));
        prop_assert!(!user(FLASH, AccessType::Write));
        prop_assert!(!user(FLASH + 0x1000, AccessType::Read));
    }

    /// Same theorem on the RISC-V PMP driver.
    #[test]
    fn pmp_hardware_never_exposes_grant_or_other_memory(
        app_size in 64usize..3000,
        kernel_size in 32usize..512,
        grant_ops in prop::collection::vec(1usize..256, 0..6),
    ) {
        let Ok(mut alloc) = AppMemoryAllocator::<GranularPmpE310>::allocate_app_memory(
            PtrU8::new(0x8000_0000),
            0x4000,
            0,
            app_size,
            kernel_size,
            PtrU8::new(0x2000_0000),
            0x1000,
        ) else {
            return Ok(());
        };
        for size in &grant_ops {
            let _ = alloc.allocate_grant(*size);
            prop_assert!(alloc.cannot_access_other());
        }
        let mpu = GranularPmpE310::with_fresh_hardware(
            ticktock_repro::hw::riscv::PmpChip::SifiveE310,
        );
        alloc.configure_mpu(&mpu);
        let hw_rc = mpu.hardware();
        let hw = hw_rc.borrow();
        let (span_start, span_end) = alloc.accessible_span().unwrap();
        prop_assert!(hw
            .check(span_start, 4, AccessType::Write, Privilege::Unprivileged)
            .allowed());
        prop_assert!(!hw
            .check(span_end, 4, AccessType::Write, Privilege::Unprivileged)
            .allowed());
        prop_assert!(!hw
            .check(
                alloc.breaks.kernel_break.as_usize(),
                4,
                AccessType::Read,
                Privilege::Unprivileged
            )
            .allowed());
    }

    /// Malicious brk arguments (the BUG3 surface) can never corrupt state:
    /// either the call is rejected or the invariants still hold — and no
    /// arithmetic obligation fires.
    #[test]
    fn malicious_brk_arguments_are_harmless(
        app_size in 256usize..4000,
        brk_addr in prop::num::usize::ANY,
    ) {
        let Ok(mut alloc) = AppMemoryAllocator::<GranularCortexM>::allocate_app_memory(
            PtrU8::new(RAM),
            0x2_0000,
            0,
            app_size,
            1024,
            PtrU8::new(FLASH),
            0x1000,
        ) else {
            return Ok(());
        };
        let violations = ticktock_repro::contracts::with_mode(
            ticktock_repro::contracts::Mode::Observe,
            || {
                let _ = alloc.update_app_memory(PtrU8::new(brk_addr));
                ticktock_repro::contracts::take_violations()
            },
        );
        prop_assert!(violations.is_empty(), "obligations fired: {violations:?}");
        prop_assert!(alloc.can_access_ram());
        prop_assert!(alloc.cannot_access_other());
    }
}

#[test]
fn kernel_level_cross_process_isolation_on_both_flavors() {
    use ticktock_repro::kernel::loader::flash_many;
    use ticktock_repro::kernel::process::Flavor;
    use ticktock_repro::kernel::Kernel;
    use ticktock_repro::legacy::BugVariant;

    for flavor in [Flavor::Legacy(BugVariant::Fixed), Flavor::Granular] {
        let mut kernel = Kernel::boot(flavor, &ticktock_repro::hw::platform::NRF52840DK);
        let images = flash_many(
            &mut kernel.mem,
            0x0004_0000,
            &[
                ("a", 0x1000, 2048, 512),
                ("b", 0x1000, 3000, 768),
                ("c", 0x1000, 1024, 256),
            ],
        )
        .unwrap();
        for img in &images {
            kernel.load_process(img).unwrap();
        }
        for i in 0..3 {
            kernel.processes[i].setup_mpu();
            for j in 0..3 {
                let probe = kernel.processes[j].memory_start() + 16;
                assert_eq!(
                    kernel.user_probe(probe, AccessType::Read),
                    i == j,
                    "{flavor:?}: pid {i} probing pid {j}"
                );
            }
            // Kernel (privileged) access is never blocked while the MPU
            // serves process i.
            assert!(kernel
                .machine
                .check(
                    kernel.processes[(i + 1) % 3].memory_start(),
                    4,
                    AccessType::Write,
                    Privilege::Privileged
                )
                .allowed());
        }
    }
}
