//! Workspace-level §6.1 differential test (E61 in DESIGN.md §3): the 21
//! release tests, run on both kernels, with exactly the paper's 5 expected
//! differences and correct faulting behaviour.

use ticktock_repro::kernel::apps::release_tests;
use ticktock_repro::kernel::differential::{render_report, run_one, run_release_suite};
use ticktock_repro::kernel::process::Flavor;
use ticktock_repro::kernel::ProcessState;
use ticktock_repro::legacy::BugVariant;

#[test]
fn twenty_one_tests_five_expected_diffs() {
    let results = run_release_suite();
    assert_eq!(results.len(), 21);
    let differing: Vec<&str> = results
        .iter()
        .filter(|r| !r.matches())
        .map(|r| r.name)
        .collect();
    assert_eq!(differing.len(), 5, "differing: {differing:?}");
    // Every difference is in the layout/sensor category the paper names.
    for name in &differing {
        assert!(
            [
                "mpu_walk_region",
                "mpu_stack_growth",
                "stack_growth",
                "sensors",
                "adc"
            ]
            .contains(name),
            "unexpected difference in {name}"
        );
    }
    let report = render_report(&results);
    assert!(report.contains("(0 unexpected)"));
}

#[test]
fn differential_runs_are_deterministic() {
    let a = run_release_suite();
    let b = run_release_suite();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.tock.console, y.tock.console, "{}", x.name);
        assert_eq!(x.ticktock.console, y.ticktock.console, "{}", x.name);
    }
}

#[test]
fn buggy_kernel_changes_outcomes_where_fixed_does_not() {
    // Running the suite against the BUGGY legacy kernel is how §6.1-style
    // testing catches regressions: at least the brk-heavy tests behave
    // differently (the unvalidated path lets bad breaks through).
    let tests = release_tests();
    let walk = tests
        .iter()
        .find(|t| t.spec.name == "mpu_walk_region")
        .unwrap();
    let fixed = run_one(walk, Flavor::Legacy(BugVariant::Fixed));
    let granular = run_one(walk, Flavor::Granular);
    assert_eq!(fixed.state, ProcessState::Exited);
    assert_eq!(granular.state, ProcessState::Exited);
    assert_ne!(fixed.console, granular.console);
}

#[test]
fn faulting_tests_fault_for_mpu_reasons() {
    let results = run_release_suite();
    for name in ["stack_growth", "mpu_stack_growth"] {
        let r = results.iter().find(|r| r.name == name).unwrap();
        for outcome in [&r.tock, &r.ticktock] {
            match &outcome.state {
                ProcessState::Faulted(reason) => {
                    assert!(
                        reason.contains("bus fault"),
                        "{name}: unexpected fault reason {reason:?}"
                    );
                }
                other => panic!("{name}: expected fault, got {other:?}"),
            }
        }
    }
}
