//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal benchmark harness with the same surface as
//! the slice of `criterion 0.5` the benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups, `iter`/`iter_batched`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurements are simple wall-clock medians over a fixed number of
//! iterations — good enough to eyeball the paper's relative comparisons,
//! with none of criterion's statistics, plotting, or baseline storage.

use std::time::{Duration, Instant};

/// Re-export spot for `criterion::black_box` users.
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function` (string or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts into a rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// How `iter_batched` amortizes setup (accepted, otherwise ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

const SAMPLES: usize = 15;

impl Bencher {
    /// Times `routine` over a fixed number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..SAMPLES {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..SAMPLES {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..SAMPLES {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher::default();
        f(&mut b);
        println!("{label:<50} median {:>12.3?}", b.median());
    }

    /// Runs one standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        Self::run_one(&id.into_label(), &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time here is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        Criterion::run_one(&label, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        Criterion::run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), SAMPLES);
        assert!(b.median() >= Duration::ZERO);
    }

    #[test]
    fn group_and_ids_render() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(2) * 2));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &5usize, |b, &n| {
            b.iter_batched(|| n, |x| x + 1, BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("standalone", |b| {
            b.iter_batched_ref(Vec::<u32>::new, |v| v.push(1), BatchSize::SmallInput)
        });
    }
}
