//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal property-testing harness with the same
//! *surface* as the slice of `proptest 1.x` the test suites use:
//!
//! - the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   `arg in strategy` bindings, `prop_assert*!` and early `return Ok(())`;
//! - range strategies (`0usize..100`), [`any`], [`sample::select`],
//!   [`collection::vec`], [`array::uniform4`]/[`array::uniform8`],
//!   [`num::usize::ANY`], [`Strategy::prop_map`], and [`prop_oneof!`].
//!
//! Differences from real proptest: case generation is derived
//! deterministically from the test name (every run explores the same
//! cases), and there is **no shrinking** — on failure the harness prints
//! the full generated inputs instead.

use std::fmt;

/// Deterministic word generator driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name, so each property test
    /// explores a stable but distinct sequence of cases.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Returns the next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty choice");
        self.next_u64() % bound
    }
}

/// Error type carried by `prop_assert*` failures (mirrors
/// `proptest::test_runner::TestCaseError` in spirit).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-suite configuration (`ProptestConfig` in real proptest).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Config {
    /// Builds a config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Runner-facing types, re-exported under proptest's module name.
pub mod test_runner {
    pub use super::{Config, TestCaseError, TestRng};
}

/// A generator of values for one property-test argument.
///
/// Unlike real proptest there is no value tree: strategies produce plain
/// values and failures are reported without shrinking.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy trait object.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy over every value of an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-domain strategy for `T` (`proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A uniform choice among boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].gen_value(rng)
    }
}

/// `proptest::sample`.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// Builds a strategy drawing uniformly from `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select over an empty set");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Builds a strategy for vectors of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().gen_value(rng);
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// `proptest::array`.
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy producing fixed-size arrays of independent draws.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn gen_value(&self, rng: &mut TestRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.0.gen_value(rng))
        }
    }

    /// Builds a strategy for `[T; 4]`.
    pub fn uniform4<S: Strategy>(elem: S) -> UniformArray<S, 4> {
        UniformArray(elem)
    }

    /// Builds a strategy for `[T; 8]`.
    pub fn uniform8<S: Strategy>(elem: S) -> UniformArray<S, 8> {
        UniformArray(elem)
    }
}

/// `proptest::num`.
pub mod num {
    /// Strategies over `usize`.
    pub mod usize {
        /// The full-domain `usize` strategy.
        pub const ANY: crate::Any<usize> = crate::Any(core::marker::PhantomData);
    }

    /// Strategies over `u32`.
    pub mod u32 {
        /// The full-domain `u32` strategy.
        pub const ANY: crate::Any<u32> = crate::Any(core::marker::PhantomData);
    }
}

/// The `prop` module path used by `prelude::*` consumers
/// (`prop::sample::select`, `prop::collection::vec`, …).
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
    pub use crate::num;
    pub use crate::sample;
}

/// Everything a test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    /// Alias matching `proptest::strategy::Just`.
    pub use crate::Just;
    pub use crate::{any, prop, BoxedStrategy, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// A strategy always producing one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Asserts a condition inside a property, reporting the generated inputs
/// on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strat) as $crate::BoxedStrategy<_>),+
        ])
    };
}

/// Declares property tests (`proptest! { ... }`).
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item becomes a
/// regular test running `config.cases` deterministic cases. The body may
/// `return Ok(())` early and use `prop_assert*!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one wrapper fn per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    ::core::module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                    let inputs = {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), &$arg
                        ));)+
                        s
                    };
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::core::result::Result<(), $crate::TestCaseError> {
                                $body
                                #[allow(unreachable_code)]
                                ::core::result::Result::Ok(())
                            }
                        )
                    );
                    match result {
                        ::core::result::Result::Ok(::core::result::Result::Ok(())) => {}
                        ::core::result::Result::Ok(::core::result::Result::Err(e)) => {
                            panic!(
                                "property `{}` failed at case {}/{}:\n{}\ninputs:\n{}",
                                stringify!($name), case, config.cases, e, inputs
                            );
                        }
                        ::core::result::Result::Err(payload) => {
                            eprintln!(
                                "property `{}` panicked at case {}/{}; inputs:\n{}",
                                stringify!($name), case, config.cases, inputs
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (10usize..20).gen_value(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn select_draws_members() {
        let mut rng = crate::TestRng::from_name("select");
        let s = prop::sample::select(vec![1, 5, 9]);
        for _ in 0..100 {
            assert!([1, 5, 9].contains(&s.gen_value(&mut rng)));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::TestRng::from_name("vec");
        let s = prop::collection::vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_uses_all_arms() {
        let mut rng = crate::TestRng::from_name("oneof");
        let s = prop_oneof![(0usize..1).prop_map(|_| "a"), (0usize..1).prop_map(|_| "b")];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.gen_value(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro binds args, supports early Ok-returns, and
        /// prop_assert works.
        #[test]
        fn macro_smoke(a in 0u32..50, b in any::<bool>()) {
            if b {
                return Ok(());
            }
            prop_assert!(a < 50);
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }
    }
}
