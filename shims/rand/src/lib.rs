//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, deterministic implementation of the slice
//! of the `rand 0.8` API it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] and [`Rng::gen`] on a [`rngs::StdRng`].
//!
//! The generator is splitmix64 — not cryptographic, but statistically fine
//! for the stratified-sampling domains in `tt-contracts`, and (crucially)
//! deterministic for a given seed so verification runs reproduce.

/// Uniform sampling support for `Rng::gen_range` argument types.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range using the given word source.
    fn sample(self, word: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, word: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (word() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, word: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (word() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the word source.
    fn from_word(word: u64) -> Self;
}

impl Standard for u8 {
    fn from_word(word: u64) -> Self {
        word as u8
    }
}
impl Standard for u16 {
    fn from_word(word: u64) -> Self {
        word as u16
    }
}
impl Standard for u32 {
    fn from_word(word: u64) -> Self {
        word as u32
    }
}
impl Standard for u64 {
    fn from_word(word: u64) -> Self {
        word
    }
}
impl Standard for usize {
    fn from_word(word: u64) -> Self {
        word as usize
    }
}
impl Standard for bool {
    fn from_word(word: u64) -> Self {
        word & 1 == 1
    }
}

/// The random-number-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let mut word = || self.next_u64();
        range.sample(&mut word)
    }

    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_word(self.next_u64())
    }
}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna): passes BigCrush, one add + two xorshifts.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
