//! Systematic interrupt-interleaving exploration with DPOR-style
//! pruning.
//!
//! The fault campaign perturbs *what* the kernel computes (seeded
//! bit-flips and forced faults); this module perturbs *when* the timer
//! interrupt arrives. A baseline run's trace identifies every kernel
//! boundary the simulated SysTick could cut — syscall entry and exit,
//! the MPU stage→commit window, the scheduler's post-commit decision
//! point — and each candidate arrival becomes a replayable
//! [`InterruptSchedule`] executed deterministically from the
//! [`FleetRunner`]'s snapshots. Every surviving schedule is checked on
//! the campaign's oracle surface: zero contract violations, bystander
//! [`TraceScope::Observable`] streams byte-identical to the
//! uninterrupted reference, and convergence within the restart cap.
//!
//! # Candidate enumeration
//!
//! The arrival-point engine ([`tt_hw::sched`]) counts *occurrences* of
//! each [`ArrivalPoint`] as the kernel passes its hooks. Enumeration
//! recovers those occurrence numbers from the baseline trace, which
//! works because each hook maps 1:1 onto a trace event in run-path code
//! (verified by the campaign's fresh-vs-restored equivalence tests):
//!
//! - `SyscallEnter` hooks fire right *after* their event is recorded —
//!   the k-th post-boot `SyscallEnter` event is occurrence k, and an
//!   ISR there would insert its events at the next index.
//! - `SyscallExit` hooks fire right *before* their event — occurrence k
//!   inserts at the k-th `SyscallExit` event's own index.
//! - The `MpuCommit` hook fires inside `Kernel::commit_mpu`, before
//!   the commit records its event; `setup_mpu` and `rearm_mpu` are the
//!   only run-path emitters of `MpuCommit` events and both sit behind
//!   `commit_mpu`, so events and hook occurrences stay 1:1 even across
//!   restarts (the ISR's own `restore_mpu_after_irq` is deliberately
//!   event-silent).
//! - The `SchedulerDecision` hook fires once per context-switch-in,
//!   after the slice's commit; its insertion point is past the
//!   `MpuCommit`/`RegWrite`/`AllocatorCommit` burst that follows the
//!   `ContextSwitch{In}` event.
//!
//! Boot passes no hooks, so occurrence 0 of every point starts at trace
//! index [`FleetRunner::boot_events`]. Enumeration requires the drained
//! trace to be complete (the campaign ring holds 65 536 events against
//! typical runs of a few thousand; a wrapped ring would misnumber
//! occurrences).
//!
//! # DPOR-style pruning
//!
//! Exploring every candidate reruns the machine once per boundary. Most
//! neighbouring boundaries are *independent*: firing the ISR at either
//! side of a bystander's `print` cannot produce different oracle
//! verdicts, because nothing the ISR reads or writes overlaps with what
//! happened in between. Candidates are therefore grouped into *commuting
//! classes* — maximal consecutive runs in which each adjacent pair
//! commutes — and only the first member of each class is executed.
//!
//! Two adjacent candidates commute when, conservatively, all of:
//!
//! 1. every baseline event between their insertion points is a
//!    `SyscallEnter`/`SyscallExit` (context switches, MPU/allocator
//!    commits, register writes, faults, restarts, upcalls and recovery
//!    steps are barriers);
//! 2. no event in that segment belongs to a pid whose syscalls share
//!    state with the ISR ([`isr_pids`]: processes with live alarm
//!    interest — the scheduled run replays the baseline exactly until
//!    its single arrival, so the baseline bounds the ISR's footprint;
//!    fault/restart pids need no mask because every event that opens or
//!    closes a pending respawn, and every tick boundary, is already a
//!    rule-1 barrier, making the ISR's restart decision
//!    position-invariant inside a commutable segment);
//! 3. neither anchoring syscall is alarm-related (`command`/`subscribe`
//!    on the alarm driver re-arms state the ISR's `fire_due_alarms`
//!    reads), and neither candidate is an `MpuCommit` arrival:
//!    the definition of that point is that the ISR skips its MPU-restore
//!    epilogue because an unconditional commit follows, so its effect
//!    overlaps the commit boundary's own staged/hardware MPU state and
//!    it commutes with nothing. Every `MpuCommit` candidate is explored.
//!
//! Conditions 1–2 compose across a class (adjacent segments union to the
//! representative-to-member segment), so a member's run differs from its
//! representative's only by sliding the ISR across events whose pids the
//! ISR provably does not touch — per-pid observable streams, contract
//! verdicts and terminal states are identical (property-tested in this
//! module). Pruned counts are reported, never silently dropped.

use crate::campaign::{
    boot_campaign_kernel, bystander_streams_match, FleetRunner, RunRecord, BYSTANDERS,
    MAX_RESTARTS, VICTIM,
};
use crate::capsules::driver;
use crate::kernel::{App, Kernel, Step};
use crate::process::ProcessState;
use crate::shrink::shrink_schedule;
use crate::trace::{event_pid, normalize_for_pid, SwitchDir, SyscallKind, TraceEvent, TraceScope};
use tt_contracts::obligation::{CheckResult, Registry};
use tt_contracts::ContractKind;
use tt_hw::injection::InjectionPlan;
use tt_hw::platform::ChipProfile;
use tt_hw::sched::{ArrivalPoint, InterruptSchedule};

/// One place the simulated timer interrupt could arrive in a baseline
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The kernel boundary.
    pub point: ArrivalPoint,
    /// The boundary's occurrence number — what
    /// [`InterruptSchedule::single`] takes.
    pub occurrence: u32,
    /// Baseline trace index where the ISR's events would insert.
    pub pos: usize,
    /// Whether the anchoring syscall re-arms alarm state (commute
    /// barrier — the ISR reads it).
    alarm_anchor: bool,
}

impl Candidate {
    /// The single-arrival schedule that fires the ISR here.
    pub fn schedule(&self) -> InterruptSchedule {
        InterruptSchedule::single(self.point, self.occurrence)
    }
}

/// Pids whose *ordinary syscalls* share state with the ISR, as a
/// bitmask: processes with alarm interest. Their `command`/`subscribe`
/// calls read and re-arm the due-time state the ISR's alarm delivery
/// consumes, so sliding the ISR across one can change a return value.
///
/// Fault/restart pids deliberately do **not** appear here. The ISR does
/// touch them — it front-runs due restarts and delivers kills — but only
/// while a respawn is *pending*, and a pending respawn can neither begin
/// nor end inside a commutable segment: every event that opens or closes
/// one (`BusFault`, `FaultInjected`, `ProcessFault`, `ProcessRestart`,
/// `ProcessKill`, `Recovery`) is already a barrier under the
/// segment-content rule, as is every tick boundary (context switches and
/// commits). Within a barrier-free span the pending-respawn state and
/// the tick count are constant, so the ISR's restart decision is
/// position-invariant there — a process making ordinary syscalls in the
/// span is alive, not awaiting restart.
///
/// Alarm interest shortcut: alarm delivery requires a subscription, so a
/// baseline with no `subscribe(ALARM)` makes the delivery half of the
/// ISR provably inert — the mask is empty. Otherwise every pid that
/// commands *or* subscribes the alarm driver is included.
pub fn isr_pids(events: &[TraceEvent]) -> u32 {
    let mut alarm = 0u32;
    let mut subscribed = false;
    for ev in events {
        if let TraceEvent::SyscallEnter {
            pid, call, arg0, ..
        } = *ev
        {
            if matches!(call, SyscallKind::Command | SyscallKind::Subscribe)
                && arg0 as usize == driver::ALARM
            {
                alarm |= 1 << pid.min(31);
                subscribed |= call == SyscallKind::Subscribe;
            }
        }
    }
    if subscribed {
        alarm
    } else {
        0
    }
}

/// Enumerates every candidate arrival in `events[start..]`, in execution
/// order of the hooks. `start` is the boot prefix length
/// ([`FleetRunner::boot_events`]) — boot passes no hooks.
pub fn enumerate_candidates(events: &[TraceEvent], start: usize) -> Vec<Candidate> {
    let mut out = Vec::new();
    let mut occ = [0u32; 4];
    let mut counted = |slot: usize| {
        let o = occ[slot];
        occ[slot] += 1;
        o
    };
    // Last un-exited syscall per pid, for exit anchors' alarm check
    // (syscalls never nest per pid).
    let mut pending_alarm = [false; 32];
    for (idx, ev) in events.iter().enumerate().skip(start) {
        match *ev {
            TraceEvent::SyscallEnter {
                pid, call, arg0, ..
            } => {
                let alarm = matches!(call, SyscallKind::Command | SyscallKind::Subscribe)
                    && arg0 as usize == driver::ALARM;
                pending_alarm[pid.min(31) as usize] = alarm;
                out.push(Candidate {
                    point: ArrivalPoint::SyscallEnter,
                    occurrence: counted(0),
                    // The hook fires after the event is recorded.
                    pos: idx + 1,
                    alarm_anchor: alarm,
                });
            }
            TraceEvent::SyscallExit { pid, .. } => out.push(Candidate {
                point: ArrivalPoint::SyscallExit,
                occurrence: counted(1),
                // The hook fires before the event is recorded.
                pos: idx,
                alarm_anchor: pending_alarm[pid.min(31) as usize],
            }),
            TraceEvent::MpuCommit { .. } => out.push(Candidate {
                point: ArrivalPoint::MpuCommit,
                occurrence: counted(2),
                // The hook fires inside the commit window, before the
                // commit records its event.
                pos: idx,
                alarm_anchor: false,
            }),
            TraceEvent::ContextSwitch {
                dir: SwitchDir::In, ..
            } => {
                // The hook fires after the slice's commit burst.
                let mut pos = idx + 1;
                while matches!(
                    events.get(pos),
                    Some(
                        TraceEvent::MpuCommit { .. }
                            | TraceEvent::RegWrite { .. }
                            | TraceEvent::AllocatorCommit { .. }
                    )
                ) {
                    pos += 1;
                }
                out.push(Candidate {
                    point: ArrivalPoint::SchedulerDecision,
                    occurrence: counted(3),
                    pos,
                    alarm_anchor: false,
                });
            }
            _ => {}
        }
    }
    out
}

/// Whether the segment `events[from..to)` is a pure syscall-event run
/// touching no ISR-footprint pid — commute conditions 1 and 2.
fn segment_commutes(events: &[TraceEvent], from: usize, to: usize, isr: u32) -> bool {
    events[from..to].iter().all(|ev| {
        matches!(
            ev,
            TraceEvent::SyscallEnter { .. } | TraceEvent::SyscallExit { .. }
        ) && event_pid(ev).is_none_or(|pid| isr & (1 << pid.min(31)) == 0)
    })
}

/// Whether `next` extends the commuting class whose last member is
/// `last`.
fn can_merge(events: &[TraceEvent], isr: u32, last: &Candidate, next: &Candidate) -> bool {
    last.point != ArrivalPoint::MpuCommit
        && next.point != ArrivalPoint::MpuCommit
        && !last.alarm_anchor
        && !next.alarm_anchor
        && last.pos <= next.pos
        && segment_commutes(events, last.pos, next.pos, isr)
}

/// Groups candidates (in execution order) into maximal commuting
/// classes. Each class's first member is the representative the
/// explorer runs; the rest are pruned.
pub fn commuting_classes(events: &[TraceEvent], candidates: &[Candidate]) -> Vec<Vec<Candidate>> {
    let isr = isr_pids(events);
    let mut classes: Vec<Vec<Candidate>> = Vec::new();
    for c in candidates {
        match classes.last_mut() {
            Some(class) if can_merge(events, isr, class.last().expect("non-empty class"), c) => {
                class.push(*c);
            }
            _ => classes.push(vec![*c]),
        }
    }
    classes
}

/// One schedule the oracle rejected.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The representative schedule that first exposed the failure.
    pub schedule: u64,
    /// Its 1-minimal shrink ([`shrink_schedule`]) — the one-line repro.
    pub minimized: u64,
    /// Arrivals that fired in the failing run.
    pub irq_fired: u64,
    /// Rendered oracle failures.
    pub failures: Vec<String>,
}

/// What one exploration of one `(chip, seed)` pair covered and found.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Chip explored.
    pub chip: String,
    /// Injection seed riding along (`None` = clean baseline).
    pub seed: Option<u64>,
    /// Candidate arrivals enumerated from the baseline trace.
    pub candidates: usize,
    /// Commuting classes formed.
    pub classes: usize,
    /// Representatives actually executed.
    pub explored: usize,
    /// Candidates skipped as commuting with an explored representative.
    pub pruned: usize,
    /// Whether a caller-imposed cap stopped exploration before every
    /// class ran (pruned still counts only skipped class members).
    pub truncated: bool,
    /// Schedules the oracle rejected.
    pub findings: Vec<Finding>,
}

impl ExploreOutcome {
    /// Enumerated candidates per executed run — the DPOR win. 1.0 means
    /// no pruning; meaningless (and 0) before anything ran.
    pub fn prune_ratio(&self) -> f64 {
        if self.explored == 0 {
            0.0
        } else {
            self.candidates as f64 / self.explored as f64
        }
    }
}

/// Checks one scheduled run on the campaign oracle surface. Empty
/// result = the schedule survived.
///
/// The victim's own observable stream is *not* compared: front-running
/// timer work legitimately shifts when the victim restarts. Bystanders
/// must be untouched, contracts must hold everywhere, and everything
/// must still converge.
pub fn validate_scheduled(
    chip: &ChipProfile,
    run: &RunRecord,
    schedule: u64,
    reference_by_pid: &[Vec<TraceEvent>],
) -> Vec<String> {
    let mut failures = Vec::new();
    let tag = |what: &str| format!("{} schedule {schedule:#x}: {what}", chip.name);
    for v in &run.violations {
        failures.push(tag(&format!("contract violation: {v}")));
    }
    if !bystander_streams_match(run.trace.events.iter(), reference_by_pid, [0; BYSTANDERS]) {
        failures.push(tag(
            "bystander observable trace diverged from the reference",
        ));
    }
    for b in 0..BYSTANDERS {
        let pid = VICTIM + 1 + b;
        if run.states[pid] != ProcessState::Exited {
            failures.push(tag(&format!(
                "bystander pid{pid} did not exit: {:?}",
                run.states[pid]
            )));
        }
    }
    if !matches!(
        run.states[VICTIM],
        ProcessState::Exited | ProcessState::Killed
    ) {
        failures.push(tag(&format!(
            "victim did not converge: {:?} after {} restarts",
            run.states[VICTIM], run.restarts
        )));
    }
    if run.restarts > MAX_RESTARTS {
        failures.push(tag(&format!("restart cap exceeded: {}", run.restarts)));
    }
    failures
}

/// The per-bystander observable reference streams of a run.
pub fn bystander_reference(run: &RunRecord) -> Vec<Vec<TraceEvent>> {
    (0..BYSTANDERS)
        .map(|b| {
            normalize_for_pid(
                &run.trace.events,
                TraceScope::Observable,
                (VICTIM + 1 + b) as u32,
            )
        })
        .collect()
}

/// Explores every interrupt-arrival class of `(runner's scenario,
/// seed)`: runs the baseline, enumerates candidates, prunes commuting
/// classes, executes one representative per class through the
/// snapshot/restore machinery, and oracle-checks each. Failing
/// schedules are shrunk to 1-minimal repros.
///
/// `cap` bounds the number of representatives executed (wall-clock
/// budget for CI); hitting it sets [`ExploreOutcome::truncated`].
pub fn explore(runner: &mut FleetRunner, seed: Option<u64>, cap: Option<usize>) -> ExploreOutcome {
    let chip = *runner.chip();
    let plan = seed.map(|s| InjectionPlan::from_seed(s, VICTIM as u32));
    let baseline = runner.run_plan(plan.clone());
    // The oracle reference is always the uninjected, uninterrupted run.
    let reference = if seed.is_some() {
        bystander_reference(&runner.run_plan(None))
    } else {
        bystander_reference(&baseline)
    };
    let candidates = enumerate_candidates(&baseline.trace.events, runner.boot_events());
    let classes = commuting_classes(&baseline.trace.events, &candidates);
    let mut outcome = ExploreOutcome {
        chip: chip.name.to_string(),
        seed,
        candidates: candidates.len(),
        classes: classes.len(),
        explored: 0,
        pruned: 0,
        truncated: false,
        findings: Vec::new(),
    };
    for class in &classes {
        if cap.is_some_and(|c| outcome.explored >= c) {
            outcome.truncated = true;
            break;
        }
        let representative = class[0];
        outcome.explored += 1;
        outcome.pruned += class.len() - 1;
        let schedule = representative.schedule();
        let run = runner.run_scheduled(plan.clone(), &schedule);
        let failures = validate_scheduled(&chip, &run, schedule.id(), &reference);
        if failures.is_empty() {
            continue;
        }
        let minimized = shrink_schedule(&schedule, |s| {
            let rerun = runner.run_scheduled(plan.clone(), s);
            !validate_scheduled(&chip, &rerun, s.id(), &reference).is_empty()
        });
        outcome.findings.push(Finding {
            schedule: schedule.id(),
            minimized: minimized.id(),
            irq_fired: run.irq_fired,
            failures,
        });
    }
    outcome
}

// ---------------------------------------------------------------------
// The pruning-soundness obligation.
// ---------------------------------------------------------------------

/// The Fig. 10/12 component name for the explorer's obligation.
pub const COMPONENT: &str = "Kernel (Schedule Explorer)";

/// Registers the DPOR pruning-soundness obligation: for clean and
/// injected baselines, a pruned class member's run must be identical to
/// its representative's on the oracle surface — per-pid observable
/// streams (victim included), contract verdicts, terminal states.
/// `density` sets how many multi-member classes are discharged per
/// baseline (first/last member pairs — the widest slide in each class).
pub fn register_obligations(registry: &mut Registry, density: usize) {
    registry.add_fn(
        COMPONENT,
        "explore::commuting_classes",
        ContractKind::Invariant,
        move || {
            let mut cases = 0u64;
            for seed in [None, Some(13u64)] {
                let mut runner = FleetRunner::new(&tt_hw::platform::NRF52840DK);
                let plan = seed.map(|s| InjectionPlan::from_seed(s, VICTIM as u32));
                let baseline = runner.run_plan(plan.clone());
                let candidates = enumerate_candidates(&baseline.trace.events, runner.boot_events());
                let classes = commuting_classes(&baseline.trace.events, &candidates);
                for class in classes.iter().filter(|c| c.len() > 1).take(density.max(1)) {
                    let member = class.last().expect("multi-member class");
                    let rep = runner.run_scheduled(plan.clone(), &class[0].schedule());
                    let run = runner.run_scheduled(plan.clone(), &member.schedule());
                    for pid in 0..=BYSTANDERS as u32 {
                        let got = normalize_for_pid(&run.trace.events, TraceScope::Observable, pid);
                        let want =
                            normalize_for_pid(&rep.trace.events, TraceScope::Observable, pid);
                        if got != want {
                            return CheckResult::Refuted {
                                counterexample: format!(
                                    "seed {seed:?}: pid {pid} observable stream diverged between \
                                     representative {:?} and pruned member {:?}",
                                    class[0], member
                                ),
                            };
                        }
                    }
                    if run.violations != rep.violations || run.states != rep.states {
                        return CheckResult::Refuted {
                            counterexample: format!(
                                "seed {seed:?}: oracle surface diverged between representative \
                                 {:?} and pruned member {:?}",
                                class[0], member
                            ),
                        };
                    }
                    cases += 1;
                }
            }
            CheckResult::Verified { cases }
        },
    );
}

// ---------------------------------------------------------------------
// The planted commit-window bug scenario.
// ---------------------------------------------------------------------

/// The planted-bug fixture the explorer's regression gate runs against:
/// the campaign kernel with [`Kernel::commit_window_bug`] set, and
/// workloads shaped so a bystander's elided MPU commit happens while the
/// victim's backoff restart is one tick from due. Without an interrupt
/// in the commit window the split verdict/action pair is equivalent to
/// the atomic commit — seed campaigns of any size stay green — but an
/// ISR arriving at exactly that `MpuCommit` occurrence front-runs the
/// restart, rewrites the register file, and the stale "hardware already
/// matches" verdict re-arms the victim's configuration under the
/// bystander.
pub mod planted {
    use super::*;
    use crate::kernel::AppFactory;

    /// Warmup syscalls before the victim faults (under one quantum, so
    /// the first fault lands in the second slice).
    const WARMUP: u32 = 4;

    /// A victim that faults every [`WARMUP`] steps: each life does a few
    /// syscalls, then writes one word below its memory block.
    #[derive(Clone)]
    struct WindowVictim {
        step_no: u32,
    }

    impl App for WindowVictim {
        fn name(&self) -> &'static str {
            "window-victim"
        }
        fn clone_app(&self) -> Option<Box<dyn App>> {
            Some(Box::new(self.clone()))
        }
        fn step(&mut self, k: &mut Kernel, pid: usize) -> Step {
            let ms = k.processes[pid].memory_start();
            let i = self.step_no;
            self.step_no += 1;
            if i < WARMUP {
                if i.is_multiple_of(2) {
                    let _ = k.sys_print(pid, "w\r\n");
                } else {
                    let _ = k.user_write_u32(pid, ms + 128, i);
                }
            } else {
                let _ = k.user_write_u32(pid, ms - 4, 0xDEAD_BEEF);
            }
            Step::Continue
        }
    }

    /// A bystander with an asymmetric step count: `steps` of
    /// print/write/read work, exiting early (short) or running solo
    /// slices through the victim's backoff windows (long).
    #[derive(Clone)]
    struct WindowBystander {
        id: u32,
        steps: u32,
        step_no: u32,
    }

    impl App for WindowBystander {
        fn name(&self) -> &'static str {
            "window-bystander"
        }
        fn clone_app(&self) -> Option<Box<dyn App>> {
            Some(Box::new(self.clone()))
        }
        fn step(&mut self, k: &mut Kernel, pid: usize) -> Step {
            let ms = k.processes[pid].memory_start();
            let i = self.step_no;
            self.step_no += 1;
            match i % 3 {
                0 => {
                    let _ = k.sys_print(pid, "s\r\n");
                }
                1 => {
                    let _ = k.user_write_u32(pid, ms + 512 + 4 * (i as usize % 8), i ^ self.id);
                }
                _ => {
                    let _ = k.user_read_u32(pid, ms + 512);
                }
            }
            if self.step_no >= self.steps {
                Step::Exit
            } else {
                Step::Continue
            }
        }
    }

    fn mk_victim() -> Box<dyn App> {
        Box::new(WindowVictim { step_no: 0 })
    }
    fn mk_long() -> Box<dyn App> {
        Box::new(WindowBystander {
            id: 1,
            steps: 48,
            step_no: 0,
        })
    }
    fn mk_short() -> Box<dyn App> {
        Box::new(WindowBystander {
            id: 2,
            steps: 4,
            step_no: 0,
        })
    }

    /// Workload factories, in pid order: faulting victim, long
    /// bystander, short bystander. The short one exits in its first
    /// slice so the long one's commits become consecutive (elidable)
    /// while the victim sits in backoff.
    pub const FACTORIES: [AppFactory; 3] = [mk_victim, mk_long, mk_short];

    /// The campaign kernel with the commit-window bug planted.
    pub fn boot_buggy(chip: &ChipProfile) -> Kernel {
        let mut k = boot_campaign_kernel(chip);
        k.commit_window_bug = true;
        k
    }

    /// The same scenario on a correct kernel — the control arm.
    pub fn boot_correct(chip: &ChipProfile) -> Kernel {
        boot_campaign_kernel(chip)
    }

    /// A [`FleetRunner`] over the planted-bug scenario.
    pub fn runner(chip: &ChipProfile) -> FleetRunner {
        FleetRunner::with_scenario(chip, boot_buggy, &FACTORIES)
    }

    /// A [`FleetRunner`] over the same workloads on a correct kernel.
    pub fn control_runner(chip: &ChipProfile) -> FleetRunner {
        FleetRunner::with_scenario(chip, boot_correct, &FACTORIES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tt_hw::platform::NRF52840DK;

    #[test]
    fn candidate_enumeration_matches_engine_occurrence_counts() {
        // Arm each enumerated candidate's single-arrival schedule and
        // check the engine fires exactly once — the trace-derived
        // occurrence number names a hook pass the engine also counts.
        // Spot-check the first, last, and one middle candidate per
        // point (running all ~400 would re-verify the same mapping).
        let mut runner = FleetRunner::new(&NRF52840DK);
        let baseline = runner.run_plan(None);
        let candidates = enumerate_candidates(&baseline.trace.events, runner.boot_events());
        assert!(candidates.len() > 100, "got {}", candidates.len());
        for point in tt_hw::sched::ALL_ARRIVAL_POINTS {
            let of_point: Vec<&Candidate> =
                candidates.iter().filter(|c| c.point == point).collect();
            assert!(!of_point.is_empty(), "{point:?} never enumerated");
            for c in [
                of_point[0],
                of_point[of_point.len() / 2],
                of_point[of_point.len() - 1],
            ] {
                let run = runner.run_scheduled(None, &c.schedule());
                assert_eq!(run.irq_fired, 1, "{c:?} did not fire exactly once");
            }
        }
    }

    #[test]
    fn clean_campaign_explores_with_pruning_and_finds_nothing() {
        let mut runner = FleetRunner::new(&NRF52840DK);
        let outcome = explore(&mut runner, None, None);
        assert!(outcome.findings.is_empty(), "{:#?}", outcome.findings);
        assert!(!outcome.truncated);
        assert_eq!(outcome.explored, outcome.classes);
        assert_eq!(outcome.pruned + outcome.explored, outcome.candidates);
        // The acceptance floor: DPOR pruning at least halves the runs.
        assert!(
            outcome.prune_ratio() >= 2.0,
            "prune ratio {:.2} ({} candidates / {} explored)",
            outcome.prune_ratio(),
            outcome.candidates,
            outcome.explored,
        );
    }

    #[test]
    fn explore_cap_truncates_and_reports_it() {
        let mut runner = FleetRunner::new(&NRF52840DK);
        let outcome = explore(&mut runner, None, Some(3));
        assert!(outcome.truncated);
        assert_eq!(outcome.explored, 3);
    }

    /// The planted commit-window bug: invisible to the seed campaign,
    /// found by the explorer, reproducible from the minimized schedule
    /// ID alone.
    #[test]
    fn planted_window_bug_is_missed_by_seeds_and_found_by_exploration() {
        let mut runner = planted::runner(&NRF52840DK);
        let reference = bystander_reference(&runner.run_plan(None));
        // The 75-seed fault campaign (the robustness gate's own budget)
        // never opens the window: without an interrupt inside commit_mpu
        // the split verdict/action pair acts atomically.
        for seed in 0..75 {
            let run = runner.run_seed(Some(seed));
            let failures = validate_scheduled(&NRF52840DK, &run, 0, &reference);
            assert!(failures.is_empty(), "seed {seed}: {failures:#?}");
        }
        // The explorer opens it.
        let outcome = explore(&mut runner, None, None);
        assert!(
            !outcome.findings.is_empty(),
            "explorer missed the planted bug: {outcome:#?}"
        );
        let finding = &outcome.findings[0];
        let minimized = InterruptSchedule::from_id(finding.minimized);
        assert_eq!(minimized.arrivals.len(), 1, "{minimized:?}");
        assert_eq!(minimized.arrivals[0].point, ArrivalPoint::MpuCommit);
        // Deterministic repro from the ID alone: two replays fail
        // identically.
        let a = runner.run_scheduled(None, &minimized);
        let b = runner.run_scheduled(None, &minimized);
        assert_eq!(a.trace.events, b.trace.events);
        assert_eq!(a.violations, b.violations);
        let failures = validate_scheduled(&NRF52840DK, &a, finding.minimized, &reference);
        assert!(!failures.is_empty());
        // Control arm: the same workloads on a correct kernel survive
        // the same schedule — the finding is the bug, not the harness.
        let mut control = planted::control_runner(&NRF52840DK);
        let control_reference = bystander_reference(&control.run_plan(None));
        let run = control.run_scheduled(None, &minimized);
        let failures = validate_scheduled(&NRF52840DK, &run, finding.minimized, &control_reference);
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn explored_schedules_replay_byte_identically_across_threads() {
        // The schedule ID is the whole input: replaying it on fresh
        // runners in other threads reproduces the run byte-for-byte.
        let mut runner = FleetRunner::new(&NRF52840DK);
        let baseline = runner.run_plan(None);
        let candidates = enumerate_candidates(&baseline.trace.events, runner.boot_events());
        let picks: Vec<u64> = [7usize, candidates.len() / 2, candidates.len() - 3]
            .iter()
            .map(|&i| candidates[i].schedule().id())
            .collect();
        let here: Vec<RunRecord> = picks
            .iter()
            .map(|&id| runner.run_scheduled(None, &InterruptSchedule::from_id(id)))
            .collect();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let picks = picks.clone();
                std::thread::spawn(move || {
                    let mut r = FleetRunner::new(&NRF52840DK);
                    picks
                        .iter()
                        .map(|&id| r.run_scheduled(None, &InterruptSchedule::from_id(id)))
                        .collect::<Vec<RunRecord>>()
                })
            })
            .collect();
        for h in handles {
            for (theirs, ours) in h.join().expect("replay thread").iter().zip(&here) {
                assert_eq!(theirs.trace.events, ours.trace.events);
                assert_eq!(theirs.violations, ours.violations);
                assert_eq!(theirs.states, ours.states);
                assert_eq!(theirs.irq_fired, ours.irq_fired);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Pruning soundness: any pruned candidate's run is identical to
        /// its representative's on the oracle surface — per-pid
        /// observable streams (victim included), violations, terminal
        /// states. Seeds make the baseline fault and restart, so the
        /// ISR's front-run work is live, not vacuous.
        #[test]
        fn pruned_schedules_match_their_representative(
            seed in prop_oneof![Just(None::<u64>), (0u64..200).prop_map(Some)],
            class_pick in 0usize..1 << 20,
            member_pick in 0usize..1 << 20,
        ) {
            let seed: Option<u64> = seed;
            let mut runner = FleetRunner::new(&NRF52840DK);
            let plan = seed.map(|s| InjectionPlan::from_seed(s, VICTIM as u32));
            let baseline = runner.run_plan(plan.clone());
            let candidates =
                enumerate_candidates(&baseline.trace.events, runner.boot_events());
            let classes = commuting_classes(&baseline.trace.events, &candidates);
            let multi: Vec<&Vec<Candidate>> =
                classes.iter().filter(|c| c.len() > 1).collect();
            if multi.is_empty() {
                return Ok(());
            }
            let class = multi[class_pick % multi.len()];
            let member = class[1 + member_pick % (class.len() - 1)];
            let rep = runner.run_scheduled(plan.clone(), &class[0].schedule());
            let run = runner.run_scheduled(plan, &member.schedule());
            for pid in 0..=BYSTANDERS as u32 {
                prop_assert_eq!(
                    normalize_for_pid(&run.trace.events, TraceScope::Observable, pid),
                    normalize_for_pid(&rep.trace.events, TraceScope::Observable, pid),
                    "pid {} diverged: rep {:?} vs member {:?}", pid, class[0], member
                );
            }
            prop_assert_eq!(&run.violations, &rep.violations);
            prop_assert_eq!(&run.states, &rep.states);
        }
    }
}
