//! Verification obligations for the kernel's MPU commit cache.
//!
//! PR 2 added the `(pid, generation)` commit cache: `setup_mpu` skips the
//! full register commit when the live hardware configuration is already
//! the process's current one. The soundness of that elision is the
//! debug-mode invariant at the hit site in [`crate::process`]:
//!
//! > `"Process::setup_mpu cache hit: hardware == staged regions"`
//!
//! This module registers that invariant as a first-class obligation in
//! the `tt-contracts` [`Registry`], so it is discharged by the Fig. 12
//! verifier and counted in the Fig. 10/12 reports like every other
//! contract — and so the static cross-check (`tt-audit`) finds the site
//! registered. The check drives the real [`CommitCache`] and the real
//! granular MPU drivers (ARM and all PMP chips) through the
//! commit/hit/invalidate protocol and refutes on any path where a hit
//! would re-arm hardware that no longer matches the staged regions.

use crate::machine::CommitCache;
use ticktock::cortexm::GranularCortexM;
use ticktock::mpu::Mpu;
use ticktock::riscv::{GranularPmp, GranularPmpE310, GranularPmpIbex};
use tt_contracts::obligation::{CheckResult, Registry};
use tt_contracts::ContractKind;
use tt_hw::riscv::PmpChip;
use tt_hw::{Permissions, PtrU8};

/// The Fig. 10/12 component name for these obligations.
pub const COMPONENT: &str = "Kernel (Commit Cache)";

/// Drives one MPU driver through the cache protocol. `alt` is a second,
/// different region set used to prove `hardware_matches` discriminates.
fn check_protocol<M: Mpu>(
    mpu: &M,
    regions: &[M::Region],
    alt: &[M::Region],
    density: usize,
) -> Result<u64, String> {
    let cache = CommitCache::default();
    let mut cases = 0u64;
    for pid in 0..density.max(1) as u32 {
        for generation in 0..density.max(1) as u64 {
            // Cold: nothing committed yet, the lookup must miss.
            if cache.lookup(pid, generation) {
                return Err(format!("cold hit for pid={pid} gen={generation}"));
            }
            // Miss path: full commit, then record the configuration.
            mpu.configure_mpu(regions);
            cache.note_committed(pid, generation);
            // Hit path: the lookup succeeds and — the §4.3-style soundness
            // condition — the live hardware equals the staged regions.
            if !cache.lookup(pid, generation) {
                return Err(format!("warm miss for pid={pid} gen={generation}"));
            }
            mpu.reenable_mpu();
            if !mpu.hardware_matches(regions) {
                return Err(format!(
                    "hit with hardware != staged regions (pid={pid} gen={generation})"
                ));
            }
            // Any other (pid, generation) must miss, without disturbing
            // the cached entry.
            if cache.lookup(pid, generation + 1) || cache.lookup(pid + 1, generation) {
                return Err("stale (pid, generation) produced a hit".into());
            }
            if !cache.lookup(pid, generation) {
                return Err("cached entry lost by a mismatching lookup".into());
            }
            // A foreign commit makes the old regions stale: the readback
            // check must notice (this is what the invariant protects).
            mpu.configure_mpu(alt);
            if mpu.hardware_matches(regions) {
                return Err("hardware_matches blind to a foreign commit".into());
            }
            cache.invalidate();
            if cache.lookup(pid, generation) {
                return Err("hit after invalidate".into());
            }
            // With elision disabled the cache behaves like the pre-cache
            // kernel: every lookup misses and nothing is recorded.
            let disabled_ok = tt_hw::commit_cache::with_disabled(|| {
                cache.note_committed(pid, generation);
                !cache.lookup(pid, generation)
            });
            if !disabled_ok {
                return Err("lookup hit while elision is disabled".into());
            }
            cases += 1;
        }
    }
    Ok(cases)
}

/// Builds two distinct single-region ARM configurations.
fn arm_region(start: usize) -> ticktock::cortexm::CortexMRegion {
    GranularCortexM::create_exact_region(2, PtrU8::new(start), 0x1000, Permissions::ReadWriteOnly)
        .expect("exact 4K region")
}

/// Builds two distinct single-region PMP configurations.
fn pmp_region<const G: usize>(start: usize) -> ticktock::riscv::PmpRegion {
    GranularPmp::<G>::create_exact_region(2, PtrU8::new(start), 0x1000, Permissions::ReadWriteOnly)
        .expect("exact 4K region")
}

/// Registers the commit-cache obligations.
pub fn register_obligations(registry: &mut Registry, density: usize) {
    registry.add_fn(
        COMPONENT,
        "Process::setup_mpu",
        ContractKind::Invariant,
        move || {
            let mut cases = 0u64;
            // ARM MPU.
            let arm = GranularCortexM::with_fresh_hardware();
            match check_protocol(
                &arm,
                &[arm_region(0x2000_0000)],
                &[arm_region(0x2000_4000)],
                density,
            ) {
                Ok(c) => cases += c,
                Err(counterexample) => return CheckResult::Refuted { counterexample },
            }
            // PMP, both granularities.
            let e310 = GranularPmpE310::with_fresh_hardware(PmpChip::SifiveE310);
            match check_protocol(
                &e310,
                &[pmp_region::<4>(0x8000_0000)],
                &[pmp_region::<4>(0x8000_4000)],
                density,
            ) {
                Ok(c) => cases += c,
                Err(counterexample) => return CheckResult::Refuted { counterexample },
            }
            let ibex = GranularPmpIbex::with_fresh_hardware(PmpChip::IbexEarlGrey);
            match check_protocol(
                &ibex,
                &[pmp_region::<8>(0x1000_0000)],
                &[pmp_region::<8>(0x1000_4000)],
                density,
            ) {
                Ok(c) => cases += c,
                Err(counterexample) => return CheckResult::Refuted { counterexample },
            }
            CheckResult::Verified { cases }
        },
    );

    // The cache bookkeeping itself carries only builtin safety obligations
    // (counter arithmetic, Option state).
    registry.add_builtin_safety(
        COMPONENT,
        &[
            "CommitCache::lookup",
            "CommitCache::note_committed",
            "CommitCache::invalidate",
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_contracts::obligation::CheckResult;

    #[test]
    fn commit_cache_obligation_verifies() {
        let mut r = Registry::new();
        register_obligations(&mut r, 2);
        assert_eq!(r.function_count(COMPONENT), 4);
        let setup = r
            .obligations()
            .iter()
            .find(|o| o.function == "Process::setup_mpu")
            .unwrap();
        match (setup.check)() {
            CheckResult::Verified { cases } => assert!(cases >= 12, "only {cases} cases"),
            other => panic!("refuted: {other:?}"),
        }
    }

    #[test]
    fn obligation_appears_in_the_workspace_component_list() {
        let mut r = Registry::new();
        register_obligations(&mut r, 1);
        assert_eq!(r.components(), vec![COMPONENT]);
    }
}
