//! The 21 release-test applications (§6.1).
//!
//! The paper runs a subset of Tock's release-test suite on both kernels
//! and diffs the outputs: 21 apps, of which 5 differ *expectedly* —
//! "they were either testing memory layout, or reading and printing data
//! from sensors". The apps here mirror that suite: each is a small program
//! driving the kernel through the real syscall surface, with user-mode
//! memory accesses checked by the modelled MPU.

use crate::capsules::driver;
use crate::kernel::{App, Kernel, Step};
use tt_hw::mem::AccessType;

/// Flash/RAM requirements for one release test.
#[derive(Debug, Clone, Copy)]
pub struct AppSpec {
    /// App name.
    pub name: &'static str,
    /// Flash image size (power of two).
    pub flash_size: usize,
    /// Minimum RAM request.
    pub min_ram: usize,
    /// Grant-region reservation.
    pub kernel_reserved: usize,
    /// Whether §6.1 expects this test's output to differ between kernels.
    pub expect_differs: bool,
}

/// One release test: its spec and an app factory.
pub struct ReleaseTest {
    /// Requirements and expectations.
    pub spec: AppSpec,
    /// Creates a fresh program instance.
    pub make: fn() -> Box<dyn App>,
}

/// A phase-counter base for simple sequential apps.
#[derive(Default)]
struct Phase(u32);

impl Phase {
    fn next(&mut self) -> u32 {
        let p = self.0;
        self.0 += 1;
        p
    }
}

macro_rules! simple_app {
    ($ty:ident, $name:literal, |$phase:ident, $k:ident, $pid:ident| $body:block) => {
        #[derive(Default)]
        struct $ty {
            phase: Phase,
        }
        impl App for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn step(&mut self, $k: &mut Kernel, $pid: usize) -> Step {
                let $phase = self.phase.next();
                $body
            }
        }
    };
}

// 1. c_hello — the canonical first app.
simple_app!(CHello, "c_hello", |phase, k, pid| {
    match phase {
        0 => {
            let _ = k.sys_print(pid, "Hello World!\r\n");
            Step::Continue
        }
        _ => Step::Exit,
    }
});

// 2. blink — toggle LEDs, report the toggle count.
simple_app!(Blink, "blink", |phase, k, pid| {
    if phase < 12 {
        let _ = k.sys_command(pid, driver::LED, 0, phase % 4);
        Step::Continue
    } else {
        let n = k.sys_command(pid, driver::LED, 2, 0).unwrap_or(0);
        let _ = k.sys_print(pid, &format!("blink: {n} toggles\r\n"));
        Step::Exit
    }
});

// 3. console_print_sync — several synchronous prints.
simple_app!(ConsolePrintSync, "console_print_sync", |phase, k, pid| {
    match phase {
        0..=2 => {
            let _ = k.sys_print(pid, &format!("line {}\r\n", phase + 1));
            Step::Continue
        }
        _ => Step::Exit,
    }
});

// 4. printf_long — one long write crossing buffer-staging boundaries.
simple_app!(PrintfLong, "printf_long", |phase, k, pid| {
    match phase {
        0 => {
            let long = "0123456789abcdef".repeat(8);
            let _ = k.sys_print(pid, &format!("printf_long: {long}\r\n"));
            Step::Continue
        }
        _ => Step::Exit,
    }
});

// 5. malloc_test01 — grow the heap and use it.
simple_app!(MallocTest01, "malloc_test01", |phase, k, pid| {
    match phase {
        0 => {
            let old = k.sys_sbrk(pid, 0).unwrap();
            if k.sys_sbrk(pid, 256).is_err() {
                let _ = k.sys_print(pid, "malloc01: sbrk FAIL\r\n");
                return Step::Exit;
            }
            // Touch the new memory through user-mode writes.
            for i in 0..8 {
                if k.user_write_u32(pid, old + i * 4, 0x1111_1111 * (i as u32 + 1))
                    .is_err()
                {
                    return Step::Exit;
                }
            }
            let ok = (0..8)
                .all(|i| k.user_read_u32(pid, old + i * 4) == Ok(0x1111_1111 * (i as u32 + 1)));
            let _ = k.sys_print(
                pid,
                if ok {
                    "malloc01: OK\r\n"
                } else {
                    "malloc01: BAD\r\n"
                },
            );
            Step::Continue
        }
        _ => Step::Exit,
    }
});

// 6. malloc_test02 — grow, shrink, regrow; data below the shrink point
// survives.
simple_app!(MallocTest02, "malloc_test02", |phase, k, pid| {
    match phase {
        0 => {
            let base = k.sys_memop(pid, 2).unwrap();
            if k.user_write_u32(pid, base + 16, 0xCAFE_F00D).is_err() {
                return Step::Exit;
            }
            if k.sys_sbrk(pid, 256).is_err() || k.sys_sbrk(pid, -384).is_err() {
                let _ = k.sys_print(pid, "malloc02: sbrk FAIL\r\n");
                return Step::Exit;
            }
            let _ = k.sys_sbrk(pid, 128);
            let ok = k.user_read_u32(pid, base + 16) == Ok(0xCAFE_F00D);
            let _ = k.sys_print(
                pid,
                if ok {
                    "malloc02: OK\r\n"
                } else {
                    "malloc02: BAD\r\n"
                },
            );
            Step::Continue
        }
        _ => Step::Exit,
    }
});

// 7–8. stack_size_test01/02 — report the (static) stack reservations.
simple_app!(StackSizeTest01, "stack_size_test01", |phase, k, pid| {
    match phase {
        0 => {
            let _ = k.sys_print(pid, "stack_size_test01: stack 2048 OK\r\n");
            Step::Continue
        }
        _ => Step::Exit,
    }
});

simple_app!(StackSizeTest02, "stack_size_test02", |phase, k, pid| {
    match phase {
        0 => {
            let _ = k.sys_print(pid, "stack_size_test02: stack 4096 OK\r\n");
            Step::Continue
        }
        _ => Step::Exit,
    }
});

// 9. mpu_walk_region — memory-layout test (EXPECTED TO DIFFER): prints
// the current break, then probes upward until the MPU says no.
simple_app!(MpuWalkRegion, "mpu_walk_region", |phase, k, pid| {
    match phase {
        0 => {
            let ms = k.sys_memop(pid, 2).unwrap();
            let brk = k.sys_sbrk(pid, 0).unwrap();
            let mut probes = 0usize;
            let mut addr = ms;
            while k.user_probe(addr, AccessType::Read) && probes < 64 {
                probes += 1;
                addr += 128;
            }
            let _ = k.sys_print(
                pid,
                &format!(
                    "mpu_walk: brk=+{:#x} accessible={} probes\r\n",
                    brk - ms,
                    probes
                ),
            );
            Step::Continue
        }
        _ => Step::Exit,
    }
});

// 10. mpu_stack_growth — layout test (EXPECTED TO DIFFER): prints the
// layout, then "grows the stack" below the block until the MPU faults it.
simple_app!(MpuStackGrowth, "mpu_stack_growth", |phase, k, pid| {
    match phase {
        0 => {
            let ms = k.sys_memop(pid, 2).unwrap();
            let me = k.sys_memop(pid, 3).unwrap();
            let _ = k.sys_print(pid, &format!("mpu_stack_growth: block {:#x}\r\n", me - ms));
            Step::Continue
        }
        _ => {
            let ms = k.sys_memop(pid, 2).unwrap();
            // Write below the block: the MPU must fault the process.
            let _ = k.user_write_u32(pid, ms - 64, 0xDEAD);
            Step::Continue // Unreachable if the fault landed.
        }
    }
});

// 11. stack_growth — layout test (EXPECTED TO DIFFER): prints breaks then
// deliberately crashes by overrunning the allocated stack.
simple_app!(StackGrowth, "stack_growth", |phase, k, pid| {
    match phase {
        0 => {
            let ms = k.sys_memop(pid, 2).unwrap();
            let brk = k.sys_sbrk(pid, 0).unwrap();
            let me = k.sys_memop(pid, 3).unwrap();
            let _ = k.sys_print(
                pid,
                &format!(
                    "stack_growth: start={ms:#x} brk=+{:#x} end=+{:#x}\r\n",
                    brk - ms,
                    me - ms
                ),
            );
            Step::Continue
        }
        _ => {
            let ms = k.sys_memop(pid, 2).unwrap();
            let _ = k.user_write_u32(pid, ms - 4, 1); // Stack overrun.
            Step::Continue
        }
    }
});

// 12. sensors — sensor readings (EXPECTED TO DIFFER: values depend on
// the cycle counter, which depends on the kernel flavour).
simple_app!(Sensors, "sensors", |phase, k, pid| {
    if phase < 3 {
        let v = k.sys_command(pid, driver::SENSOR, 1, 0).unwrap_or(0);
        let _ = k.sys_print(pid, &format!("sensor[{phase}] = {v}\r\n"));
        Step::Continue
    } else {
        Step::Exit
    }
});

// 13. adc — ADC samples (EXPECTED TO DIFFER, same reason).
simple_app!(Adc, "adc", |phase, k, pid| {
    if phase < 3 {
        let v = k.sys_command(pid, driver::ADC, 1, phase).unwrap_or(0);
        let _ = k.sys_print(pid, &format!("adc[{phase}] = {v}\r\n"));
        Step::Continue
    } else {
        Step::Exit
    }
});

// 14. temperature — a calibrated constant: identical on both kernels.
simple_app!(Temperature, "temperature", |phase, k, pid| {
    match phase {
        0 => {
            let v = k.sys_command(pid, driver::TEMPERATURE, 1, 0).unwrap_or(0);
            let _ = k.sys_print(
                pid,
                &format!("temperature: {}.{:02} C\r\n", v / 100, v % 100),
            );
            Step::Continue
        }
        _ => Step::Exit,
    }
});

// 15. alarm_simple — set one alarm, yield, report the upcall.
simple_app!(AlarmSimple, "alarm_simple", |phase, k, pid| {
    match phase {
        0 => {
            let _ = k.sys_subscribe(pid, driver::ALARM);
            let _ = k.sys_command(pid, driver::ALARM, 1, 2);
            Step::Yield
        }
        _ => {
            if let Some(v) = k.take_upcall(pid) {
                let _ = k.sys_print(pid, &format!("alarm fired: {v}\r\n"));
                Step::Exit
            } else {
                Step::Yield
            }
        }
    }
});

// 16. timer_repeat — three sequential alarms through the grant-backed
// alarm state.
#[derive(Default)]
struct TimerRepeat {
    fired: u32,
    armed: bool,
}
impl App for TimerRepeat {
    fn name(&self) -> &'static str {
        "timer_repeat"
    }
    fn step(&mut self, k: &mut Kernel, pid: usize) -> Step {
        if !self.armed {
            let _ = k.sys_subscribe(pid, driver::ALARM);
            let _ = k.sys_command(pid, driver::ALARM, 1, 1);
            self.armed = true;
            return Step::Yield;
        }
        if let Some(v) = k.take_upcall(pid) {
            self.fired += 1;
            let _ = k.sys_print(pid, &format!("timer {v}\r\n"));
            if self.fired >= 3 {
                return Step::Exit;
            }
            self.armed = false;
            Step::Continue
        } else {
            Step::Yield
        }
    }
}

// 17. console_recv_short — echo queued console input.
simple_app!(ConsoleRecvShort, "console_recv_short", |phase, k, pid| {
    match phase {
        0 => {
            let ms = k.sys_memop(pid, 2).unwrap();
            if k.sys_allow_rw(pid, ms + 512, 16).is_err() {
                return Step::Exit;
            }
            let n = k.sys_command(pid, driver::CONSOLE, 2, 0).unwrap_or(0);
            let mut echoed = String::new();
            for i in 0..n as usize {
                let word = k.user_read_u32(pid, ms + 512 + (i & !3)).unwrap_or(0);
                echoed.push((word >> (8 * (i % 4))) as u8 as char);
            }
            let _ = k.sys_print(pid, &format!("echo: {echoed}\r\n"));
            Step::Continue
        }
        _ => Step::Exit,
    }
});

// 18. rot13_client — in-memory rot13 over a user buffer.
simple_app!(Rot13Client, "rot13_client", |phase, k, pid| {
    match phase {
        0 => {
            let ms = k.sys_memop(pid, 2).unwrap();
            let input = b"Hello";
            for (i, b) in input.iter().enumerate() {
                let rot = match b {
                    b'a'..=b'z' => (b - b'a' + 13) % 26 + b'a',
                    b'A'..=b'Z' => (b - b'A' + 13) % 26 + b'A',
                    other => *other,
                };
                if k.user_write_u8(pid, ms + 768 + i, rot).is_err() {
                    return Step::Exit;
                }
            }
            let mut out = String::new();
            for i in 0..input.len() {
                let word = k.user_read_u32(pid, ms + 768 + (i & !3)).unwrap_or(0);
                out.push((word >> (8 * (i % 4))) as u8 as char);
            }
            let _ = k.sys_print(pid, &format!("rot13: {out}\r\n"));
            Step::Continue
        }
        _ => Step::Exit,
    }
});

// 19. ipc_ping — a two-phase ping/pong against the alarm service.
simple_app!(IpcPing, "ipc_ping", |phase, k, pid| {
    match phase {
        0 => {
            let _ = k.sys_print(pid, "ping\r\n");
            let _ = k.sys_subscribe(pid, driver::ALARM);
            let _ = k.sys_command(pid, driver::ALARM, 1, 1);
            Step::Yield
        }
        _ => {
            if k.take_upcall(pid).is_some() {
                let _ = k.sys_print(pid, "pong\r\n");
                Step::Exit
            } else {
                Step::Yield
            }
        }
    }
});

// 20. dma_xfer — DMA into an allowed buffer through the safe DmaCell path.
simple_app!(DmaXfer, "dma_xfer", |phase, k, pid| {
    match phase {
        0 => {
            let ms = k.sys_memop(pid, 2).unwrap();
            if k.sys_allow_rw(pid, ms + 896, 16).is_err() {
                return Step::Exit;
            }
            let n = k.sys_command(pid, driver::DMA, 1, 1).unwrap_or(0);
            let mut sum = 0u32;
            for i in 0..4 {
                sum = sum.wrapping_add(k.user_read_u32(pid, ms + 896 + i * 4).unwrap_or(0));
            }
            let _ = k.sys_print(pid, &format!("dma: {n} bytes sum={sum:#010x}\r\n"));
            Step::Continue
        }
        _ => Step::Exit,
    }
});

// 21. crash_dummy — deliberate wild access; the fault report goes to the
// kernel fault log, so the console output is flavour-independent.
simple_app!(CrashDummy, "crash_dummy", |phase, k, pid| {
    match phase {
        0 => {
            let _ = k.sys_print(pid, "crash_dummy: begin\r\n");
            Step::Continue
        }
        _ => {
            let _ = k.user_read_u32(pid, 0xE000_0000); // Unmapped on every chip.
            Step::Continue
        }
    }
});

/// Builds the full 21-test release suite.
pub fn release_tests() -> Vec<ReleaseTest> {
    fn spec(
        name: &'static str,
        min_ram: usize,
        kernel_reserved: usize,
        expect_differs: bool,
    ) -> AppSpec {
        AppSpec {
            name,
            flash_size: 0x1000,
            min_ram,
            kernel_reserved,
            expect_differs,
        }
    }
    macro_rules! test {
        ($ty:ident, $name:literal, $ram:expr, $grant:expr, $differs:expr) => {
            ReleaseTest {
                spec: spec($name, $ram, $grant, $differs),
                make: || Box::new(<$ty>::default()) as Box<dyn App>,
            }
        };
    }
    vec![
        test!(CHello, "c_hello", 2048, 512, false),
        test!(Blink, "blink", 2048, 512, false),
        test!(ConsolePrintSync, "console_print_sync", 2048, 512, false),
        test!(PrintfLong, "printf_long", 2048, 768, false),
        test!(MallocTest01, "malloc_test01", 2048, 512, false),
        test!(MallocTest02, "malloc_test02", 2048, 512, false),
        test!(StackSizeTest01, "stack_size_test01", 2048, 512, false),
        test!(StackSizeTest02, "stack_size_test02", 4096, 512, false),
        // Layout- and sensor-dependent tests: expected to differ (§6.1).
        test!(MpuWalkRegion, "mpu_walk_region", 2048, 1000, true),
        test!(MpuStackGrowth, "mpu_stack_growth", 2048, 1000, true),
        test!(StackGrowth, "stack_growth", 3000, 1024, true),
        test!(Sensors, "sensors", 2048, 512, true),
        test!(Adc, "adc", 2048, 512, true),
        test!(Temperature, "temperature", 2048, 512, false),
        test!(AlarmSimple, "alarm_simple", 2048, 512, false),
        test!(TimerRepeat, "timer_repeat", 2048, 512, false),
        test!(ConsoleRecvShort, "console_recv_short", 2048, 512, false),
        test!(Rot13Client, "rot13_client", 2048, 512, false),
        test!(IpcPing, "ipc_ping", 2048, 512, false),
        test!(DmaXfer, "dma_xfer", 2048, 512, false),
        test!(CrashDummy, "crash_dummy", 2048, 512, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_21_tests_with_5_expected_diffs() {
        let tests = release_tests();
        assert_eq!(tests.len(), 21);
        let differs = tests.iter().filter(|t| t.spec.expect_differs).count();
        assert_eq!(differs, 5);
    }

    #[test]
    fn names_are_unique() {
        let tests = release_tests();
        let mut names: Vec<&str> = tests.iter().map(|t| t.spec.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn factories_produce_matching_names() {
        for t in release_tests() {
            assert_eq!((t.make)().name(), t.spec.name);
        }
    }
}
