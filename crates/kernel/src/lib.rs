//! The Tock-like kernel substrate: processes, syscalls, grants, capsules,
//! scheduling, and the §6.1 differential-testing rig.
//!
//! Everything the paper's evaluation drives lives here, in **both** kernel
//! flavours behind one interface: [`process::Flavor::Legacy`] is Tock's
//! monolithic kernel (selectable bug variants), [`process::Flavor::Granular`]
//! is TickTock. The Fig. 11 methods are on [`process::Process`]; the 21
//! release tests are in [`apps`]; [`differential`] reproduces §6.1.

pub mod apps;
pub mod campaign;
pub mod capsules;
pub mod corpus;
pub mod differential;
pub mod explore;
pub mod grant;
pub mod kernel;
pub mod loader;
pub mod machine;
pub mod obligations;
pub mod pool;
pub mod process;
pub mod recovery;
pub mod shrink;
pub mod snapshot;
pub mod trace;

pub use kernel::{App, ErrorCode, Kernel, Step};
pub use loader::{flash_app, flash_many, AppImage, LoadError};
pub use machine::Machine;
pub use process::{Flavor, Process, ProcessError, ProcessState};
