//! The kernel proper: syscall surface, capsule dispatch, and the
//! round-robin scheduler.
//!
//! One `Kernel` instance boots either flavour ([`Flavor::Legacy`] or
//! [`Flavor::Granular`]) over the same simulated chip, loads processes
//! from flash images, and runs application programs against the real
//! (modelled) MPU: **every user-mode memory access is checked by the
//! protection hardware**, so a misconfigured kernel lets an app read grant
//! memory and a correct one faults it — isolation is observable, not
//! assumed.

use crate::capsules::{driver, Capsules};
use crate::loader::AppImage;
use crate::machine::Machine;
use crate::process::{Flavor, Process, ProcessError, ProcessState};
use tt_hw::cycles::{charge, Cost};
use tt_hw::mem::{AccessType, BusFault, PhysicalMemory, Privilege};
use tt_hw::platform::ChipProfile;
use tt_hw::sched::ArrivalPoint;
use tt_hw::trace::{self, RecoveryStep, SwitchDir, SyscallKind, TraceEvent};
use tt_hw::PtrU8;

/// Result of one application step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Keep running within the quantum.
    Continue,
    /// Yield until an upcall arrives.
    Yield,
    /// Exit the process.
    Exit,
}

/// An application program: the simulator's stand-in for a user binary.
///
/// Apps interact with the kernel *only* through the syscall surface and
/// user-mode memory accessors, which are MPU-checked.
pub trait App {
    /// The app's name (matches its flash image).
    fn name(&self) -> &'static str;
    /// Runs one step of the program.
    fn step(&mut self, kernel: &mut Kernel, pid: usize) -> Step;
    /// Deep-copies the program state mid-run, for mid-run machine
    /// snapshots: a fleet runner that freezes the kernel after tick 1
    /// must also freeze where each program was, so every restored run
    /// resumes from an identical program counter. Returning `None` (the
    /// default) marks the app non-resumable; snapshotting callers must
    /// then fall back to a full run from boot.
    fn clone_app(&self) -> Option<Box<dyn App>> {
        None
    }
}

/// Syscall error codes (a subset of Tock's `ErrorCode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Generic failure.
    Fail,
    /// Invalid parameters.
    Invalid,
    /// Out of memory.
    NoMem,
    /// No such driver.
    NoDevice,
}

/// Scheduler quantum: app steps per slice before preemption.
pub const QUANTUM: u32 = 4;

/// A factory producing a fresh program instance (used on process restart).
pub type AppFactory = fn() -> Box<dyn App>;

/// A delivered upcall: which driver fired and its payload (Tock delivers
/// upcalls only to processes that `subscribe`d to the driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Upcall {
    /// Driver that scheduled the upcall.
    pub driver_num: usize,
    /// Payload value.
    pub value: u32,
}

/// What the kernel does when a process faults (Tock's `FaultPolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Leave the process in the faulted state (Tock's `StopFaultPolicy`).
    Stop,
    /// Restart the process, up to `max_restarts` times, then stop
    /// (Tock's `RestartFaultPolicy` + threshold).
    Restart {
        /// Maximum restarts before giving up.
        max_restarts: u32,
    },
    /// Reclaim the process's kernel-held resources and kill it
    /// permanently on the first fault.
    Kill,
    /// Full recovery: reclaim grants, scrub and re-derive the staged
    /// protection state, then restart after an exponentially growing
    /// delay; after `max_restarts` restarts the process is killed for
    /// good (so recovery always converges — no restart livelock).
    RestartWithBackoff {
        /// Restarts allowed before the process is permanently killed.
        max_restarts: u32,
        /// Backoff before the first restart, in ticks (must be ≥ 1).
        base_delay: u64,
        /// Upper bound the doubling backoff saturates at.
        max_delay: u64,
    },
}

/// The kernel.
pub struct Kernel {
    /// Which kernel flavour this instance runs.
    pub flavor: Flavor,
    /// The chip profile this kernel was booted on.
    pub chip: ChipProfile,
    /// The chip's physical memory.
    pub mem: PhysicalMemory,
    /// The chip's protection hardware.
    pub machine: Machine,
    /// Loaded processes, indexed by pid.
    pub processes: Vec<Process>,
    /// Capsules (drivers).
    pub capsules: Capsules,
    /// Kernel tick counter (SysTick analogue).
    pub ticks: u64,
    /// Fault log: (pid, report). Fault reports include the memory layout,
    /// as Tock's process fault printer does.
    pub fault_log: Vec<(usize, String)>,
    /// Registered IPC service pids.
    pub ipc_services: Vec<usize>,
    /// Fault policy applied by the scheduler.
    pub fault_policy: FaultPolicy,
    /// Restart counts per pid.
    pub restarts: Vec<u32>,
    /// Number of fault recoveries performed per pid.
    pub recoveries: Vec<u32>,
    /// Cycles spent in fault recovery (scrub + re-derive + restart) per
    /// pid — the campaign's recovery-latency metric.
    pub recovery_cycles: Vec<u64>,
    /// When `true`, the scheduler verifies at every switch-out that the
    /// register file still matches the outgoing process's staged
    /// configuration, faulting the process on divergence. This turns
    /// silent permission-widening register corruption into an ordinary
    /// recoverable fault. Off by default (the check never fires without
    /// fault injection, but the knob keeps the baseline scheduler loop
    /// byte-identical to PR 3).
    pub mpu_scrub: bool,
    /// PLANTED BUG knob for the schedule explorer's regression tests
    /// (default `false`, never set outside them). When on, the
    /// commit-boundary path (`Kernel::commit_mpu`) computes its
    /// elide-the-commit verdict *before* the interrupt arrival window and
    /// acts on it *after* — a classic TOCTOU. With no interrupt in the
    /// window the verdict is still fresh and the kernel behaves
    /// correctly (which is why seed-only campaigns cannot see this); an
    /// interrupt that rewrites the register file inside the window (a
    /// front-run restart) makes the stale verdict re-arm another
    /// process's configuration without recommitting.
    pub commit_window_bug: bool,
    /// Tick at which a faulted process's backoff restart is due, per pid.
    /// `pub(crate)` (like the fields below) so [`crate::snapshot`] can
    /// capture and restore it without widening the public API.
    pub(crate) restart_due: Vec<Option<u64>>,
    /// Set when the interrupt service routine front-ran a backoff restart
    /// (`Kernel::interrupt_now`): the kernel side is done but the fresh
    /// program instance cannot be installed from inside a syscall (the
    /// `apps` slice lives with the scheduler). The scheduler consumes the
    /// flag before next stepping the pid.
    pub(crate) pending_respawn: Vec<bool>,
    /// Pending upcall per pid.
    pub(crate) upcalls: Vec<Option<Upcall>>,
    /// Driver subscriptions per pid.
    pub(crate) subscriptions: Vec<Vec<usize>>,
    /// Next unallocated RAM address for process loading.
    pub(crate) ram_cursor: usize,
    pub(crate) ram_end: usize,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("flavor", &self.flavor)
            .field("processes", &self.processes.len())
            .field("ticks", &self.ticks)
            .finish_non_exhaustive()
    }
}

impl Kernel {
    /// Boots a kernel of the given flavour on a chip profile.
    pub fn boot(flavor: Flavor, chip: &ChipProfile) -> Self {
        Self {
            flavor,
            chip: *chip,
            mem: chip.memory(),
            machine: Machine::for_chip(chip),
            processes: Vec::new(),
            capsules: Capsules::new(),
            ticks: 0,
            fault_log: Vec::new(),
            ipc_services: Vec::new(),
            fault_policy: FaultPolicy::Stop,
            restarts: Vec::new(),
            recoveries: Vec::new(),
            recovery_cycles: Vec::new(),
            mpu_scrub: false,
            commit_window_bug: false,
            restart_due: Vec::new(),
            pending_respawn: Vec::new(),
            upcalls: Vec::new(),
            subscriptions: Vec::new(),
            ram_cursor: chip.map.ram.start,
            ram_end: chip.map.ram.end,
        }
    }

    /// Loads a process from an app image, carving its block from the
    /// remaining RAM pool. Returns the new pid.
    pub fn load_process(&mut self, image: &AppImage) -> Result<usize, ProcessError> {
        let pid = self.processes.len();
        let process = Process::create(
            pid,
            self.flavor,
            &self.machine,
            image,
            PtrU8::new(self.ram_cursor),
            self.ram_end - self.ram_cursor,
        )?;
        self.ram_cursor = process.memory_start() + process.memory_size();
        self.processes.push(process);
        self.upcalls.push(None);
        self.subscriptions.push(Vec::new());
        self.restarts.push(0);
        self.recoveries.push(0);
        self.recovery_cycles.push(0);
        self.restart_due.push(None);
        self.pending_respawn.push(false);
        trace::record(TraceEvent::ProcessLoad { pid: pid as u32 });
        Ok(pid)
    }

    /// Restarts a faulted process: re-creates its memory block in place
    /// (same pool slot), clearing grants, buffers and breaks, as Tock's
    /// restart policy does.
    pub fn restart_process(&mut self, pid: usize) -> Result<(), ProcessError> {
        let image = self.processes[pid].image.clone();
        let start = self.processes[pid].memory_start();
        let size = self.processes[pid].memory_size();
        let fresh = Process::create(
            pid,
            self.flavor,
            &self.machine,
            &image,
            PtrU8::new(start),
            size,
        )?;
        // Preserve the console transcript across the restart so test
        // output shows the full history.
        let console = std::mem::take(&mut self.processes[pid].console);
        self.processes[pid] = fresh;
        self.processes[pid].console = console;
        self.upcalls[pid] = None;
        self.subscriptions[pid].clear();
        self.restarts[pid] += 1;
        self.restart_due[pid] = None;
        trace::record(TraceEvent::ProcessRestart { pid: pid as u32 });
        Ok(())
    }

    // ---- Interrupt arrival points (schedule explorer) -----------------

    /// One arrival-point hook. With no schedule armed this is a single
    /// thread-local flag load ([`tt_hw::sched::arrival`]'s fast path);
    /// with a schedule armed it counts the occurrence and, when the
    /// schedule names this one, services the interrupt right here —
    /// *inside* whatever kernel boundary the caller placed the hook at.
    ///
    /// `pid` is the process context the interrupt lands in (the one
    /// whose slice or syscall is being cut).
    fn maybe_interrupt(&mut self, pid: usize, point: ArrivalPoint) {
        if tt_hw::sched::arrival(point) {
            self.interrupt_now(pid, point);
        }
    }

    /// The simulated timer interrupt service routine: models the SysTick
    /// for tick `t+1` firing *early*, at an adversarial boundary inside
    /// tick `t`. It front-runs exactly the timer work the scheduler
    /// would otherwise do at the top of the next tick — due alarms and
    /// due backoff restarts — so in a correct kernel a scheduled run
    /// reorders work across the boundary without inventing or losing
    /// any.
    ///
    /// A front-run restart rewrites the register file to the restarted
    /// process's configuration. On exception return the ISR therefore
    /// re-commits the *interrupted* process's configuration — except at
    /// [`MpuCommit`](ArrivalPoint::MpuCommit) arrivals,
    /// where the definition of the point is that an unconditional commit
    /// follows immediately (see `Kernel::commit_mpu`); skipping the
    /// epilogue there is precisely what makes the commit boundary the
    /// window the planted bug falls into.
    fn interrupt_now(&mut self, pid: usize, point: ArrivalPoint) {
        trace::record(TraceEvent::IrqEnter {
            pid: pid as u32,
            point,
        });
        charge(Cost::Exception); // Interrupt entry.
        let horizon = self.ticks + 1;
        for (p, value) in self.capsules.fire_due_alarms(horizon) {
            self.deliver_upcall(p, driver::ALARM, value);
        }
        let mut perturbed = false;
        for v in 0..self.processes.len() {
            if self.restart_due[v].is_some_and(|due| horizon >= due) {
                self.restart_due[v] = None;
                let (restarted, cycles) = tt_hw::cycles::measure(|| self.restart_process(v));
                self.recovery_cycles[v] += cycles;
                if restarted.is_ok() {
                    // The program respawn needs the scheduler's `apps`
                    // slice; defer it (consumed before `v` next steps).
                    self.pending_respawn[v] = true;
                } else {
                    trace::record(TraceEvent::Recovery {
                        pid: v as u32,
                        step: RecoveryStep::RestartExhausted,
                    });
                    self.kill_process(v);
                }
                perturbed = true;
            }
        }
        if perturbed && point != ArrivalPoint::MpuCommit {
            // Exception-return epilogue: the restart committed another
            // process's configuration; re-program the interrupted
            // process's before resuming it. Quiet (no `MpuCommit` event):
            // this is interrupt plumbing, not a scheduling commit point,
            // and the oracle compares scheduled runs against references
            // that never take an interrupt.
            self.processes[pid].restore_mpu_after_irq();
        }
        charge(Cost::Exception); // Interrupt return.
        trace::record(TraceEvent::IrqExit { pid: pid as u32 });
    }

    /// Commits `pid`'s protection configuration at a scheduling boundary
    /// — the stage→commit window the schedule explorer probes, hooked as
    /// an [`MpuCommit`](ArrivalPoint::MpuCommit) arrival
    /// point *before* the commit.
    ///
    /// Correct kernel: whatever an interrupt inside the window did to
    /// the register file, `setup_mpu` below re-establishes this
    /// process's configuration — its elide verdict and the elide action
    /// are atomic with respect to the window. With
    /// [`Kernel::commit_window_bug`] set, verdict and action straddle
    /// the window instead: a stale "hardware already matches" verdict
    /// re-arms whatever the interrupt left in the register file.
    fn commit_mpu(&mut self, pid: usize) {
        if self.commit_window_bug {
            let elide = self.processes[pid].mpu_ready();
            self.maybe_interrupt(pid, ArrivalPoint::MpuCommit);
            if elide {
                self.processes[pid].rearm_mpu();
            } else {
                self.processes[pid].setup_mpu();
            }
        } else {
            self.maybe_interrupt(pid, ArrivalPoint::MpuCommit);
            self.processes[pid].setup_mpu();
        }
    }

    // ---- User-mode memory access (MPU-checked) ------------------------

    fn user_check(&self, addr: usize, size: usize, access: AccessType) -> Result<(), BusFault> {
        // An armed UserAccess injection forces a denial the hardware
        // would not have produced (a glitched bus transaction).
        if tt_hw::injection::force_user_fault() {
            return Err(BusFault {
                addr,
                access,
                kind: tt_hw::mem::FaultKind::PermissionDenied,
            });
        }
        match self
            .machine
            .check(addr, size, access, Privilege::Unprivileged)
        {
            tt_hw::mem::AccessDecision::Allowed => Ok(()),
            tt_hw::mem::AccessDecision::Fault(kind) => Err(BusFault { addr, access, kind }),
        }
    }

    /// A user-mode word read by process `pid` (checked by the MPU exactly
    /// as the AHB would).
    pub fn user_read_u32(&mut self, pid: usize, addr: usize) -> Result<u32, BusFault> {
        charge(Cost::Load);
        if let Err(f) = self.user_check(addr, 4, AccessType::Read) {
            trace::record(TraceEvent::BusFault {
                pid: pid as u32,
                addr: addr as u32,
                write: false,
            });
            self.fault_process(pid, &f.to_reason());
            return Err(f);
        }
        let result = self.mem.read_u32(addr).map_err(|_| BusFault {
            addr,
            access: AccessType::Read,
            kind: tt_hw::mem::FaultKind::Unmapped,
        });
        if let Err(f) = result {
            self.fault_process(pid, &f.to_reason());
        }
        result
    }

    /// A user-mode word write.
    pub fn user_write_u32(&mut self, pid: usize, addr: usize, value: u32) -> Result<(), BusFault> {
        charge(Cost::Store);
        if let Err(f) = self.user_check(addr, 4, AccessType::Write) {
            trace::record(TraceEvent::BusFault {
                pid: pid as u32,
                addr: addr as u32,
                write: true,
            });
            self.fault_process(pid, &f.to_reason());
            return Err(f);
        }
        self.mem.write_u32(addr, value).map_err(|_| BusFault {
            addr,
            access: AccessType::Write,
            kind: tt_hw::mem::FaultKind::Unmapped,
        })
    }

    /// A user-mode byte write.
    pub fn user_write_u8(&mut self, pid: usize, addr: usize, value: u8) -> Result<(), BusFault> {
        charge(Cost::Store);
        if let Err(f) = self.user_check(addr, 1, AccessType::Write) {
            trace::record(TraceEvent::BusFault {
                pid: pid as u32,
                addr: addr as u32,
                write: true,
            });
            self.fault_process(pid, &f.to_reason());
            return Err(f);
        }
        self.mem.write_u8(addr, value).map_err(|_| BusFault {
            addr,
            access: AccessType::Write,
            kind: tt_hw::mem::FaultKind::Unmapped,
        })
    }

    /// A user-mode probe that does NOT fault the process on denial —
    /// used by the MPU-walking tests.
    pub fn user_probe(&self, addr: usize, access: AccessType) -> bool {
        self.user_check(addr, 1, access).is_ok()
    }

    // ---- Syscalls ------------------------------------------------------

    /// `brk`: set the app break.
    ///
    /// The syscall *handler* only updates the staged configuration (in
    /// TickTock, without touching hardware — the Fig. 11 win); the MPU is
    /// (re)configured on the context switch back into the process, which
    /// both kernels pay equally.
    pub fn sys_brk(&mut self, pid: usize, new_break: usize) -> Result<(), ErrorCode> {
        charge(Cost::Exception); // SVC entry.
                                 // An armed SyscallArg injection corrupts the argument register at
                                 // SVC entry; the handler must validate its way out of it.
        let new_break = tt_hw::injection::corrupt_syscall_arg(new_break as u32) as usize;
        trace::record(TraceEvent::SyscallEnter {
            pid: pid as u32,
            call: SyscallKind::Brk,
            arg0: new_break as u32,
            arg1: 0,
            arg2: 0,
        });
        self.maybe_interrupt(pid, ArrivalPoint::SyscallEnter);
        let result = self.processes[pid]
            .brk(PtrU8::new(new_break))
            .map_err(|e| match e {
                ProcessError::NoMemory => ErrorCode::NoMem,
                ProcessError::Invalid => ErrorCode::Invalid,
            });
        // Context switch back into the process: apply the staged config.
        self.commit_mpu(pid);
        self.maybe_interrupt(pid, ArrivalPoint::SyscallExit);
        trace::record(TraceEvent::SyscallExit {
            pid: pid as u32,
            call: SyscallKind::Brk,
            ok: result.is_ok(),
            value: 0,
        });
        charge(Cost::Exception); // SVC return.
        result
    }

    /// `sbrk`: adjust the app break by a delta; returns the new break.
    pub fn sys_sbrk(&mut self, pid: usize, delta: isize) -> Result<usize, ErrorCode> {
        charge(Cost::Exception);
        let delta = tt_hw::injection::corrupt_syscall_arg(delta as i32 as u32) as i32 as isize;
        trace::record(TraceEvent::SyscallEnter {
            pid: pid as u32,
            call: SyscallKind::Sbrk,
            arg0: delta as i32 as u32,
            arg1: 0,
            arg2: 0,
        });
        self.maybe_interrupt(pid, ArrivalPoint::SyscallEnter);
        let result = if delta == 0 {
            Ok(self.processes[pid].app_break())
        } else {
            self.processes[pid]
                .sbrk(delta)
                .map(|p| p.as_usize())
                .map_err(|e| match e {
                    ProcessError::NoMemory => ErrorCode::NoMem,
                    ProcessError::Invalid => ErrorCode::Invalid,
                })
        };
        self.commit_mpu(pid);
        self.maybe_interrupt(pid, ArrivalPoint::SyscallExit);
        trace::record(TraceEvent::SyscallExit {
            pid: pid as u32,
            call: SyscallKind::Sbrk,
            ok: result.is_ok(),
            value: result.map_or(0, |v| v as u32),
        });
        charge(Cost::Exception);
        result
    }

    /// `memop`: introspection operations (Tock's memop syscall).
    pub fn sys_memop(&mut self, pid: usize, op: u32) -> Result<usize, ErrorCode> {
        charge(Cost::Exception);
        trace::record(TraceEvent::SyscallEnter {
            pid: pid as u32,
            call: SyscallKind::Memop,
            arg0: op,
            arg1: 0,
            arg2: 0,
        });
        self.maybe_interrupt(pid, ArrivalPoint::SyscallEnter);
        let p = &self.processes[pid];
        let v = match op {
            1 => p.app_break(),
            2 => p.memory_start(),
            3 => p.memory_start() + p.memory_size(),
            4 => p.image.flash_start.as_usize(),
            5 => p.image.flash_start.as_usize() + p.image.flash_size,
            _ => {
                self.maybe_interrupt(pid, ArrivalPoint::SyscallExit);
                trace::record(TraceEvent::SyscallExit {
                    pid: pid as u32,
                    call: SyscallKind::Memop,
                    ok: false,
                    value: 0,
                });
                return Err(ErrorCode::Invalid);
            }
        };
        self.maybe_interrupt(pid, ArrivalPoint::SyscallExit);
        trace::record(TraceEvent::SyscallExit {
            pid: pid as u32,
            call: SyscallKind::Memop,
            ok: true,
            value: v as u32,
        });
        charge(Cost::Exception);
        Ok(v)
    }

    /// `subscribe`: register interest in a driver's upcalls. Without a
    /// subscription, the driver's events are dropped (Tock semantics).
    pub fn sys_subscribe(&mut self, pid: usize, driver_num: usize) -> Result<(), ErrorCode> {
        charge(Cost::Exception);
        trace::record(TraceEvent::SyscallEnter {
            pid: pid as u32,
            call: SyscallKind::Subscribe,
            arg0: driver_num as u32,
            arg1: 0,
            arg2: 0,
        });
        self.maybe_interrupt(pid, ArrivalPoint::SyscallEnter);
        if !self.subscriptions[pid].contains(&driver_num) {
            self.subscriptions[pid].push(driver_num);
        }
        self.maybe_interrupt(pid, ArrivalPoint::SyscallExit);
        trace::record(TraceEvent::SyscallExit {
            pid: pid as u32,
            call: SyscallKind::Subscribe,
            ok: true,
            value: 0,
        });
        charge(Cost::Exception);
        Ok(())
    }

    /// Schedules an upcall for `pid` if (and only if) it subscribed to the
    /// driver; wakes the process if it yielded. Returns whether delivered.
    pub fn deliver_upcall(&mut self, pid: usize, driver_num: usize, value: u32) -> bool {
        if !self.subscriptions[pid].contains(&driver_num) {
            return false; // Dropped: no subscription.
        }
        self.upcalls[pid] = Some(Upcall { driver_num, value });
        if self.processes[pid].state == ProcessState::Yielded {
            self.processes[pid].state = ProcessState::Ready;
        }
        trace::record(TraceEvent::UpcallDeliver {
            pid: pid as u32,
            driver: driver_num as u32,
            value,
        });
        true
    }

    /// `allow_readonly`: share a read-only buffer with a driver.
    pub fn sys_allow_ro(&mut self, pid: usize, addr: usize, len: usize) -> Result<(), ErrorCode> {
        charge(Cost::Exception);
        let addr = tt_hw::injection::corrupt_syscall_arg(addr as u32) as usize;
        trace::record(TraceEvent::SyscallEnter {
            pid: pid as u32,
            call: SyscallKind::AllowRo,
            arg0: addr as u32,
            arg1: len as u32,
            arg2: 0,
        });
        self.maybe_interrupt(pid, ArrivalPoint::SyscallEnter);
        let r = self.processes[pid]
            .build_readonly_buffer(PtrU8::new(addr), len)
            .map_err(|_| ErrorCode::Invalid);
        self.maybe_interrupt(pid, ArrivalPoint::SyscallExit);
        trace::record(TraceEvent::SyscallExit {
            pid: pid as u32,
            call: SyscallKind::AllowRo,
            ok: r.is_ok(),
            value: 0,
        });
        charge(Cost::Exception);
        r
    }

    /// `allow_readwrite`: share a writable buffer with a driver.
    pub fn sys_allow_rw(&mut self, pid: usize, addr: usize, len: usize) -> Result<(), ErrorCode> {
        charge(Cost::Exception);
        let addr = tt_hw::injection::corrupt_syscall_arg(addr as u32) as usize;
        trace::record(TraceEvent::SyscallEnter {
            pid: pid as u32,
            call: SyscallKind::AllowRw,
            arg0: addr as u32,
            arg1: len as u32,
            arg2: 0,
        });
        self.maybe_interrupt(pid, ArrivalPoint::SyscallEnter);
        let r = self.processes[pid]
            .build_readwrite_buffer(PtrU8::new(addr), len)
            .map_err(|_| ErrorCode::Invalid);
        self.maybe_interrupt(pid, ArrivalPoint::SyscallExit);
        trace::record(TraceEvent::SyscallExit {
            pid: pid as u32,
            call: SyscallKind::AllowRw,
            ok: r.is_ok(),
            value: 0,
        });
        charge(Cost::Exception);
        r
    }

    /// `command`: invoke a driver operation.
    pub fn sys_command(
        &mut self,
        pid: usize,
        driver_num: usize,
        cmd: u32,
        arg: u32,
    ) -> Result<u32, ErrorCode> {
        charge(Cost::Exception);
        trace::record(TraceEvent::SyscallEnter {
            pid: pid as u32,
            call: SyscallKind::Command,
            arg0: driver_num as u32,
            arg1: cmd,
            arg2: arg,
        });
        self.maybe_interrupt(pid, ArrivalPoint::SyscallEnter);
        let result = self.dispatch_command(pid, driver_num, cmd, arg);
        self.maybe_interrupt(pid, ArrivalPoint::SyscallExit);
        trace::record(TraceEvent::SyscallExit {
            pid: pid as u32,
            call: SyscallKind::Command,
            ok: result.is_ok(),
            value: result.unwrap_or(0),
        });
        charge(Cost::Exception);
        result
    }

    fn dispatch_command(
        &mut self,
        pid: usize,
        driver_num: usize,
        cmd: u32,
        arg: u32,
    ) -> Result<u32, ErrorCode> {
        match driver_num {
            driver::CONSOLE => match cmd {
                // Write: copy the allowed read-only buffer to the console.
                1 => {
                    let (addr, len) = self.processes[pid].allow_ro.ok_or(ErrorCode::Invalid)?;
                    // Console writes are short (a few bytes per step in the
                    // campaign workloads); a stack buffer keeps the per-print
                    // heap allocation off the fleet hot path.
                    let mut small = [0u8; 64];
                    let mut large;
                    let bytes: &mut [u8] = if len <= small.len() {
                        &mut small[..len]
                    } else {
                        large = vec![0u8; len];
                        &mut large
                    };
                    self.mem
                        .read_bytes(addr.as_usize(), bytes)
                        .map_err(|_| ErrorCode::Fail)?;
                    self.processes[pid]
                        .console
                        .push_str(&String::from_utf8_lossy(bytes));
                    Ok(len as u32)
                }
                // Read: deliver queued input into the allowed RW buffer.
                2 => {
                    let (addr, len) = self.processes[pid].allow_rw.ok_or(ErrorCode::Invalid)?;
                    let input = self
                        .capsules
                        .take_console_input(pid)
                        .ok_or(ErrorCode::Fail)?;
                    let n = input.len().min(len);
                    self.mem
                        .write_bytes(addr.as_usize(), &input[..n])
                        .map_err(|_| ErrorCode::Fail)?;
                    Ok(n as u32)
                }
                _ => Err(ErrorCode::Invalid),
            },
            driver::LED => match cmd {
                0 => Ok(self.capsules.leds.toggle(arg as usize) as u32),
                1 => Ok(self.capsules.leds.get(arg as usize) as u32),
                2 => Ok(self.capsules.leds.toggles),
                _ => Err(ErrorCode::Invalid),
            },
            driver::ALARM => match cmd {
                // Set an alarm `arg` ticks out; per-process alarm state
                // lives in a grant (allocated on first use).
                1 => {
                    if self.processes[pid].grant(driver::ALARM).is_none() {
                        let ptr = self.processes[pid]
                            .allocate_grant(driver::ALARM, 16)
                            .map_err(|_| ErrorCode::NoMem)?;
                        // Initialize the grant contents (kernel-privileged).
                        self.mem
                            .write_u32(ptr.as_usize(), 0)
                            .map_err(|_| ErrorCode::Fail)?;
                    }
                    let (ptr, _) = self.processes[pid].grant(driver::ALARM).unwrap();
                    let count = self
                        .mem
                        .read_u32(ptr.as_usize())
                        .map_err(|_| ErrorCode::Fail)?;
                    self.mem
                        .write_u32(ptr.as_usize(), count + 1)
                        .map_err(|_| ErrorCode::Fail)?;
                    self.capsules.set_alarm(pid, self.ticks, arg, count + 1);
                    Ok(count + 1)
                }
                // Read the alarm-set count from the grant.
                2 => {
                    let (ptr, _) = self.processes[pid]
                        .grant(driver::ALARM)
                        .ok_or(ErrorCode::Fail)?;
                    self.mem
                        .read_u32(ptr.as_usize())
                        .map_err(|_| ErrorCode::Fail)
                }
                _ => Err(ErrorCode::Invalid),
            },
            driver::SENSOR => Ok(self.capsules.sensor_read()),
            driver::ADC => Ok(self.capsules.adc_sample(arg)),
            driver::TEMPERATURE => Ok(self.capsules.temperature_read()),
            driver::IPC => match cmd {
                // 1: register this process as an IPC service; returns pid.
                1 => {
                    if !self.ipc_services.contains(&pid) {
                        self.ipc_services.push(pid);
                    }
                    Ok(pid as u32)
                }
                // 2: call service `arg`: copy the caller's allowed RO
                // buffer into the service's allowed RW buffer, wake the
                // service with the caller's pid as the upcall value.
                2 => {
                    let service = arg as usize;
                    if service >= self.processes.len() || !self.ipc_services.contains(&service) {
                        return Err(ErrorCode::NoDevice);
                    }
                    self.ipc_copy(pid, service)?;
                    self.deliver_upcall(service, driver::IPC, pid as u32);
                    Ok(0)
                }
                // 3: reply to client `arg`: copy this process's RO buffer
                // into the client's RW buffer and wake it.
                3 => {
                    let client = arg as usize;
                    if client >= self.processes.len() {
                        return Err(ErrorCode::Invalid);
                    }
                    self.ipc_copy(pid, client)?;
                    self.deliver_upcall(client, driver::IPC, pid as u32);
                    Ok(0)
                }
                _ => Err(ErrorCode::Invalid),
            },
            driver::DMA => match cmd {
                // Transfer `arg` pattern bytes into the allowed RW buffer.
                1 => {
                    let (addr, len) = self.processes[pid].allow_rw.ok_or(ErrorCode::Invalid)?;
                    let data: Vec<u8> = (0..len)
                        .map(|i| (i as u8).wrapping_add(arg as u8))
                        .collect();
                    self.capsules
                        .dma_transfer(&mut self.mem, addr.as_usize(), &data)
                        .map(|n| n as u32)
                        .map_err(|_| ErrorCode::Fail)
                }
                _ => Err(ErrorCode::Invalid),
            },
            _ => Err(ErrorCode::NoDevice),
        }
    }

    /// Convenience print path used by apps: stage the bytes in app RAM
    /// (user-mode writes), `allow_ro` the buffer, and invoke the console —
    /// the full syscall path, not a shortcut.
    pub fn sys_print(&mut self, pid: usize, text: &str) -> Result<(), ErrorCode> {
        trace::record(TraceEvent::SyscallEnter {
            pid: pid as u32,
            call: SyscallKind::Print,
            arg0: text.len() as u32,
            arg1: 0,
            arg2: 0,
        });
        self.maybe_interrupt(pid, ArrivalPoint::SyscallEnter);
        let base = self.processes[pid].memory_start() + 64;
        let bytes = text.as_bytes();
        let mut inner = || -> Result<(), ErrorCode> {
            for (i, b) in bytes.iter().enumerate() {
                if self.user_write_u8(pid, base + i, *b).is_err() {
                    return Err(ErrorCode::Fail);
                }
            }
            self.sys_allow_ro(pid, base, bytes.len())?;
            self.sys_command(pid, driver::CONSOLE, 1, 0)?;
            Ok(())
        };
        let r = inner();
        self.maybe_interrupt(pid, ArrivalPoint::SyscallExit);
        trace::record(TraceEvent::SyscallExit {
            pid: pid as u32,
            call: SyscallKind::Print,
            ok: r.is_ok(),
            value: 0,
        });
        r
    }

    /// Copies `src`'s allowed read-only buffer into `dst`'s allowed
    /// read-write buffer (the kernel-mediated IPC data path). Both buffers
    /// were validated against each process's own memory at `allow` time,
    /// so the copy cannot touch any third party's memory.
    fn ipc_copy(&mut self, src: usize, dst: usize) -> Result<u32, ErrorCode> {
        let (src_addr, src_len) = self.processes[src].allow_ro.ok_or(ErrorCode::Invalid)?;
        let (dst_addr, dst_len) = self.processes[dst].allow_rw.ok_or(ErrorCode::Invalid)?;
        let n = src_len.min(dst_len);
        let mut buf = vec![0u8; n];
        self.mem
            .read_bytes(src_addr.as_usize(), &mut buf)
            .map_err(|_| ErrorCode::Fail)?;
        self.mem
            .write_bytes(dst_addr.as_usize(), &buf)
            .map_err(|_| ErrorCode::Fail)?;
        Ok(n as u32)
    }

    /// Takes the pending upcall for a process, if delivered.
    pub fn take_upcall(&mut self, pid: usize) -> Option<u32> {
        self.upcalls[pid].take().map(|u| u.value)
    }

    /// Takes the pending upcall with its driver identity.
    pub fn take_upcall_typed(&mut self, pid: usize) -> Option<Upcall> {
        self.upcalls[pid].take()
    }

    /// Marks a process faulted and records the fault report (which, as in
    /// Tock, includes the memory layout).
    pub fn fault_process(&mut self, pid: usize, reason: &str) {
        let layout = self.processes[pid].layout_report();
        let mut report = String::with_capacity(reason.len() + 2 + layout.len());
        report.push_str(reason);
        report.push_str("; ");
        report.push_str(&layout);
        self.processes[pid].fault(reason.to_string());
        self.fault_log.push((pid, report));
        // A fault makes whatever the commit cache believes is live in the
        // register file untrustworthy (the fault may stem from corrupted
        // hardware state), so every transition into `Faulted` drops it: a
        // stale hit after a fault is impossible by construction.
        self.machine.cache().invalidate();
        trace::record(TraceEvent::ProcessFault { pid: pid as u32 });
    }

    /// Permanently kills a process: no further scheduling, no restart.
    /// Drops every kernel-held handle and the commit-cache entry.
    pub fn kill_process(&mut self, pid: usize) {
        self.processes[pid].state = ProcessState::Killed;
        self.upcalls[pid] = None;
        self.subscriptions[pid].clear();
        self.restart_due[pid] = None;
        self.pending_respawn[pid] = false;
        self.machine.cache().invalidate();
        trace::record(TraceEvent::ProcessKill { pid: pid as u32 });
    }

    /// Fault recovery for a faulted process: reclaims its grant region,
    /// drops every kernel-held handle into its memory (grants, allowed
    /// buffers, pending upcalls, subscriptions), re-derives the staged
    /// protection state from the surviving break pointers, and
    /// invalidates the commit cache. Returns `false` if re-derivation
    /// failed, in which case the caller must kill the process.
    pub fn recover_process(&mut self, pid: usize) -> bool {
        let (ok, cycles) = tt_hw::cycles::measure(|| {
            let ok = self.processes[pid].recover();
            self.upcalls[pid] = None;
            self.subscriptions[pid].clear();
            self.machine.cache().invalidate();
            ok
        });
        self.recoveries[pid] += 1;
        self.recovery_cycles[pid] += cycles;
        trace::record(TraceEvent::Recovery {
            pid: pid as u32,
            step: RecoveryStep::GrantsReclaimed,
        });
        if ok {
            trace::record(TraceEvent::Recovery {
                pid: pid as u32,
                step: RecoveryStep::StateRederived,
            });
        }
        ok
    }

    /// Applies the configured fault policy to a process that is in the
    /// `Faulted` state at the end of its scheduling slot.
    fn apply_fault_policy(
        &mut self,
        pid: usize,
        apps: &mut [Box<dyn App>],
        factories: Option<&[AppFactory]>,
    ) {
        match self.fault_policy {
            FaultPolicy::Stop => {}
            FaultPolicy::Restart { max_restarts } => {
                // The pre-PR 4 policy: immediate in-place respawn (needs
                // a factory to rebuild the program alongside the memory).
                if let Some(mk) = factories.and_then(|f| f.get(pid)) {
                    if self.restarts[pid] < max_restarts && self.restart_process(pid).is_ok() {
                        apps[pid] = mk();
                    }
                }
            }
            FaultPolicy::Kill => {
                self.recover_process(pid);
                self.kill_process(pid);
            }
            FaultPolicy::RestartWithBackoff {
                max_restarts,
                base_delay,
                max_delay,
            } => {
                let recovered = self.recover_process(pid);
                if !recovered || self.restarts[pid] >= max_restarts {
                    trace::record(TraceEvent::Recovery {
                        pid: pid as u32,
                        step: RecoveryStep::RestartExhausted,
                    });
                    self.kill_process(pid);
                } else {
                    let delay =
                        crate::recovery::backoff_delay(base_delay, max_delay, self.restarts[pid]);
                    self.restart_due[pid] = Some(self.ticks + delay);
                    trace::record(TraceEvent::Recovery {
                        pid: pid as u32,
                        step: RecoveryStep::BackoffScheduled { delay },
                    });
                }
            }
        }
    }

    // ---- Scheduler ------------------------------------------------------

    /// Runs the loaded apps round-robin until all exit/fault or
    /// `max_ticks` elapses. `apps[i]` drives `processes[i]`.
    pub fn run(&mut self, apps: &mut [Box<dyn App>], max_ticks: u64) {
        self.run_with_factories(apps, None, max_ticks)
    }

    /// Like [`Kernel::run`], but with per-process app factories so the
    /// restart fault policy can respawn a fresh program instance.
    pub fn run_with_factories(
        &mut self,
        apps: &mut [Box<dyn App>],
        factories: Option<&[AppFactory]>,
        max_ticks: u64,
    ) {
        assert_eq!(apps.len(), self.processes.len());
        while self.ticks < max_ticks {
            self.ticks += 1;
            // SysTick: fire due alarms; delivery requires a subscription.
            for (pid, value) in self.capsules.fire_due_alarms(self.ticks) {
                self.deliver_upcall(pid, driver::ALARM, value);
            }
            // Execute backoff restarts whose delay has elapsed.
            #[allow(clippy::needless_range_loop)] // pid indexes kernel state and `apps`.
            for pid in 0..self.processes.len() {
                if self.restart_due[pid].is_some_and(|due| self.ticks >= due) {
                    self.restart_due[pid] = None;
                    let Some(mk) = factories.and_then(|f| f.get(pid)) else {
                        // No factory to respawn the program: the recovered
                        // memory block has nothing to run.
                        self.kill_process(pid);
                        continue;
                    };
                    let (restarted, cycles) = tt_hw::cycles::measure(|| self.restart_process(pid));
                    self.recovery_cycles[pid] += cycles;
                    if restarted.is_ok() {
                        apps[pid] = mk();
                    } else {
                        trace::record(TraceEvent::Recovery {
                            pid: pid as u32,
                            step: RecoveryStep::RestartExhausted,
                        });
                        self.kill_process(pid);
                    }
                }
            }
            let mut any_ready = false;
            #[allow(clippy::needless_range_loop)] // pid indexes two slices.
            for pid in 0..self.processes.len() {
                // A front-run restart (interrupt service routine) left
                // the program respawn to us: install the fresh instance
                // before the process can be stepped again.
                if self.pending_respawn[pid] {
                    self.pending_respawn[pid] = false;
                    if let Some(mk) = factories.and_then(|f| f.get(pid)) {
                        apps[pid] = mk();
                    } else {
                        // No factory to respawn the program — mirror the
                        // tick-top restart path's decision.
                        self.kill_process(pid);
                    }
                }
                if self.processes[pid].state != ProcessState::Ready {
                    continue;
                }
                any_ready = true;
                // Context switch in: configure the MPU for this process
                // and pay the exception-entry cost.
                charge(Cost::Exception);
                trace::set_current_pid(pid as u32);
                trace::record(TraceEvent::ContextSwitch {
                    pid: pid as u32,
                    dir: SwitchDir::In,
                });
                self.commit_mpu(pid);
                self.maybe_interrupt(pid, ArrivalPoint::SchedulerDecision);
                // An armed Stack injection nudges the process's stack
                // pointer below its block: the modelled push lands one
                // word under `memory_start` and the MPU faults it.
                if tt_hw::injection::stack_nudge() {
                    let below = self.processes[pid].memory_start() - 4;
                    let _ = self.user_write_u32(pid, below, 0xDEAD_BEEF);
                }
                for _ in 0..QUANTUM {
                    if self.processes[pid].state != ProcessState::Ready {
                        break;
                    }
                    match apps[pid].step(self, pid) {
                        Step::Continue => {}
                        Step::Yield => {
                            if self.processes[pid].state == ProcessState::Ready {
                                self.processes[pid].state = ProcessState::Yielded;
                            }
                        }
                        Step::Exit => {
                            self.processes[pid].state = ProcessState::Exited;
                        }
                    }
                }
                // Switch-out scrub (opt-in): the register file must still
                // hold what the outgoing process staged; silent register
                // corruption becomes an ordinary recoverable fault here.
                if self.mpu_scrub
                    && matches!(
                        self.processes[pid].state,
                        ProcessState::Ready | ProcessState::Yielded
                    )
                    && !self.processes[pid].mpu_consistent()
                {
                    self.fault_process(pid, "mpu scrub: register file diverged from staged state");
                }
                // Context switch out: kernel disables user protection (§2.1).
                trace::record(TraceEvent::ContextSwitch {
                    pid: pid as u32,
                    dir: SwitchDir::Out,
                });
                self.machine.disable_user_protection();
                trace::set_current_pid(tt_hw::trace::NO_PID);
                charge(Cost::Exception);
                // Apply the fault policy (restart needs a factory to
                // respawn the program alongside the process memory).
                if matches!(self.processes[pid].state, ProcessState::Faulted(_)) {
                    self.apply_fault_policy(pid, apps, factories);
                }
            }
            let all_done = (0..self.processes.len()).all(|pid| {
                match self.processes[pid].state {
                    ProcessState::Exited | ProcessState::Killed => true,
                    // A faulted process still counts as live while a
                    // backoff restart is pending for it.
                    ProcessState::Faulted(_) => self.restart_due[pid].is_none(),
                    ProcessState::Ready | ProcessState::Yielded => false,
                }
            });
            if all_done {
                break;
            }
            if !any_ready
                && self.capsules.alarms.is_empty()
                && self.restart_due.iter().all(|due| due.is_none())
            {
                // Deadlock: everyone yielded with nothing pending. Mark
                // it so the oracle can tell a wedged run from a clean
                // everyone-exited completion instead of inferring it
                // from trace truncation.
                trace::record(TraceEvent::IdleExit);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::flash_app;
    use tt_hw::platform::NRF52840DK;
    use tt_legacy::BugVariant;

    fn boot_with_app(flavor: Flavor) -> (Kernel, usize) {
        let mut k = Kernel::boot(flavor, &NRF52840DK);
        let img = flash_app(&mut k.mem, 0x0004_0000, "t", 0x1000, 3000, 1024).unwrap();
        let pid = k.load_process(&img).unwrap();
        (k, pid)
    }

    fn flavors() -> [Flavor; 2] {
        [Flavor::Legacy(BugVariant::Fixed), Flavor::Granular]
    }

    #[test]
    fn boot_and_load_carves_ram() {
        for flavor in flavors() {
            let (k, pid) = boot_with_app(flavor);
            let p = &k.processes[pid];
            assert!(p.memory_start() >= NRF52840DK.map.ram.start);
            assert!(k.ram_cursor > p.memory_start());
        }
    }

    #[test]
    fn user_access_respects_mpu() {
        for flavor in flavors() {
            let (mut k, pid) = boot_with_app(flavor);
            k.processes[pid].setup_mpu();
            let ms = k.processes[pid].memory_start();
            // Inside app memory: fine.
            k.user_write_u32(pid, ms + 128, 0xABCD).unwrap();
            assert_eq!(k.user_read_u32(pid, ms + 128).unwrap(), 0xABCD);
            // Grant region: faults and kills the process.
            let kb = k.processes[pid].kernel_break();
            let top = k.processes[pid].memory_start() + k.processes[pid].memory_size();
            let probe = ((kb + top) / 2) & !3;
            assert!(k.user_write_u32(pid, probe, 1).is_err());
            assert!(matches!(k.processes[pid].state, ProcessState::Faulted(_)));
            assert_eq!(k.fault_log.len(), 1);
            assert!(k.fault_log[0].1.contains("app_break"));
        }
    }

    #[test]
    fn print_path_goes_through_allow_and_console() {
        for flavor in flavors() {
            let (mut k, pid) = boot_with_app(flavor);
            k.processes[pid].setup_mpu();
            k.sys_print(pid, "hello world").unwrap();
            assert_eq!(k.processes[pid].console, "hello world");
        }
    }

    #[test]
    fn memop_reports_layout() {
        for flavor in flavors() {
            let (mut k, pid) = boot_with_app(flavor);
            let ms = k.sys_memop(pid, 2).unwrap();
            let me = k.sys_memop(pid, 3).unwrap();
            let brk = k.sys_memop(pid, 1).unwrap();
            assert!(ms < brk && brk < me);
            assert_eq!(k.sys_memop(pid, 4).unwrap(), 0x0004_0000);
            assert!(k.sys_memop(pid, 99).is_err());
        }
    }

    #[test]
    fn alarm_grant_and_upcall_flow() {
        for flavor in flavors() {
            let (mut k, pid) = boot_with_app(flavor);
            k.processes[pid].setup_mpu();
            let n = k.sys_command(pid, driver::ALARM, 1, 3).unwrap();
            assert_eq!(n, 1);
            // Grant allocated and counted.
            assert_eq!(k.sys_command(pid, driver::ALARM, 2, 0).unwrap(), 1);
            assert!(k.processes[pid].grant(driver::ALARM).is_some());
            // Not fired yet.
            assert!(k.take_upcall(pid).is_none());
            k.ticks = 10;
            let fired = k.capsules.fire_due_alarms(k.ticks);
            assert_eq!(fired, vec![(pid, 1)]);
        }
    }

    #[test]
    fn dma_command_fills_allowed_buffer() {
        for flavor in flavors() {
            let (mut k, pid) = boot_with_app(flavor);
            k.processes[pid].setup_mpu();
            let ms = k.processes[pid].memory_start();
            k.sys_allow_rw(pid, ms + 256, 8).unwrap();
            let n = k.sys_command(pid, driver::DMA, 1, 5).unwrap();
            assert_eq!(n, 8);
            assert_eq!(k.user_read_u32(pid, ms + 256).unwrap(), 0x0807_0605);
        }
    }

    #[test]
    fn console_read_delivers_queued_input() {
        for flavor in flavors() {
            let (mut k, pid) = boot_with_app(flavor);
            k.processes[pid].setup_mpu();
            let ms = k.processes[pid].memory_start();
            k.sys_allow_rw(pid, ms + 512, 16).unwrap();
            k.capsules.queue_console_input(pid, b"ping");
            let n = k.sys_command(pid, driver::CONSOLE, 2, 0).unwrap();
            assert_eq!(n, 4);
            assert_eq!(
                k.user_read_u32(pid, ms + 512).unwrap(),
                u32::from_le_bytes(*b"ping")
            );
        }
    }

    #[test]
    fn upcalls_require_subscription() {
        for flavor in flavors() {
            let (mut k, pid) = boot_with_app(flavor);
            // Not subscribed: the alarm event is dropped.
            assert!(!k.deliver_upcall(pid, driver::ALARM, 7));
            assert!(k.take_upcall(pid).is_none());
            // Subscribed: delivered, with the driver identity attached.
            k.sys_subscribe(pid, driver::ALARM).unwrap();
            assert!(k.deliver_upcall(pid, driver::ALARM, 7));
            let upcall = k.take_upcall_typed(pid).unwrap();
            assert_eq!(upcall.driver_num, driver::ALARM);
            assert_eq!(upcall.value, 7);
            // A subscription to one driver does not leak to another.
            assert!(!k.deliver_upcall(pid, driver::IPC, 9));
        }
    }

    #[test]
    fn delivery_wakes_yielded_process() {
        let (mut k, pid) = boot_with_app(Flavor::Granular);
        k.sys_subscribe(pid, driver::ALARM).unwrap();
        k.processes[pid].state = ProcessState::Yielded;
        assert!(k.deliver_upcall(pid, driver::ALARM, 1));
        assert_eq!(k.processes[pid].state, ProcessState::Ready);
    }

    #[test]
    fn restart_clears_subscriptions() {
        let (mut k, pid) = boot_with_app(Flavor::Granular);
        k.sys_subscribe(pid, driver::ALARM).unwrap();
        k.fault_process(pid, "x");
        k.restart_process(pid).unwrap();
        assert!(!k.deliver_upcall(pid, driver::ALARM, 1));
    }

    #[test]
    fn ipc_call_and_reply_roundtrip() {
        for flavor in flavors() {
            let mut k = Kernel::boot(flavor, &NRF52840DK);
            let img1 = flash_app(&mut k.mem, 0x0004_0000, "client", 0x1000, 2048, 512).unwrap();
            let img2 = flash_app(&mut k.mem, 0x0004_1000, "service", 0x1000, 2048, 512).unwrap();
            let client = k.load_process(&img1).unwrap();
            let service = k.load_process(&img2).unwrap();

            // Service registers, subscribes, and posts an inbox.
            k.processes[service].setup_mpu();
            k.sys_subscribe(service, driver::IPC).unwrap();
            assert_eq!(
                k.sys_command(service, driver::IPC, 1, 0).unwrap(),
                service as u32
            );
            let svc_ms = k.processes[service].memory_start();
            k.sys_allow_rw(service, svc_ms + 256, 8).unwrap();

            // Client subscribes, stages "Hello" bytes, calls the service.
            k.sys_subscribe(client, driver::IPC).unwrap();
            k.processes[client].setup_mpu();
            let cl_ms = k.processes[client].memory_start();
            for (i, b) in b"Hello".iter().enumerate() {
                k.user_write_u8(client, cl_ms + 128 + i, *b).unwrap();
            }
            k.sys_allow_ro(client, cl_ms + 128, 5).unwrap();
            k.sys_command(client, driver::IPC, 2, service as u32)
                .unwrap();

            // The service received the bytes in its own memory and an
            // upcall naming the caller.
            assert_eq!(k.take_upcall(service), Some(client as u32));
            k.processes[service].setup_mpu();
            let word = k.user_read_u32(service, svc_ms + 256).unwrap();
            assert_eq!(&word.to_le_bytes()[..4], b"Hell");

            // Service rot13s in place and replies.
            for i in 0..5usize {
                let addr = svc_ms + 256 + i;
                let w = k.user_read_u32(service, addr & !3).unwrap();
                let b = (w >> (8 * (addr % 4))) as u8;
                let rot = match b {
                    b'a'..=b'z' => (b - b'a' + 13) % 26 + b'a',
                    b'A'..=b'Z' => (b - b'A' + 13) % 26 + b'A',
                    other => other,
                };
                k.user_write_u8(service, addr, rot).unwrap();
            }
            k.sys_allow_ro(service, svc_ms + 256, 5).unwrap();
            k.sys_allow_rw(client, cl_ms + 192, 8).unwrap();
            k.sys_command(service, driver::IPC, 3, client as u32)
                .unwrap();
            assert_eq!(k.take_upcall(client), Some(service as u32));
            // Context switch back to the client before it reads the reply.
            k.processes[client].setup_mpu();
            let reply = k.user_read_u32(client, cl_ms + 192).unwrap();
            assert_eq!(&reply.to_le_bytes(), b"Uryy", "{flavor:?}");
        }
    }

    #[test]
    fn ipc_rejects_unregistered_services_and_bad_pids() {
        let (mut k, pid) = boot_with_app(Flavor::Granular);
        k.processes[pid].setup_mpu();
        let ms = k.processes[pid].memory_start();
        k.sys_allow_ro(pid, ms + 64, 4).unwrap();
        // Calling an unregistered pid fails.
        assert_eq!(
            k.sys_command(pid, driver::IPC, 2, pid as u32),
            Err(ErrorCode::NoDevice)
        );
        // Calling a nonexistent pid fails.
        assert_eq!(
            k.sys_command(pid, driver::IPC, 2, 99),
            Err(ErrorCode::NoDevice)
        );
        // Replying to a nonexistent pid fails.
        assert_eq!(
            k.sys_command(pid, driver::IPC, 3, 99),
            Err(ErrorCode::Invalid)
        );
    }

    #[test]
    fn ipc_copy_requires_both_allows() {
        let mut k = Kernel::boot(Flavor::Granular, &NRF52840DK);
        let img1 = flash_app(&mut k.mem, 0x0004_0000, "c", 0x1000, 2048, 512).unwrap();
        let img2 = flash_app(&mut k.mem, 0x0004_1000, "s", 0x1000, 2048, 512).unwrap();
        let client = k.load_process(&img1).unwrap();
        let service = k.load_process(&img2).unwrap();
        k.sys_command(service, driver::IPC, 1, 0).unwrap();
        // No RO buffer on the client yet: Invalid.
        assert_eq!(
            k.sys_command(client, driver::IPC, 2, service as u32),
            Err(ErrorCode::Invalid)
        );
        // RO present but the service posted no inbox: still Invalid.
        k.processes[client].setup_mpu();
        let cl_ms = k.processes[client].memory_start();
        k.sys_allow_ro(client, cl_ms + 64, 4).unwrap();
        assert_eq!(
            k.sys_command(client, driver::IPC, 2, service as u32),
            Err(ErrorCode::Invalid)
        );
    }

    /// A trivial app for scheduler tests.
    struct Counter {
        left: u32,
    }
    impl App for Counter {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn step(&mut self, kernel: &mut Kernel, pid: usize) -> Step {
            if self.left == 0 {
                return Step::Exit;
            }
            self.left -= 1;
            let _ = kernel.sys_command(pid, driver::LED, 0, 0);
            Step::Continue
        }
    }

    #[test]
    fn scheduler_runs_apps_to_completion() {
        for flavor in flavors() {
            let mut k = Kernel::boot(flavor, &NRF52840DK);
            let img1 = flash_app(&mut k.mem, 0x0004_0000, "a", 0x1000, 2048, 512).unwrap();
            let img2 = flash_app(&mut k.mem, 0x0004_1000, "b", 0x1000, 2048, 512).unwrap();
            k.load_process(&img1).unwrap();
            k.load_process(&img2).unwrap();
            let mut apps: Vec<Box<dyn App>> = vec![
                Box::new(Counter { left: 10 }),
                Box::new(Counter { left: 6 }),
            ];
            k.run(&mut apps, 100);
            assert!(k.processes.iter().all(|p| p.state == ProcessState::Exited));
            assert_eq!(k.capsules.leds.toggles, 16);
            assert!(k.ticks < 100, "should finish early");
        }
    }

    /// An app that crashes immediately, for fault-policy tests.
    struct Crasher;
    impl App for Crasher {
        fn name(&self) -> &'static str {
            "crasher"
        }
        fn step(&mut self, kernel: &mut Kernel, pid: usize) -> Step {
            let _ = kernel.sys_print(pid, "boot\r\n");
            let _ = kernel.user_read_u32(pid, 0xE000_0000);
            Step::Continue
        }
    }

    fn mk_crasher() -> Box<dyn App> {
        Box::new(Crasher)
    }

    #[test]
    fn stop_policy_leaves_process_faulted() {
        for flavor in flavors() {
            let (mut k, pid) = boot_with_app(flavor);
            let mut apps: Vec<Box<dyn App>> = vec![mk_crasher()];
            k.run(&mut apps, 50);
            assert!(matches!(k.processes[pid].state, ProcessState::Faulted(_)));
            assert_eq!(k.restarts[pid], 0);
        }
    }

    #[test]
    fn restart_policy_respawns_up_to_threshold() {
        for flavor in flavors() {
            let (mut k, pid) = boot_with_app(flavor);
            k.fault_policy = FaultPolicy::Restart { max_restarts: 2 };
            let mut apps: Vec<Box<dyn App>> = vec![mk_crasher()];
            let factories: [fn() -> Box<dyn App>; 1] = [mk_crasher];
            k.run_with_factories(&mut apps, Some(&factories), 100);
            assert_eq!(k.restarts[pid], 2, "{flavor:?}");
            assert!(matches!(k.processes[pid].state, ProcessState::Faulted(_)));
            // The process ran three times in total (boot printed thrice).
            assert_eq!(k.processes[pid].console.matches("boot").count(), 3);
            // Three fault reports were logged.
            assert_eq!(k.fault_log.iter().filter(|(p, _)| *p == pid).count(), 3);
        }
    }

    #[test]
    fn restart_reuses_the_same_memory_block() {
        for flavor in flavors() {
            let (mut k, pid) = boot_with_app(flavor);
            let (ms, sz) = (
                k.processes[pid].memory_start(),
                k.processes[pid].memory_size(),
            );
            k.processes[pid].allocate_grant(1, 64).unwrap();
            k.fault_process(pid, "test fault");
            k.restart_process(pid).unwrap();
            assert_eq!(k.processes[pid].memory_start(), ms, "{flavor:?}");
            assert_eq!(k.processes[pid].memory_size(), sz);
            assert_eq!(k.processes[pid].state, ProcessState::Ready);
            assert!(k.processes[pid].grants.is_empty(), "grants cleared");
            assert_eq!(k.restarts[pid], 1);
        }
    }

    #[test]
    fn two_processes_are_isolated_from_each_other() {
        for flavor in flavors() {
            let mut k = Kernel::boot(flavor, &NRF52840DK);
            let img1 = flash_app(&mut k.mem, 0x0004_0000, "a", 0x1000, 2048, 512).unwrap();
            let img2 = flash_app(&mut k.mem, 0x0004_1000, "b", 0x1000, 2048, 512).unwrap();
            let p1 = k.load_process(&img1).unwrap();
            let p2 = k.load_process(&img2).unwrap();
            // With process 1's MPU configuration loaded, process 2's
            // memory is unreachable.
            k.processes[p1].setup_mpu();
            let other = k.processes[p2].memory_start() + 64;
            assert!(!k.user_probe(other, AccessType::Read), "{flavor:?}");
            assert!(!k.user_probe(other, AccessType::Write));
            // And vice versa.
            k.processes[p2].setup_mpu();
            let own = k.processes[p2].memory_start() + 64;
            assert!(k.user_probe(own, AccessType::Read));
            let first = k.processes[p1].memory_start() + 64;
            assert!(!k.user_probe(first, AccessType::Read));
        }
    }
}
