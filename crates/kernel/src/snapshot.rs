//! Machine snapshots: boot once, restore a run in microseconds.
//!
//! The fault campaign's scale was bounded by `Kernel::boot`: every run
//! paid a fresh memory allocation, process loading and MPU staging. A
//! [`MachineSnapshot`] freezes a booted kernel — memory, staged and live
//! protection registers, commit cache, process table, scheduler state —
//! and [`MachineSnapshot::restore`] rewinds the same kernel to that
//! point for the next seed. The memory half is copy-on-write in the
//! simulation sense: the capture is one full copy, after which
//! `tt_hw::mem` tracks dirty pages and restore copies back only what a
//! run actually wrote (see `DESIGN.md` §12).
//!
//! Restore also rewinds every piece of *thread-local* run state the
//! drift audit found leaking between runs: the cycle counter (rewound to
//! its capture value, so cycle-derived sensor readings replay), the
//! trace ring (re-armed and re-seeded with the boot-trace prefix, so a
//! restored run's trace is byte-identical to a fresh boot's), contract
//! violations, stale §6.2 method records, the recording/current-pid
//! flags, and any injection plan left armed by a previous run.
//!
//! ## Restore invariants
//!
//! * The kernel passed to [`MachineSnapshot::restore`] must be the one
//!   [`MachineSnapshot::capture`] ran on: hardware state is written back
//!   through the kernel's existing `Rc` machine handles (the process
//!   backends share them), and the dirty-page tracking armed at capture
//!   lives in that kernel's memory. Snapshots are therefore per-thread
//!   values — `Rc` keeps them `!Send` by construction.
//! * Capture happens with no DMA transfer in flight (asserted): the DMA
//!   cell and engine are rebuilt at boot state on restore.
//! * PMP locked entries are restored wholesale, bypassing the lock
//!   semantics `write_cfg` enforces — exactly what a power cycle does on
//!   real silicon, which is the event a restore models.

use crate::capsules::{Capsules, PendingAlarm};
use crate::kernel::{FaultPolicy, Kernel, Upcall};
use crate::machine::{CommitCacheSnapshot, MachineKind};
use crate::process::Process;
use tt_hw::cortexm::CortexMpu;
use tt_hw::mem::MemSnapshot;
use tt_hw::riscv::RiscvPmp;
use tt_hw::trace::{self, TraceEvent};

/// The protection-register half of a snapshot, matching the machine's
/// architecture.
#[derive(Debug, Clone)]
enum HwSnapshot {
    /// Full ARMv7-M MPU register file (CTRL, RNR, per-region RBAR/RASR).
    CortexM(CortexMpu),
    /// Full PMP CSR file, locked entries included.
    Pmp(RiscvPmp),
}

/// A frozen post-boot machine: everything [`MachineSnapshot::restore`]
/// needs to rewind a [`Kernel`] (and the thread-local simulator state
/// around it) to the capture point.
#[derive(Debug)]
pub struct MachineSnapshot {
    mem: MemSnapshot,
    hw: HwSnapshot,
    cache: CommitCacheSnapshot,
    processes: Vec<Process>,
    // Capsule state (the DMA cell/engine are rebuilt fresh; capture
    // asserts no transfer is in flight).
    leds: crate::capsules::Leds,
    alarms: Vec<PendingAlarm>,
    console_input: Vec<(usize, Vec<u8>)>,
    // Kernel scheduler and accounting state.
    ticks: u64,
    fault_log: Vec<(usize, String)>,
    ipc_services: Vec<usize>,
    fault_policy: FaultPolicy,
    restarts: Vec<u32>,
    recoveries: Vec<u32>,
    recovery_cycles: Vec<u64>,
    mpu_scrub: bool,
    commit_window_bug: bool,
    restart_due: Vec<Option<u64>>,
    pending_respawn: Vec<bool>,
    upcalls: Vec<Option<Upcall>>,
    subscriptions: Vec<Vec<usize>>,
    ram_cursor: usize,
    ram_end: usize,
    // Thread-local run context at capture.
    boot_cycles: u64,
    /// Events recorded up to capture (drained from the ring), replayed
    /// on restore so restored traces are byte-identical to fresh boots.
    boot_trace: Vec<TraceEvent>,
    /// Ring capacity to re-arm on restore; `None` if tracing was off at
    /// capture (restore then leaves tracing off).
    trace_capacity: Option<usize>,
}

impl MachineSnapshot {
    /// Captures the kernel's state after boot (typically: `Kernel::boot`
    /// plus process loading, before any app work).
    ///
    /// If tracing is enabled, the events recorded so far are drained out
    /// of the ring into the snapshot as the boot prefix — from the
    /// caller's point of view the ring is empty afterwards, and every
    /// run (including the first) starts with a [`Self::restore`] that
    /// replays the prefix.
    pub fn capture(kernel: &mut Kernel) -> Self {
        assert!(
            !kernel.capsules.dma_cell.busy(),
            "cannot snapshot with a DMA transfer in flight"
        );
        let (boot_trace, trace_capacity) = if trace::is_enabled() {
            let cap = trace::capacity();
            let t = trace::take();
            assert_eq!(t.dropped, 0, "boot overflowed the trace ring");
            (t.events, Some(cap))
        } else {
            (Vec::new(), None)
        };
        let hw = match kernel.machine.kind() {
            MachineKind::CortexM(mpu) => HwSnapshot::CortexM(mpu.borrow().clone()),
            MachineKind::Pmp(pmp) => HwSnapshot::Pmp(pmp.borrow().clone()),
        };
        Self {
            mem: kernel.mem.snapshot(),
            hw,
            cache: kernel.machine.cache().snapshot(),
            processes: kernel.processes.clone(),
            leds: kernel.capsules.leds.clone(),
            alarms: kernel.capsules.alarms.clone(),
            console_input: kernel.capsules.console_input.clone(),
            ticks: kernel.ticks,
            fault_log: kernel.fault_log.clone(),
            ipc_services: kernel.ipc_services.clone(),
            fault_policy: kernel.fault_policy,
            restarts: kernel.restarts.clone(),
            recoveries: kernel.recoveries.clone(),
            recovery_cycles: kernel.recovery_cycles.clone(),
            mpu_scrub: kernel.mpu_scrub,
            commit_window_bug: kernel.commit_window_bug,
            restart_due: kernel.restart_due.clone(),
            pending_respawn: kernel.pending_respawn.clone(),
            upcalls: kernel.upcalls.clone(),
            subscriptions: kernel.subscriptions.clone(),
            ram_cursor: kernel.ram_cursor,
            ram_end: kernel.ram_end,
            boot_cycles: tt_hw::cycles::now(),
            boot_trace,
            trace_capacity,
        }
    }

    /// Rewinds `kernel` — and this thread's simulator context — to the
    /// capture point. See the module docs for the restore invariants.
    pub fn restore(&self, kernel: &mut Kernel) {
        // Memory: dirty pages only (full copy if tracking was never
        // armed on this instance).
        kernel.mem.restore(&self.mem);
        // Protection hardware, written back through the existing shared
        // handles so every process backend sees the restored registers.
        match (&self.hw, kernel.machine.kind()) {
            (HwSnapshot::CortexM(saved), MachineKind::CortexM(mpu)) => {
                *mpu.borrow_mut() = saved.clone();
            }
            (HwSnapshot::Pmp(saved), MachineKind::Pmp(pmp)) => {
                *pmp.borrow_mut() = saved.clone();
            }
            _ => unreachable!("snapshot architecture does not match the kernel's machine"),
        }
        // Commit cache: key AND counters (drift audit: `reset_stats`
        // keeps the key and the counters accumulate across runs).
        kernel.machine.cache().restore(self.cache);
        // Process table: deep clones sharing the restored machine.
        kernel.processes.clear();
        kernel.processes.extend(self.processes.iter().cloned());
        // Capsules: boot state, DMA rebuilt fresh.
        kernel.capsules = Capsules::new();
        kernel.capsules.leds = self.leds.clone();
        kernel.capsules.alarms = self.alarms.clone();
        kernel.capsules.console_input = self.console_input.clone();
        // Scheduler and accounting state.
        kernel.ticks = self.ticks;
        kernel.fault_log.clone_from(&self.fault_log);
        kernel.ipc_services.clone_from(&self.ipc_services);
        kernel.fault_policy = self.fault_policy;
        kernel.restarts.clone_from(&self.restarts);
        kernel.recoveries.clone_from(&self.recoveries);
        kernel.recovery_cycles.clone_from(&self.recovery_cycles);
        kernel.mpu_scrub = self.mpu_scrub;
        kernel.commit_window_bug = self.commit_window_bug;
        kernel.restart_due.clone_from(&self.restart_due);
        kernel.pending_respawn.clone_from(&self.pending_respawn);
        kernel.upcalls.clone_from(&self.upcalls);
        kernel.subscriptions.clone_from(&self.subscriptions);
        kernel.ram_cursor = self.ram_cursor;
        kernel.ram_end = self.ram_end;
        // Thread-local run context: drop anything a previous run (on
        // this pool worker) may have leaked, then rewind the clock and
        // re-arm tracing with the boot prefix.
        if tt_hw::injection::is_armed() {
            let _ = tt_hw::injection::disarm();
        }
        if tt_hw::sched::is_armed() {
            let _ = tt_hw::sched::disarm();
        }
        let _ = tt_contracts::take_violations();
        let _ = tt_hw::cycles::take_method_records();
        tt_contracts::simctx::reset_run_state();
        tt_hw::cycles::set_now(self.boot_cycles);
        match self.trace_capacity {
            Some(cap) => {
                // Zero-copy prefix replay: one memcpy behind the write
                // cursor instead of a per-event `record` round-trip.
                trace::enable(cap);
                trace::install_prefix(&self.boot_trace);
            }
            None => trace::disable(),
        }
    }

    /// Number of events in the captured boot-trace prefix.
    pub fn boot_events(&self) -> usize {
        self.boot_trace.len()
    }

    /// Bytes held by the memory copy (the dominant snapshot cost).
    pub fn mem_bytes(&self) -> usize {
        self.mem.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::flash_app;
    use crate::process::{Flavor, ProcessState};
    use tt_hw::platform::{ChipProfile, EARLGREY, NRF52840DK};

    fn boot_two(chip: &ChipProfile) -> Kernel {
        let mut k = Kernel::boot(Flavor::Granular, chip);
        k.fault_policy = FaultPolicy::RestartWithBackoff {
            max_restarts: 3,
            base_delay: 2,
            max_delay: 8,
        };
        let base = chip.map.flash.start + 0x4_0000;
        for (slot, name) in [(0usize, "a"), (1, "b")] {
            let img = flash_app(&mut k.mem, base + slot * 0x1000, name, 0x1000, 3000, 1024)
                .expect("flash image");
            k.load_process(&img).expect("load process");
        }
        k
    }

    /// Drives the kernel through state a run would dirty: syscalls, RAM
    /// writes, grants, an upcall subscription, a fault + recovery.
    fn dirty_the_kernel(k: &mut Kernel) {
        let ms = k.processes[0].memory_start();
        let _ = k.sys_sbrk(0, 128);
        let _ = k.user_write_u32(0, ms + 64, 0xDEAD);
        let _ = k.sys_command(0, crate::capsules::driver::LED, 0, 1);
        let _ = k.sys_print(1, "hello\r\n");
        k.processes[0].fault("test fault");
        k.ticks += 10;
    }

    #[test]
    fn restore_rewinds_kernel_state_on_both_architectures() {
        for chip in [NRF52840DK, EARLGREY] {
            tt_hw::cycles::reset();
            let mut k = boot_two(&chip);
            let snap = MachineSnapshot::capture(&mut k);
            let boot_states: Vec<ProcessState> =
                k.processes.iter().map(|p| p.state.clone()).collect();
            let boot_break = k.processes[0].app_break();
            dirty_the_kernel(&mut k);
            assert_ne!(k.processes[0].state, boot_states[0]);
            snap.restore(&mut k);
            let got: Vec<ProcessState> = k.processes.iter().map(|p| p.state.clone()).collect();
            assert_eq!(got, boot_states, "{}", chip.name);
            assert_eq!(k.processes[0].app_break(), boot_break);
            assert_eq!(k.ticks, 0);
            assert!(k.fault_log.is_empty());
            assert_eq!(k.processes[1].console, "");
            assert_eq!(k.capsules.leds.toggles, 0);
            // The restored kernel runs again: same syscalls succeed.
            dirty_the_kernel(&mut k);
            snap.restore(&mut k);
            assert_eq!(k.ticks, 0);
        }
    }

    #[test]
    fn restore_rewinds_thread_local_run_context() {
        tt_hw::cycles::reset();
        trace::enable(1024);
        let mut k = boot_two(&NRF52840DK);
        let snap = MachineSnapshot::capture(&mut k);
        assert!(snap.boot_events() > 0, "boot must have recorded events");
        assert!(snap.mem_bytes() > 0);
        // Pollute everything restore claims to rewind.
        tt_hw::cycles::charge_n(tt_hw::cycles::Cost::Alu, 999);
        tt_hw::cycles::set_recording(true);
        tt_hw::cycles::record_method("stale", 1);
        trace::set_current_pid(7);
        tt_hw::injection::arm(tt_hw::injection::InjectionPlan::from_seed(1, 0));
        snap.restore(&mut k);
        assert!(!tt_hw::injection::is_armed());
        assert_eq!(tt_hw::cycles::now(), snap.boot_cycles);
        assert!(tt_hw::cycles::take_method_records().is_empty());
        assert_eq!(trace::current_pid(), tt_hw::trace::NO_PID);
        // The ring holds exactly the boot prefix again.
        let t = trace::take();
        assert_eq!(t.events, snap.boot_trace);
        trace::disable();
        tt_hw::cycles::set_recording(false);
    }

    /// A minimal app driving enough syscalls to move the commit cache.
    struct Chatty {
        n: u32,
    }
    impl crate::kernel::App for Chatty {
        fn name(&self) -> &'static str {
            "chatty"
        }
        fn step(&mut self, k: &mut Kernel, pid: usize) -> crate::kernel::Step {
            self.n += 1;
            let _ = k.sys_print(pid, "x\r\n");
            if self.n >= 4 {
                crate::kernel::Step::Exit
            } else {
                crate::kernel::Step::Continue
            }
        }
    }

    #[test]
    fn commit_cache_and_counters_round_trip_through_restore() {
        tt_hw::cycles::reset();
        let mut k = boot_two(&NRF52840DK);
        let snap = MachineSnapshot::capture(&mut k);
        let boot_cache = k.machine.cache().snapshot();
        // Run real work that moves the cache and the recovery counters.
        let mut apps: Vec<Box<dyn crate::kernel::App>> =
            vec![Box::new(Chatty { n: 0 }), Box::new(Chatty { n: 0 })];
        k.run_with_factories(&mut apps, None, 50);
        assert_ne!(k.machine.cache().snapshot(), boot_cache);
        snap.restore(&mut k);
        assert_eq!(k.machine.cache().snapshot(), boot_cache);
        assert!(k.restarts.iter().all(|&r| r == 0));
        assert!(k.recoveries.iter().all(|&r| r == 0));
        assert!(k.recovery_cycles.iter().all(|&c| c == 0));
    }

    #[test]
    fn reset_stats_between_runs_cannot_survive_a_restore() {
        // `reset_stats` zeroes the hit/miss counters without touching the
        // cached key; a restore must overwrite *both* with the capture
        // values, whichever order a caller interleaves them in.
        tt_hw::cycles::reset();
        let mut k = boot_two(&NRF52840DK);
        let snap = MachineSnapshot::capture(&mut k);
        let at_capture = (k.machine.cache().hits(), k.machine.cache().misses());
        let mut apps: Vec<Box<dyn crate::kernel::App>> =
            vec![Box::new(Chatty { n: 0 }), Box::new(Chatty { n: 0 })];
        k.run_with_factories(&mut apps, None, 50);
        k.machine.cache().reset_stats();
        assert_eq!(
            (k.machine.cache().hits(), k.machine.cache().misses()),
            (0, 0)
        );
        snap.restore(&mut k);
        assert_eq!(
            (k.machine.cache().hits(), k.machine.cache().misses()),
            at_capture,
            "restore must rewind counters past an interleaved reset_stats"
        );
        // And the other order: restore, then a stray reset, then another
        // restore still converges on the capture counters.
        k.machine.cache().reset_stats();
        snap.restore(&mut k);
        assert_eq!(
            (k.machine.cache().hits(), k.machine.cache().misses()),
            at_capture
        );
    }
}
