//! Fault recovery: backoff policy arithmetic and its verification
//! obligations (PR 4, the "isolation under fire" component).
//!
//! The recovery protocol lives on [`crate::kernel::Kernel`]:
//! `fault_process` → `recover_process` (grants reclaimed, staged state
//! re-derived, commit cache invalidated) → either a backoff-delayed
//! `restart_process` or `kill_process` once the restart cap is reached.
//! This module holds the one piece of pure arithmetic in that loop — the
//! exponential backoff — and registers the whole protocol as a Fig. 12
//! component, driven end-to-end on real chips (ARM MPU and both PMP
//! granularities) plus the FluxArm MemManage entry path.

use crate::kernel::Kernel;
use crate::loader::flash_app;
use crate::process::{Flavor, ProcessState};
use tt_contracts::obligation::{CheckResult, Registry};
use tt_contracts::{ensures, requires, ContractKind};
use tt_fluxarm::handlers::mem_manage_handler;
use tt_fluxarm::{Arm7, Control, ExceptionNumber, EXC_RETURN_THREAD_MSP};
use tt_hw::mem::{AccessType, Privilege};
use tt_hw::platform::{ChipProfile, EARLGREY, HIFIVE1, NRF52840DK};
use tt_hw::AddrRange;

/// The Fig. 10/12 component name for these obligations.
pub const COMPONENT: &str = "Kernel (Fault Recovery)";

/// The restart delay before attempt `attempt` (0-based): `base` doubled
/// once per prior restart, saturating at `max`.
///
/// The two contract sites are the convergence argument for
/// [`crate::kernel::FaultPolicy::RestartWithBackoff`]: the delay is
/// always in `[base.min(max), max]`, so a faulting process neither
/// restarts in a zero-delay hot loop nor backs off unboundedly.
pub fn backoff_delay(base: u64, max: u64, attempt: u32) -> u64 {
    requires!("backoff_delay", base >= 1 && max >= 1);
    let mut delay = base;
    let mut doubled = 0u32;
    while doubled < attempt && delay < max {
        delay = delay.saturating_mul(2);
        doubled += 1;
    }
    let delay = delay.min(max);
    ensures!("backoff_delay", delay >= base.min(max) && delay <= max);
    delay
}

/// Drives the kernel fault-recovery protocol end-to-end on one chip:
/// fault → reclaim → re-derive → recommit (stale cache hit impossible)
/// → restart. Returns the number of checked cases.
fn check_recovery(chip: &ChipProfile, density: usize) -> Result<u64, String> {
    let mut cases = 0u64;
    // The densest round allocates `density` grants of 64 bytes (plus
    // per-grant alignment), so the grant arena must scale with the effort:
    // at the FULL density the fixed 1 KiB arena of earlier revisions ran
    // out and refuted the obligation against its own harness.
    let kernel_reserved = 1024usize.max((density + 1) * 128);
    for round in 0..density.max(1) {
        let mut k = Kernel::boot(Flavor::Granular, chip);
        let img = flash_app(
            &mut k.mem,
            chip.map.flash.start + 0x4_0000,
            "r",
            0x1000,
            3000,
            kernel_reserved,
        )
        .map_err(|e| format!("flash: {e:?}"))?;
        let pid = k.load_process(&img).map_err(|e| format!("load: {e:?}"))?;
        k.processes[pid].setup_mpu();
        for grant_id in 0..=round {
            k.processes[pid]
                .allocate_grant(grant_id, 64)
                .map_err(|e| format!("grant: {e:?}"))?;
        }
        let top = k.processes[pid].memory_start() + k.processes[pid].memory_size();
        if k.processes[pid].kernel_break() >= top {
            return Err("grant allocation did not lower the kernel break".into());
        }

        k.fault_process(pid, "injected fault");
        if !k.recover_process(pid) {
            return Err("recovery refused a healthy layout".into());
        }
        // Grants reclaimed: the kernel break is back at the block top and
        // no kernel-held handle into the block survives.
        if k.processes[pid].kernel_break() != top {
            return Err(format!(
                "kernel break {:#x} not reclaimed to block top {top:#x}",
                k.processes[pid].kernel_break()
            ));
        }
        if !k.processes[pid].grants.is_empty() {
            return Err("grant handles survived recovery".into());
        }
        // Stale-hit-impossible: the fault invalidated the commit cache,
        // so the next setup_mpu must take the miss (full commit) path.
        let misses = k.machine.cache().misses();
        k.processes[pid].setup_mpu();
        if k.machine.cache().misses() != misses + 1 {
            return Err("stale commit-cache hit after a fault".into());
        }
        // The recommit realises the re-derived state in hardware …
        if !k.processes[pid].mpu_consistent() {
            return Err("hardware != re-derived staged state after recommit".into());
        }
        // … and isolation holds: own RAM accessible, outside denied.
        let ms = k.processes[pid].memory_start();
        let user_write = |k: &Kernel, addr: usize| {
            k.machine
                .check(addr, 4, AccessType::Write, Privilege::Unprivileged)
                .allowed()
        };
        if !user_write(&k, ms + 64) || user_write(&k, top + 64) {
            return Err("post-recovery protection is wrong".into());
        }
        // Restart completes recovery: the process is runnable again.
        k.restart_process(pid)
            .map_err(|e| format!("restart: {e:?}"))?;
        if k.processes[pid].state != ProcessState::Ready {
            return Err("restart did not return the process to Ready".into());
        }
        cases += 1;
    }
    Ok(cases)
}

/// Registers the fault-recovery obligations.
pub fn register_obligations(registry: &mut Registry, density: usize) {
    // The backoff arithmetic: monotone in the attempt number, capped at
    // `max`, and never below `base.min(max)` — checked over a grid.
    registry.add_fn(COMPONENT, "backoff_delay", ContractKind::Post, move || {
        let mut cases = 0u64;
        let span = density.max(1) as u64;
        for base in 1..=span.max(4) {
            for max in base..=base * 8 {
                let mut prev = 0u64;
                for attempt in 0..32u32 {
                    let d = backoff_delay(base, max, attempt);
                    if d < prev {
                        return CheckResult::Refuted {
                            counterexample: format!(
                                "backoff not monotone: base={base} max={max} attempt={attempt}: \
                                 {d} < {prev}"
                            ),
                        };
                    }
                    if d > max || d < base.min(max) {
                        return CheckResult::Refuted {
                            counterexample: format!(
                                "backoff out of range: base={base} max={max} attempt={attempt}: {d}"
                            ),
                        };
                    }
                    prev = d;
                    cases += 1;
                }
                // The cap is reached (convergence: the delay stops growing).
                if prev != max {
                    return CheckResult::Refuted {
                        counterexample: format!("cap never reached: base={base} max={max}"),
                    };
                }
            }
        }
        CheckResult::Verified { cases }
    });

    // The recovery protocol itself, end-to-end on ARM MPU and both PMP
    // granularities (G=4 HiFive1, G=8 EarlGrey).
    registry.add_fn(
        COMPONENT,
        "Kernel::recover_process",
        ContractKind::Invariant,
        move || {
            let mut cases = 0u64;
            for chip in [&NRF52840DK, &HIFIVE1, &EARLGREY] {
                match check_recovery(chip, density) {
                    Ok(c) => cases += c,
                    Err(counterexample) => return CheckResult::Refuted { counterexample },
                }
            }
            CheckResult::Verified { cases }
        },
    );

    // The MemManage entry path: the fault that starts recovery must hand
    // control to the *privileged kernel* on MSP, whatever privilege the
    // faulting process had.
    registry.add_fn(
        COMPONENT,
        "mem_manage_handler",
        ContractKind::Post,
        move || {
            let mut cases = 0u64;
            for i in 0..density.max(1) as u32 {
                let mut cpu = Arm7::new(
                    AddrRange::new(0x2000_0000, 0x2000_1000),
                    AddrRange::new(0x2000_1000, 0x2000_3000),
                );
                // A process faults: unprivileged thread on PSP.
                cpu.control = Control(0b11);
                cpu.psp = 0x2000_2800 - 64 * i;
                cpu.exception_entry(ExceptionNumber::MemManage);
                let ret = mem_manage_handler(&mut cpu);
                if ret != EXC_RETURN_THREAD_MSP {
                    return CheckResult::Refuted {
                        counterexample: format!("MemManage returned {ret:#x}, not THREAD_MSP"),
                    };
                }
                if cpu.control.npriv() {
                    return CheckResult::Refuted {
                        counterexample: "kernel would resume unprivileged after MemManage".into(),
                    };
                }
                cases += 1;
            }
            CheckResult::Verified { cases }
        },
    );

    // Small transition helpers carry only builtin safety obligations.
    registry.add_builtin_safety(
        COMPONENT,
        &["Kernel::kill_process", "Kernel::apply_fault_policy"],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_saturates() {
        assert_eq!(backoff_delay(2, 16, 0), 2);
        assert_eq!(backoff_delay(2, 16, 1), 4);
        assert_eq!(backoff_delay(2, 16, 2), 8);
        assert_eq!(backoff_delay(2, 16, 3), 16);
        assert_eq!(backoff_delay(2, 16, 9), 16, "saturates at max");
        assert_eq!(backoff_delay(5, 3, 0), 3, "base above max clamps");
    }

    #[test]
    fn recovery_obligations_verify() {
        let mut r = Registry::new();
        register_obligations(&mut r, 2);
        assert_eq!(r.function_count(COMPONENT), 5);
        for o in r.obligations().iter().filter(|o| o.component == COMPONENT) {
            match (o.check)() {
                CheckResult::Verified { cases } => assert!(cases >= 1, "{}", o.function),
                other => panic!("{} refuted: {other:?}", o.function),
            }
        }
    }

    #[test]
    fn component_is_separate_from_the_commit_cache() {
        let mut r = Registry::new();
        register_obligations(&mut r, 1);
        assert_eq!(r.components(), vec![COMPONENT]);
    }
}
