//! The machine abstraction: one handle over a chip's protection hardware.
//!
//! The paper evaluates on an ARM board and, for RISC-V, under QEMU (§6.1).
//! `Machine` is the kernel's view of whichever protection unit the chip
//! has, so the same kernel code boots on all four [`ChipProfile`]s.
//!
//! Since PR 2 the machine also owns the **MPU commit cache** (the
//! production optimisation from the Tock retrospective): a
//! `(last_configured_pid, generation)` pair that lets `setup_mpu` skip
//! the hardware commit entirely when the process whose configuration is
//! live in the register file is switched back in unchanged. See
//! `DESIGN.md` §8 for the protocol and its soundness obligation.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use tt_hw::cortexm::CortexMpu;
use tt_hw::mem::{AccessDecision, AccessType, Privilege, ProtectionUnit};
use tt_hw::platform::{Arch, ChipProfile};
use tt_hw::riscv::RiscvPmp;

/// The protection unit variant behind a [`Machine`].
#[derive(Debug, Clone)]
pub enum MachineKind {
    /// ARMv7-M MPU.
    CortexM(Rc<RefCell<CortexMpu>>),
    /// RISC-V PMP.
    Pmp(Rc<RefCell<RiscvPmp>>),
}

/// The MPU commit cache: which process configuration is live in the
/// register file, keyed by `(pid, allocator generation)`.
///
/// One cache exists per [`Machine`] (per protection unit) and is shared
/// by every process backend created on it. The cache answers exactly one
/// question — "is the hardware already configured for this pid at this
/// generation?" — and is invalidated by anything that writes the
/// register file outside generation tracking (legacy commits, process
/// creation, restart).
#[derive(Debug, Default)]
pub struct CommitCache {
    state: Cell<Option<(u32, u64)>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl CommitCache {
    /// Returns `true` (a hit) when caching is enabled and the live
    /// configuration is `(pid, generation)`. Counts the lookup either way.
    pub fn lookup(&self, pid: u32, generation: u64) -> bool {
        if !tt_hw::commit_cache::enabled() {
            // Disabled: behave exactly like the pre-cache kernel, and drop
            // any stale state so re-enabling starts cold.
            self.state.set(None);
            self.misses.set(self.misses.get() + 1);
            return false;
        }
        if self.state.get() == Some((pid, generation)) {
            self.hits.set(self.hits.get() + 1);
            true
        } else {
            self.misses.set(self.misses.get() + 1);
            false
        }
    }

    /// Records that `(pid, generation)` was just fully committed to the
    /// register file.
    pub fn note_committed(&self, pid: u32, generation: u64) {
        if tt_hw::commit_cache::enabled() {
            self.state.set(Some((pid, generation)));
        }
    }

    /// Forgets the cached configuration. Called whenever the register file
    /// is written outside generation tracking.
    pub fn invalidate(&self) {
        self.state.set(None);
    }

    /// Number of cache hits since construction (or [`Self::reset_stats`]).
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of cache misses since construction (or [`Self::reset_stats`]).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Resets the hit/miss counters (the cached state is kept).
    ///
    /// Note this is a *stats* reset, not a run reset: the cached
    /// `(pid, generation)` survives, and so do any counts accumulated
    /// before the call site decided to reset. Campaign runs that reuse a
    /// machine must instead round-trip the full cache through
    /// [`Self::snapshot`]/[`Self::restore`] — the PR 6 drift audit found
    /// both the kept state and the accumulating counters leaking across
    /// restored runs when only `reset_stats` was used.
    pub fn reset_stats(&self) {
        self.hits.set(0);
        self.misses.set(0);
    }

    /// Captures the complete cache state — cached `(pid, generation)`
    /// *and* the hit/miss counters — for a machine snapshot.
    pub fn snapshot(&self) -> CommitCacheSnapshot {
        CommitCacheSnapshot {
            state: self.state.get(),
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }

    /// Restores a previously captured cache state wholesale.
    pub fn restore(&self, snap: CommitCacheSnapshot) {
        self.state.set(snap.state);
        self.hits.set(snap.hits);
        self.misses.set(snap.misses);
    }
}

/// The full state of a [`CommitCache`] at capture time (cached key and
/// counters), as stored in a `tt_kernel::snapshot::MachineSnapshot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitCacheSnapshot {
    state: Option<(u32, u64)>,
    hits: u64,
    misses: u64,
}

/// A shared handle to the chip's protection hardware plus its commit
/// cache.
#[derive(Debug, Clone)]
pub struct Machine {
    kind: MachineKind,
    cache: Rc<CommitCache>,
}

impl Machine {
    /// Creates the reset-state machine for a chip profile.
    pub fn for_chip(profile: &ChipProfile) -> Self {
        let kind = match profile.arch {
            Arch::CortexM => MachineKind::CortexM(Rc::new(RefCell::new(CortexMpu::new()))),
            Arch::Riscv32(chip) => MachineKind::Pmp(Rc::new(RefCell::new(RiscvPmp::new(chip)))),
        };
        Self {
            kind,
            cache: Rc::new(CommitCache::default()),
        }
    }

    /// The protection unit variant.
    pub fn kind(&self) -> &MachineKind {
        &self.kind
    }

    /// The commit cache shared by every backend on this machine.
    pub fn cache(&self) -> &Rc<CommitCache> {
        &self.cache
    }

    /// Checks an access against the live hardware state.
    pub fn check(
        &self,
        addr: usize,
        size: usize,
        access: AccessType,
        priv_: Privilege,
    ) -> AccessDecision {
        match &self.kind {
            MachineKind::CortexM(mpu) => mpu.borrow().check(addr, size, access, priv_),
            MachineKind::Pmp(pmp) => pmp.borrow().check(addr, size, access, priv_),
        }
    }

    /// Disables user-facing protection while the kernel runs (§2.1).
    ///
    /// On ARM this clears MPU_CTRL.ENABLE; on RISC-V it is a no-op — the
    /// kernel runs in M-mode, which unlocked PMP entries never constrain.
    ///
    /// The commit cache survives this on purpose: only the control
    /// register changes, never a region register, and the cache-hit path
    /// re-asserts MPU_CTRL before the process runs again.
    pub fn disable_user_protection(&self) {
        if let MachineKind::CortexM(mpu) = &self.kind {
            mpu.borrow_mut().write_ctrl(false, true);
        }
    }

    /// The ARM MPU handle, if this machine is a Cortex-M.
    pub fn cortexm(&self) -> Option<Rc<RefCell<CortexMpu>>> {
        match &self.kind {
            MachineKind::CortexM(mpu) => Some(Rc::clone(mpu)),
            MachineKind::Pmp(_) => None,
        }
    }

    /// The PMP handle, if this machine is RISC-V.
    pub fn pmp(&self) -> Option<Rc<RefCell<RiscvPmp>>> {
        match &self.kind {
            MachineKind::Pmp(pmp) => Some(Rc::clone(pmp)),
            MachineKind::CortexM(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::platform::{ALL_CHIPS, EARLGREY, NRF52840DK};

    #[test]
    fn machine_matches_chip_arch() {
        for chip in ALL_CHIPS {
            let m = Machine::for_chip(&chip);
            match chip.arch {
                Arch::CortexM => assert!(m.cortexm().is_some() && m.pmp().is_none()),
                Arch::Riscv32(_) => assert!(m.pmp().is_some() && m.cortexm().is_none()),
            }
        }
    }

    #[test]
    fn reset_machines_deny_unprivileged_ram() {
        // ARM resets with the MPU disabled (allows), RISC-V PMP denies by
        // default — both are the architecture's true reset behaviour.
        let arm = Machine::for_chip(&NRF52840DK);
        assert!(arm
            .check(
                NRF52840DK.map.ram.start,
                4,
                AccessType::Read,
                Privilege::Unprivileged
            )
            .allowed());
        let rv = Machine::for_chip(&EARLGREY);
        assert!(!rv
            .check(
                EARLGREY.map.ram.start,
                4,
                AccessType::Read,
                Privilege::Unprivileged
            )
            .allowed());
    }

    #[test]
    fn disable_user_protection_is_safe_on_both() {
        for chip in ALL_CHIPS {
            let m = Machine::for_chip(&chip);
            m.disable_user_protection();
            // Privileged access always works afterwards.
            assert!(m
                .check(
                    chip.map.ram.start,
                    4,
                    AccessType::Write,
                    Privilege::Privileged
                )
                .allowed());
        }
    }

    #[test]
    fn commit_cache_hits_only_on_exact_pid_generation() {
        let cache = CommitCache::default();
        assert!(!cache.lookup(0, 7));
        cache.note_committed(0, 7);
        assert!(cache.lookup(0, 7));
        assert!(!cache.lookup(1, 7), "different pid must miss");
        assert!(!cache.lookup(0, 8), "different generation must miss");
        cache.invalidate();
        assert!(!cache.lookup(0, 7));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 4);
        cache.reset_stats();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn commit_cache_snapshot_round_trips_state_and_counters() {
        let cache = CommitCache::default();
        cache.note_committed(2, 5);
        assert!(cache.lookup(2, 5));
        let snap = cache.snapshot();
        // Drift the cache the way a campaign run does: new commits, new
        // lookups, a stats reset that keeps the state.
        cache.note_committed(9, 1);
        assert!(!cache.lookup(2, 5));
        cache.reset_stats();
        assert_ne!(cache.snapshot(), snap);
        cache.restore(snap);
        assert_eq!(cache.snapshot(), snap);
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
        assert!(cache.lookup(2, 5), "restored key must hit again");
    }

    #[test]
    fn commit_cache_is_inert_when_disabled() {
        let cache = CommitCache::default();
        cache.note_committed(3, 9);
        assert!(cache.lookup(3, 9));
        tt_hw::commit_cache::with_disabled(|| {
            assert!(!cache.lookup(3, 9), "disabled cache never hits");
            cache.note_committed(3, 9);
        });
        // The disabled lookup dropped the state; re-enabling starts cold.
        assert!(!cache.lookup(3, 9));
    }
}
