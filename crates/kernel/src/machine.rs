//! The machine abstraction: one handle over a chip's protection hardware.
//!
//! The paper evaluates on an ARM board and, for RISC-V, under QEMU (§6.1).
//! `Machine` is the kernel's view of whichever protection unit the chip
//! has, so the same kernel code boots on all four [`ChipProfile`]s.

use std::cell::RefCell;
use std::rc::Rc;
use tt_hw::cortexm::CortexMpu;
use tt_hw::mem::{AccessDecision, AccessType, Privilege, ProtectionUnit};
use tt_hw::platform::{Arch, ChipProfile};
use tt_hw::riscv::RiscvPmp;

/// A shared handle to the chip's protection hardware.
#[derive(Debug, Clone)]
pub enum Machine {
    /// ARMv7-M MPU.
    CortexM(Rc<RefCell<CortexMpu>>),
    /// RISC-V PMP.
    Pmp(Rc<RefCell<RiscvPmp>>),
}

impl Machine {
    /// Creates the reset-state machine for a chip profile.
    pub fn for_chip(profile: &ChipProfile) -> Self {
        match profile.arch {
            Arch::CortexM => Machine::CortexM(Rc::new(RefCell::new(CortexMpu::new()))),
            Arch::Riscv32(chip) => Machine::Pmp(Rc::new(RefCell::new(RiscvPmp::new(chip)))),
        }
    }

    /// Checks an access against the live hardware state.
    pub fn check(
        &self,
        addr: usize,
        size: usize,
        access: AccessType,
        priv_: Privilege,
    ) -> AccessDecision {
        match self {
            Machine::CortexM(mpu) => mpu.borrow().check(addr, size, access, priv_),
            Machine::Pmp(pmp) => pmp.borrow().check(addr, size, access, priv_),
        }
    }

    /// Disables user-facing protection while the kernel runs (§2.1).
    ///
    /// On ARM this clears MPU_CTRL.ENABLE; on RISC-V it is a no-op — the
    /// kernel runs in M-mode, which unlocked PMP entries never constrain.
    pub fn disable_user_protection(&self) {
        if let Machine::CortexM(mpu) = self {
            mpu.borrow_mut().write_ctrl(false, true);
        }
    }

    /// The ARM MPU handle, if this machine is a Cortex-M.
    pub fn cortexm(&self) -> Option<Rc<RefCell<CortexMpu>>> {
        match self {
            Machine::CortexM(mpu) => Some(Rc::clone(mpu)),
            Machine::Pmp(_) => None,
        }
    }

    /// The PMP handle, if this machine is RISC-V.
    pub fn pmp(&self) -> Option<Rc<RefCell<RiscvPmp>>> {
        match self {
            Machine::Pmp(pmp) => Some(Rc::clone(pmp)),
            Machine::CortexM(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::platform::{ALL_CHIPS, EARLGREY, NRF52840DK};

    #[test]
    fn machine_matches_chip_arch() {
        for chip in ALL_CHIPS {
            let m = Machine::for_chip(&chip);
            match chip.arch {
                Arch::CortexM => assert!(m.cortexm().is_some() && m.pmp().is_none()),
                Arch::Riscv32(_) => assert!(m.pmp().is_some() && m.cortexm().is_none()),
            }
        }
    }

    #[test]
    fn reset_machines_deny_unprivileged_ram() {
        // ARM resets with the MPU disabled (allows), RISC-V PMP denies by
        // default — both are the architecture's true reset behaviour.
        let arm = Machine::for_chip(&NRF52840DK);
        assert!(arm
            .check(
                NRF52840DK.map.ram.start,
                4,
                AccessType::Read,
                Privilege::Unprivileged
            )
            .allowed());
        let rv = Machine::for_chip(&EARLGREY);
        assert!(!rv
            .check(
                EARLGREY.map.ram.start,
                4,
                AccessType::Read,
                Privilege::Unprivileged
            )
            .allowed());
    }

    #[test]
    fn disable_user_protection_is_safe_on_both() {
        for chip in ALL_CHIPS {
            let m = Machine::for_chip(&chip);
            m.disable_user_protection();
            // Privileged access always works afterwards.
            assert!(m
                .check(
                    chip.map.ram.start,
                    4,
                    AccessType::Write,
                    Privilege::Privileged
                )
                .allowed());
        }
    }
}
