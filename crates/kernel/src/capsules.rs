//! Capsules: the cooperative drivers layered over the core kernel.
//!
//! In Tock, capsules are untrusted-but-safe Rust components (Fig. 1). The
//! simulator provides the capsules the release tests exercise: console,
//! LEDs, alarm (with grant-backed per-process state), sensors, ADC, and a
//! DMA-backed transfer driver built on [`ticktock::dma::DmaCell`].

use ticktock::dma::{DmaBuffer, DmaCell, SimDmaEngine};
use tt_hw::mem::PhysicalMemory;

/// Driver numbers, as apps address them in `command` syscalls.
pub mod driver {
    /// Console driver.
    pub const CONSOLE: usize = 0;
    /// LED driver.
    pub const LED: usize = 1;
    /// Alarm driver.
    pub const ALARM: usize = 2;
    /// Ambient sensor driver (cycle-derived readings).
    pub const SENSOR: usize = 3;
    /// ADC driver (cycle-derived readings).
    pub const ADC: usize = 4;
    /// Temperature driver (fixed calibrated reading).
    pub const TEMPERATURE: usize = 5;
    /// DMA transfer driver.
    pub const DMA: usize = 6;
    /// Inter-process communication driver.
    pub const IPC: usize = 7;
}

/// A pending alarm: fires for `pid` at `tick` with `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingAlarm {
    /// Target process.
    pub pid: usize,
    /// Kernel tick at which to fire.
    pub tick: u64,
    /// Upcall payload.
    pub value: u32,
}

/// The LED bank state.
#[derive(Debug, Default, Clone)]
pub struct Leds {
    states: [bool; 4],
    /// Toggle count, reported back to apps.
    pub toggles: u32,
}

impl Leds {
    /// Toggles LED `n`, returning its new state.
    pub fn toggle(&mut self, n: usize) -> bool {
        let n = n % 4;
        self.states[n] = !self.states[n];
        self.toggles += 1;
        self.states[n]
    }

    /// Reads LED `n`.
    pub fn get(&self, n: usize) -> bool {
        self.states[n % 4]
    }
}

/// The capsule set owned by a kernel instance.
pub struct Capsules {
    /// LED bank.
    pub leds: Leds,
    /// Pending alarms.
    pub alarms: Vec<PendingAlarm>,
    /// Console input queue per process (pid, bytes).
    pub console_input: Vec<(usize, Vec<u8>)>,
    /// The DMA cell guarding the transfer buffer.
    pub dma_cell: DmaCell,
    /// The simulated DMA engine.
    pub dma_engine: SimDmaEngine,
}

impl std::fmt::Debug for Capsules {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Capsules")
            .field("alarms", &self.alarms)
            .finish_non_exhaustive()
    }
}

impl Default for Capsules {
    fn default() -> Self {
        Self::new()
    }
}

impl Capsules {
    /// Creates the capsule set.
    pub fn new() -> Self {
        Self {
            leds: Leds::default(),
            alarms: Vec::new(),
            console_input: Vec::new(),
            dma_cell: DmaCell::new(),
            dma_engine: SimDmaEngine::new(),
        }
    }

    /// Sets an alarm for `pid`, `delta` ticks from `now`.
    pub fn set_alarm(&mut self, pid: usize, now: u64, delta: u32, value: u32) {
        self.alarms.push(PendingAlarm {
            pid,
            tick: now + delta as u64,
            value,
        });
    }

    /// Pops every alarm due at `now`, returning (pid, value) pairs.
    pub fn fire_due_alarms(&mut self, now: u64) -> Vec<(usize, u32)> {
        let mut fired = Vec::new();
        self.alarms.retain(|a| {
            if a.tick <= now {
                fired.push((a.pid, a.value));
                false
            } else {
                true
            }
        });
        fired
    }

    /// A sensor reading: depends on the current cycle count, so readings
    /// differ between kernel flavours (the §6.1 "reading and printing data
    /// from sensors" category of expected differences).
    pub fn sensor_read(&self) -> u32 {
        (tt_hw::cycles::now() % 997) as u32
    }

    /// An ADC sample: also cycle-derived.
    pub fn adc_sample(&self, channel: u32) -> u32 {
        ((tt_hw::cycles::now() >> 2) as u32)
            .wrapping_mul(31)
            .wrapping_add(channel)
            % 4096
    }

    /// The temperature sensor returns a calibrated constant (deterministic
    /// across kernel flavours).
    pub fn temperature_read(&self) -> u32 {
        2250 // Centi-degrees: 22.50 °C.
    }

    /// Queues console input for a process.
    pub fn queue_console_input(&mut self, pid: usize, bytes: &[u8]) {
        self.console_input.push((pid, bytes.to_vec()));
    }

    /// Takes queued console input for a process, if any.
    pub fn take_console_input(&mut self, pid: usize) -> Option<Vec<u8>> {
        let idx = self.console_input.iter().position(|(p, _)| *p == pid)?;
        Some(self.console_input.remove(idx).1)
    }

    /// Starts a DMA transfer of `data` into the buffer at `[addr, addr+len)`
    /// through the safe `DmaCell` path; completes it synchronously against
    /// `mem` (the simulated engine is instantaneous).
    pub fn dma_transfer(
        &mut self,
        mem: &mut PhysicalMemory,
        addr: usize,
        data: &[u8],
    ) -> Result<usize, &'static str> {
        let wrapper = self
            .dma_cell
            .place(DmaBuffer::new(addr, data.len()))
            .ok_or("dma busy")?;
        self.dma_engine
            .start(wrapper, data.to_vec())
            .map_err(|_| "dma start failed")?;
        let written = self.dma_engine.complete(mem).map_err(|_| "dma fault")?;
        self.dma_cell.operation_finished();
        let _buf = self.dma_cell.completed();
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::platform::NRF52840DK;

    #[test]
    fn leds_toggle_and_count() {
        let mut leds = Leds::default();
        assert!(leds.toggle(0));
        assert!(!leds.toggle(0));
        assert!(leds.toggle(1));
        assert_eq!(leds.toggles, 3);
        assert!(leds.get(1));
        assert!(!leds.get(0));
    }

    #[test]
    fn alarms_fire_in_order_and_only_when_due() {
        let mut c = Capsules::new();
        c.set_alarm(1, 10, 5, 0xA);
        c.set_alarm(2, 10, 2, 0xB);
        assert!(c.fire_due_alarms(11).is_empty());
        let fired = c.fire_due_alarms(12);
        assert_eq!(fired, vec![(2, 0xB)]);
        let fired = c.fire_due_alarms(20);
        assert_eq!(fired, vec![(1, 0xA)]);
        assert!(c.alarms.is_empty());
    }

    #[test]
    fn sensor_reading_tracks_cycle_counter() {
        let c = Capsules::new();
        tt_hw::cycles::reset();
        let r1 = c.sensor_read();
        tt_hw::cycles::charge_n(tt_hw::cycles::Cost::Alu, 123);
        let r2 = c.sensor_read();
        assert_ne!(r1, r2);
        assert_eq!(c.temperature_read(), 2250);
    }

    #[test]
    fn console_input_queue_per_pid() {
        let mut c = Capsules::new();
        c.queue_console_input(3, b"hi");
        assert_eq!(c.take_console_input(2), None);
        assert_eq!(c.take_console_input(3), Some(b"hi".to_vec()));
        assert_eq!(c.take_console_input(3), None);
    }

    #[test]
    fn dma_transfer_writes_through_safe_path() {
        let mut c = Capsules::new();
        let mut mem = NRF52840DK.memory();
        let n = c
            .dma_transfer(&mut mem, 0x2000_0100, &[5, 6, 7, 8])
            .unwrap();
        assert_eq!(n, 4);
        assert_eq!(mem.read_u32(0x2000_0100).unwrap(), 0x0807_0605);
        // The cell is free again afterwards.
        assert!(!c.dma_cell.busy());
        let n2 = c.dma_transfer(&mut mem, 0x2000_0200, &[1]).unwrap();
        assert_eq!(n2, 1);
    }
}
