//! Deterministic minimization of failing fault/interrupt schedules.
//!
//! When a fleet campaign finds a seed whose [`tt_hw::injection::InjectionPlan`]
//! makes the oracle fail, the raw plan usually contains injections that are
//! irrelevant to the failure, fired later than necessary, or both. Shrinking
//! reduces the plan to a *1-minimal* schedule: removing any single remaining
//! injection, or lowering any remaining trigger tick, makes the failure
//! disappear.
//!
//! The algorithm is a greedy fixed-point search and deliberately contains no
//! randomness, no timing dependence, and no parallelism:
//!
//! 1. **Subset removal.** Repeatedly try deleting one injection at a time
//!    (front to back). If the truncated plan still fails, keep the deletion
//!    and retry the same index; otherwise advance. Loop until a full pass
//!    removes nothing.
//! 2. **Trigger minimization.** For each surviving injection, scan candidate
//!    `at` ticks in ascending order from 0 and keep the first value that
//!    still fails.
//!
//! Because the result is a pure function of `(plan, predicate)` and the
//! predicate is invoked serially, the minimized schedule is identical across
//! re-invocations and across campaign thread counts — the property the PR 6
//! determinism gate tests.

use tt_hw::injection::InjectionPlan;

/// Shrinks `plan` to a 1-minimal schedule under `fails`.
///
/// `fails` must return `true` when the given plan reproduces the failure.
/// If the input plan does not fail at all, it is returned unchanged — the
/// caller gets back something that reproduces whatever it handed in.
///
/// The predicate is called O(n² + n·max_at) times in the worst case; plans
/// from `InjectionPlan::from_seed` carry at most 3 injections with `at < 24`,
/// so shrinking one seed costs a few dozen replays.
pub fn shrink_plan(
    plan: &InjectionPlan,
    mut fails: impl FnMut(&InjectionPlan) -> bool,
) -> InjectionPlan {
    let mut current = plan.clone();
    if !fails(&current) {
        return current;
    }

    // Phase 1: drop injections to a fixed point.
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.injections.len() {
            let mut candidate = current.clone();
            candidate.injections.remove(i);
            if fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Retry the same index: it now holds the next injection.
            } else {
                i += 1;
            }
        }
        if !removed_any {
            break;
        }
    }

    // Phase 2: minimize each surviving trigger tick, earliest first.
    for i in 0..current.injections.len() {
        let original_at = current.injections[i].at;
        for at in 0..original_at {
            let mut candidate = current.clone();
            candidate.injections[i].at = at;
            if fails(&candidate) {
                current = candidate;
                break;
            }
        }
    }

    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::injection::{Injection, InjectionKind, InjectionPoint};

    fn plan_with(ats: &[u32]) -> InjectionPlan {
        InjectionPlan {
            seed: 42,
            target_pid: 0,
            injections: ats
                .iter()
                .map(|&at| Injection {
                    point: InjectionPoint::ArmRbar,
                    at,
                    kind: InjectionKind::BitFlip { bit: 3 },
                })
                .collect(),
        }
    }

    #[test]
    fn non_failing_plan_is_returned_unchanged() {
        let plan = plan_with(&[1, 2, 3]);
        let out = shrink_plan(&plan, |_| false);
        assert_eq!(out, plan);
    }

    #[test]
    fn removes_irrelevant_injections_and_minimizes_trigger() {
        // Failure reproduces iff some injection has at >= 5.
        let plan = plan_with(&[2, 9, 4, 17]);
        let out = shrink_plan(&plan, |p| p.injections.iter().any(|i| i.at >= 5));
        assert_eq!(out.injections.len(), 1);
        assert_eq!(out.injections[0].at, 5);
    }

    #[test]
    fn keeps_jointly_required_injections() {
        // Failure needs at least two injections present.
        let plan = plan_with(&[3, 7, 11]);
        let out = shrink_plan(&plan, |p| p.injections.len() >= 2);
        assert_eq!(out.injections.len(), 2);
        // Triggers minimize all the way down since the predicate ignores `at`.
        assert!(out.injections.iter().all(|i| i.at == 0));
    }

    #[test]
    fn shrinking_is_deterministic_across_invocations() {
        let plan = plan_with(&[23, 5, 13, 2, 19]);
        let pred = |p: &InjectionPlan| p.injections.iter().map(|i| i.at).sum::<u32>() >= 20;
        let a = shrink_plan(&plan, pred);
        let b = shrink_plan(&plan, pred);
        assert_eq!(a, b);
    }

    #[test]
    fn result_is_one_minimal() {
        let plan = plan_with(&[8, 8, 8]);
        let pred = |p: &InjectionPlan| p.injections.iter().filter(|i| i.at >= 4).count() >= 2;
        let out = shrink_plan(&plan, pred);
        assert!(pred(&out));
        // Removing any single injection breaks reproduction.
        for i in 0..out.injections.len() {
            let mut smaller = out.clone();
            smaller.injections.remove(i);
            assert!(!pred(&smaller), "injection {i} was removable");
        }
        // Lowering any single trigger breaks reproduction.
        for i in 0..out.injections.len() {
            for at in 0..out.injections[i].at {
                let mut lower = out.clone();
                lower.injections[i].at = at;
                assert!(!pred(&lower), "injection {i} trigger was reducible to {at}");
            }
        }
    }
}
