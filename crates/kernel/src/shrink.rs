//! Deterministic minimization of failing fault/interrupt schedules.
//!
//! When a fleet campaign finds a seed whose [`tt_hw::injection::InjectionPlan`]
//! makes the oracle fail, the raw plan usually contains injections that are
//! irrelevant to the failure, fired later than necessary, or both. Shrinking
//! reduces the plan to a *1-minimal* schedule: removing any single remaining
//! injection, or lowering any remaining trigger tick, makes the failure
//! disappear.
//!
//! The algorithm is a greedy fixed-point search and deliberately contains no
//! randomness, no timing dependence, and no parallelism:
//!
//! 1. **Subset removal.** Repeatedly try deleting one injection at a time
//!    (front to back). If the truncated plan still fails, keep the deletion
//!    and retry the same index; otherwise advance. Loop until a full pass
//!    removes nothing.
//! 2. **Trigger minimization.** For each surviving injection, scan candidate
//!    `at` ticks in ascending order from 0 and keep the first value that
//!    still fails.
//!
//! Because the result is a pure function of `(plan, predicate)` and the
//! predicate is invoked serially, the minimized schedule is identical across
//! re-invocations and across campaign thread counts — the property the PR 6
//! determinism gate tests.

use tt_hw::injection::InjectionPlan;
use tt_hw::sched::InterruptSchedule;

/// Shrinks `plan` to a 1-minimal schedule under `fails`.
///
/// `fails` must return `true` when the given plan reproduces the failure.
/// If the input plan does not fail at all, it is returned unchanged — the
/// caller gets back something that reproduces whatever it handed in.
///
/// The predicate is called O(n² + n·max_at) times in the worst case; plans
/// from `InjectionPlan::from_seed` carry at most 3 injections with `at < 24`,
/// so shrinking one seed costs a few dozen replays.
pub fn shrink_plan(
    plan: &InjectionPlan,
    mut fails: impl FnMut(&InjectionPlan) -> bool,
) -> InjectionPlan {
    let mut current = plan.clone();
    if !fails(&current) {
        return current;
    }

    // Phase 1: drop injections to a fixed point.
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.injections.len() {
            let mut candidate = current.clone();
            candidate.injections.remove(i);
            if fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Retry the same index: it now holds the next injection.
            } else {
                i += 1;
            }
        }
        if !removed_any {
            break;
        }
    }

    // Phase 2: minimize each surviving trigger tick, earliest first.
    for i in 0..current.injections.len() {
        let original_at = current.injections[i].at;
        for at in 0..original_at {
            let mut candidate = current.clone();
            candidate.injections[i].at = at;
            if fails(&candidate) {
                current = candidate;
                break;
            }
        }
    }

    current
}

/// Shrinks an [`InterruptSchedule`] to a 1-minimal schedule under
/// `fails` — the schedule analogue of [`shrink_plan`], with the same
/// greedy fixed-point structure:
///
/// 1. **Arrival removal.** Repeatedly try deleting one arrival at a
///    time (front to back in canonical order); keep deletions that
///    still fail, looping until a full pass removes nothing.
/// 2. **Occurrence minimization.** For each surviving arrival, scan
///    candidate `at` occurrences in ascending order from 0 and keep the
///    first value that still fails.
///
/// The result is canonical (schedules rebuilt through
/// [`InterruptSchedule::new`]) and a pure function of
/// `(schedule, predicate)`, so a minimized failing schedule's
/// [`InterruptSchedule::id`] is a stable one-line repro.
pub fn shrink_schedule(
    schedule: &InterruptSchedule,
    mut fails: impl FnMut(&InterruptSchedule) -> bool,
) -> InterruptSchedule {
    let mut current = schedule.clone();
    if !fails(&current) {
        return current;
    }

    // Phase 1: drop arrivals to a fixed point.
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.arrivals.len() {
            let mut arrivals = current.arrivals.clone();
            arrivals.remove(i);
            let candidate = InterruptSchedule::new(arrivals);
            if fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Retry the same index: it now holds the next arrival.
            } else {
                i += 1;
            }
        }
        if !removed_any {
            break;
        }
    }

    // Phase 2: minimize each surviving occurrence, earliest first.
    // Canonicalization may merge a lowered arrival into an existing
    // duplicate (a valid, smaller candidate) — re-check the bound each
    // step rather than trusting the pre-pass length.
    let mut i = 0;
    while i < current.arrivals.len() {
        let original_at = current.arrivals[i].at;
        for at in 0..original_at {
            let mut arrivals = current.arrivals.clone();
            arrivals[i].at = at;
            let candidate = InterruptSchedule::new(arrivals);
            if fails(&candidate) {
                current = candidate;
                break;
            }
        }
        i += 1;
    }

    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::injection::{Injection, InjectionKind, InjectionPoint};
    use tt_hw::sched::{Arrival, ArrivalPoint};

    fn plan_with(ats: &[u32]) -> InjectionPlan {
        InjectionPlan {
            seed: 42,
            target_pid: 0,
            injections: ats
                .iter()
                .map(|&at| Injection {
                    point: InjectionPoint::ArmRbar,
                    at,
                    kind: InjectionKind::BitFlip { bit: 3 },
                })
                .collect(),
        }
    }

    #[test]
    fn non_failing_plan_is_returned_unchanged() {
        let plan = plan_with(&[1, 2, 3]);
        let out = shrink_plan(&plan, |_| false);
        assert_eq!(out, plan);
    }

    #[test]
    fn removes_irrelevant_injections_and_minimizes_trigger() {
        // Failure reproduces iff some injection has at >= 5.
        let plan = plan_with(&[2, 9, 4, 17]);
        let out = shrink_plan(&plan, |p| p.injections.iter().any(|i| i.at >= 5));
        assert_eq!(out.injections.len(), 1);
        assert_eq!(out.injections[0].at, 5);
    }

    #[test]
    fn keeps_jointly_required_injections() {
        // Failure needs at least two injections present.
        let plan = plan_with(&[3, 7, 11]);
        let out = shrink_plan(&plan, |p| p.injections.len() >= 2);
        assert_eq!(out.injections.len(), 2);
        // Triggers minimize all the way down since the predicate ignores `at`.
        assert!(out.injections.iter().all(|i| i.at == 0));
    }

    #[test]
    fn shrinking_is_deterministic_across_invocations() {
        let plan = plan_with(&[23, 5, 13, 2, 19]);
        let pred = |p: &InjectionPlan| p.injections.iter().map(|i| i.at).sum::<u32>() >= 20;
        let a = shrink_plan(&plan, pred);
        let b = shrink_plan(&plan, pred);
        assert_eq!(a, b);
    }

    fn schedule_with(arrivals: &[(ArrivalPoint, u32)]) -> InterruptSchedule {
        InterruptSchedule::new(
            arrivals
                .iter()
                .map(|&(point, at)| Arrival { point, at })
                .collect(),
        )
    }

    #[test]
    fn non_failing_schedule_is_returned_unchanged() {
        let s = schedule_with(&[
            (ArrivalPoint::MpuCommit, 4),
            (ArrivalPoint::SyscallEnter, 9),
        ]);
        assert_eq!(shrink_schedule(&s, |_| false), s);
    }

    #[test]
    fn schedule_shrinks_to_the_one_relevant_arrival() {
        // Failure reproduces iff an MpuCommit arrival at occurrence >= 3
        // is present; everything else is noise.
        let s = schedule_with(&[
            (ArrivalPoint::SyscallEnter, 1),
            (ArrivalPoint::MpuCommit, 7),
            (ArrivalPoint::SchedulerDecision, 2),
        ]);
        let out = shrink_schedule(&s, |c| {
            c.arrivals
                .iter()
                .any(|a| a.point == ArrivalPoint::MpuCommit && a.at >= 3)
        });
        assert_eq!(out, schedule_with(&[(ArrivalPoint::MpuCommit, 3)]));
    }

    #[test]
    fn schedule_shrinking_keeps_jointly_required_arrivals_and_is_deterministic() {
        let s = schedule_with(&[
            (ArrivalPoint::SyscallEnter, 5),
            (ArrivalPoint::SyscallExit, 6),
            (ArrivalPoint::MpuCommit, 7),
        ]);
        let pred = |c: &InterruptSchedule| c.arrivals.len() >= 2;
        let a = shrink_schedule(&s, pred);
        let b = shrink_schedule(&s, pred);
        assert_eq!(a, b);
        assert_eq!(a.arrivals.len(), 2);
        // Occurrences minimize to distinct floors: canonical schedules
        // dedup, so two same-point arrivals cannot both reach 0 — and
        // the predicate would reject the merged single-arrival result.
        assert!(pred(&a));
    }

    #[test]
    fn shrunk_schedule_id_round_trips() {
        let s = schedule_with(&[
            (ArrivalPoint::SchedulerDecision, 11),
            (ArrivalPoint::MpuCommit, 2),
        ]);
        let out = shrink_schedule(&s, |c| !c.arrivals.is_empty());
        assert_eq!(InterruptSchedule::from_id(out.id()), out);
        assert_eq!(out.arrivals.len(), 1);
    }

    #[test]
    fn result_is_one_minimal() {
        let plan = plan_with(&[8, 8, 8]);
        let pred = |p: &InjectionPlan| p.injections.iter().filter(|i| i.at >= 4).count() >= 2;
        let out = shrink_plan(&plan, pred);
        assert!(pred(&out));
        // Removing any single injection breaks reproduction.
        for i in 0..out.injections.len() {
            let mut smaller = out.clone();
            smaller.injections.remove(i);
            assert!(!pred(&smaller), "injection {i} was removable");
        }
        // Lowering any single trigger breaks reproduction.
        for i in 0..out.injections.len() {
            for at in 0..out.injections[i].at {
                let mut lower = out.clone();
                lower.injections[i].at = at;
                assert!(!pred(&lower), "injection {i} trigger was reducible to {at}");
            }
        }
    }
}
