//! Differential testing of Tock vs TickTock (§6.1).
//!
//! Boots one kernel per flavour per release test (fresh chip, fresh cycle
//! counter — the differential rig the paper runs on NRF52840dk + QEMU),
//! runs the app to completion, and diffs the console outputs. The §6.1
//! expectation: 21 tests, 5 differing, and every difference confined to
//! the layout/sensor category.

use crate::apps::{release_tests, ReleaseTest};
use crate::kernel::{App, Kernel};
use crate::loader::flash_app;
use crate::process::{Flavor, ProcessState};
use crate::trace::{self, diff_traces, render_divergence, Trace, TraceDivergence, TraceScope};
use tt_hw::platform::{ChipProfile, NRF52840DK};
use tt_legacy::BugVariant;

/// Ring capacity used for per-run traces: a 200-tick release-test run
/// records a few thousand events, so this never wraps in practice.
pub const TRACE_CAPACITY: usize = 65_536;

/// Flash address where the differential rig places each app image.
pub fn app_flash_base(chip: &ChipProfile) -> usize {
    chip.map.flash.start + 0x4_0000
}

/// Outcome of one app run on one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Console output.
    pub console: String,
    /// Terminal process state.
    pub state: ProcessState,
    /// Whether the kernel logged a fault for the process.
    pub faulted: bool,
    /// Full event trace of the run (empty if tracing was disabled by the
    /// caller; [`run_one_on`] always records one).
    pub trace: Trace,
}

/// Runs one release test on one kernel flavour on the NRF52840dk.
pub fn run_one(test: &ReleaseTest, flavor: Flavor) -> RunOutcome {
    run_one_on(test, flavor, &NRF52840DK)
}

/// Runs one release test on one kernel flavour on any chip (the paper's
/// QEMU RISC-V runs use the same rig on the PMP chips).
pub fn run_one_on(test: &ReleaseTest, flavor: Flavor, chip: &ChipProfile) -> RunOutcome {
    // Fresh counters per run: readings and layouts must depend only on
    // this kernel's own behaviour.
    tt_hw::cycles::reset();
    // Fresh trace per run. Tracing stays out of the cycle model, so the
    // Fig. 11/12 numbers are identical with or without it.
    trace::enable(TRACE_CAPACITY);
    let mut kernel = Kernel::boot(flavor, chip);
    let image = flash_app(
        &mut kernel.mem,
        app_flash_base(chip),
        test.spec.name,
        test.spec.flash_size,
        test.spec.min_ram,
        test.spec.kernel_reserved,
    )
    .expect("flash image");
    let pid = kernel.load_process(&image).expect("load process");
    // The console_recv test needs input queued before the app runs.
    kernel.capsules.queue_console_input(pid, b"hi!\r\n");
    let mut apps: Vec<Box<dyn App>> = vec![(test.make)()];
    kernel.run(&mut apps, 200);
    let trace = trace::take();
    trace::disable();
    let process = &kernel.processes[pid];
    RunOutcome {
        console: process.console.clone(),
        state: process.state.clone(),
        faulted: kernel.fault_log.iter().any(|(p, _)| *p == pid),
        trace,
    }
}

/// Result of diffing one test across the two kernels.
#[derive(Debug, Clone)]
pub struct DiffResult {
    /// Test name.
    pub name: &'static str,
    /// Whether §6.1 expects a difference.
    pub expect_differs: bool,
    /// Output on the legacy (Tock) kernel.
    pub tock: RunOutcome,
    /// Output on the granular (TickTock) kernel.
    pub ticktock: RunOutcome,
    /// First divergence between the two runs' traces under
    /// [`TraceScope::Observable`], if any.
    pub trace_divergence: Option<TraceDivergence>,
}

impl DiffResult {
    /// Builds a result from the two runs, computing the trace divergence.
    pub fn from_runs(
        name: &'static str,
        expect_differs: bool,
        tock: RunOutcome,
        ticktock: RunOutcome,
    ) -> Self {
        let trace_divergence = diff_traces(&tock.trace, &ticktock.trace, TraceScope::Observable);
        Self {
            name,
            expect_differs,
            tock,
            ticktock,
            trace_divergence,
        }
    }

    /// Whether the two kernels behaved the same: matching console output
    /// *and* observably-equivalent traces. The trace check is the
    /// stronger oracle — two runs can print the same text while diverging
    /// mid-run (a missed fault, a mis-ordered upcall), and this catches
    /// it.
    pub fn matches(&self) -> bool {
        self.tock.console == self.ticktock.console && self.trace_divergence.is_none()
    }
}

/// Runs the whole release suite on both kernels (NRF52840dk).
pub fn run_release_suite() -> Vec<DiffResult> {
    run_release_suite_on(&NRF52840DK)
}

/// Worker count for the parallel suite runners: `TT_BENCH_THREADS` if set
/// to a positive integer, otherwise the machine's available parallelism.
pub fn suite_threads() -> usize {
    crate::pool::default_threads()
}

fn diff_one(test: &ReleaseTest, chip: &ChipProfile) -> DiffResult {
    DiffResult::from_runs(
        test.spec.name,
        test.spec.expect_differs,
        run_one_on(test, Flavor::Legacy(BugVariant::Fixed), chip),
        run_one_on(test, Flavor::Granular, chip),
    )
}

/// Runs the whole release suite on both kernels on any chip, spreading
/// the per-test loop over [`suite_threads`] scoped threads.
pub fn run_release_suite_on(chip: &ChipProfile) -> Vec<DiffResult> {
    run_release_suite_on_with_threads(chip, suite_threads())
}

/// Runs the release suite on a work-stealing pool of `threads` workers
/// (1 = the serial path); see [`crate::pool::run_indexed`]. Every
/// cycle/trace/cache sink is thread-local by design, so each worker's
/// runs are bit-identical to a serial run of the same tests, and results
/// are reassembled in test order — the parallel runner's report is
/// byte-identical to the serial one.
pub fn run_release_suite_on_with_threads(chip: &ChipProfile, threads: usize) -> Vec<DiffResult> {
    let tests = release_tests();
    crate::pool::run_indexed(&tests, threads, |_, test| diff_one(test, chip))
}

/// Runs the release suite on every supported chip profile over the
/// work-stealing pool sized by [`suite_threads`]. Returns
/// `(chip, results)` in [`tt_hw::platform::ALL_CHIPS`] order.
pub fn run_release_suite_all_chips() -> Vec<(&'static ChipProfile, Vec<DiffResult>)> {
    run_release_suite_all_chips_with_threads(suite_threads())
}

/// [`run_release_suite_all_chips`] with an explicit worker count. The
/// unit of work is a single `(chip, test)` diff — not a whole chip — so
/// the tail of the suite keeps every core busy; results are chunked back
/// into per-chip vectors in test order, byte-identical to serial.
pub fn run_release_suite_all_chips_with_threads(
    threads: usize,
) -> Vec<(&'static ChipProfile, Vec<DiffResult>)> {
    let chips = &tt_hw::platform::ALL_CHIPS;
    let tests = release_tests();
    let units: Vec<(usize, usize)> = (0..chips.len())
        .flat_map(|c| (0..tests.len()).map(move |t| (c, t)))
        .collect();
    let tests = &tests;
    let mut results =
        crate::pool::run_indexed(&units, threads, |_, &(c, t)| diff_one(&tests[t], &chips[c]));
    let mut out = Vec::with_capacity(chips.len());
    for chip in chips.iter().rev() {
        let rest = results.split_off(results.len() - tests.len());
        out.push((chip, rest));
    }
    out.reverse();
    out
}

/// Renders the §6.1 summary table.
pub fn render_report(results: &[DiffResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>8} {:>10} {:>10}\n",
        "Test", "Match", "Expected", "Verdict"
    ));
    let mut differing = 0;
    let mut unexpected = 0;
    for r in results {
        let matches = r.matches();
        if !matches {
            differing += 1;
        }
        let verdict = if matches != r.expect_differs {
            "ok"
        } else {
            unexpected += 1;
            "UNEXPECTED"
        };
        out.push_str(&format!(
            "{:<22} {:>8} {:>10} {:>10}\n",
            r.name,
            if matches { "yes" } else { "DIFFERS" },
            if r.expect_differs { "differs" } else { "same" },
            verdict
        ));
    }
    out.push_str(&format!(
        "\n{} tests, {} differing ({} unexpected)\n",
        results.len(),
        differing,
        unexpected
    ));
    let divergent: Vec<&DiffResult> = results
        .iter()
        .filter(|r| r.trace_divergence.is_some())
        .collect();
    if !divergent.is_empty() {
        out.push_str("\nFirst trace divergences (observable scope):\n");
        for r in divergent {
            let d = r.trace_divergence.as_ref().unwrap();
            out.push_str(&format!("* {}: ", r.name));
            out.push_str(&render_divergence(d, "tock", "ticktock"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_reproduces_the_21_and_5_of_section_6_1() {
        let results = run_release_suite();
        assert_eq!(results.len(), 21);
        let differing: Vec<&str> = results
            .iter()
            .filter(|r| !r.matches())
            .map(|r| r.name)
            .collect();
        assert_eq!(differing.len(), 5, "differing tests: {differing:?}");
        for r in &results {
            assert_eq!(
                !r.matches(),
                r.expect_differs,
                "{}: tock={:?} ticktock={:?}",
                r.name,
                r.tock.console,
                r.ticktock.console
            );
        }
    }

    #[test]
    fn parallel_suite_report_is_byte_identical_to_serial() {
        let serial = run_release_suite_on_with_threads(&NRF52840DK, 1);
        let parallel = run_release_suite_on_with_threads(&NRF52840DK, 4);
        assert_eq!(parallel.len(), serial.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.matches(), p.matches(), "{}", s.name);
            assert_eq!(s.tock.console, p.tock.console, "{}", s.name);
            assert_eq!(s.ticktock.console, p.ticktock.console, "{}", s.name);
        }
        assert_eq!(
            render_report(&serial),
            render_report(&parallel),
            "parallel report must be byte-identical to serial"
        );
    }

    #[test]
    fn suite_threads_reads_the_env_var() {
        // Serialised against other env readers by running in this one test.
        std::env::set_var("TT_BENCH_THREADS", "3");
        assert_eq!(suite_threads(), 3);
        std::env::set_var("TT_BENCH_THREADS", "0");
        assert!(
            suite_threads() >= 1,
            "0 falls back to available parallelism"
        );
        std::env::set_var("TT_BENCH_THREADS", "nope");
        assert!(suite_threads() >= 1);
        std::env::remove_var("TT_BENCH_THREADS");
        assert!(suite_threads() >= 1);
    }

    #[test]
    fn all_chips_runner_covers_every_profile_with_the_same_shape() {
        let per_chip = run_release_suite_all_chips();
        assert_eq!(per_chip.len(), tt_hw::platform::ALL_CHIPS.len());
        for (chip, results) in &per_chip {
            assert_eq!(results.len(), 21, "{}", chip.name);
            let differing = results.iter().filter(|r| !r.matches()).count();
            assert_eq!(differing, 5, "{}", chip.name);
        }
    }

    #[test]
    fn crash_tests_fault_on_both_kernels() {
        let results = run_release_suite();
        for name in ["crash_dummy", "stack_growth", "mpu_stack_growth"] {
            let r = results.iter().find(|r| r.name == name).unwrap();
            assert!(r.tock.faulted, "{name} should fault on tock");
            assert!(r.ticktock.faulted, "{name} should fault on ticktock");
            // The paper: "the application still correctly faulted when it
            // tried to read/write to a location in memory it should not be
            // able to access."
            assert!(matches!(r.tock.state, ProcessState::Faulted(_)));
            assert!(matches!(r.ticktock.state, ProcessState::Faulted(_)));
        }
    }

    #[test]
    fn non_crash_tests_exit_cleanly_on_both_kernels() {
        let results = run_release_suite();
        for r in &results {
            if ["crash_dummy", "stack_growth", "mpu_stack_growth"].contains(&r.name) {
                continue;
            }
            assert_eq!(r.tock.state, ProcessState::Exited, "{} on tock", r.name);
            assert_eq!(
                r.ticktock.state,
                ProcessState::Exited,
                "{} on ticktock",
                r.name
            );
            assert!(!r.tock.faulted, "{} faulted on tock", r.name);
            assert!(!r.ticktock.faulted, "{} faulted on ticktock", r.name);
        }
    }

    #[test]
    fn riscv_chips_reproduce_the_same_differential_shape() {
        // The paper ran the RISC-V differential tests under QEMU; the same
        // 21/5 shape must hold on the PMP chips.
        for chip in [tt_hw::platform::ESP32_C3, tt_hw::platform::EARLGREY] {
            let results = run_release_suite_on(&chip);
            assert_eq!(results.len(), 21, "{}", chip.name);
            for r in &results {
                assert_eq!(
                    !r.matches(),
                    r.expect_differs,
                    "{} on {}: tock={:?} ticktock={:?}",
                    r.name,
                    chip.name,
                    r.tock.console,
                    r.ticktock.console
                );
            }
        }
    }

    #[test]
    fn report_renders_summary() {
        let results = run_release_suite();
        let report = render_report(&results);
        assert!(report.contains("21 tests, 5 differing (0 unexpected)"));
    }
}
