//! Fixed-width per-run result records and on-disk corpus persistence.
//!
//! Fleet campaigns produce up to 10^6 runs; keeping a `RunRecord` (with
//! its full trace) per run is out of the question. A [`CorpusRecord`] is
//! the 32-byte summary a campaign keeps per run — enough to re-identify
//! the run (chip, seed, cache mode), re-drive it (the seed is the whole
//! input), and triage it (fired/restart/kill counts, oracle failures,
//! trace length, recovery cycles). Records are fixed-width little-endian
//! so a corpus file under `ci/corpus/` is seekable by run index and
//! diffable by byte offset.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// Encoded size of one [`CorpusRecord`] in bytes.
pub const RECORD_LEN: usize = 32;

/// First byte of every record.
const MAGIC: u8 = 0xC7;
/// Format version; bump on any layout change.
const VERSION: u8 = 1;

const FLAG_COLD: u8 = 1 << 0;
const FLAG_KILLED: u8 = 1 << 1;
const KNOWN_FLAGS: u8 = FLAG_COLD | FLAG_KILLED;

/// One fleet-campaign run, reduced to a fixed 32-byte summary.
///
/// Layout (all little-endian):
///
/// | bytes  | field             |
/// |--------|-------------------|
/// | 0      | magic (`0xC7`)    |
/// | 1      | version           |
/// | 2      | chip index        |
/// | 3      | flags (cold, killed) |
/// | 4..6   | fired             |
/// | 6..8   | restarts          |
/// | 8..16  | seed              |
/// | 16..18 | recoveries        |
/// | 18..20 | failures          |
/// | 20..24 | trace_len         |
/// | 24..32 | recovery_cycles   |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusRecord {
    /// Index of the chip in `tt_hw::platform::ALL_CHIPS`.
    pub chip: u8,
    /// Whether the run executed with the commit cache disabled.
    pub cold: bool,
    /// Whether the victim ended permanently killed.
    pub killed: bool,
    /// The injection seed.
    pub seed: u64,
    /// Injections that fired (saturated to `u16::MAX`).
    pub fired: u16,
    /// Victim restarts.
    pub restarts: u16,
    /// Victim fault recoveries.
    pub recoveries: u16,
    /// Oracle failures this run produced (0 = clean).
    pub failures: u16,
    /// Events in the run's trace (saturated to `u32::MAX`).
    pub trace_len: u32,
    /// Cycles spent recovering the victim.
    pub recovery_cycles: u64,
}

impl CorpusRecord {
    /// Encodes the record into its fixed 32-byte representation.
    pub fn encode(&self) -> [u8; RECORD_LEN] {
        let mut buf = [0u8; RECORD_LEN];
        buf[0] = MAGIC;
        buf[1] = VERSION;
        buf[2] = self.chip;
        buf[3] = (u8::from(self.cold) * FLAG_COLD) | (u8::from(self.killed) * FLAG_KILLED);
        buf[4..6].copy_from_slice(&self.fired.to_le_bytes());
        buf[6..8].copy_from_slice(&self.restarts.to_le_bytes());
        buf[8..16].copy_from_slice(&self.seed.to_le_bytes());
        buf[16..18].copy_from_slice(&self.recoveries.to_le_bytes());
        buf[18..20].copy_from_slice(&self.failures.to_le_bytes());
        buf[20..24].copy_from_slice(&self.trace_len.to_le_bytes());
        buf[24..32].copy_from_slice(&self.recovery_cycles.to_le_bytes());
        buf
    }

    /// Decodes a record, validating magic, version and flag bits.
    pub fn decode(buf: &[u8; RECORD_LEN]) -> Result<Self, CorpusError> {
        if buf[0] != MAGIC {
            return Err(CorpusError::BadMagic(buf[0]));
        }
        if buf[1] != VERSION {
            return Err(CorpusError::BadVersion(buf[1]));
        }
        if buf[3] & !KNOWN_FLAGS != 0 {
            return Err(CorpusError::BadFlags(buf[3]));
        }
        let le16 = |i: usize| u16::from_le_bytes([buf[i], buf[i + 1]]);
        Ok(Self {
            chip: buf[2],
            cold: buf[3] & FLAG_COLD != 0,
            killed: buf[3] & FLAG_KILLED != 0,
            seed: u64::from_le_bytes(buf[8..16].try_into().expect("8-byte slice")),
            fired: le16(4),
            restarts: le16(6),
            recoveries: le16(16),
            failures: le16(18),
            trace_len: u32::from_le_bytes(buf[20..24].try_into().expect("4-byte slice")),
            recovery_cycles: u64::from_le_bytes(buf[24..32].try_into().expect("8-byte slice")),
        })
    }
}

/// A malformed [`CorpusRecord`] encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusError {
    /// First byte is not the record magic.
    BadMagic(u8),
    /// Unknown format version.
    BadVersion(u8),
    /// Undefined flag bits set.
    BadFlags(u8),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::BadMagic(b) => write!(f, "bad corpus magic {b:#04x}"),
            CorpusError::BadVersion(v) => write!(f, "unsupported corpus version {v}"),
            CorpusError::BadFlags(b) => write!(f, "undefined corpus flag bits in {b:#04x}"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// Encodes `records` into one contiguous byte buffer — the corpus file
/// image, `records.len() * RECORD_LEN` bytes.
pub fn encode_corpus(records: &[CorpusRecord]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(records.len() * RECORD_LEN);
    for r in records {
        bytes.extend_from_slice(&r.encode());
    }
    bytes
}

/// Writes `records` to `path` (creating parent directories), replacing
/// any existing file.
///
/// The whole corpus is encoded into one buffer and handed to the OS as
/// a single `write_all` — for a 10^6-run campaign that is one 32 MB
/// write instead of a million 32-byte ones, and a crash mid-write can
/// only truncate the single final write rather than interleave records.
pub fn write_corpus(path: &Path, records: &[CorpusRecord]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = fs::File::create(path)?;
    out.write_all(&encode_corpus(records))?;
    out.flush()
}

/// Reads every record from a corpus file. Trailing partial records or
/// malformed entries surface as `InvalidData`.
pub fn read_corpus(path: &Path) -> io::Result<Vec<CorpusRecord>> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() % RECORD_LEN != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "corpus length {} not a multiple of {RECORD_LEN}",
                bytes.len()
            ),
        ));
    }
    bytes
        .chunks_exact(RECORD_LEN)
        .map(|chunk| {
            let buf: &[u8; RECORD_LEN] = chunk.try_into().expect("exact chunk");
            CorpusRecord::decode(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CorpusRecord {
        CorpusRecord {
            chip: 3,
            cold: true,
            killed: false,
            seed: 0xDEAD_BEEF_0042,
            fired: 2,
            restarts: 1,
            recoveries: 1,
            failures: 0,
            trace_len: 12_345,
            recovery_cycles: 987_654,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = sample();
        let buf = r.encode();
        assert_eq!(buf.len(), RECORD_LEN);
        assert_eq!(CorpusRecord::decode(&buf).unwrap(), r);
    }

    #[test]
    fn decode_rejects_malformed_records() {
        let mut buf = sample().encode();
        buf[0] = 0;
        assert_eq!(CorpusRecord::decode(&buf), Err(CorpusError::BadMagic(0)));
        let mut buf = sample().encode();
        buf[1] = 99;
        assert_eq!(CorpusRecord::decode(&buf), Err(CorpusError::BadVersion(99)));
        let mut buf = sample().encode();
        buf[3] |= 0x80;
        assert!(matches!(
            CorpusRecord::decode(&buf),
            Err(CorpusError::BadFlags(_))
        ));
    }

    #[test]
    fn file_round_trip_and_truncation_detection() {
        let dir = std::env::temp_dir().join(format!("tt-corpus-test-{}", std::process::id()));
        let path = dir.join("sub").join("runs.bin");
        let records = vec![
            sample(),
            CorpusRecord {
                chip: 0,
                cold: false,
                killed: true,
                seed: 7,
                fired: 0,
                restarts: 5,
                recoveries: 5,
                failures: 3,
                trace_len: 0,
                recovery_cycles: u64::MAX,
            },
        ];
        write_corpus(&path, &records).unwrap();
        assert_eq!(read_corpus(&path).unwrap(), records);
        // The on-disk image is exactly the single-buffer encoding the
        // batched writer produces.
        assert_eq!(fs::read(&path).unwrap(), encode_corpus(&records));
        // A truncated file is invalid, not silently short.
        let mut bytes = fs::read(&path).unwrap();
        bytes.pop();
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_corpus(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_record_is_rejected_not_dropped() {
        // Regression for the batched writer: a file cut anywhere inside
        // its *final* record (the only truncation a single interrupted
        // write can produce) must fail loudly — a reader that silently
        // dropped the partial tail would under-report the campaign.
        let dir = std::env::temp_dir().join(format!("tt-corpus-trunc-{}", std::process::id()));
        let path = dir.join("runs.bin");
        let records = vec![sample(); 5];
        for cut in 1..RECORD_LEN {
            write_corpus(&path, &records).unwrap();
            let mut bytes = fs::read(&path).unwrap();
            bytes.truncate(bytes.len() - cut);
            fs::write(&path, &bytes).unwrap();
            let err = read_corpus(&path).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut {cut}");
        }
        // Truncation at a record boundary is indistinguishable from a
        // shorter campaign — those four intact records still decode.
        write_corpus(&path, &records).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - RECORD_LEN);
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_corpus(&path).unwrap(), records[..4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        #[test]
        fn round_trip_holds_for_arbitrary_records(
            chip in any::<u8>(),
            cold in any::<bool>(),
            killed in any::<bool>(),
            seed in any::<u64>(),
            fired in any::<u16>(),
            restarts in any::<u16>(),
            recoveries in any::<u16>(),
            failures in any::<u16>(),
            trace_len in any::<u32>(),
            recovery_cycles in any::<u64>(),
        ) {
            let r = CorpusRecord {
                chip, cold, killed, seed, fired, restarts,
                recoveries, failures, trace_len, recovery_cycles,
            };
            prop_assert_eq!(CorpusRecord::decode(&r.encode()).unwrap(), r);
        }
    }
}
