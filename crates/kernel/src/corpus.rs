//! Fixed-width per-run result records and on-disk corpus persistence.
//!
//! Fleet campaigns produce up to 10^6 runs; keeping a `RunRecord` (with
//! its full trace) per run is out of the question. A [`CorpusRecord`] is
//! the compact summary a campaign keeps per run — enough to re-identify
//! the run (chip, seed, cache mode, interrupt schedule), re-drive it
//! (seed + schedule ID are the whole input), and triage it
//! (fired/restart/kill counts, oracle failures, trace length, recovery
//! cycles). Records are fixed-width-per-version little-endian so a
//! corpus file under `ci/corpus/` is walkable by record and diffable by
//! byte offset.
//!
//! Two wire versions coexist:
//!
//! - **v1** (32 bytes): the pre-explorer layout, no schedule field.
//!   Decodes forever — a v1 record means "no interrupt schedule"
//!   ([`CorpusRecord::schedule`] = 0).
//! - **v2** (40 bytes): v1 plus the replayable 64-bit
//!   [`tt_hw::sched::InterruptSchedule::id`] at bytes 32..40. The
//!   encoder emits v1 for unscheduled records, so corpora written
//!   before the explorer existed stay byte-identical when re-encoded.
//!
//! Each record leads with `magic, version`, and the version fixes the
//! record length, so a reader never needs file-level framing to walk a
//! mixed corpus.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// Encoded size of a version-1 (unscheduled) [`CorpusRecord`].
pub const RECORD_LEN: usize = 32;
/// Encoded size of a version-2 (schedule-carrying) [`CorpusRecord`].
pub const RECORD_LEN_V2: usize = 40;

/// First byte of every record.
const MAGIC: u8 = 0xC7;
/// Unscheduled layout (no trailing schedule ID).
const VERSION_V1: u8 = 1;
/// Scheduled layout: v1 plus the 64-bit schedule ID at bytes 32..40.
const VERSION_V2: u8 = 2;

const FLAG_COLD: u8 = 1 << 0;
const FLAG_KILLED: u8 = 1 << 1;
const FLAG_CLEAN: u8 = 1 << 2;
const KNOWN_FLAGS: u8 = FLAG_COLD | FLAG_KILLED | FLAG_CLEAN;

/// One fleet-campaign run, reduced to a fixed-width summary.
///
/// Layout (all little-endian):
///
/// | bytes  | field             |
/// |--------|-------------------|
/// | 0      | magic (`0xC7`)    |
/// | 1      | version (1 or 2)  |
/// | 2      | chip index        |
/// | 3      | flags (cold, killed, clean) |
/// | 4..6   | fired             |
/// | 6..8   | restarts          |
/// | 8..16  | seed              |
/// | 16..18 | recoveries        |
/// | 18..20 | failures          |
/// | 20..24 | trace_len         |
/// | 24..32 | recovery_cycles   |
/// | 32..40 | schedule (v2 only) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusRecord {
    /// Index of the chip in `tt_hw::platform::ALL_CHIPS`.
    pub chip: u8,
    /// Whether the run executed with the commit cache disabled.
    pub cold: bool,
    /// Whether the victim ended permanently killed.
    pub killed: bool,
    /// Whether the run's baseline carried no injection plan at all (a
    /// clean, explorer-style run). When set, [`Self::seed`] is dead
    /// weight: replay the schedule with *no* plan rather than with
    /// `from_seed(0)`, which is a different baseline.
    pub clean: bool,
    /// The injection seed.
    pub seed: u64,
    /// The interrupt-schedule ID the run executed under
    /// ([`tt_hw::sched::InterruptSchedule::id`]); 0 = no schedule.
    pub schedule: u64,
    /// Injections that fired (saturated to `u16::MAX`).
    pub fired: u16,
    /// Victim restarts.
    pub restarts: u16,
    /// Victim fault recoveries.
    pub recoveries: u16,
    /// Oracle failures this run produced (0 = clean).
    pub failures: u16,
    /// Events in the run's trace (saturated to `u32::MAX`).
    pub trace_len: u32,
    /// Cycles spent recovering the victim.
    pub recovery_cycles: u64,
}

impl CorpusRecord {
    /// The wire length [`Self::encode`] produces for this record:
    /// [`RECORD_LEN`] when unscheduled, [`RECORD_LEN_V2`] otherwise.
    pub fn encoded_len(&self) -> usize {
        if self.schedule == 0 {
            RECORD_LEN
        } else {
            RECORD_LEN_V2
        }
    }

    /// Encodes the record. Unscheduled records (`schedule == 0`) emit
    /// the 32-byte v1 layout — byte-identical to pre-explorer corpora —
    /// and scheduled records the 40-byte v2 layout.
    pub fn encode(&self) -> Vec<u8> {
        let v2 = self.schedule != 0;
        let mut buf = vec![0u8; self.encoded_len()];
        buf[0] = MAGIC;
        buf[1] = if v2 { VERSION_V2 } else { VERSION_V1 };
        buf[2] = self.chip;
        buf[3] = (u8::from(self.cold) * FLAG_COLD)
            | (u8::from(self.killed) * FLAG_KILLED)
            | (u8::from(self.clean) * FLAG_CLEAN);
        buf[4..6].copy_from_slice(&self.fired.to_le_bytes());
        buf[6..8].copy_from_slice(&self.restarts.to_le_bytes());
        buf[8..16].copy_from_slice(&self.seed.to_le_bytes());
        buf[16..18].copy_from_slice(&self.recoveries.to_le_bytes());
        buf[18..20].copy_from_slice(&self.failures.to_le_bytes());
        buf[20..24].copy_from_slice(&self.trace_len.to_le_bytes());
        buf[24..32].copy_from_slice(&self.recovery_cycles.to_le_bytes());
        if v2 {
            buf[32..40].copy_from_slice(&self.schedule.to_le_bytes());
        }
        buf
    }

    /// Decodes the record at the front of `buf`, returning it together
    /// with its encoded length (so a reader can walk a mixed v1/v2
    /// corpus). Validates magic, version, flag bits, and — for v2 —
    /// that the schedule field is not the v1-reserved 0.
    pub fn decode_prefix(buf: &[u8]) -> Result<(Self, usize), CorpusError> {
        if buf.len() < 2 {
            return Err(CorpusError::Truncated {
                need: 2,
                have: buf.len(),
            });
        }
        if buf[0] != MAGIC {
            return Err(CorpusError::BadMagic(buf[0]));
        }
        let len = match buf[1] {
            VERSION_V1 => RECORD_LEN,
            VERSION_V2 => RECORD_LEN_V2,
            v => return Err(CorpusError::BadVersion(v)),
        };
        if buf.len() < len {
            return Err(CorpusError::Truncated {
                need: len,
                have: buf.len(),
            });
        }
        if buf[3] & !KNOWN_FLAGS != 0 {
            return Err(CorpusError::BadFlags(buf[3]));
        }
        let le16 = |i: usize| u16::from_le_bytes([buf[i], buf[i + 1]]);
        let schedule = if buf[1] == VERSION_V2 {
            let s = u64::from_le_bytes(buf[32..40].try_into().expect("8-byte slice"));
            if s == 0 {
                // A v2 record claiming "no schedule" is a writer bug:
                // the encoder always downgrades those to v1.
                return Err(CorpusError::BadSchedule);
            }
            s
        } else {
            0
        };
        Ok((
            Self {
                chip: buf[2],
                cold: buf[3] & FLAG_COLD != 0,
                killed: buf[3] & FLAG_KILLED != 0,
                clean: buf[3] & FLAG_CLEAN != 0,
                seed: u64::from_le_bytes(buf[8..16].try_into().expect("8-byte slice")),
                schedule,
                fired: le16(4),
                restarts: le16(6),
                recoveries: le16(16),
                failures: le16(18),
                trace_len: u32::from_le_bytes(buf[20..24].try_into().expect("4-byte slice")),
                recovery_cycles: u64::from_le_bytes(buf[24..32].try_into().expect("8-byte slice")),
            },
            len,
        ))
    }

    /// Decodes exactly one record from `buf`, rejecting trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, CorpusError> {
        let (record, len) = Self::decode_prefix(buf)?;
        if len != buf.len() {
            return Err(CorpusError::TrailingBytes(buf.len() - len));
        }
        Ok(record)
    }
}

/// A malformed [`CorpusRecord`] encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusError {
    /// First byte is not the record magic.
    BadMagic(u8),
    /// Unknown format version.
    BadVersion(u8),
    /// Undefined flag bits set.
    BadFlags(u8),
    /// A v2 record carrying the v1-reserved "no schedule" value.
    BadSchedule,
    /// The buffer ends inside the record.
    Truncated {
        /// Bytes the record's version requires.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// [`CorpusRecord::decode`] found bytes after the record.
    TrailingBytes(usize),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::BadMagic(b) => write!(f, "bad corpus magic {b:#04x}"),
            CorpusError::BadVersion(v) => write!(f, "unsupported corpus version {v}"),
            CorpusError::BadFlags(b) => write!(f, "undefined corpus flag bits in {b:#04x}"),
            CorpusError::BadSchedule => write!(f, "v2 corpus record with a zero schedule ID"),
            CorpusError::Truncated { need, have } => {
                write!(f, "truncated corpus record: need {need} bytes, have {have}")
            }
            CorpusError::TrailingBytes(n) => write!(f, "{n} trailing bytes after corpus record"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// Encodes `records` into one contiguous byte buffer — the corpus file
/// image.
pub fn encode_corpus(records: &[CorpusRecord]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(records.iter().map(CorpusRecord::encoded_len).sum());
    for r in records {
        bytes.extend_from_slice(&r.encode());
    }
    bytes
}

/// Writes `records` to `path` (creating parent directories), replacing
/// any existing file.
///
/// The whole corpus is encoded into one buffer and handed to the OS as
/// a single `write_all` — for a 10^6-run campaign that is one ~32 MB
/// write instead of a million small ones, and a crash mid-write can
/// only truncate the single final write rather than interleave records.
pub fn write_corpus(path: &Path, records: &[CorpusRecord]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = fs::File::create(path)?;
    out.write_all(&encode_corpus(records))?;
    out.flush()
}

/// Reads every record from a corpus file, walking mixed v1/v2 records
/// by each record's own version-determined length. Trailing partial
/// records or malformed entries surface as `InvalidData`.
pub fn read_corpus(path: &Path) -> io::Result<Vec<CorpusRecord>> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    let mut records = Vec::with_capacity(bytes.len() / RECORD_LEN);
    let mut at = 0;
    while at < bytes.len() {
        let (record, len) = CorpusRecord::decode_prefix(&bytes[at..])
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        records.push(record);
        at += len;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CorpusRecord {
        CorpusRecord {
            chip: 3,
            cold: true,
            killed: false,
            clean: false,
            seed: 0xDEAD_BEEF_0042,
            schedule: 0,
            fired: 2,
            restarts: 1,
            recoveries: 1,
            failures: 0,
            trace_len: 12_345,
            recovery_cycles: 987_654,
        }
    }

    fn scheduled_sample() -> CorpusRecord {
        CorpusRecord {
            schedule: tt_hw::sched::InterruptSchedule::single(
                tt_hw::sched::ArrivalPoint::MpuCommit,
                17,
            )
            .id(),
            failures: 1,
            clean: true,
            ..sample()
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = sample();
        let buf = r.encode();
        assert_eq!(buf.len(), RECORD_LEN);
        assert_eq!(buf[1], 1, "unscheduled records stay v1 on the wire");
        assert_eq!(CorpusRecord::decode(&buf).unwrap(), r);
        let r = scheduled_sample();
        let buf = r.encode();
        assert_eq!(buf.len(), RECORD_LEN_V2);
        assert_eq!(buf[1], 2);
        assert_eq!(CorpusRecord::decode(&buf).unwrap(), r);
    }

    #[test]
    fn v1_records_decode_with_an_empty_schedule() {
        // A pre-explorer 32-byte record (exact bytes, not re-encoded)
        // must keep decoding, with schedule = 0.
        let buf = sample().encode();
        assert_eq!(buf.len(), RECORD_LEN);
        let decoded = CorpusRecord::decode(&buf).unwrap();
        assert_eq!(decoded.schedule, 0);
        assert_eq!(decoded, sample());
    }

    #[test]
    fn decode_rejects_malformed_records() {
        let mut buf = sample().encode();
        buf[0] = 0;
        assert_eq!(CorpusRecord::decode(&buf), Err(CorpusError::BadMagic(0)));
        let mut buf = sample().encode();
        buf[1] = 99;
        assert_eq!(CorpusRecord::decode(&buf), Err(CorpusError::BadVersion(99)));
        let mut buf = sample().encode();
        buf[3] |= 0x80;
        assert!(matches!(
            CorpusRecord::decode(&buf),
            Err(CorpusError::BadFlags(_))
        ));
        // A v2 header on a v1-length body is truncated, not misread.
        let mut buf = sample().encode();
        buf[1] = 2;
        assert_eq!(
            CorpusRecord::decode(&buf),
            Err(CorpusError::Truncated {
                need: RECORD_LEN_V2,
                have: RECORD_LEN
            })
        );
        // A v2 record with a zero schedule is a writer bug.
        let mut buf = scheduled_sample().encode();
        buf[32..40].copy_from_slice(&0u64.to_le_bytes());
        assert_eq!(CorpusRecord::decode(&buf), Err(CorpusError::BadSchedule));
        // Trailing bytes after a lone record are rejected.
        let mut buf = sample().encode();
        buf.push(0);
        assert_eq!(
            CorpusRecord::decode(&buf),
            Err(CorpusError::TrailingBytes(1))
        );
    }

    #[test]
    fn file_round_trip_and_truncation_detection() {
        let dir = std::env::temp_dir().join(format!("tt-corpus-test-{}", std::process::id()));
        let path = dir.join("sub").join("runs.bin");
        // A mixed corpus: v1, v2, v1 — the reader walks by per-record
        // version, not a file-level stride.
        let records = vec![
            sample(),
            scheduled_sample(),
            CorpusRecord {
                chip: 0,
                cold: false,
                killed: true,
                clean: false,
                seed: 7,
                schedule: 0,
                fired: 0,
                restarts: 5,
                recoveries: 5,
                failures: 3,
                trace_len: 0,
                recovery_cycles: u64::MAX,
            },
        ];
        write_corpus(&path, &records).unwrap();
        assert_eq!(read_corpus(&path).unwrap(), records);
        // The on-disk image is exactly the single-buffer encoding the
        // batched writer produces.
        assert_eq!(fs::read(&path).unwrap(), encode_corpus(&records));
        assert_eq!(
            fs::read(&path).unwrap().len(),
            2 * RECORD_LEN + RECORD_LEN_V2
        );
        // A truncated file is invalid, not silently short.
        let mut bytes = fs::read(&path).unwrap();
        bytes.pop();
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_corpus(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_record_is_rejected_not_dropped() {
        // Regression for the batched writer: a file cut anywhere inside
        // its *final* record (the only truncation a single interrupted
        // write can produce) must fail loudly — a reader that silently
        // dropped the partial tail would under-report the campaign.
        // Exercised for both wire versions in the tail slot.
        let dir = std::env::temp_dir().join(format!("tt-corpus-trunc-{}", std::process::id()));
        let path = dir.join("runs.bin");
        for tail in [sample(), scheduled_sample()] {
            let records = vec![sample(), scheduled_sample(), sample(), sample(), tail];
            let tail_len = tail.encoded_len();
            for cut in 1..tail_len {
                write_corpus(&path, &records).unwrap();
                let mut bytes = fs::read(&path).unwrap();
                bytes.truncate(bytes.len() - cut);
                fs::write(&path, &bytes).unwrap();
                let err = read_corpus(&path).unwrap_err();
                assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut {cut}");
            }
            // Truncation at a record boundary is indistinguishable from
            // a shorter campaign — those four intact records still
            // decode.
            write_corpus(&path, &records).unwrap();
            let mut bytes = fs::read(&path).unwrap();
            bytes.truncate(bytes.len() - tail_len);
            fs::write(&path, &bytes).unwrap();
            assert_eq!(read_corpus(&path).unwrap(), records[..4]);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        #[test]
        fn round_trip_holds_for_arbitrary_records(
            chip in any::<u8>(),
            cold in any::<bool>(),
            killed in any::<bool>(),
            clean in any::<bool>(),
            seed in any::<u64>(),
            schedule in any::<u64>(),
            fired in any::<u16>(),
            restarts in any::<u16>(),
            recoveries in any::<u16>(),
            failures in any::<u16>(),
            trace_len in any::<u32>(),
            recovery_cycles in any::<u64>(),
        ) {
            let r = CorpusRecord {
                chip, cold, killed, clean, seed, schedule, fired, restarts,
                recoveries, failures, trace_len, recovery_cycles,
            };
            prop_assert_eq!(r.encode().len(), r.encoded_len());
            prop_assert_eq!(CorpusRecord::decode(&r.encode()).unwrap(), r);
        }
    }
}
