//! A work-stealing worker pool for embarrassingly parallel simulation.
//!
//! The campaign runner, the differential suite and the Fig. 11 harness
//! all fan out the same shape of work: a list of independent simulation
//! units (one `(chip, seed)` run, one `(chip, test)` diff) whose results
//! must be reassembled *in input order* so every report is byte-identical
//! to a serial run. Before this pool each caller hand-rolled its own
//! fan-out (one scoped thread per chip), which bounded the speedup by the
//! slowest chip and left cores idle at the tail. [`run_indexed`] replaces
//! those with one shared scheme:
//!
//! * Each worker owns a deque seeded round-robin with unit indices; it
//!   pops its own work from the front and, when empty, steals from the
//!   *back* of a sibling's deque (classic Chase–Lev shape, mutex-guarded
//!   — contention is one lock op per unit, and a unit is a whole kernel
//!   run, so the lock is invisible in profiles).
//! * Workers return `(index, result)` pairs; the pool sorts the merged
//!   vector by index. Determinism does not depend on scheduling: every
//!   simulator sink (cycle counter, trace ring, commit-cache stats,
//!   contract mode, injection engine) is thread-local, so a unit's result
//!   is bit-identical no matter which worker runs it or in what order —
//!   the ordered merge then makes the whole-run output byte-identical to
//!   `threads = 1`.
//! * `threads <= 1` (or a single unit) short-circuits to a plain serial
//!   loop on the calling thread: the serial path *is* the reference
//!   semantics, not a special case.
//!
//! Workers release their thread-local trace/record buffers on exit (see
//! `tt_hw::trace::release_thread_buffers`), so a pool invocation leaks
//! nothing even though those buffers live in no-`Drop`-glue TLS cells.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Worker count used when the caller does not pin one: `TT_BENCH_THREADS`
/// if set to a positive integer, otherwise the machine's available
/// parallelism.
pub fn default_threads() -> usize {
    std::env::var("TT_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Pops the next unit index for worker `w`: its own deque first (front),
/// then a steal sweep over the siblings (back).
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("pool queue").pop_front() {
        return Some(i);
    }
    for off in 1..queues.len() {
        let q = (w + off) % queues.len();
        if let Some(i) = queues[q].lock().expect("pool queue").pop_back() {
            return Some(i);
        }
    }
    None
}

/// Runs `f(index, &items[index])` for every item on a work-stealing pool
/// of `threads` workers and returns the results **in item order**.
///
/// With `threads <= 1` the items run serially on the calling thread. A
/// panicking unit propagates the panic to the caller after the scope
/// joins, like the serial loop would.
pub fn run_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed_ctx(items, threads, || (), |(), i, t| f(i, t))
}

/// [`run_indexed`] with a per-worker context: each worker (including the
/// serial path's calling thread) builds one `C` via `mk_ctx` and threads
/// it mutably through every unit it executes.
///
/// This is what lets the fleet campaign keep a **worker-local snapshot
/// cache** — booted kernels hold `Rc` handles and thread-local buffers,
/// so they can neither be shared across workers nor moved between them;
/// a context built *on* the worker thread is the only sound home for
/// them. Contexts are dropped on their owning worker before the pool
/// returns. Results are still merged in item order, and `threads <= 1`
/// still short-circuits to a serial loop with a single context, so the
/// serial path remains the reference semantics.
pub fn run_indexed_ctx<T, R, C, G, F>(items: &[T], threads: usize, mk_ctx: G, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    G: Fn() -> C + Sync,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        let mut ctx = mk_ctx();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut ctx, i, t))
            .collect();
    }
    let workers = threads.min(items.len());
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..items.len() {
        queues[i % workers].lock().expect("pool queue").push_back(i);
    }
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let mk_ctx = &mk_ctx;
                let f = &f;
                scope.spawn(move || {
                    let mut ctx = mk_ctx();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    while let Some(i) = next_job(queues, w) {
                        out.push((i, f(&mut ctx, i, &items[i])));
                    }
                    // Contexts may own kernels whose snapshots replay into
                    // thread-local buffers; drop them before the buffers.
                    drop(ctx);
                    // The simulator's trace ring and method-record buffer
                    // live in TLS cells with no destructor; free them
                    // explicitly so the pool leaks nothing.
                    tt_hw::trace::release_thread_buffers();
                    tt_hw::cycles::release_thread_buffers();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn serial_and_parallel_agree_on_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = run_indexed(&items, 1, |i, &x| (i as u64) * 1_000 + x * x);
        for threads in [2, 3, 8, 64] {
            let parallel = run_indexed(&items, threads, |i, &x| (i as u64) * 1_000 + x * x);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert_eq!(run_indexed(&none, 8, |_, &x| x), Vec::<u32>::new());
        assert_eq!(run_indexed(&[7u32], 8, |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn more_threads_than_items_still_covers_every_item() {
        let items: Vec<usize> = (0..5).collect();
        assert_eq!(run_indexed(&items, 32, |_, &x| x + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn thread_local_sim_state_stays_per_worker() {
        // Each unit charges its own cycle count from a reset counter; a
        // shared counter would interleave across workers and break this.
        let items: Vec<u64> = (0..32).collect();
        let results = run_indexed(&items, 4, |_, &n| {
            tt_hw::cycles::reset();
            tt_hw::cycles::charge_n(tt_hw::cycles::Cost::Alu, n);
            tt_hw::cycles::now()
        });
        assert_eq!(results, items);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            run_indexed(&items, 4, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn ctx_variant_reuses_one_context_per_worker() {
        // Each context counts the units it ran; the per-unit result pairs
        // the item with how many units *this* context had already seen.
        // Serially that sequence is 0,1,2,...: one context for everything.
        let items: Vec<u32> = (0..16).collect();
        let serial = run_indexed_ctx(
            &items,
            1,
            || 0usize,
            |seen, _, &x| {
                let order = *seen;
                *seen += 1;
                (x, order)
            },
        );
        assert_eq!(serial, (0..16).map(|x| (x, x as usize)).collect::<Vec<_>>());
        // In parallel every worker starts its own context at 0, and the
        // per-worker counts must sum to the number of units: contexts are
        // built once per worker, not once per unit.
        let parallel = run_indexed_ctx(
            &items,
            4,
            || 0usize,
            |seen, _, &x| {
                let order = *seen;
                *seen += 1;
                (x, order)
            },
        );
        let results: Vec<u32> = parallel.iter().map(|&(x, _)| x).collect();
        assert_eq!(results, items, "results stay in item order");
        let max_order = parallel.iter().map(|&(_, o)| o).max().unwrap();
        assert!(
            max_order > 0,
            "some context must run more than one unit (16 units, 4 workers)"
        );
    }

    #[test]
    fn ctx_variant_drops_contexts_on_their_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BUILT: AtomicUsize = AtomicUsize::new(0);
        static DROPPED: AtomicUsize = AtomicUsize::new(0);
        struct Ctx;
        impl Drop for Ctx {
            fn drop(&mut self) {
                DROPPED.fetch_add(1, Ordering::SeqCst);
            }
        }
        let items: Vec<u32> = (0..12).collect();
        run_indexed_ctx(
            &items,
            3,
            || {
                BUILT.fetch_add(1, Ordering::SeqCst);
                Ctx
            },
            |_ctx, _, &x| x,
        );
        assert_eq!(
            BUILT.load(Ordering::SeqCst),
            DROPPED.load(Ordering::SeqCst),
            "every context built must be dropped before the pool returns"
        );
        assert!(BUILT.load(Ordering::SeqCst) <= 3);
    }

    proptest! {
        #[test]
        fn results_always_in_input_order(
            len in 0usize..80,
            threads in 1usize..12,
        ) {
            let items: Vec<usize> = (0..len).collect();
            let out = run_indexed(&items, threads, |i, &x| (i, x * 3));
            let expect: Vec<(usize, usize)> =
                items.iter().map(|&x| (x, x * 3)).collect();
            prop_assert_eq!(out, expect);
        }
    }
}
