//! A work-stealing worker pool for embarrassingly parallel simulation.
//!
//! The campaign runner, the differential suite and the Fig. 11 harness
//! all fan out the same shape of work: a list of independent simulation
//! units (one `(chip, seed)` run, one `(chip, test)` diff) whose results
//! must be reassembled *in input order* so every report is byte-identical
//! to a serial run. Before this pool each caller hand-rolled its own
//! fan-out (one scoped thread per chip), which bounded the speedup by the
//! slowest chip and left cores idle at the tail. [`run_indexed`] replaces
//! those with one shared scheme:
//!
//! * Each worker owns a deque seeded round-robin with unit indices; it
//!   pops its own work from the front and, when empty, steals from the
//!   *back* of a sibling's deque (classic Chase–Lev shape, mutex-guarded
//!   — contention is one lock op per unit, and a unit is a whole kernel
//!   run, so the lock is invisible in profiles).
//! * Workers return `(index, result)` pairs; the pool sorts the merged
//!   vector by index. Determinism does not depend on scheduling: every
//!   simulator sink (cycle counter, trace ring, commit-cache stats,
//!   contract mode, injection engine) is thread-local, so a unit's result
//!   is bit-identical no matter which worker runs it or in what order —
//!   the ordered merge then makes the whole-run output byte-identical to
//!   `threads = 1`.
//! * `threads <= 1` (or a single unit) short-circuits to a plain serial
//!   loop on the calling thread: the serial path *is* the reference
//!   semantics, not a special case.
//!
//! Workers release their thread-local trace/record buffers on exit (see
//! `tt_hw::trace::release_thread_buffers`), so a pool invocation leaks
//! nothing even though those buffers live in no-`Drop`-glue TLS cells.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Worker count used when the caller does not pin one: `TT_BENCH_THREADS`
/// if set to a positive integer, otherwise the machine's available
/// parallelism.
pub fn default_threads() -> usize {
    std::env::var("TT_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Pops the next unit index for worker `w`: its own deque first (front),
/// then a steal sweep over the siblings (back).
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("pool queue").pop_front() {
        return Some(i);
    }
    for off in 1..queues.len() {
        let q = (w + off) % queues.len();
        if let Some(i) = queues[q].lock().expect("pool queue").pop_back() {
            return Some(i);
        }
    }
    None
}

/// Runs `f(index, &items[index])` for every item on a work-stealing pool
/// of `threads` workers and returns the results **in item order**.
///
/// With `threads <= 1` the items run serially on the calling thread. A
/// panicking unit propagates the panic to the caller after the scope
/// joins, like the serial loop would.
pub fn run_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..items.len() {
        queues[i % workers].lock().expect("pool queue").push_back(i);
    }
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let f = &f;
                scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    while let Some(i) = next_job(queues, w) {
                        out.push((i, f(i, &items[i])));
                    }
                    // The simulator's trace ring and method-record buffer
                    // live in TLS cells with no destructor; free them
                    // explicitly so the pool leaks nothing.
                    tt_hw::trace::release_thread_buffers();
                    tt_hw::cycles::release_thread_buffers();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn serial_and_parallel_agree_on_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = run_indexed(&items, 1, |i, &x| (i as u64) * 1_000 + x * x);
        for threads in [2, 3, 8, 64] {
            let parallel = run_indexed(&items, threads, |i, &x| (i as u64) * 1_000 + x * x);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert_eq!(run_indexed(&none, 8, |_, &x| x), Vec::<u32>::new());
        assert_eq!(run_indexed(&[7u32], 8, |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn more_threads_than_items_still_covers_every_item() {
        let items: Vec<usize> = (0..5).collect();
        assert_eq!(run_indexed(&items, 32, |_, &x| x + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn thread_local_sim_state_stays_per_worker() {
        // Each unit charges its own cycle count from a reset counter; a
        // shared counter would interleave across workers and break this.
        let items: Vec<u64> = (0..32).collect();
        let results = run_indexed(&items, 4, |_, &n| {
            tt_hw::cycles::reset();
            tt_hw::cycles::charge_n(tt_hw::cycles::Cost::Alu, n);
            tt_hw::cycles::now()
        });
        assert_eq!(results, items);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            run_indexed(&items, 4, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    proptest! {
        #[test]
        fn results_always_in_input_order(
            len in 0usize..80,
            threads in 1usize..12,
        ) {
            let items: Vec<usize> = (0..len).collect();
            let out = run_indexed(&items, threads, |i, &x| (i, x * 3));
            let expect: Vec<(usize, usize)> =
                items.iter().map(|&x| (x, x * 3)).collect();
            prop_assert_eq!(out, expect);
        }
    }
}
