//! Trace normalization and the trace-equivalence oracle.
//!
//! The raw event stream from [`tt_hw::trace`] is *too* faithful for
//! cross-flavor comparison: the legacy and granular kernels legitimately
//! differ in region geometry (that is the paper's point — §3.2's
//! disagreement problem means the monolithic interface rounds region
//! extents differently than the granular one), so raw register values and
//! absolute process addresses cannot be expected to match. This module
//! defines two comparison scopes:
//!
//! * [`TraceScope::Full`] — keep every event, but canonicalize
//!   flavor-*irrelevant* detail: the order of register writes within one
//!   commit (a driver may program slots in any order; the hardware state
//!   after the commit is what matters). Use this to compare two runs of
//!   the *same* backend, e.g. `Legacy(Buggy)` vs `Legacy(Fixed)`, where
//!   a register-value divergence is precisely the bug.
//! * [`TraceScope::Observable`] — keep only what user code can observe:
//!   syscall sequencing and success/failure, context switches, upcall
//!   deliveries, bus faults, process lifecycle. Register values, commit
//!   internals, and geometry-dependent numbers (break addresses, memop
//!   results, buffer addresses) are erased, because they differ between
//!   flavors *by design* without being observable by a correct app. Use
//!   this to compare legacy vs granular runs of the same program.
//!
//! [`diff_traces`] compares two normalized streams and reports the first
//! divergent event with surrounding context — the debugging payload the
//! final-outcome differential oracle lacks.

pub use tt_hw::trace::{
    disable, enable, is_enabled, record, take, RecoveryStep, RegName, SwitchDir, SyscallKind,
    Trace, TraceEvent, NO_PID,
};

/// How aggressively [`normalize`] canonicalizes a trace before
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceScope {
    /// Same-backend comparison: keep register values, canonicalize only
    /// write order within one commit group.
    Full,
    /// Cross-flavor comparison: keep only app-observable behaviour.
    Observable,
}

/// Number of preceding (matching) events [`diff_traces`] attaches to a
/// divergence for context.
pub const DIVERGENCE_CONTEXT: usize = 6;

/// The first point where two normalized traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDivergence {
    /// Index into the normalized streams where they first differ.
    pub index: usize,
    /// Up to [`DIVERGENCE_CONTEXT`] matching events leading up to the
    /// divergence.
    pub context: Vec<TraceEvent>,
    /// The left stream's event at `index` (`None` if it ended).
    pub left: Option<TraceEvent>,
    /// The right stream's event at `index` (`None` if it ended).
    pub right: Option<TraceEvent>,
}

fn reg_write_key(ev: &TraceEvent) -> (u8, &'static str, u8, u32) {
    match ev {
        TraceEvent::RegWrite { reg, index, value } => {
            let (d, name) = match reg {
                RegName::Ctrl => (0, ""),
                RegName::Rnr => (1, ""),
                RegName::Rbar => (2, ""),
                RegName::Rasr => (3, ""),
                RegName::PmpCfg => (4, ""),
                RegName::PmpAddr => (5, ""),
                RegName::Staged(n) => (6, *n),
            };
            (d, name, *index, *value)
        }
        _ => unreachable!("reg_write_key on non-RegWrite"),
    }
}

/// Canonicalizes one trace for comparison under `scope`.
///
/// `Full`: runs of consecutive [`TraceEvent::RegWrite`]s (one commit's
/// writes) are sorted by (register, index, value) so that two backends
/// programming the same hardware state in different slot order compare
/// equal — final hardware state, not write order, is what isolation
/// depends on. `RNR` writes are dropped entirely: they select a slot
/// (the subsequent data write carries the slot index) and some drivers
/// use the RBAR `VALID` shortcut instead.
///
/// `Observable`: register-level and allocator-internal events are
/// dropped, and geometry-dependent payloads are masked (see module
/// docs).
pub fn normalize(events: &[TraceEvent], scope: TraceScope) -> Vec<TraceEvent> {
    match scope {
        TraceScope::Full => {
            let mut out: Vec<TraceEvent> = Vec::with_capacity(events.len());
            let mut run_start: Option<usize> = None;
            for ev in events {
                match ev {
                    TraceEvent::RegWrite {
                        reg: RegName::Rnr, ..
                    } => {}
                    TraceEvent::RegWrite { .. } => {
                        if run_start.is_none() {
                            run_start = Some(out.len());
                        }
                        out.push(*ev);
                    }
                    _ => {
                        if let Some(s) = run_start.take() {
                            out[s..].sort_by(|a, b| reg_write_key(a).cmp(&reg_write_key(b)));
                        }
                        out.push(*ev);
                    }
                }
            }
            if let Some(s) = run_start.take() {
                out[s..].sort_by(|a, b| reg_write_key(a).cmp(&reg_write_key(b)));
            }
            out
        }
        TraceScope::Observable => events.iter().filter_map(observable_event).collect(),
    }
}

/// The `Observable`-scope normalization of a single event: `None` when
/// the event is dropped from the observable stream, otherwise the event
/// with geometry-dependent payloads masked.
///
/// `normalize(events, Observable)` is exactly
/// `events.iter().filter_map(observable_event)` — the per-event function
/// is public so callers that only need an equality verdict (the fleet
/// oracle's fast path) can stream one event at a time against a
/// reference instead of materializing the normalized vector.
pub fn observable_event(ev: &TraceEvent) -> Option<TraceEvent> {
    match *ev {
        TraceEvent::RegWrite { .. } | TraceEvent::AllocatorCommit { .. } => None,
        // The injection event marks where the *hardware model*
        // introduced a fault — it is not app-observable, and the
        // campaign compares injected runs against uninjected
        // references, so it must not diverge the stream by itself.
        // (Kernel-level recovery events — `ProcessKill`,
        // `Recovery` — stay: both flavors emit them identically.)
        TraceEvent::FaultInjected { .. } => None,
        // Interrupt entry/exit marks where the *schedule explorer* forced
        // a timer interrupt to arrive early — pure timing, invisible to
        // app code. The explorer's oracle compares scheduled runs against
        // an unscheduled reference, so the markers must not diverge the
        // observable stream by themselves; what the ISR *does* (restarts,
        // faults, upcalls) still shows through its own events.
        TraceEvent::IrqEnter { .. } | TraceEvent::IrqExit { .. } => None,
        TraceEvent::SyscallEnter {
            pid,
            call,
            arg0,
            arg1,
            arg2,
        } => {
            // Mask geometry-dependent arguments: break targets and
            // buffer addresses depend on where the flavor's
            // allocator placed and rounded the process block.
            let (arg0, arg1, arg2) = match call {
                SyscallKind::Brk | SyscallKind::Sbrk => (0, 0, 0),
                SyscallKind::AllowRo | SyscallKind::AllowRw => (0, arg1, arg2),
                _ => (arg0, arg1, arg2),
            };
            Some(TraceEvent::SyscallEnter {
                pid,
                call,
                arg0,
                arg1,
                arg2,
            })
        }
        TraceEvent::SyscallExit {
            pid,
            call,
            ok,
            value,
        } => {
            // Mask geometry-dependent results (addresses, sizes).
            let value = match call {
                SyscallKind::Brk | SyscallKind::Sbrk | SyscallKind::Memop => 0,
                _ => value,
            };
            Some(TraceEvent::SyscallExit {
                pid,
                call,
                ok,
                value,
            })
        }
        // Fault addresses are where the *hardware* stopped the
        // access; for in-block probes the stop point is the
        // flavor's accessible extent. Keep the event, mask the
        // address.
        TraceEvent::BusFault { pid, write, .. } => Some(TraceEvent::BusFault {
            pid,
            addr: 0,
            write,
        }),
        other => Some(other),
    }
}

/// Normalizes both traces under `scope` and returns the first index where
/// they disagree, or `None` if the normalized streams are identical.
pub fn diff_traces(left: &Trace, right: &Trace, scope: TraceScope) -> Option<TraceDivergence> {
    let l = normalize(&left.events, scope);
    let r = normalize(&right.events, scope);
    let n = l.len().min(r.len());
    let index = (0..n).find(|&i| l[i] != r[i]).unwrap_or(n);
    if index == n && l.len() == r.len() {
        return None;
    }
    let ctx_start = index.saturating_sub(DIVERGENCE_CONTEXT);
    Some(TraceDivergence {
        index,
        context: l[ctx_start..index].to_vec(),
        left: l.get(index).copied(),
        right: r.get(index).copied(),
    })
}

/// One-line rendering of an event for reports and dumps.
pub fn render_event(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::SyscallEnter {
            pid,
            call,
            arg0,
            arg1,
            arg2,
        } => format!("pid{pid} enter {call:?}({arg0:#x}, {arg1:#x}, {arg2:#x})"),
        TraceEvent::SyscallExit {
            pid,
            call,
            ok,
            value,
        } => format!(
            "pid{pid} exit  {call:?} -> {} ({value:#x})",
            if ok { "ok" } else { "err" }
        ),
        TraceEvent::ContextSwitch { pid, dir } => format!("pid{pid} switch {dir:?}"),
        TraceEvent::MpuCommit { pid } => format!("pid{pid} mpu commit"),
        TraceEvent::AllocatorCommit { regions } => {
            format!("allocator commit ({regions} regions)")
        }
        TraceEvent::RegWrite { reg, index, value } => match reg {
            RegName::Staged(name) => format!("reg write {name}[{index}] = {value:#010x}"),
            _ => format!("reg write {reg:?}[{index}] = {value:#010x}"),
        },
        TraceEvent::BusFault { pid, addr, write } => format!(
            "pid{pid} BUS FAULT {} {addr:#010x}",
            if write { "write" } else { "read" }
        ),
        TraceEvent::UpcallDeliver { pid, driver, value } => {
            format!("pid{pid} upcall driver={driver} value={value:#x}")
        }
        TraceEvent::ProcessLoad { pid } => format!("pid{pid} loaded"),
        TraceEvent::ProcessRestart { pid } => format!("pid{pid} restarted"),
        TraceEvent::ProcessFault { pid } => format!("pid{pid} FAULTED"),
        TraceEvent::ProcessKill { pid } => format!("pid{pid} KILLED"),
        TraceEvent::Recovery { pid, step } => match step {
            RecoveryStep::BackoffScheduled { delay } => {
                format!("pid{pid} recovery: restart in {delay} ticks (backoff)")
            }
            RecoveryStep::GrantsReclaimed => format!("pid{pid} recovery: grants reclaimed"),
            RecoveryStep::StateRederived => format!("pid{pid} recovery: state re-derived"),
            RecoveryStep::RestartExhausted => format!("pid{pid} recovery: restart cap exhausted"),
        },
        TraceEvent::FaultInjected { pid, point, info } => {
            format!("pid{pid} FAULT INJECTED at {point:?} (info={info:#x})")
        }
        TraceEvent::IrqEnter { pid, point } => format!("pid{pid} IRQ enter at {point:?}"),
        TraceEvent::IrqExit { pid } => format!("pid{pid} IRQ exit"),
        TraceEvent::IdleExit => "scheduler idle exit (all yielded, nothing pending)".to_string(),
    }
}

/// The process a trace event is attributed to, if it carries one.
/// Register-level and allocator-internal events carry none.
pub fn event_pid(ev: &TraceEvent) -> Option<u32> {
    match *ev {
        TraceEvent::SyscallEnter { pid, .. }
        | TraceEvent::SyscallExit { pid, .. }
        | TraceEvent::ContextSwitch { pid, .. }
        | TraceEvent::MpuCommit { pid }
        | TraceEvent::BusFault { pid, .. }
        | TraceEvent::UpcallDeliver { pid, .. }
        | TraceEvent::ProcessLoad { pid }
        | TraceEvent::ProcessRestart { pid }
        | TraceEvent::ProcessFault { pid }
        | TraceEvent::ProcessKill { pid }
        | TraceEvent::Recovery { pid, .. }
        | TraceEvent::FaultInjected { pid, .. }
        | TraceEvent::IrqEnter { pid, .. }
        | TraceEvent::IrqExit { pid } => Some(pid),
        // `IdleExit` is a kernel-global marker, deliberately unattributed
        // so the per-pid bystander streams are unaffected by it.
        TraceEvent::RegWrite { .. } | TraceEvent::AllocatorCommit { .. } | TraceEvent::IdleExit => {
            None
        }
    }
}

/// Normalizes a trace under `scope` and keeps only the events attributed
/// to `pid`. This is the fault campaign's bystander oracle: a process the
/// injection plan does not target must produce exactly the same
/// per-process observable stream as in an uninjected reference run.
pub fn normalize_for_pid(events: &[TraceEvent], scope: TraceScope, pid: u32) -> Vec<TraceEvent> {
    normalize(events, scope)
        .into_iter()
        .filter(|ev| event_pid(ev) == Some(pid))
        .collect()
}

/// Renders a divergence: the shared context, then the two sides' first
/// differing events, labelled.
pub fn render_divergence(d: &TraceDivergence, left_name: &str, right_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("first divergent event at index {}:\n", d.index));
    for (i, ev) in d.context.iter().enumerate() {
        let idx = d.index - d.context.len() + i;
        out.push_str(&format!("    [{idx}] {}\n", render_event(ev)));
    }
    match &d.left {
        Some(ev) => out.push_str(&format!("  {left_name:>9}: {}\n", render_event(ev))),
        None => out.push_str(&format!("  {left_name:>9}: <end of trace>\n")),
    }
    match &d.right {
        Some(ev) => out.push_str(&format!("  {right_name:>9}: {}\n", render_event(ev))),
        None => out.push_str(&format!("  {right_name:>9}: <end of trace>\n")),
    }
    out
}

/// Renders a full trace dump, one event per line, with indices.
pub fn render_trace(trace: &Trace) -> String {
    let mut out = String::new();
    if trace.dropped > 0 {
        out.push_str(&format!(
            "... {} earlier events dropped by ring wraparound ...\n",
            trace.dropped
        ));
    }
    for (i, ev) in trace.events.iter().enumerate() {
        out.push_str(&format!("[{i:5}] {}\n", render_event(ev)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw(reg: RegName, index: u8, value: u32) -> TraceEvent {
        TraceEvent::RegWrite { reg, index, value }
    }

    fn commit(pid: u32) -> TraceEvent {
        TraceEvent::MpuCommit { pid }
    }

    #[test]
    fn full_scope_sorts_register_writes_within_one_commit() {
        // Same hardware state, different programming order.
        let a = vec![
            commit(0),
            rw(RegName::Rbar, 0, 0x2000_0000),
            rw(RegName::Rasr, 0, 0x11),
            rw(RegName::Rbar, 2, 0x0004_0000),
            rw(RegName::Rasr, 2, 0x22),
            commit(1),
        ];
        let b = vec![
            commit(0),
            rw(RegName::Rbar, 2, 0x0004_0000),
            rw(RegName::Rasr, 2, 0x22),
            rw(RegName::Rbar, 0, 0x2000_0000),
            rw(RegName::Rasr, 0, 0x11),
            commit(1),
        ];
        assert_eq!(
            normalize(&a, TraceScope::Full),
            normalize(&b, TraceScope::Full)
        );
    }

    #[test]
    fn full_scope_drops_rnr_selector_writes() {
        let a = vec![
            rw(RegName::Rnr, 1, 1),
            rw(RegName::Rasr, 1, 0x11),
            commit(0),
        ];
        let b = vec![rw(RegName::Rasr, 1, 0x11), commit(0)];
        assert_eq!(
            normalize(&a, TraceScope::Full),
            normalize(&b, TraceScope::Full)
        );
    }

    #[test]
    fn full_scope_does_not_sort_across_commit_boundaries() {
        // Different values in different commits must stay different.
        let a = vec![rw(RegName::Rasr, 0, 1), commit(0), rw(RegName::Rasr, 0, 2)];
        let b = vec![rw(RegName::Rasr, 0, 2), commit(0), rw(RegName::Rasr, 0, 1)];
        assert_ne!(
            normalize(&a, TraceScope::Full),
            normalize(&b, TraceScope::Full)
        );
    }

    #[test]
    fn full_scope_detects_differing_register_values() {
        let a = vec![commit(0), rw(RegName::Rasr, 0, 0x11)];
        let b = vec![commit(0), rw(RegName::Rasr, 0, 0xFF)];
        let ta = Trace {
            events: a,
            dropped: 0,
        };
        let tb = Trace {
            events: b,
            dropped: 0,
        };
        let d = diff_traces(&ta, &tb, TraceScope::Full).expect("divergence");
        assert_eq!(d.index, 1);
        assert!(matches!(
            d.left,
            Some(TraceEvent::RegWrite {
                reg: RegName::Rasr,
                ..
            })
        ));
    }

    #[test]
    fn observable_scope_drops_register_and_allocator_events() {
        let a = vec![
            commit(0),
            TraceEvent::AllocatorCommit { regions: 3 },
            rw(RegName::PmpAddr, 0, 0x1234),
            rw(RegName::PmpCfg, 0, 0x0F),
        ];
        let b = vec![
            commit(0),
            rw(RegName::Rbar, 0, 0x2000_0000),
            rw(RegName::Rasr, 0, 0x11),
        ];
        let ta = Trace {
            events: a,
            dropped: 0,
        };
        let tb = Trace {
            events: b,
            dropped: 0,
        };
        assert_eq!(diff_traces(&ta, &tb, TraceScope::Observable), None);
    }

    #[test]
    fn observable_scope_masks_break_addresses_but_keeps_outcomes() {
        let enter = |arg0| TraceEvent::SyscallEnter {
            pid: 0,
            call: SyscallKind::Brk,
            arg0,
            arg1: 0,
            arg2: 0,
        };
        let a = vec![enter(0x2000_1000)];
        let b = vec![enter(0x2000_2000)];
        assert_eq!(
            normalize(&a, TraceScope::Observable),
            normalize(&b, TraceScope::Observable)
        );
        // …but a success/failure difference still diverges.
        let exit = |ok| TraceEvent::SyscallExit {
            pid: 0,
            call: SyscallKind::Brk,
            ok,
            value: 0,
        };
        let ta = Trace {
            events: vec![exit(true)],
            dropped: 0,
        };
        let tb = Trace {
            events: vec![exit(false)],
            dropped: 0,
        };
        assert!(diff_traces(&ta, &tb, TraceScope::Observable).is_some());
    }

    #[test]
    fn diff_reports_tail_divergence_when_one_trace_is_longer() {
        let shared = vec![commit(0), commit(1)];
        let mut longer = shared.clone();
        longer.push(TraceEvent::ProcessFault { pid: 0 });
        let ta = Trace {
            events: shared,
            dropped: 0,
        };
        let tb = Trace {
            events: longer,
            dropped: 0,
        };
        let d = diff_traces(&ta, &tb, TraceScope::Full).expect("divergence");
        assert_eq!(d.index, 2);
        assert_eq!(d.left, None);
        assert_eq!(d.right, Some(TraceEvent::ProcessFault { pid: 0 }));
        assert_eq!(d.context.len(), 2);
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let events = vec![commit(0), rw(RegName::Rasr, 0, 1)];
        let t = Trace { events, dropped: 0 };
        assert_eq!(diff_traces(&t, &t.clone(), TraceScope::Full), None);
        assert_eq!(diff_traces(&t, &t.clone(), TraceScope::Observable), None);
    }

    #[test]
    fn observable_scope_drops_injection_events_but_keeps_recovery() {
        let injected = vec![
            commit(0),
            TraceEvent::FaultInjected {
                pid: 0,
                point: tt_hw::injection::InjectionPoint::ArmRasr,
                info: 4,
            },
            TraceEvent::ProcessFault { pid: 0 },
            TraceEvent::Recovery {
                pid: 0,
                step: RecoveryStep::GrantsReclaimed,
            },
        ];
        let reference = vec![
            commit(0),
            TraceEvent::ProcessFault { pid: 0 },
            TraceEvent::Recovery {
                pid: 0,
                step: RecoveryStep::GrantsReclaimed,
            },
        ];
        assert_eq!(
            normalize(&injected, TraceScope::Observable),
            normalize(&reference, TraceScope::Observable)
        );
        // A missing recovery step still diverges.
        let missing = vec![commit(0), TraceEvent::ProcessFault { pid: 0 }];
        assert_ne!(
            normalize(&injected, TraceScope::Observable),
            normalize(&missing, TraceScope::Observable)
        );
    }

    #[test]
    fn per_pid_filter_keeps_only_the_named_process() {
        let events = vec![
            commit(0),
            commit(1),
            TraceEvent::ProcessKill { pid: 1 },
            rw(RegName::Rasr, 0, 1),
            TraceEvent::ProcessFault { pid: 0 },
        ];
        assert_eq!(
            normalize_for_pid(&events, TraceScope::Observable, 1),
            vec![commit(1), TraceEvent::ProcessKill { pid: 1 }]
        );
        assert_eq!(
            normalize_for_pid(&events, TraceScope::Observable, 0),
            vec![commit(0), TraceEvent::ProcessFault { pid: 0 }]
        );
    }

    #[test]
    fn new_event_kinds_render() {
        let evs = [
            (TraceEvent::ProcessKill { pid: 2 }, "KILLED"),
            (
                TraceEvent::Recovery {
                    pid: 2,
                    step: RecoveryStep::BackoffScheduled { delay: 8 },
                },
                "restart in 8 ticks",
            ),
            (
                TraceEvent::Recovery {
                    pid: 2,
                    step: RecoveryStep::RestartExhausted,
                },
                "cap exhausted",
            ),
            (
                TraceEvent::FaultInjected {
                    pid: 2,
                    point: tt_hw::injection::InjectionPoint::PmpCfg,
                    info: 3,
                },
                "FAULT INJECTED at PmpCfg",
            ),
        ];
        for (ev, needle) in evs {
            let line = render_event(&ev);
            assert!(line.contains(needle), "{line:?} missing {needle:?}");
            assert!(line.contains("pid2"));
        }
    }

    #[test]
    fn observable_scope_drops_irq_markers_but_keeps_idle_exit() {
        let scheduled = vec![
            commit(0),
            TraceEvent::IrqEnter {
                pid: 0,
                point: tt_hw::sched::ArrivalPoint::MpuCommit,
            },
            TraceEvent::IrqExit { pid: 0 },
            TraceEvent::IdleExit,
        ];
        let reference = vec![commit(0), TraceEvent::IdleExit];
        assert_eq!(
            normalize(&scheduled, TraceScope::Observable),
            normalize(&reference, TraceScope::Observable)
        );
        // A run that completed cleanly (no IdleExit) must diverge from a
        // wedged one — that is the marker's whole point.
        let clean = vec![commit(0)];
        assert_ne!(
            normalize(&scheduled, TraceScope::Observable),
            normalize(&clean, TraceScope::Observable)
        );
    }

    #[test]
    fn irq_markers_are_pid_attributed_and_idle_exit_is_not() {
        assert_eq!(
            event_pid(&TraceEvent::IrqEnter {
                pid: 3,
                point: tt_hw::sched::ArrivalPoint::SyscallEnter,
            }),
            Some(3)
        );
        assert_eq!(event_pid(&TraceEvent::IrqExit { pid: 3 }), Some(3));
        assert_eq!(event_pid(&TraceEvent::IdleExit), None);
        // Rendering smoke test for the new kinds.
        let line = render_event(&TraceEvent::IrqEnter {
            pid: 3,
            point: tt_hw::sched::ArrivalPoint::SyscallExit,
        });
        assert!(line.contains("IRQ enter") && line.contains("pid3"));
        assert!(render_event(&TraceEvent::IdleExit).contains("idle exit"));
    }

    #[test]
    fn render_divergence_names_both_sides() {
        let d = TraceDivergence {
            index: 1,
            context: vec![commit(0)],
            left: Some(rw(RegName::Rasr, 0, 0x11)),
            right: Some(rw(RegName::Rasr, 0, 0xFF)),
        };
        let s = render_divergence(&d, "tock", "ticktock");
        assert!(s.contains("tock"));
        assert!(s.contains("ticktock"));
        assert!(s.contains("Rasr"));
        assert!(s.contains("index 1"));
    }
}
