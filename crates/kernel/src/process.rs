//! The process abstraction, generic over kernel flavour *and* chip.
//!
//! To reproduce the paper's evaluation, every process operation exists in
//! two flavours behind one interface — the **legacy** backends drive
//! Tock's monolithic MPU abstraction (with its recomputation patterns),
//! the **granular** backends drive TickTock's allocator — and on two
//! architectures (Cortex-M MPU, RISC-V PMP), mirroring the paper's ARM
//! board + QEMU RISC-V setup. Figure 11's six instrumented methods
//! (`create`, `brk`, `allocate_grant`, `build_readonly_buffer`,
//! `build_readwrite_buffer`, `setup_mpu`) are the methods of this module,
//! cycle-charged through `tt_hw::cycles`.

use crate::loader::AppImage;
use crate::machine::{CommitCache, Machine, MachineKind};
use std::fmt;
use std::rc::Rc;
use ticktock::allocator::{AppMemoryAllocator, UpdateError};
use ticktock::cortexm::GranularCortexM;
use ticktock::mpu::Mpu;
use ticktock::riscv::GranularPmp;
use tt_hw::cycles::{charge_n, Cost};
use tt_hw::{Permissions, PtrU8};
use tt_legacy::mpu_trait::LegacyMpu;
use tt_legacy::process::recompute_breaks;
use tt_legacy::riscv::PmpConfig;
use tt_legacy::{BugVariant, CortexMConfig, LegacyCortexM, LegacyRiscv};

/// Which kernel flavour a process (and its kernel) runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Tock's original monolithic kernel, with the chosen bug variant.
    Legacy(BugVariant),
    /// TickTock's granular kernel.
    Granular,
}

impl Flavor {
    /// Display name used in differential-test reports.
    pub fn name(&self) -> &'static str {
        match self {
            Flavor::Legacy(BugVariant::Buggy) => "tock(buggy)",
            Flavor::Legacy(BugVariant::Fixed) => "tock",
            Flavor::Granular => "ticktock",
        }
    }
}

/// Run state of a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessState {
    /// Ready to run.
    Ready,
    /// Yielded, waiting for an upcall.
    Yielded,
    /// Exited normally.
    Exited,
    /// Faulted (MPU violation or kernel-detected error).
    Faulted(String),
    /// Permanently killed by the fault policy (restart cap exhausted or
    /// [`crate::kernel::FaultPolicy::Kill`]). Never scheduled again.
    Killed,
}

/// Errors from process operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessError {
    /// Out of memory (pool, block or grant space).
    NoMemory,
    /// Invalid syscall parameters.
    Invalid,
}

/// The flavour/architecture-specific memory backend of a process.
///
/// Object-safe so [`Process`] can hold any of the four combinations
/// (legacy/granular × MPU/PMP) behind one `Box`.
trait MemoryOps: fmt::Debug {
    /// Start of the process memory block.
    fn memory_start(&self) -> usize;
    /// Total block size (process RAM + grant region).
    fn memory_size(&self) -> usize;
    /// Current app break.
    fn app_break(&self) -> usize;
    /// Current kernel break (grant-region bottom).
    fn kernel_break(&self) -> usize;
    /// Process flash placement (start, size).
    fn flash(&self) -> (usize, usize);
    /// Move the app break.
    fn brk(&mut self, new_break: PtrU8) -> Result<(), ProcessError>;
    /// Allocate grant memory (moves the kernel break down).
    fn allocate_grant(&mut self, size: usize) -> Result<PtrU8, ProcessError>;
    /// Validate a process buffer against the accessible RAM.
    fn buffer_in_ram(&self, addr: PtrU8, len: usize) -> bool;
    /// Write the staged configuration into the hardware.
    fn setup_mpu(&self);
    /// The commit-cache hit verdict *without* acting on it: `true` when
    /// the live register file already holds this backend's configuration
    /// at the current allocator generation, i.e. a commit could be
    /// elided right now. Never stamps or invalidates the cache. Backends
    /// without a cached commit path (legacy) always answer `false`.
    fn mpu_ready(&self) -> bool {
        false
    }
    /// Re-arms protection only (one `MPU_CTRL` write on ARM, nothing on
    /// PMP) *without* committing the staged configuration — the second
    /// half of a hit-elided commit, split out from [`Self::setup_mpu`].
    /// Only sound when [`Self::mpu_ready`] holds at the moment of the
    /// call; the deliberately planted commit-window bug
    /// (`Kernel::commit_window_bug`) consists of acting on a *stale*
    /// verdict across an interrupt window. Backends without an elided
    /// path fall back to a full commit.
    fn rearm_mpu(&self) {
        self.setup_mpu();
    }
    /// Scrub fault-recovery: reclaim grant memory and re-derive the
    /// staged protection state from the surviving break pointers.
    fn recover(&mut self) -> bool;
    /// Whether the live register file still matches the staged
    /// configuration (always `true` for backends without a staged view).
    fn mpu_consistent(&self) -> bool {
        true
    }
    /// Deep-copies the backend behind the trait object. The copy shares
    /// the original's machine handles (hardware `Rc`, commit cache) so a
    /// clone restored by `tt_kernel::snapshot` drives the same simulated
    /// hardware; everything else — staged config, breaks, allocator
    /// (generation included) — is an independent copy.
    fn clone_box(&self) -> Box<dyn MemoryOps>;
}

// ---------------------------------------------------------------------
// Legacy Cortex-M backend (monolithic, Fig. 4a).
// ---------------------------------------------------------------------

#[derive(Clone)]
struct LegacyArm {
    mpu: LegacyCortexM,
    config: CortexMConfig,
    memory_start: usize,
    memory_size: usize,
    app_break: usize,
    kernel_break: usize,
    flash: (usize, usize),
    /// The machine's commit cache. Legacy commits carry no generation, so
    /// every hardware write-out invalidates it — the legacy flavor stays
    /// the byte-for-byte differential baseline, never a cache user.
    cache: Rc<CommitCache>,
}

impl fmt::Debug for LegacyArm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LegacyArm")
            .field("memory_start", &self.memory_start)
            .field("app_break", &self.app_break)
            .finish_non_exhaustive()
    }
}

impl MemoryOps for LegacyArm {
    fn memory_start(&self) -> usize {
        self.memory_start
    }
    fn memory_size(&self) -> usize {
        self.memory_size
    }
    fn app_break(&self) -> usize {
        self.app_break
    }
    fn kernel_break(&self) -> usize {
        self.kernel_break
    }
    fn flash(&self) -> (usize, usize) {
        self.flash
    }

    fn brk(&mut self, new_break: PtrU8) -> Result<(), ProcessError> {
        self.mpu
            .update_app_mem_region(
                new_break,
                PtrU8::new(self.kernel_break),
                Permissions::ReadWriteOnly,
                &mut self.config,
            )
            .map_err(|_| ProcessError::Invalid)?;
        self.app_break = new_break.as_usize();
        // Tock's brk path includes "an unnecessary call to setup_mpu"
        // (§6.2) — reproduce it.
        self.cache.invalidate();
        self.mpu.configure_mpu(&self.config);
        Ok(())
    }

    fn allocate_grant(&mut self, size: usize) -> Result<PtrU8, ProcessError> {
        // The legacy kernel re-derives the geometry and recomputes the
        // whole MPU configuration to move the kernel break (§3.2's
        // redundant work, the 2× of Fig. 11).
        charge_n(Cost::Alu, 4);
        let new_kb = (self
            .kernel_break
            .checked_sub(size)
            .ok_or(ProcessError::NoMemory)?)
            & !7;
        if new_kb <= self.app_break {
            return Err(ProcessError::NoMemory);
        }
        self.mpu
            .update_app_mem_region(
                PtrU8::new(self.app_break),
                PtrU8::new(new_kb),
                Permissions::ReadWriteOnly,
                &mut self.config,
            )
            .map_err(|_| ProcessError::NoMemory)?;
        self.cache.invalidate();
        self.mpu.configure_mpu(&self.config);
        self.kernel_break = new_kb;
        Ok(PtrU8::new(new_kb))
    }

    fn buffer_in_ram(&self, addr: PtrU8, len: usize) -> bool {
        // The legacy check re-derives the block geometry from the raw MPU
        // registers, then walks the subregion masks in a loop to find the
        // accessible end — work the granular kernel replaces with two
        // compares against `AppBreaks`.
        let Some((start, region_size)) = self.config.ram_region_geometry() else {
            return false;
        };
        let mut accessible_end = start;
        for i in 0..16usize {
            charge_n(Cost::Branch, 1);
            let region = &self.config.regions[if i < 8 { 0 } else { 1 }];
            if !region.set && i >= 8 {
                break;
            }
            let srd = (region.rasr >> 8) & 0xFF;
            if srd & (1 << (i % 8)) == 0 {
                accessible_end = start + (i + 1) * (region_size / 8);
            }
        }
        charge_n(Cost::Alu, 3);
        charge_n(Cost::Branch, 2);
        let Some(end) = addr.as_usize().checked_add(len) else {
            return false;
        };
        addr.as_usize() >= start && end <= accessible_end.min(self.app_break)
    }

    fn setup_mpu(&self) {
        self.cache.invalidate();
        self.mpu.configure_mpu(&self.config);
    }

    fn recover(&mut self) -> bool {
        // Legacy recovery is coarse: pull the kernel break back to the
        // block top (grants reclaimed); the monolithic config is rebuilt
        // wholesale on the restart that follows.
        self.kernel_break = self.memory_start + self.memory_size;
        true
    }

    fn clone_box(&self) -> Box<dyn MemoryOps> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// Legacy RISC-V backend (monolithic PMP).
// ---------------------------------------------------------------------

#[derive(Clone)]
struct LegacyRv {
    mpu: LegacyRiscv,
    config: PmpConfig,
    memory_start: usize,
    memory_size: usize,
    app_break: usize,
    kernel_break: usize,
    flash: (usize, usize),
    /// See [`LegacyArm::cache`]: legacy write-outs invalidate, never hit.
    cache: Rc<CommitCache>,
}

impl fmt::Debug for LegacyRv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LegacyRv")
            .field("memory_start", &self.memory_start)
            .field("app_break", &self.app_break)
            .finish_non_exhaustive()
    }
}

impl MemoryOps for LegacyRv {
    fn memory_start(&self) -> usize {
        self.memory_start
    }
    fn memory_size(&self) -> usize {
        self.memory_size
    }
    fn app_break(&self) -> usize {
        self.app_break
    }
    fn kernel_break(&self) -> usize {
        self.kernel_break
    }
    fn flash(&self) -> (usize, usize) {
        self.flash
    }

    fn brk(&mut self, new_break: PtrU8) -> Result<(), ProcessError> {
        self.mpu
            .update_app_mem_region(
                new_break,
                PtrU8::new(self.kernel_break),
                Permissions::ReadWriteOnly,
                &mut self.config,
            )
            .map_err(|_| ProcessError::Invalid)?;
        self.app_break = new_break.as_usize();
        self.cache.invalidate();
        self.mpu.configure_mpu(&self.config); // The same redundant call.
        Ok(())
    }

    fn allocate_grant(&mut self, size: usize) -> Result<PtrU8, ProcessError> {
        charge_n(Cost::Alu, 4);
        let new_kb = (self
            .kernel_break
            .checked_sub(size)
            .ok_or(ProcessError::NoMemory)?)
            & !7;
        if new_kb <= self.app_break {
            return Err(ProcessError::NoMemory);
        }
        self.mpu
            .update_app_mem_region(
                PtrU8::new(self.app_break),
                PtrU8::new(new_kb),
                Permissions::ReadWriteOnly,
                &mut self.config,
            )
            .map_err(|_| ProcessError::NoMemory)?;
        self.cache.invalidate();
        self.mpu.configure_mpu(&self.config);
        self.kernel_break = new_kb;
        Ok(PtrU8::new(new_kb))
    }

    fn buffer_in_ram(&self, addr: PtrU8, len: usize) -> bool {
        // Re-derive the accessible bound from the staged TOR entries.
        charge_n(Cost::Load, 4);
        charge_n(Cost::Alu, 6);
        let lo = (self.config.entries[tt_legacy::riscv::RAM_ENTRY_BASE].1 as usize) << 2;
        let hi = (self.config.entries[tt_legacy::riscv::RAM_ENTRY_BASE + 1].1 as usize) << 2;
        charge_n(Cost::Branch, 2);
        let Some(end) = addr.as_usize().checked_add(len) else {
            return false;
        };
        addr.as_usize() >= lo && end <= hi.min(self.app_break)
    }

    fn setup_mpu(&self) {
        self.cache.invalidate();
        self.mpu.configure_mpu(&self.config);
    }

    fn recover(&mut self) -> bool {
        // See [`LegacyArm::recover`].
        self.kernel_break = self.memory_start + self.memory_size;
        true
    }

    fn clone_box(&self) -> Box<dyn MemoryOps> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// Granular backend, generic over the paper's MPU abstraction.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct Granular<M: Mpu + Clone> {
    mpu: M,
    alloc: AppMemoryAllocator<M>,
    /// This process's pid — the first half of the commit-cache key.
    pid: u32,
    /// The machine's commit cache, shared with every backend on the same
    /// protection unit.
    cache: Rc<CommitCache>,
}

impl<M: Mpu + Clone> fmt::Debug for Granular<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Granular")
            .field("breaks", &self.alloc.breaks)
            .finish_non_exhaustive()
    }
}

impl<M: Mpu + Clone + 'static> MemoryOps for Granular<M> {
    fn memory_start(&self) -> usize {
        self.alloc.breaks.memory_start.as_usize()
    }
    fn memory_size(&self) -> usize {
        self.alloc.breaks.memory_size
    }
    fn app_break(&self) -> usize {
        self.alloc.breaks.app_break.as_usize()
    }
    fn kernel_break(&self) -> usize {
        self.alloc.breaks.kernel_break.as_usize()
    }
    fn flash(&self) -> (usize, usize) {
        (
            self.alloc.breaks.flash_start.as_usize(),
            self.alloc.breaks.flash_size,
        )
    }

    fn brk(&mut self, new_break: PtrU8) -> Result<(), ProcessError> {
        match self.alloc.update_app_memory(new_break) {
            Ok(()) => Ok(()),
            Err(UpdateError::InvalidBreak) => Err(ProcessError::Invalid),
            Err(_) => Err(ProcessError::NoMemory),
        }
    }

    fn allocate_grant(&mut self, size: usize) -> Result<PtrU8, ProcessError> {
        self.alloc
            .allocate_grant(size)
            .map_err(|_| ProcessError::NoMemory)
    }

    fn buffer_in_ram(&self, addr: PtrU8, len: usize) -> bool {
        self.alloc.buffer_in_app_memory(addr, len)
    }

    fn setup_mpu(&self) {
        // The commit-cache hit path: the register file still holds this
        // process's configuration at this generation, so skip the commit
        // and only re-arm protection (one MPU_CTRL write on ARM, nothing
        // on PMP). Since PR 4 the hit path *verifies* rather than
        // assumes: the live registers must equal the staged logical view
        // (`hardware_matches` charges no cycles), so a register file
        // corrupted behind the cache's back — an injected bit flip — can
        // never be re-armed off a stale hit; it is recommitted instead.
        if self.cache.lookup(self.pid, self.alloc.generation()) {
            if self.mpu.hardware_matches(self.alloc.regions.as_slice()) {
                tt_contracts::invariant!(
                    "Process::setup_mpu cache hit: hardware == staged regions",
                    self.mpu.hardware_matches(self.alloc.regions.as_slice())
                );
                self.mpu.reenable_mpu();
                return;
            }
            self.cache.invalidate();
        }
        self.alloc.configure_mpu(&self.mpu);
        self.cache.note_committed(self.pid, self.alloc.generation());
    }

    fn mpu_ready(&self) -> bool {
        self.cache.lookup(self.pid, self.alloc.generation())
            && self.mpu.hardware_matches(self.alloc.regions.as_slice())
    }

    fn rearm_mpu(&self) {
        self.mpu.reenable_mpu();
    }

    fn recover(&mut self) -> bool {
        self.alloc.reclaim_grants().is_ok() && self.alloc.rederive_regions().is_ok()
    }

    fn mpu_consistent(&self) -> bool {
        self.mpu.hardware_matches(self.alloc.regions.as_slice())
    }

    fn clone_box(&self) -> Box<dyn MemoryOps> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// Process.
// ---------------------------------------------------------------------

/// A loaded process.
#[derive(Debug)]
pub struct Process {
    /// Process identifier.
    pub pid: usize,
    /// The app image this process was loaded from.
    pub image: AppImage,
    /// Run state.
    pub state: ProcessState,
    /// Console output accumulated via the console capsule.
    pub console: String,
    /// Read-only allowed buffer (addr, len), if any.
    pub allow_ro: Option<(PtrU8, usize)>,
    /// Read-write allowed buffer (addr, len), if any.
    pub allow_rw: Option<(PtrU8, usize)>,
    /// Grant allocations: (grant id, address, size).
    pub grants: Vec<(usize, PtrU8, usize)>,
    backend: Box<dyn MemoryOps>,
}

impl Clone for Process {
    /// Deep-copies the process for a machine snapshot. The clone's
    /// backend shares the snapshotted machine's hardware and commit-cache
    /// `Rc` handles (see `MemoryOps::clone_box`), so a restored process
    /// table keeps driving the machine the kernel already owns — restore
    /// never creates a second protection unit.
    fn clone(&self) -> Self {
        Self {
            pid: self.pid,
            image: self.image.clone(),
            state: self.state.clone(),
            console: self.console.clone(),
            allow_ro: self.allow_ro,
            allow_rw: self.allow_rw,
            grants: self.grants.clone(),
            backend: self.backend.clone_box(),
        }
    }
}

fn create_backend(
    pid: usize,
    flavor: Flavor,
    machine: &Machine,
    image: &AppImage,
    unalloc_start: PtrU8,
    unalloc_size: usize,
) -> Result<Box<dyn MemoryOps>, ProcessError> {
    // Every arm below commits a fresh configuration to the register file,
    // so whatever the cache thought was live is stale from here on. This
    // is what makes restart (and fault-policy respawn) invalidate: a
    // restarted process gets a new backend through this path.
    machine.cache().invalidate();
    match (flavor, machine.kind()) {
        (Flavor::Legacy(variant), MachineKind::CortexM(hw)) => {
            let mpu = LegacyCortexM::new(variant, std::rc::Rc::clone(hw));
            let mut config = CortexMConfig::default();
            let (start, size) = mpu
                .allocate_app_mem_region(
                    unalloc_start,
                    unalloc_size,
                    image.min_ram_size,
                    image.min_ram_size,
                    image.kernel_reserved,
                    Permissions::ReadWriteOnly,
                    &mut config,
                )
                .ok_or(ProcessError::NoMemory)?;
            mpu.allocate_flash_region(
                image.flash_start,
                image.flash_size,
                Permissions::ReadExecuteOnly,
                &mut config,
            )
            .ok_or(ProcessError::NoMemory)?;
            // The loader must now RECOMPUTE the layout (§3.2) …
            let breaks = recompute_breaks(
                start.as_usize(),
                size,
                image.min_ram_size,
                image.kernel_reserved,
            );
            // … and redundantly reconfigure the MPU after recomputing.
            mpu.configure_mpu(&config);
            Ok(Box::new(LegacyArm {
                mpu,
                config,
                memory_start: breaks.memory_start,
                memory_size: breaks.memory_size,
                app_break: breaks.app_break,
                // Grant allocations grow down from the block top; the
                // `kernel_reserved` bytes are a sizing budget, not a
                // pre-carved region.
                kernel_break: start.as_usize() + size,
                flash: (image.flash_start.as_usize(), image.flash_size),
                cache: Rc::clone(machine.cache()),
            }))
        }
        (Flavor::Legacy(variant), MachineKind::Pmp(hw)) => {
            let mpu = LegacyRiscv::new(variant, std::rc::Rc::clone(hw));
            let mut config = PmpConfig::default();
            let (start, size) = mpu
                .allocate_app_mem_region(
                    unalloc_start,
                    unalloc_size,
                    image.min_ram_size,
                    image.min_ram_size,
                    image.kernel_reserved,
                    Permissions::ReadWriteOnly,
                    &mut config,
                )
                .ok_or(ProcessError::NoMemory)?;
            mpu.allocate_flash_region(
                image.flash_start,
                image.flash_size,
                Permissions::ReadExecuteOnly,
                &mut config,
            )
            .ok_or(ProcessError::NoMemory)?;
            let breaks = recompute_breaks(
                start.as_usize(),
                size,
                image.min_ram_size,
                image.kernel_reserved,
            );
            mpu.configure_mpu(&config);
            Ok(Box::new(LegacyRv {
                mpu,
                config,
                memory_start: breaks.memory_start,
                memory_size: breaks.memory_size,
                app_break: breaks.app_break,
                kernel_break: start.as_usize() + size,
                flash: (image.flash_start.as_usize(), image.flash_size),
                cache: Rc::clone(machine.cache()),
            }))
        }
        (Flavor::Granular, MachineKind::CortexM(hw)) => {
            let mpu = GranularCortexM::new(std::rc::Rc::clone(hw));
            let alloc = AppMemoryAllocator::<GranularCortexM>::allocate_app_memory(
                unalloc_start,
                unalloc_size,
                image.min_ram_size,
                image.min_ram_size,
                image.kernel_reserved,
                image.flash_start,
                image.flash_size,
            )
            .map_err(|_| ProcessError::NoMemory)?;
            alloc.configure_mpu(&mpu);
            Ok(Box::new(Granular {
                mpu,
                alloc,
                pid: pid as u32,
                cache: Rc::clone(machine.cache()),
            }))
        }
        (Flavor::Granular, MachineKind::Pmp(hw)) => {
            // The PMP granularity is a chip constant; both supported
            // values instantiate the same generic backend.
            let g = hw.borrow().chip().granularity();
            if g == 4 {
                let mpu = GranularPmp::<4>::new(std::rc::Rc::clone(hw));
                let alloc = AppMemoryAllocator::<GranularPmp<4>>::allocate_app_memory(
                    unalloc_start,
                    unalloc_size,
                    image.min_ram_size,
                    image.min_ram_size,
                    image.kernel_reserved,
                    image.flash_start,
                    image.flash_size,
                )
                .map_err(|_| ProcessError::NoMemory)?;
                alloc.configure_mpu(&mpu);
                Ok(Box::new(Granular {
                    mpu,
                    alloc,
                    pid: pid as u32,
                    cache: Rc::clone(machine.cache()),
                }))
            } else {
                let mpu = GranularPmp::<8>::new(std::rc::Rc::clone(hw));
                let alloc = AppMemoryAllocator::<GranularPmp<8>>::allocate_app_memory(
                    unalloc_start,
                    unalloc_size,
                    image.min_ram_size,
                    image.min_ram_size,
                    image.kernel_reserved,
                    image.flash_start,
                    image.flash_size,
                )
                .map_err(|_| ProcessError::NoMemory)?;
                alloc.configure_mpu(&mpu);
                Ok(Box::new(Granular {
                    mpu,
                    alloc,
                    pid: pid as u32,
                    cache: Rc::clone(machine.cache()),
                }))
            }
        }
    }
}

impl Process {
    /// Loads a process: allocates its memory block from the RAM pool and
    /// stages the MPU configuration (the Fig. 11 `create` method).
    pub fn create(
        pid: usize,
        flavor: Flavor,
        machine: &Machine,
        image: &AppImage,
        unalloc_start: PtrU8,
        unalloc_size: usize,
    ) -> Result<Self, ProcessError> {
        let backend = tt_hw::cycles::instrument("create", || {
            let backend = create_backend(pid, flavor, machine, image, unalloc_start, unalloc_size)?;
            // Loading dominates create: copy + zero the app's requested
            // RAM (flavour-independent; the paper's ~634k cycles).
            charge_n(Cost::Store, (image.min_ram_size / 2) as u64);
            Ok(backend)
        })?;
        Ok(Self {
            pid,
            image: image.clone(),
            state: ProcessState::Ready,
            console: String::new(),
            allow_ro: None,
            allow_rw: None,
            grants: Vec::new(),
            backend,
        })
    }

    /// Start of the process memory block.
    pub fn memory_start(&self) -> usize {
        self.backend.memory_start()
    }

    /// Total block size (process RAM + grant region).
    pub fn memory_size(&self) -> usize {
        self.backend.memory_size()
    }

    /// Current app break.
    pub fn app_break(&self) -> usize {
        self.backend.app_break()
    }

    /// Current kernel break (grant-region bottom).
    pub fn kernel_break(&self) -> usize {
        self.backend.kernel_break()
    }

    /// The `brk` syscall: set the app break (Fig. 11 `brk`).
    pub fn brk(&mut self, new_break: PtrU8) -> Result<(), ProcessError> {
        let backend = &mut self.backend;
        tt_hw::cycles::instrument("brk", || backend.brk(new_break))
    }

    /// The `sbrk` syscall: grow or shrink by a signed delta.
    pub fn sbrk(&mut self, delta: isize) -> Result<PtrU8, ProcessError> {
        charge_n(Cost::Alu, 2);
        let current = self.app_break();
        let target = if delta >= 0 {
            current.checked_add(delta as usize)
        } else {
            current.checked_sub(delta.unsigned_abs())
        }
        .ok_or(ProcessError::Invalid)?;
        self.brk(PtrU8::new(target))?;
        Ok(PtrU8::new(target))
    }

    /// Allocates `size` bytes of grant memory (Fig. 11 `allocate_grant`).
    pub fn allocate_grant(&mut self, grant_id: usize, size: usize) -> Result<PtrU8, ProcessError> {
        let backend = &mut self.backend;
        let ptr = tt_hw::cycles::instrument("allocate_grant", || backend.allocate_grant(size))?;
        self.grants.push((grant_id, ptr, size));
        Ok(ptr)
    }

    /// Returns the grant allocation for `grant_id`, if any.
    pub fn grant(&self, grant_id: usize) -> Option<(PtrU8, usize)> {
        self.grants
            .iter()
            .find(|(id, _, _)| *id == grant_id)
            .map(|(_, p, s)| (*p, *s))
    }

    /// Validates and builds a read-write buffer handle from an `allow_rw`
    /// syscall (Fig. 11 `build_readwrite_buffer`).
    pub fn build_readwrite_buffer(&mut self, addr: PtrU8, len: usize) -> Result<(), ProcessError> {
        let backend = &self.backend;
        let ok = tt_hw::cycles::instrument("build_readwrite_buffer", || {
            // Building the ReadWriteProcessBuffer value itself (stores,
            // lifetime bookkeeping) costs the same in both kernels.
            charge_n(Cost::Store, 18);
            charge_n(Cost::Alu, 36);
            backend.buffer_in_ram(addr, len)
        });
        if !ok {
            return Err(ProcessError::Invalid);
        }
        self.allow_rw = Some((addr, len));
        Ok(())
    }

    /// Validates and builds a read-only buffer handle from an `allow_ro`
    /// syscall (Fig. 11 `build_readonly_buffer`). Read-only buffers may
    /// also live in the process's flash.
    pub fn build_readonly_buffer(&mut self, addr: PtrU8, len: usize) -> Result<(), ProcessError> {
        let backend = &self.backend;
        let ok = tt_hw::cycles::instrument("build_readonly_buffer", || {
            // Read-only buffers may point into flash, so the wrapper type
            // carries extra provenance checks in both kernels.
            charge_n(Cost::Store, 18);
            charge_n(Cost::Alu, 36);
            charge_n(Cost::Alu, 32);
            if backend.buffer_in_ram(addr, len) {
                return true;
            }
            charge_n(Cost::Branch, 2);
            charge_n(Cost::Alu, 1);
            let (fs, fsz) = backend.flash();
            addr.as_usize() >= fs && addr.as_usize() + len <= fs + fsz
        });
        if !ok {
            return Err(ProcessError::Invalid);
        }
        self.allow_ro = Some((addr, len));
        Ok(())
    }

    /// Writes this process's MPU configuration into the hardware, run at
    /// every context switch into the process (Fig. 11 `setup_mpu`).
    pub fn setup_mpu(&self) {
        tt_hw::trace::record(tt_hw::trace::TraceEvent::MpuCommit {
            pid: self.pid as u32,
        });
        let backend = &self.backend;
        tt_hw::cycles::instrument("setup_mpu", || backend.setup_mpu())
    }

    /// Whether a [`Self::setup_mpu`] right now would take the elided
    /// (cache-hit) path: the register file already holds this process's
    /// configuration at the current generation. Pure query — no cache
    /// stamp, no hardware write, no trace event.
    pub fn mpu_ready(&self) -> bool {
        self.backend.mpu_ready()
    }

    /// The elided half of a commit: re-arm protection without rewriting
    /// the staged configuration. Records the same [`MpuCommit`] event as
    /// [`Self::setup_mpu`] — logically it *is* the commit point — so a
    /// kernel that splits verdict from action stays trace-identical to
    /// one that uses `setup_mpu` whenever the split verdict is fresh.
    /// Only sound when [`Self::mpu_ready`] holds at the moment of the
    /// call.
    ///
    /// [`MpuCommit`]: tt_hw::trace::TraceEvent::MpuCommit
    pub fn rearm_mpu(&self) {
        tt_hw::trace::record(tt_hw::trace::TraceEvent::MpuCommit {
            pid: self.pid as u32,
        });
        let backend = &self.backend;
        tt_hw::cycles::instrument("setup_mpu", || backend.rearm_mpu())
    }

    /// Re-commits this process's configuration after the simulated
    /// interrupt service routine perturbed the register file (a
    /// front-run restart committed another process's configuration) —
    /// the exception-return epilogue of `Kernel::interrupt_now`. Unlike
    /// [`Self::setup_mpu`] this records no `MpuCommit` trace event: it
    /// is interrupt plumbing, not a scheduling commit point, and the
    /// explorer's oracle compares scheduled runs against references that
    /// never take an interrupt.
    pub fn restore_mpu_after_irq(&self) {
        let backend = &self.backend;
        tt_hw::cycles::instrument("setup_mpu", || backend.setup_mpu())
    }

    /// Marks the process faulted with a reason (MPU violation, bad
    /// syscall, …).
    pub fn fault(&mut self, reason: impl Into<String>) {
        self.state = ProcessState::Faulted(reason.into());
    }

    /// Fault recovery: drops every kernel handle into this process's
    /// memory (grants, allowed buffers), reclaims the grant region, and
    /// re-derives the staged protection state from the surviving break
    /// pointers. Returns `false` if re-derivation failed (the process
    /// can then only be killed).
    pub fn recover(&mut self) -> bool {
        self.grants.clear();
        self.allow_ro = None;
        self.allow_rw = None;
        self.backend.recover()
    }

    /// Whether the live protection hardware still matches this process's
    /// staged configuration. Used by the kernel's switch-out scrub to
    /// detect silent register corruption; trivially `true` for legacy
    /// backends, which keep no staged logical view.
    pub fn mpu_consistent(&self) -> bool {
        self.backend.mpu_consistent()
    }

    /// A memory-layout report, printed by fault handling and by the
    /// `stack_growth` release test — the output the paper *expects* to
    /// differ between Tock and TickTock (§6.1).
    ///
    /// Built by hand rather than with `format!`: every injected fleet run
    /// faults the victim at least once, and the formatting machinery was
    /// a visible slice of the fault path in the campaign profile. Output
    /// is byte-identical to the original
    /// `mem {:#010x}..{:#010x} app_break {:#010x} kernel_break {:#010x}
    /// flash {:#010x}+{:#x}` format string.
    pub fn layout_report(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("mem ");
        push_hex(&mut out, self.memory_start(), 8);
        out.push_str("..");
        push_hex(&mut out, self.memory_start() + self.memory_size(), 8);
        out.push_str(" app_break ");
        push_hex(&mut out, self.app_break(), 8);
        out.push_str(" kernel_break ");
        push_hex(&mut out, self.kernel_break(), 8);
        out.push_str(" flash ");
        push_hex(&mut out, self.image.flash_start.as_usize(), 8);
        out.push('+');
        push_hex(&mut out, self.image.flash_size, 1);
        out
    }
}

/// Appends `v` as `0x`-prefixed lowercase hex, zero-padded to at least
/// `min_digits` — `{:#0N$x}` without the `core::fmt` dispatch.
fn push_hex(out: &mut String, v: usize, min_digits: u32) {
    out.push_str("0x");
    let natural = (usize::BITS - v.leading_zeros()).div_ceil(4).max(1);
    for i in (0..natural.max(min_digits)).rev() {
        let d = (v >> (i * 4)) & 0xF;
        out.push(char::from_digit(d as u32, 16).expect("nibble"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::flash_app;
    use tt_hw::platform::{ChipProfile, ALL_CHIPS, NRF52840DK};

    fn image_for(chip: &ChipProfile) -> AppImage {
        let mut mem = chip.memory();
        flash_app(
            &mut mem,
            chip.map.flash.start + 0x4_0000,
            "t",
            0x1000,
            3000,
            1024,
        )
        .unwrap()
    }

    fn both_flavors() -> [Flavor; 2] {
        [Flavor::Legacy(BugVariant::Fixed), Flavor::Granular]
    }

    fn mk_on(chip: &ChipProfile, flavor: Flavor) -> Process {
        let img = image_for(chip);
        let machine = Machine::for_chip(chip);
        Process::create(
            0,
            flavor,
            &machine,
            &img,
            PtrU8::new(chip.map.ram.start),
            chip.map.ram.len(),
        )
        .unwrap()
    }

    fn mk(flavor: Flavor) -> Process {
        mk_on(&NRF52840DK, flavor)
    }

    #[test]
    fn create_produces_consistent_layout_on_every_chip_and_flavor() {
        for chip in &ALL_CHIPS {
            for flavor in both_flavors() {
                let p = mk_on(chip, flavor);
                assert!(
                    p.memory_start() >= chip.map.ram.start,
                    "{} {flavor:?}",
                    chip.name
                );
                assert!(p.app_break() > p.memory_start());
                assert!(p.kernel_break() > p.app_break());
                assert!(p.kernel_break() <= p.memory_start() + p.memory_size());
                assert_eq!(p.state, ProcessState::Ready);
            }
        }
    }

    #[test]
    fn brk_moves_break_in_both_flavors() {
        for flavor in both_flavors() {
            let mut p = mk(flavor);
            let target = p.memory_start() + 1024;
            p.brk(PtrU8::new(target)).unwrap();
            assert_eq!(p.app_break(), target, "{flavor:?}");
            // Past the kernel break: rejected.
            assert!(p.brk(PtrU8::new(p.kernel_break() + 64)).is_err());
        }
    }

    #[test]
    fn sbrk_deltas() {
        for flavor in both_flavors() {
            let mut p = mk(flavor);
            let before = p.app_break();
            p.sbrk(-256).unwrap();
            assert_eq!(p.app_break(), before - 256);
            p.sbrk(128).unwrap();
            assert_eq!(p.app_break(), before - 128);
        }
    }

    #[test]
    fn grant_allocation_descends_from_block_top() {
        for chip in &ALL_CHIPS {
            for flavor in both_flavors() {
                let mut p = mk_on(chip, flavor);
                let kb0 = p.kernel_break();
                let g1 = p.allocate_grant(1, 128).unwrap();
                let g2 = p.allocate_grant(2, 128).unwrap();
                assert!(g1.as_usize() < kb0);
                assert!(g2 < g1);
                assert_eq!(p.grant(1), Some((g1, 128)));
                assert_eq!(p.grant(2), Some((g2, 128)));
                assert_eq!(p.grant(3), None);
            }
        }
    }

    #[test]
    fn grant_exhaustion_errors_in_both_flavors() {
        for flavor in both_flavors() {
            let mut p = mk(flavor);
            let mut n = 0;
            while p.allocate_grant(n, 256).is_ok() {
                n += 1;
                assert!(n < 64, "runaway grant allocation under {flavor:?}");
            }
            assert!(n >= 2, "expected a few grants to fit under {flavor:?}");
        }
    }

    #[test]
    fn buffer_validation_accepts_ram_and_flash_ro() {
        for chip in &ALL_CHIPS {
            for flavor in both_flavors() {
                let mut p = mk_on(chip, flavor);
                let ms = p.memory_start();
                p.build_readwrite_buffer(PtrU8::new(ms + 64), 128).unwrap();
                assert_eq!(p.allow_rw, Some((PtrU8::new(ms + 64), 128)));
                // RW in flash: rejected.
                assert!(p.build_readwrite_buffer(p.image.flash_start, 64).is_err());
                // RO in flash: accepted.
                p.build_readonly_buffer(p.image.flash_start, 64).unwrap();
                // Grant region: rejected both ways.
                assert!(p
                    .build_readwrite_buffer(PtrU8::new(p.kernel_break()), 32)
                    .is_err());
                assert!(p
                    .build_readonly_buffer(PtrU8::new(p.kernel_break()), 32)
                    .is_err());
            }
        }
    }

    #[test]
    fn setup_mpu_configures_hardware_for_isolation_on_every_chip() {
        use tt_hw::mem::{AccessType, Privilege};
        for chip in &ALL_CHIPS {
            for flavor in both_flavors() {
                let img = image_for(chip);
                let machine = Machine::for_chip(chip);
                let p = Process::create(
                    0,
                    flavor,
                    &machine,
                    &img,
                    PtrU8::new(chip.map.ram.start),
                    chip.map.ram.len(),
                )
                .unwrap();
                p.setup_mpu();
                let user = |addr, acc| {
                    machine
                        .check(addr, 4, acc, Privilege::Unprivileged)
                        .allowed()
                };
                assert!(
                    user(p.memory_start(), AccessType::Write),
                    "{} {flavor:?}: own RAM",
                    chip.name
                );
                assert!(
                    !user(p.kernel_break(), AccessType::Write),
                    "{} {flavor:?}: grant protected",
                    chip.name
                );
                assert!(
                    user(img.flash_start.as_usize(), AccessType::Execute),
                    "{} {flavor:?}: flash executable",
                    chip.name
                );
                assert!(
                    !user(img.flash_start.as_usize(), AccessType::Write),
                    "{} {flavor:?}: flash not writable",
                    chip.name
                );
            }
        }
    }

    #[test]
    fn granular_grant_is_cheaper_than_legacy() {
        // The Fig. 11 allocate_grant shape: granular ≈ half the cycles.
        let mut legacy = mk(Flavor::Legacy(BugVariant::Fixed));
        let mut granular = mk(Flavor::Granular);
        tt_hw::cycles::reset();
        let ((), legacy_cycles) = tt_hw::cycles::measure(|| {
            legacy.allocate_grant(0, 128).unwrap();
        });
        let ((), granular_cycles) = tt_hw::cycles::measure(|| {
            granular.allocate_grant(0, 128).unwrap();
        });
        assert!(
            (granular_cycles as f64) < legacy_cycles as f64 * 0.7,
            "granular {granular_cycles} vs legacy {legacy_cycles}"
        );
    }

    #[test]
    fn layout_report_mentions_all_pointers() {
        let p = mk(Flavor::Granular);
        let r = p.layout_report();
        assert!(r.contains("app_break"));
        assert!(r.contains("kernel_break"));
        assert!(r.contains("flash"));
    }
}
