//! The §6-style fault-injection campaign: isolation under fire.
//!
//! One campaign run boots a three-process TickTock kernel, arms a seeded
//! [`InjectionPlan`] against the *victim* (pid 0), and runs to
//! completion under the [`FaultPolicy::RestartWithBackoff`] recovery
//! policy. The two *bystander* processes never see an injection; the
//! oracle is that their [`TraceScope::Observable`] event streams are
//! **byte-identical** to an uninjected reference run of the same chip —
//! faults stay contained to the process they were injected into, no
//! matter what the fault corrupted.
//!
//! Every run also checks that no contract site was violated (the runs
//! execute under [`Mode::Observe`] so violations are collected, not
//! panicked), and that recovery converged: bystanders exit, the victim
//! ends [`ProcessState::Exited`] or — restart cap exhausted —
//! [`ProcessState::Killed`], never a livelock.

use crate::capsules::driver;
use crate::kernel::{App, AppFactory, FaultPolicy, Kernel, Step};
use crate::loader::flash_app;
use crate::pool;
use crate::process::{Flavor, ProcessState};
use crate::shrink;
use crate::snapshot::MachineSnapshot;
use crate::trace::{
    event_pid, normalize, normalize_for_pid, observable_event, render_event, Trace, TraceEvent,
    TraceScope,
};
use tt_contracts::{take_violations, with_mode, Mode};
use tt_hw::injection::{self, InjectionPlan};
use tt_hw::platform::{ChipProfile, ALL_CHIPS};
use tt_hw::sched::{self, InterruptSchedule, ALL_ARRIVAL_POINTS};
use tt_hw::trace;

/// Pid the injection plans target.
pub const VICTIM: usize = 0;
/// Number of bystander processes riding along.
pub const BYSTANDERS: usize = 2;

const TRACE_CAPACITY: usize = 65_536;
const MAX_TICKS: u64 = 400;
pub(crate) const MAX_RESTARTS: u32 = 5;
const BASE_DELAY: u64 = 2;
const MAX_DELAY: u64 = 16;

// ---------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------

/// The victim: a syscall-rich workload that exercises every injection
/// point — register commits (brk/sbrk re-stage regions), syscall
/// arguments, user-mode accesses, grant allocation.
#[derive(Clone)]
struct Victim {
    step_no: u32,
}

impl App for Victim {
    fn name(&self) -> &'static str {
        "victim"
    }
    fn clone_app(&self) -> Option<Box<dyn App>> {
        Some(Box::new(self.clone()))
    }
    fn step(&mut self, k: &mut Kernel, pid: usize) -> Step {
        let ms = k.processes[pid].memory_start();
        let i = self.step_no;
        self.step_no += 1;
        match i % 8 {
            0 => {
                let _ = k.sys_print(pid, "v\r\n");
            }
            1 => {
                let _ = k.sys_sbrk(pid, 64);
            }
            2 => {
                let _ = k.user_write_u32(pid, ms + 128, i);
            }
            3 => {
                let _ = k.sys_memop(pid, 1);
            }
            4 => {
                let _ = k.sys_allow_rw(pid, ms + 256, 16);
            }
            5 => {
                let _ = k.sys_command(pid, driver::ALARM, 1, 50);
            }
            6 => {
                let _ = k.user_read_u32(pid, ms + 128);
            }
            _ => {
                let _ = k.sys_sbrk(pid, -64);
            }
        }
        if self.step_no >= 64 {
            Step::Exit
        } else {
            Step::Continue
        }
    }
}

/// A bystander: deterministic work that never touches cycle-dependent
/// capsules (sensor/ADC) or alarms, so its observable trace depends only
/// on its own behaviour.
#[derive(Clone)]
struct Bystander {
    id: u32,
    step_no: u32,
}

impl App for Bystander {
    fn name(&self) -> &'static str {
        "bystander"
    }
    fn clone_app(&self) -> Option<Box<dyn App>> {
        Some(Box::new(self.clone()))
    }
    fn step(&mut self, k: &mut Kernel, pid: usize) -> Step {
        let ms = k.processes[pid].memory_start();
        let i = self.step_no;
        self.step_no += 1;
        match i % 4 {
            0 => {
                let _ = k.sys_print(pid, "b\r\n");
            }
            1 => {
                let _ = k.user_write_u32(pid, ms + 512 + 4 * (i as usize % 8), i ^ self.id);
            }
            2 => {
                let _ = k.sys_command(pid, driver::LED, 0, self.id);
            }
            _ => {
                let _ = k.user_read_u32(pid, ms + 512);
            }
        }
        if self.step_no >= 32 {
            Step::Exit
        } else {
            Step::Continue
        }
    }
}

fn mk_victim() -> Box<dyn App> {
    Box::new(Victim { step_no: 0 })
}
fn mk_bystander_1() -> Box<dyn App> {
    Box::new(Bystander { id: 1, step_no: 0 })
}
fn mk_bystander_2() -> Box<dyn App> {
    Box::new(Bystander { id: 2, step_no: 0 })
}

/// Restart factories for the three campaign workloads, in pid order.
pub(crate) const CAMPAIGN_FACTORIES: [AppFactory; 3] = [mk_victim, mk_bystander_1, mk_bystander_2];

/// Fresh program state for the three campaign workloads, in pid order.
fn campaign_apps() -> Vec<Box<dyn App>> {
    CAMPAIGN_FACTORIES.iter().map(|mk| mk()).collect()
}

// ---------------------------------------------------------------------
// One run.
// ---------------------------------------------------------------------

/// Outcome of one campaign run (injected or reference).
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The seed, or `None` for the uninjected reference run.
    pub seed: Option<u64>,
    /// Number of injections that actually fired.
    pub fired: u64,
    /// Number of scheduled interrupt arrivals that fired (0 for runs
    /// without an armed [`InterruptSchedule`]).
    pub irq_fired: u64,
    /// Contract violations observed during the run (rendered).
    pub violations: Vec<String>,
    /// Terminal state per pid.
    pub states: Vec<ProcessState>,
    /// Victim restart count.
    pub restarts: u32,
    /// Victim recovery count.
    pub recoveries: u32,
    /// Cycles the kernel spent recovering the victim.
    pub recovery_cycles: u64,
    /// Commit-cache hits accumulated by the end of the run (boot
    /// included). Part of the restore-equivalence surface: a restored
    /// run must land on exactly the fresh-boot counters.
    pub cache_hits: u64,
    /// Commit-cache misses, likewise.
    pub cache_misses: u64,
    /// The full event trace.
    pub trace: Trace,
}

/// Boots the campaign kernel on `chip`: TickTock flavour, backoff
/// restart policy, MPU scrub, three processes flashed and loaded. This
/// is the exact state [`MachineSnapshot::capture`] freezes for the fleet
/// path — [`run_one`] and [`FleetRunner`] share it so a restored run has
/// the same starting point as a fresh boot.
pub(crate) fn boot_campaign_kernel(chip: &ChipProfile) -> Kernel {
    let mut k = Kernel::boot(Flavor::Granular, chip);
    k.fault_policy = FaultPolicy::RestartWithBackoff {
        max_restarts: MAX_RESTARTS,
        base_delay: BASE_DELAY,
        max_delay: MAX_DELAY,
    };
    k.mpu_scrub = true;
    let base = chip.map.flash.start + 0x4_0000;
    for (slot, name) in [(0usize, "victim"), (1, "bys1"), (2, "bys2")] {
        let img = flash_app(&mut k.mem, base + slot * 0x1000, name, 0x1000, 3000, 1024)
            .expect("flash image");
        k.load_process(&img).expect("load process");
    }
    k
}

/// Drives the three campaign workloads to completion on a booted (or
/// restored) kernel.
fn run_apps(k: &mut Kernel) {
    let mut apps = campaign_apps();
    k.run_with_factories(&mut apps, Some(&CAMPAIGN_FACTORIES), MAX_TICKS);
}

/// Drains the per-run sinks (violations, trace) into a [`RunRecord`] and
/// stops tracing.
fn collect_record(kernel: &Kernel, seed: Option<u64>, fired: u64) -> RunRecord {
    let trace = trace::take();
    trace::disable();
    collect_record_with(kernel, seed, fired, trace)
}

/// [`collect_record`] with the trace supplied by the caller — the
/// oracle fast path passes an empty one after validating the ring in
/// place, every other path passes the drained ring.
fn collect_record_with(kernel: &Kernel, seed: Option<u64>, fired: u64, trace: Trace) -> RunRecord {
    let violations = take_violations().iter().map(|v| format!("{v:?}")).collect();
    RunRecord {
        seed,
        fired,
        irq_fired: 0,
        violations,
        states: kernel.processes.iter().map(|p| p.state.clone()).collect(),
        restarts: kernel.restarts[VICTIM],
        recoveries: kernel.recoveries[VICTIM],
        recovery_cycles: kernel.recovery_cycles[VICTIM],
        cache_hits: kernel.machine.cache().hits(),
        cache_misses: kernel.machine.cache().misses(),
        trace,
    }
}

/// Executes one three-process run on `chip`, with the injection plan for
/// `seed` armed against the victim (or no plan for the reference run).
///
/// This is the fresh-boot path: every run pays a full [`Kernel::boot`]
/// plus three flash/load cycles. Fleet campaigns use [`FleetRunner`],
/// which boots once and [`MachineSnapshot::restore`]s per run; the two
/// must produce byte-identical [`RunRecord`]s (the injection engine only
/// counts occurrences in the victim's context, and no process context
/// exists during boot, so arming before boot and arming after restore
/// see the same occurrence stream).
pub fn run_one(chip: &ChipProfile, seed: Option<u64>) -> RunRecord {
    run_one_scheduled(chip, seed, None)
}

/// [`run_one`] with an optional [`InterruptSchedule`] armed alongside
/// the injection plan — the fresh-boot anchor the scheduled fleet path
/// is tested against. Boot passes no arrival-point hooks, so arming
/// before boot (here) and arming after a post-boot restore
/// ([`FleetRunner`]) count boundary occurrences identically.
pub fn run_one_scheduled(
    chip: &ChipProfile,
    seed: Option<u64>,
    schedule: Option<&InterruptSchedule>,
) -> RunRecord {
    tt_hw::cycles::reset();
    trace::enable(TRACE_CAPACITY);
    if let Some(s) = seed {
        injection::arm(InjectionPlan::from_seed(s, VICTIM as u32));
    }
    if let Some(s) = schedule {
        sched::arm(s.clone());
    }
    let kernel = with_mode(Mode::Observe, || {
        let mut k = boot_campaign_kernel(chip);
        run_apps(&mut k);
        k
    });
    let fired = if seed.is_some() {
        injection::disarm()
    } else {
        0
    };
    let irq_fired = if schedule.is_some() {
        sched::disarm()
    } else {
        0
    };
    let mut record = collect_record(&kernel, seed, fired);
    record.irq_fired = irq_fired;
    record
}

// ---------------------------------------------------------------------
// The fleet path: boot once, restore per run.
// ---------------------------------------------------------------------

/// Per-run wall-clock phase breakdown from
/// [`FleetRunner::run_plan_phased`], in nanoseconds. Timing never feeds
/// back into run behaviour or report text — it rides alongside the
/// (deterministic) [`RunRecord`] for the fleet profiler.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunPhases {
    /// Restoring the machine snapshot (and arming the plan).
    pub restore_ns: u64,
    /// Executing the run body to completion.
    pub run_ns: u64,
    /// Draining the per-run sinks into the record.
    pub collect_ns: u64,
    /// In-place streaming oracle comparison over the undrained ring
    /// ([`FleetRunner`]'s oracle path only; zero for the paths that
    /// drain first and validate from the record).
    pub oracle_ns: u64,
    /// Whether the run resumed from the mid-run snapshot.
    pub midrun: bool,
}

/// The post-first-tick half of a [`FleetRunner`]: the machine frozen
/// after scheduler tick 1 (apps loaded, grants allocated, capsules
/// initialized, first-tick MPU churn done) plus everything needed to
/// resume a run from there as if the prefix had executed live.
struct Midrun {
    snapshot: MachineSnapshot,
    /// Program state at the snapshot point; cloned per run.
    apps: Vec<Box<dyn App>>,
    /// Injection-point occurrence counts the victim accumulated during
    /// the prefix — replayed into `injection::arm_with_seen` so resumed
    /// plans count occurrences exactly like full runs.
    seen: [u32; tt_hw::injection::ALL_POINTS.len()],
    /// Arrival-point occurrence counts the prefix tick passed — the
    /// schedule analogue of `seen`, captured with a trace-neutral empty
    /// schedule armed and replayed into `sched::arm_with_seen` so
    /// resumed schedules count boundary occurrences exactly like full
    /// runs.
    sched_seen: [u32; ALL_ARRIVAL_POINTS.len()],
    /// RAM pages (and the flash flag) the prefix dirtied relative to the
    /// boot snapshot. Merged into live tracking whenever the runner
    /// switches restore targets, so incremental restore never skips a
    /// page that differs between the two snapshots.
    prefix_dirty: (Vec<u64>, bool),
    /// Violations the prefix tick produced (none, for a healthy
    /// kernel), prepended after the boot violations.
    prefix_violations: Vec<String>,
}

/// Which snapshot the live machine state currently derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RestorePoint {
    Boot,
    Midrun,
}

/// A reusable campaign machine for one chip: boots once, snapshots, and
/// replays any number of seeds by restoring the snapshot instead of
/// re-booting.
///
/// The runner keeps **two** snapshots: the post-boot state and the
/// post-first-tick (`Midrun`) state. Runs whose injection plan does
/// not fire inside the first tick resume from the mid-run snapshot —
/// skipping app-factory allocation and first-tick grant/MPU churn —
/// and are byte-identical to fresh-boot runs (gated by the equivalence
/// proptest). Plans that do fire in the prefix fall back to the
/// post-boot snapshot and a full run.
///
/// A runner is thread-affine (the snapshot holds `Rc` hardware handles
/// and replays into this thread's trace ring); the fleet pool builds one
/// per `(chip, cache-mode)` per worker via [`pool::run_indexed_ctx`].
/// For cold-cache runners, both [`FleetRunner::new`] and every run must
/// execute under `tt_hw::commit_cache::with_disabled` — the commit cache
/// changes which `RegWrite` events boot emits, so a cold run restored
/// from a warm boot snapshot would diverge from a cold fresh boot.
pub struct FleetRunner {
    chip: ChipProfile,
    kernel: Kernel,
    /// Restart factories for the scenario's workloads, in pid order —
    /// also the source of each run's fresh program state.
    factories: &'static [AppFactory],
    snapshot: MachineSnapshot,
    /// Violations the boot itself produced (none, for a healthy kernel),
    /// drained at capture time; prepended to every run's record so a
    /// restored run reports exactly what a fresh-boot run would.
    boot_violations: Vec<String>,
    midrun: Option<Midrun>,
    last_restored: RestorePoint,
    /// Wall-clock nanoseconds spent booting and capturing both
    /// snapshots, for the profiler's amortization line.
    capture_ns: u64,
    /// Reference-stream cursor offsets for the post-boot prefix,
    /// computed on the oracle path's first boot-restored run.
    boot_skip: Option<PrefixSkip>,
    /// Likewise for the mid-run prefix.
    midrun_skip: Option<PrefixSkip>,
}

impl FleetRunner {
    /// Boots the campaign kernel on `chip`, captures the post-boot
    /// snapshot, then runs one scheduler tick and captures the mid-run
    /// snapshot. The boot executes under [`Mode::Observe`] with tracing
    /// enabled, exactly like [`run_one`]'s prelude.
    pub fn new(chip: &ChipProfile) -> Self {
        Self::with_scenario(chip, boot_campaign_kernel, &CAMPAIGN_FACTORIES)
    }

    /// [`FleetRunner::new`] over a custom scenario: `boot` builds the
    /// kernel (flavor, fault policy, knobs, processes flashed and
    /// loaded) and `factories` supply each pid's program, in pid order.
    /// The schedule explorer uses this to run planted-bug kernels and
    /// asymmetric workloads through the exact snapshot/restore machinery
    /// the campaign uses.
    pub fn with_scenario(
        chip: &ChipProfile,
        boot: fn(&ChipProfile) -> Kernel,
        factories: &'static [AppFactory],
    ) -> Self {
        let t0 = std::time::Instant::now();
        tt_hw::cycles::reset();
        trace::enable(TRACE_CAPACITY);
        let mut kernel = with_mode(Mode::Observe, || boot(chip));
        assert_eq!(
            kernel.processes.len(),
            factories.len(),
            "one factory per loaded process"
        );
        let snapshot = MachineSnapshot::capture(&mut kernel);
        let boot_violations: Vec<String> =
            take_violations().iter().map(|v| format!("{v:?}")).collect();
        let midrun = Self::capture_midrun(&mut kernel, &snapshot, factories);
        trace::disable();
        Self {
            chip: *chip,
            kernel,
            factories,
            snapshot,
            boot_violations,
            midrun: Some(midrun),
            // capture_midrun leaves the live state exactly at the
            // mid-run capture point with a clean dirty bitmap.
            last_restored: RestorePoint::Midrun,
            capture_ns: t0.elapsed().as_nanos() as u64,
            boot_skip: None,
            midrun_skip: None,
        }
    }

    /// Freezes the post-first-tick state: restore the boot snapshot, run
    /// exactly one scheduler tick with an *empty* counting plan armed
    /// (trace-neutral — its hooks stay identity and it records no
    /// events, but the engine counts the victim's injection-point
    /// occurrences), and capture. An empty [`InterruptSchedule`] rides
    /// along — equally trace-neutral — so the prefix's arrival-point
    /// occurrence counts are captured too.
    fn capture_midrun(
        kernel: &mut Kernel,
        boot: &MachineSnapshot,
        factories: &'static [AppFactory],
    ) -> Midrun {
        boot.restore(kernel);
        injection::arm(InjectionPlan {
            seed: 0,
            target_pid: VICTIM as u32,
            injections: Vec::new(),
        });
        sched::arm(InterruptSchedule::empty());
        let mut apps: Vec<Box<dyn App>> = factories.iter().map(|mk| mk()).collect();
        with_mode(Mode::Observe, || {
            kernel.run_with_factories(&mut apps, Some(factories), 1);
        });
        let seen = injection::seen_counts().expect("counting plan armed");
        injection::disarm();
        let sched_seen = sched::seen_counts().expect("counting schedule armed");
        sched::disarm();
        // Order matters: the prefix dirty state must be read *before*
        // capture re-arms (and clears) tracking.
        let prefix_dirty = kernel.mem.dirty_state();
        let snapshot = MachineSnapshot::capture(kernel);
        let prefix_violations = take_violations().iter().map(|v| format!("{v:?}")).collect();
        Midrun {
            snapshot,
            apps,
            seen,
            sched_seen,
            prefix_dirty,
            prefix_violations,
        }
    }

    /// Raw events in the installed post-boot snapshot prefix — the
    /// offset from which a drained full-run trace starts counting
    /// arrival-point occurrences (boot passes no hooks, so event index
    /// `boot_events()` is boundary occurrence 0 for every point).
    pub fn boot_events(&self) -> usize {
        self.snapshot.boot_events()
    }

    /// The chip this runner was booted for.
    pub fn chip(&self) -> &ChipProfile {
        &self.chip
    }

    /// Wall-clock nanoseconds this runner spent booting and capturing
    /// its snapshots (amortized over every run it serves).
    pub fn capture_ns(&self) -> u64 {
        self.capture_ns
    }

    /// Restores the post-boot snapshot, merging the prefix dirty state
    /// first when the live machine derives from the mid-run snapshot.
    fn restore_boot(&mut self) {
        if self.last_restored == RestorePoint::Midrun {
            if let Some(m) = &self.midrun {
                self.kernel
                    .mem
                    .merge_dirty_state(&m.prefix_dirty.0, m.prefix_dirty.1);
            }
        }
        self.snapshot.restore(&mut self.kernel);
        self.last_restored = RestorePoint::Boot;
    }

    /// Restores the mid-run snapshot (symmetric merge rule: switching
    /// *to* the mid-run target from a boot-derived state also needs the
    /// prefix pages forced dirty — a fallback run need not rewrite every
    /// page the first tick touched).
    fn restore_midrun(&mut self) {
        let m = self.midrun.as_ref().expect("mid-run snapshot captured");
        if self.last_restored == RestorePoint::Boot {
            self.kernel
                .mem
                .merge_dirty_state(&m.prefix_dirty.0, m.prefix_dirty.1);
        }
        m.snapshot.restore(&mut self.kernel);
        self.last_restored = RestorePoint::Midrun;
    }

    /// Restores the best eligible snapshot and executes one run with
    /// `plan` armed against the victim (or no plan for a
    /// reference-shaped run).
    pub fn run_plan(&mut self, plan: Option<InjectionPlan>) -> RunRecord {
        self.run_plan_phased(plan).0
    }

    /// [`FleetRunner::run_plan`] with an [`InterruptSchedule`] armed
    /// alongside the plan: each scheduled arrival fires the timer
    /// interrupt at its boundary occurrence. Mid-run eligibility
    /// requires *both* engines to stay clear of the first tick; a
    /// schedule (or plan) firing inside the prefix falls back to the
    /// post-boot snapshot and a full run. The returned record carries
    /// the arrival count in [`RunRecord::irq_fired`].
    pub fn run_scheduled(
        &mut self,
        plan: Option<InjectionPlan>,
        schedule: &InterruptSchedule,
    ) -> RunRecord {
        let (seed, fired, irq_fired, use_midrun, _, _) = self.execute_plan(plan, Some(schedule));
        let mut record = collect_record(&self.kernel, seed, fired);
        record.irq_fired = irq_fired;
        self.merge_prefix_violations(record, use_midrun)
    }

    /// Restores the best eligible snapshot, arms `plan` (and
    /// `schedule`), and executes the run body: the shared front half of
    /// [`FleetRunner::run_plan_phased`], the oracle path, and
    /// [`FleetRunner::run_scheduled`]. Returns `(seed, fired,
    /// irq_fired, midrun, restore_ns, run_ns)`; the per-run sinks
    /// (trace ring, violations) are still live and undrained on return.
    fn execute_plan(
        &mut self,
        plan: Option<InjectionPlan>,
        schedule: Option<&InterruptSchedule>,
    ) -> (Option<u64>, u64, u64, bool, u64, u64) {
        let seed = plan.as_ref().map(|p| p.seed);
        let armed = plan.is_some();
        let sched_armed = schedule.is_some();
        let t0 = std::time::Instant::now();
        // Mid-run eligibility: a plan scheduling an injection — or a
        // schedule placing an arrival — inside the first tick must
        // execute the prefix live.
        let use_midrun = match &self.midrun {
            Some(m) => {
                plan.as_ref().is_none_or(|p| !p.fires_within(&m.seen))
                    && schedule.is_none_or(|s| !s.fires_within(&m.sched_seen))
            }
            None => false,
        };
        let mut apps: Vec<Box<dyn App>> = if use_midrun {
            self.restore_midrun();
            let m = self.midrun.as_ref().expect("mid-run snapshot captured");
            if let Some(p) = plan {
                injection::arm_with_seen(p, m.seen);
            }
            if let Some(s) = schedule {
                sched::arm_with_seen(s.clone(), m.sched_seen);
            }
            m.apps
                .iter()
                .map(|a| a.clone_app().expect("campaign apps are mid-run cloneable"))
                .collect()
        } else {
            self.restore_boot();
            if let Some(p) = plan {
                injection::arm(p);
            }
            if let Some(s) = schedule {
                sched::arm(s.clone());
            }
            self.factories.iter().map(|mk| mk()).collect()
        };
        let t1 = std::time::Instant::now();
        with_mode(Mode::Observe, || {
            self.kernel
                .run_with_factories(&mut apps, Some(self.factories), MAX_TICKS);
        });
        let fired = if armed { injection::disarm() } else { 0 };
        let irq_fired = if sched_armed { sched::disarm() } else { 0 };
        let restore_ns = (t1 - t0).as_nanos() as u64;
        let run_ns = t1.elapsed().as_nanos() as u64;
        (seed, fired, irq_fired, use_midrun, restore_ns, run_ns)
    }

    /// Prepends the boot (and, for mid-run resumes, prefix) violations
    /// so a restored run reports exactly what the equivalent fresh run
    /// would.
    fn merge_prefix_violations(&self, mut record: RunRecord, use_midrun: bool) -> RunRecord {
        let mut prefix = self.boot_violations.clone();
        if use_midrun {
            if let Some(m) = &self.midrun {
                prefix.extend(m.prefix_violations.iter().cloned());
            }
        }
        if !prefix.is_empty() {
            prefix.append(&mut record.violations);
            record.violations = prefix;
        }
        record
    }

    /// [`FleetRunner::run_plan`] with the per-phase wall-clock breakdown.
    pub fn run_plan_phased(&mut self, plan: Option<InjectionPlan>) -> (RunRecord, RunPhases) {
        let (seed, fired, _, use_midrun, restore_ns, run_ns) = self.execute_plan(plan, None);
        let t2 = std::time::Instant::now();
        let record = collect_record(&self.kernel, seed, fired);
        let record = self.merge_prefix_violations(record, use_midrun);
        let phases = RunPhases {
            restore_ns,
            run_ns,
            collect_ns: t2.elapsed().as_nanos() as u64,
            oracle_ns: 0,
            midrun: use_midrun,
        };
        (record, phases)
    }

    /// [`FleetRunner::run_plan_phased`], with the oracle's streaming
    /// trace comparison run *in place* over the undrained ring. When the
    /// comparison passes (the overwhelmingly common case) the per-run
    /// event copy is skipped entirely — [`trace::disable`] clears the
    /// ring without draining it — and the returned record carries an
    /// empty trace. On any discrepancy the trace is drained as usual so
    /// [`validate_run`] can re-render byte-identical failure messages
    /// from the allocating path.
    fn run_plan_oracle(
        &mut self,
        plan: Option<InjectionPlan>,
        reference: &ChipReference,
    ) -> (RunRecord, RunPhases, OracleCheck) {
        let (seed, fired, _, use_midrun, restore_ns, run_ns) = self.execute_plan(plan, None);
        let t2 = std::time::Instant::now();
        let skip = if use_midrun {
            let len = self.midrun.as_ref().map_or(0, |m| m.snapshot.boot_events());
            *self
                .midrun_skip
                .get_or_insert_with(|| prefix_skip(&reference.raw, len))
        } else {
            let len = self.snapshot.boot_events();
            *self
                .boot_skip
                .get_or_insert_with(|| prefix_skip(&reference.raw, len))
        };
        let check = trace::with_events(|head, tail, dropped| OracleCheck {
            clean: dropped == 0 && streams_match(head, tail, fired, reference, skip),
            trace_len: head.len() + tail.len(),
        });
        let t3 = std::time::Instant::now();
        let record = if check.clean {
            trace::disable();
            collect_record_with(&self.kernel, seed, fired, Trace::default())
        } else {
            collect_record(&self.kernel, seed, fired)
        };
        let record = self.merge_prefix_violations(record, use_midrun);
        let phases = RunPhases {
            restore_ns,
            run_ns,
            collect_ns: t3.elapsed().as_nanos() as u64,
            oracle_ns: (t3 - t2).as_nanos() as u64,
            midrun: use_midrun,
        };
        (record, phases, check)
    }

    /// [`FleetRunner::run_plan`] with the plan derived from `seed`
    /// (`None` = uninjected reference-shaped run).
    pub fn run_seed(&mut self, seed: Option<u64>) -> RunRecord {
        self.run_plan(seed.map(|s| InjectionPlan::from_seed(s, VICTIM as u32)))
    }

    /// [`FleetRunner::run_seed`] with the per-phase breakdown.
    pub fn run_seed_phased(&mut self, seed: Option<u64>) -> (RunRecord, RunPhases) {
        self.run_plan_phased(seed.map(|s| InjectionPlan::from_seed(s, VICTIM as u32)))
    }

    /// Pays one post-boot restore and discards the result: the per-run
    /// reset cost the fleet benchmark compares against [`boot_probe`].
    pub fn restore_probe(&mut self) {
        self.restore_boot();
        trace::recycle(trace::take());
        trace::disable();
    }

    /// Pays one mid-run restore and discards the result.
    pub fn midrun_probe(&mut self) {
        self.restore_midrun();
        trace::recycle(trace::take());
        trace::disable();
    }

    /// Pays what resuming mid-run *skips*: a post-boot restore plus the
    /// first scheduler tick. The ratio of this to
    /// [`FleetRunner::midrun_probe`] is the `min_midrun_restore_speedup`
    /// gate in `ci/bench_baseline.json`.
    pub fn first_tick_probe(&mut self) {
        self.restore_boot();
        let mut apps: Vec<Box<dyn App>> = self.factories.iter().map(|mk| mk()).collect();
        with_mode(Mode::Observe, || {
            self.kernel
                .run_with_factories(&mut apps, Some(self.factories), 1);
        });
        drop(take_violations());
        trace::recycle(trace::take());
        trace::disable();
    }
}

/// Pays one fresh campaign boot on `chip` and discards the kernel: the
/// per-run reset cost of the pre-fleet campaign, measured for the
/// restore-vs-boot speedup gate.
pub fn boot_probe(chip: &ChipProfile) {
    tt_hw::cycles::reset();
    trace::enable(TRACE_CAPACITY);
    let kernel = with_mode(Mode::Observe, || boot_campaign_kernel(chip));
    drop(take_violations());
    trace::recycle(trace::take());
    trace::disable();
    drop(kernel);
}

// ---------------------------------------------------------------------
// The per-chip campaign.
// ---------------------------------------------------------------------

/// Aggregated campaign result for one chip.
#[derive(Debug, Clone)]
pub struct ChipReport {
    /// Chip name.
    pub chip: &'static str,
    /// Seeded injection runs executed (warm; the cold pass doubles this).
    pub runs: u64,
    /// Injections that fired across all runs.
    pub fired: u64,
    /// Failed oracle checks, rendered for the report. Empty on success.
    pub failures: Vec<String>,
    /// Victim recoveries across all warm runs.
    pub recoveries: u64,
    /// Victim restarts across all warm runs.
    pub restarts: u64,
    /// Runs that ended with the victim permanently killed.
    pub killed: u64,
    /// Total victim recovery cycles, commit cache enabled.
    pub warm_cycles: u64,
    /// Victim recoveries in the warm pass (divisor for the mean).
    pub warm_recoveries: u64,
    /// Total victim recovery cycles with the commit cache disabled.
    pub cold_cycles: u64,
    /// Victim recoveries in the cold pass.
    pub cold_recoveries: u64,
}

impl ChipReport {
    /// Mean recovery latency in cycles, commit cache enabled.
    pub fn warm_mean(&self) -> f64 {
        self.warm_cycles as f64 / (self.warm_recoveries.max(1)) as f64
    }
    /// Mean recovery latency in cycles, commit cache disabled.
    pub fn cold_mean(&self) -> f64 {
        self.cold_cycles as f64 / (self.cold_recoveries.max(1)) as f64
    }
}

fn first_injected_event(trace: &Trace) -> String {
    trace
        .events
        .iter()
        .find(|e| matches!(e, TraceEvent::FaultInjected { .. }))
        .map(render_event)
        .unwrap_or_else(|| "<no injection fired>".into())
}

/// One pass over the raw trace that answers "would checks 2 and 4
/// pass?" without allocating: each event's observable form is computed
/// once and compared cursor-wise against the per-bystander and full
/// reference streams. Exact by construction — `Observable` scope is a
/// pure per-event `filter_map` (no reordering), so cursor equality plus
/// final length equality is precisely `normalize[_for_pid] == reference`.
///
/// Returns `false` at the first discrepancy; the caller then falls back
/// to the allocating path to produce byte-identical failure messages.
fn traces_match_streaming(run: &RunRecord, reference: &ChipReference) -> bool {
    streams_match(
        &run.trace.events,
        &[],
        run.fired,
        reference,
        PrefixSkip::default(),
    )
}

/// What the oracle's in-place comparison learned before the ring was
/// cleared: whether trace checks 2 and 4 pass, and the length the
/// drained trace would have had (for the fleet profiler).
struct OracleCheck {
    clean: bool,
    trace_len: usize,
}

/// Reference-stream cursor offsets contributed by an installed snapshot
/// prefix: how many raw events the prefix holds and how far into the
/// full and per-bystander observable streams those events reach.
/// Computed once per runner from the reference trace, and *verified*
/// per run with one raw slice compare before being trusted —
/// [`streams_match`] degrades to a full walk when the bytes differ.
#[derive(Clone, Copy, Default)]
struct PrefixSkip {
    /// Raw events in the installed prefix.
    raw: usize,
    /// Observable events among them (full-stream cursor offset).
    full: usize,
    /// Observable bystander events among them (per-bystander offsets).
    by: [usize; BYSTANDERS],
}

/// Walks the first `prefix_len` raw reference events and tallies the
/// observable cursor offsets a matching prefix accounts for.
fn prefix_skip(reference_raw: &[TraceEvent], prefix_len: usize) -> PrefixSkip {
    let raw = prefix_len.min(reference_raw.len());
    let mut skip = PrefixSkip {
        raw,
        ..PrefixSkip::default()
    };
    for ev in &reference_raw[..raw] {
        let Some(_) = observable_event(ev) else {
            continue;
        };
        skip.full += 1;
        if let Some(pid) = event_pid(ev) {
            let pid = pid as usize;
            if (VICTIM + 1..VICTIM + 1 + BYSTANDERS).contains(&pid) {
                skip.by[pid - VICTIM - 1] += 1;
            }
        }
    }
    skip
}

/// Cursor walk over the full observable stream, starting `start` events
/// into the reference (the verified prefix's contribution).
fn full_stream_matches<'a>(
    events: impl Iterator<Item = &'a TraceEvent>,
    reference_full: &[TraceEvent],
    start: usize,
) -> bool {
    let mut full_cursor = start;
    for ev in events {
        let Some(obs) = observable_event(ev) else {
            continue;
        };
        if reference_full.get(full_cursor) != Some(&obs) {
            return false;
        }
        full_cursor += 1;
    }
    full_cursor == reference_full.len()
}

/// Cursor walk over the per-bystander observable streams. The victim's
/// events are the bulk of a fired trace: filter on the raw event's pid
/// (the observable projection masks values, never pids) before paying
/// for the projection itself.
pub(crate) fn bystander_streams_match<'a>(
    events: impl Iterator<Item = &'a TraceEvent>,
    reference_by_pid: &[Vec<TraceEvent>],
    start: [usize; BYSTANDERS],
) -> bool {
    let mut by_cursor = start;
    for ev in events {
        let Some(pid) = event_pid(ev) else {
            continue;
        };
        let pid = pid as usize;
        if !(VICTIM + 1..VICTIM + 1 + BYSTANDERS).contains(&pid) {
            continue;
        }
        let Some(obs) = observable_event(ev) else {
            continue;
        };
        let b = pid - VICTIM - 1;
        if reference_by_pid[b].get(by_cursor[b]) != Some(&obs) {
            return false;
        }
        by_cursor[b] += 1;
    }
    by_cursor
        .iter()
        .zip(reference_by_pid)
        .all(|(&c, r)| c == r.len())
}

/// [`traces_match_streaming`] over a trace presented as two contiguous
/// slices — the shape [`trace::with_events`] lends the ring's live
/// region — so the fleet path can run the comparison before (and, on a
/// pass, instead of) draining.
///
/// Two fast paths, both exact:
/// - An unfired run whose **raw** trace equals the reference's raw
///   trace outright is clean — raw equality implies observable equality
///   (the projection is a pure per-event function). One slice compare
///   instead of a projection walk; inequality implies nothing and falls
///   through.
/// - A run whose first `skip.raw` raw events equal the reference's (one
///   slice compare — the installed snapshot prefix, by construction)
///   starts its walk after them, with the cursors pre-advanced by the
///   prefix's precomputed contribution.
fn streams_match(
    head: &[TraceEvent],
    tail: &[TraceEvent],
    fired: u64,
    reference: &ChipReference,
    skip: PrefixSkip,
) -> bool {
    if fired == 0
        && head.len() + tail.len() == reference.raw.len()
        && *head == reference.raw[..head.len()]
        && *tail == reference.raw[head.len()..]
    {
        return true;
    }
    let skip = if skip.raw <= head.len() && head[..skip.raw] == reference.raw[..skip.raw] {
        skip
    } else {
        PrefixSkip::default()
    };
    let head = &head[skip.raw..];
    if fired == 0 {
        // Clean runs compare the whole observable stream. The bystander
        // streams are pure pid-filters of that stream (both sides derive
        // from the same reference events), so full equality subsumes the
        // per-bystander check — no second set of cursors needed. The
        // tail is empty unless the ring wrapped: keep the common case on
        // a plain slice iterator.
        return if tail.is_empty() {
            full_stream_matches(head.iter(), &reference.full, skip.full)
        } else {
            full_stream_matches(head.iter().chain(tail), &reference.full, skip.full)
        };
    }
    if tail.is_empty() {
        bystander_streams_match(head.iter(), &reference.by_pid, skip.by)
    } else {
        bystander_streams_match(head.iter().chain(tail), &reference.by_pid, skip.by)
    }
}

/// Checks one injected run against the reference. Appends rendered
/// failures (empty = run passed).
fn validate_run(
    chip: &ChipProfile,
    run: &RunRecord,
    reference_by_pid: &[Vec<TraceEvent>],
    reference_full: &[TraceEvent],
    traces_clean: bool,
    failures: &mut Vec<String>,
) {
    let seed = run.seed.unwrap_or(0);
    let tag = |what: &str| format!("{} seed {seed}: {what}", chip.name);
    // 1. Contract sites all held, at every step of recovery.
    for v in &run.violations {
        failures.push(tag(&format!("contract violation: {v}")));
    }
    // `traces_clean` is the verdict of one non-allocating streaming pass
    // over checks 2 and 4 — computed in place over the ring by the fleet
    // oracle path, or via [`traces_match_streaming`] by callers holding
    // a drained trace. On any discrepancy, the allocating comparisons
    // below re-run so the rendered failure messages stay byte-identical
    // to what the oracle has always produced. (Checks run in 2, 3, 4
    // order either way — passing checks contribute no messages.)
    // 2. Bystander isolation: observable traces byte-identical to the
    //    uninjected reference.
    for (b, reference) in reference_by_pid.iter().enumerate() {
        if traces_clean {
            break;
        }
        let pid = (VICTIM + 1 + b) as u32;
        let got = normalize_for_pid(&run.trace.events, TraceScope::Observable, pid);
        if got != *reference {
            let at = got
                .iter()
                .zip(reference.iter())
                .position(|(g, r)| g != r)
                .unwrap_or_else(|| got.len().min(reference.len()));
            let render = |events: &[TraceEvent], i: usize| {
                events
                    .get(i)
                    .map(render_event)
                    .unwrap_or_else(|| "<end of trace>".into())
            };
            failures.push(tag(&format!(
                "bystander pid{pid} trace diverged at event #{at}: reference `{}` vs injected \
                 `{}`; first injected fault: {}",
                render(reference, at),
                render(&got, at),
                first_injected_event(&run.trace),
            )));
        }
    }
    // 3. Convergence: bystanders ran to completion, the victim either
    //    finished or was permanently killed within the restart cap.
    for b in 0..BYSTANDERS {
        let pid = VICTIM + 1 + b;
        if run.states[pid] != ProcessState::Exited {
            failures.push(tag(&format!(
                "bystander pid{pid} did not exit: {:?}",
                run.states[pid]
            )));
        }
    }
    if !matches!(
        run.states[VICTIM],
        ProcessState::Exited | ProcessState::Killed
    ) {
        failures.push(tag(&format!(
            "victim did not converge: {:?} after {} restarts",
            run.states[VICTIM], run.restarts
        )));
    }
    if run.restarts > MAX_RESTARTS {
        failures.push(tag(&format!("restart cap exceeded: {}", run.restarts)));
    }
    // 4. A plan whose injections never fired must replay the reference
    //    exactly — the engine itself is observable-trace-neutral.
    if run.fired == 0 && !traces_clean {
        let got = normalize(&run.trace.events, TraceScope::Observable);
        if got != reference_full {
            failures.push(tag("zero-fired run diverged from the reference"));
        }
    }
}

/// The uninjected reference for one chip, reduced to what the oracle
/// needs: the normalized observable traces (shared read-only by every
/// unit of that chip) plus the reference run's own health checks. One
/// reference serves both cache modes — observable traces are
/// cache-independent, so the warm and cold passes validate against the
/// same baseline (as the serial campaign always has).
struct ChipReference {
    violations: Vec<String>,
    states: Vec<ProcessState>,
    by_pid: Vec<Vec<TraceEvent>>,
    full: Vec<TraceEvent>,
    /// The reference run's raw (unprojected) trace. Raw equality implies
    /// observable equality — the projection is a pure per-event function
    /// — so an unfired run that matches this outright needs no
    /// projection walk at all.
    raw: Vec<TraceEvent>,
}

fn chip_reference(chip: &ChipProfile) -> ChipReference {
    let reference = run_one(chip, None);
    let by_pid = (0..BYSTANDERS)
        .map(|b| {
            normalize_for_pid(
                &reference.trace.events,
                TraceScope::Observable,
                (VICTIM + 1 + b) as u32,
            )
        })
        .collect();
    let full = normalize(&reference.trace.events, TraceScope::Observable);
    ChipReference {
        violations: reference.violations,
        states: reference.states,
        by_pid,
        full,
        raw: reference.trace.events,
    }
}

/// One scheduled unit of campaign work: chip index, seed, cache mode
/// (`true` = commit cache disabled).
pub type Unit = (usize, u64, bool);

/// What one injected run reduces to before the ordered merge: the
/// fixed-size summary a fleet campaign keeps per run (everything
/// [`crate::corpus::CorpusRecord`] needs, plus the rendered failures).
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// Index of the chip in the campaign's chip slice.
    pub chip: usize,
    /// The injection seed.
    pub seed: u64,
    /// `true` for the commit-cache-disabled pass.
    pub cold: bool,
    /// Rendered oracle failures (empty = run passed).
    pub failures: Vec<String>,
    /// Injections that fired.
    pub fired: u64,
    /// Victim recoveries.
    pub recoveries: u32,
    /// Victim restarts.
    pub restarts: u32,
    /// Whether the victim ended permanently killed.
    pub killed: bool,
    /// Cycles spent recovering the victim.
    pub recovery_cycles: u64,
    /// Events in the run's trace.
    pub trace_len: usize,
    /// Wall-clock nanoseconds restoring the snapshot (and arming).
    ///
    /// Timing fields feed the fleet profiler only — they never enter the
    /// compared report text, so byte-identical determinism holds.
    pub restore_ns: u64,
    /// Wall-clock nanoseconds executing the run body.
    pub run_ns: u64,
    /// Wall-clock nanoseconds draining sinks into the record.
    pub collect_ns: u64,
    /// Wall-clock nanoseconds validating against the reference.
    pub validate_ns: u64,
    /// Whether the run resumed from the mid-run snapshot.
    pub midrun: bool,
}

/// Snapshot-capture amortization tallies, shared across the fleet
/// pool's workers (each worker boots its own runners; the campaign sums
/// them here for the profiler).
#[derive(Debug, Default)]
pub struct CaptureStats {
    /// Fresh `FleetRunner` boots (one per worker per `(chip, mode)`
    /// slot the worker drew work for).
    pub boots: std::sync::atomic::AtomicU64,
    /// Total wall-clock nanoseconds those boots + snapshot captures took.
    pub capture_ns: std::sync::atomic::AtomicU64,
}

/// A worker-local cache of booted [`FleetRunner`]s, one slot per
/// `(chip, cache-mode)`. Runners are built lazily the first time a
/// worker draws a unit for that slot, then reused — every subsequent run
/// on the slot is a restore, not a boot.
struct SnapshotCache<'a> {
    runners: Vec<Option<FleetRunner>>,
    stats: &'a CaptureStats,
}

impl<'a> SnapshotCache<'a> {
    fn new(chips: usize, stats: &'a CaptureStats) -> Self {
        Self {
            runners: (0..chips * 2).map(|_| None).collect(),
            stats,
        }
    }

    fn boot(chips: &[ChipProfile], c: usize, stats: &CaptureStats) -> FleetRunner {
        let runner = FleetRunner::new(&chips[c]);
        stats
            .boots
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        stats
            .capture_ns
            .fetch_add(runner.capture_ns(), std::sync::atomic::Ordering::Relaxed);
        runner
    }

    fn run(
        &mut self,
        chips: &[ChipProfile],
        c: usize,
        cold: bool,
        seed: u64,
        reference: &ChipReference,
    ) -> (RunRecord, RunPhases, OracleCheck) {
        let slot = c * 2 + usize::from(cold);
        let stats = self.stats;
        let plan = Some(InjectionPlan::from_seed(seed, VICTIM as u32));
        if cold {
            // Cold pass: boot *and* run with the commit cache disabled —
            // the cache changes which RegWrite events boot emits, so the
            // cold snapshot must come from a cold boot.
            tt_hw::commit_cache::with_disabled(|| {
                let runner = self.runners[slot].get_or_insert_with(|| Self::boot(chips, c, stats));
                runner.run_plan_oracle(plan, reference)
            })
        } else {
            // Warm pass: commit cache enabled (the production config).
            let runner = self.runners[slot].get_or_insert_with(|| Self::boot(chips, c, stats));
            runner.run_plan_oracle(plan, reference)
        }
    }
}

fn run_unit(
    cache: &mut SnapshotCache,
    chips: &[ChipProfile],
    unit: Unit,
    reference: &ChipReference,
) -> UnitOutcome {
    let (c, seed, cold) = unit;
    let (run, phases, check) = cache.run(chips, c, cold, seed, reference);
    let t0 = std::time::Instant::now();
    let mut failures = Vec::new();
    validate_run(
        &chips[c],
        &run,
        &reference.by_pid,
        &reference.full,
        check.clean,
        &mut failures,
    );
    // The streaming trace comparison already ran in place over the ring
    // (`phases.oracle_ns`); count it where it belongs.
    let validate_ns = phases.oracle_ns + t0.elapsed().as_nanos() as u64;
    let outcome = UnitOutcome {
        chip: c,
        seed,
        cold,
        failures,
        fired: run.fired,
        recoveries: run.recoveries,
        restarts: run.restarts,
        killed: run.states[VICTIM] == ProcessState::Killed,
        recovery_cycles: run.recovery_cycles,
        trace_len: check.trace_len,
        restore_ns: phases.restore_ns,
        run_ns: phases.run_ns,
        collect_ns: phases.collect_ns,
        validate_ns,
        midrun: phases.midrun,
    };
    // Hand the drained event buffer back to this worker's ring: the next
    // run on this thread then records without allocating.
    trace::recycle(run.trace);
    outcome
}

fn reference_report(chip: &ChipProfile, reference: &ChipReference) -> ChipReport {
    let mut report = ChipReport {
        chip: chip.name,
        runs: 0,
        fired: 0,
        failures: Vec::new(),
        recoveries: 0,
        restarts: 0,
        killed: 0,
        warm_cycles: 0,
        warm_recoveries: 0,
        cold_cycles: 0,
        cold_recoveries: 0,
    };
    for v in &reference.violations {
        report
            .failures
            .push(format!("{} reference: contract violation: {v}", chip.name));
    }
    if reference.states.iter().any(|s| *s != ProcessState::Exited) {
        report.failures.push(format!(
            "{} reference: processes did not all exit: {:?}",
            chip.name, reference.states
        ));
    }
    report
}

/// [`run_campaign_on`], additionally returning the per-unit outcomes in
/// schedule order (chip-major, then seed, warm before cold) — the raw
/// material for `ci/corpus/` persistence and the fleet benchmark.
///
/// Work fans out over [`pool::run_indexed_ctx`]: each worker lazily
/// boots one [`FleetRunner`] per `(chip, cache-mode)` slot it draws work
/// for, and every unit after the first on a slot is a
/// [`MachineSnapshot::restore`] instead of a [`Kernel::boot`]. Results
/// merge in unit order, and restored runs are byte-identical to fresh
/// boots, so the returned reports — failure strings included — are
/// byte-identical for any thread count.
pub fn run_campaign_detailed(
    chips: &[ChipProfile],
    seeds: u64,
    threads: usize,
) -> (Vec<ChipReport>, Vec<UnitOutcome>) {
    let result = run_campaign_profiled(chips, seeds, threads, &[]);
    (result.reports, result.outcomes)
}

/// Everything one profiled fleet campaign produces: the per-chip
/// reports, the per-unit outcomes (with wall-clock phase timings), and
/// the snapshot-capture amortization tallies.
#[derive(Debug)]
pub struct CampaignResult {
    /// Aggregated per-chip reports, byte-identical across thread counts.
    pub reports: Vec<ChipReport>,
    /// Per-unit outcomes in schedule order.
    pub outcomes: Vec<UnitOutcome>,
    /// Fresh runner boots across all workers.
    pub boots: u64,
    /// Total nanoseconds spent booting + capturing snapshots.
    pub capture_ns: u64,
}

/// [`run_campaign_detailed`] plus capture amortization and
/// corpus-guided scheduling: units listed in `priority` (previously
/// failing `(chip, seed, cold)` triples, typically decoded from
/// `ci/corpus/failures.bin`) are scheduled *first*, so regressions
/// surface in the opening seconds of a million-run campaign instead of
/// wherever the default order happens to place them.
///
/// Unknown or out-of-range priority entries are ignored; duplicates run
/// once. An empty `priority` preserves the exact historical schedule
/// (chip-major, then seed, warm before cold). A non-empty one reorders
/// outcomes — and therefore the order (not the content) of failure
/// strings — by design: fail fast.
pub fn run_campaign_profiled(
    chips: &[ChipProfile],
    seeds: u64,
    threads: usize,
    priority: &[Unit],
) -> CampaignResult {
    // Phase 1: one uninjected reference per chip, computed once and
    // shared read-only by every unit of that chip. References stay on
    // the fresh-boot path: the oracle is anchored to a boot that never
    // went through snapshot/restore.
    let references: Vec<ChipReference> =
        pool::run_indexed(chips, threads, |_, chip| chip_reference(chip));
    // Phase 2: every (chip, seed, cache-mode) run as its own unit —
    // prioritized units first, then the default order minus those.
    let in_range = |&(c, seed, _): &Unit| c < chips.len() && seed < seeds;
    let mut front: Vec<Unit> = Vec::new();
    let mut fronted: std::collections::HashSet<Unit> = std::collections::HashSet::new();
    for unit in priority.iter().filter(|u| in_range(u)) {
        if fronted.insert(*unit) {
            front.push(*unit);
        }
    }
    let mut units: Vec<Unit> = front;
    units.reserve(chips.len() * (seeds as usize) * 2);
    for c in 0..chips.len() {
        for seed in 0..seeds {
            for cold in [false, true] {
                let unit = (c, seed, cold);
                if fronted.is_empty() || !fronted.contains(&unit) {
                    units.push(unit);
                }
            }
        }
    }
    let stats = CaptureStats::default();
    let refs = &references;
    let stats_ref = &stats;
    let outcomes = pool::run_indexed_ctx(
        &units,
        threads,
        || SnapshotCache::new(chips.len(), stats_ref),
        |cache, _, &unit| run_unit(cache, chips, unit, &refs[unit.0]),
    );
    // Ordered merge: reference checks first (as the serial runner
    // reported them), then each unit's failures and tallies in schedule
    // order.
    let mut reports: Vec<ChipReport> = chips
        .iter()
        .zip(refs)
        .map(|(chip, r)| reference_report(chip, r))
        .collect();
    for unit in &outcomes {
        let report = &mut reports[unit.chip];
        report.failures.extend(unit.failures.iter().cloned());
        if unit.cold {
            report.cold_cycles += unit.recovery_cycles;
            report.cold_recoveries += u64::from(unit.recoveries);
        } else {
            report.runs += 1;
            report.fired += unit.fired;
            report.recoveries += u64::from(unit.recoveries);
            report.restarts += u64::from(unit.restarts);
            report.killed += u64::from(unit.killed);
            report.warm_cycles += unit.recovery_cycles;
            report.warm_recoveries += u64::from(unit.recoveries);
        }
    }
    CampaignResult {
        reports,
        outcomes,
        boots: stats.boots.load(std::sync::atomic::Ordering::Relaxed),
        capture_ns: stats.capture_ns.load(std::sync::atomic::Ordering::Relaxed),
    }
}

/// Runs the campaign over any chip slice on a work-stealing pool of
/// `threads` workers. The unit of work is a single `(chip, seed,
/// warm/cold)` run — not a whole chip — so cores stay busy through the
/// tail of the campaign. See [`run_campaign_detailed`] for the fleet
/// (snapshot/restore) execution scheme and the determinism argument.
pub fn run_campaign_on(chips: &[ChipProfile], seeds: u64, threads: usize) -> Vec<ChipReport> {
    run_campaign_detailed(chips, seeds, threads).0
}

// ---------------------------------------------------------------------
// Shrinking a failing seed.
// ---------------------------------------------------------------------

/// Shrinks the plan behind a failing `(chip, seed, cache-mode)` run to a
/// 1-minimal schedule that still fails the campaign oracle, replaying
/// candidate plans on one serial [`FleetRunner`].
///
/// The reference is recomputed from a fresh boot and the predicate runs
/// serially on the calling thread, so the minimized schedule is a pure
/// function of `(chip, seed, cold)` — identical across re-invocations
/// and across whatever thread count the campaign that *found* the seed
/// was using.
pub fn shrink_failing_seed(chip: &ChipProfile, seed: u64, cold: bool) -> InjectionPlan {
    let reference = if cold {
        tt_hw::commit_cache::with_disabled(|| chip_reference(chip))
    } else {
        chip_reference(chip)
    };
    let mut runner = if cold {
        tt_hw::commit_cache::with_disabled(|| FleetRunner::new(chip))
    } else {
        FleetRunner::new(chip)
    };
    let plan = InjectionPlan::from_seed(seed, VICTIM as u32);
    shrink::shrink_plan(&plan, |candidate| {
        let run = if cold {
            tt_hw::commit_cache::with_disabled(|| runner.run_plan(Some(candidate.clone())))
        } else {
            runner.run_plan(Some(candidate.clone()))
        };
        let mut failures = Vec::new();
        let traces_clean = traces_match_streaming(&run, &reference);
        validate_run(
            chip,
            &run,
            &reference.by_pid,
            &reference.full,
            traces_clean,
            &mut failures,
        );
        trace::recycle(run.trace);
        !failures.is_empty()
    })
}

/// Runs `seeds` injection runs (plus one reference and a cold-cache
/// pass) against one chip, serially on the calling thread.
pub fn run_chip_campaign(chip: &ChipProfile, seeds: u64) -> ChipReport {
    run_campaign_on(std::slice::from_ref(chip), seeds, 1)
        .pop()
        .expect("one chip, one report")
}

/// Runs the campaign on all seven chips over the work-stealing pool
/// sized by [`pool::default_threads`] (`TT_BENCH_THREADS` or the
/// machine's available parallelism).
pub fn run_campaign(seeds: u64) -> Vec<ChipReport> {
    run_campaign_with_threads(seeds, pool::default_threads())
}

/// [`run_campaign`] with an explicit worker count (1 = serial). Reports
/// are byte-identical across thread counts.
pub fn run_campaign_with_threads(seeds: u64, threads: usize) -> Vec<ChipReport> {
    run_campaign_on(&ALL_CHIPS, seeds, threads)
}

/// Renders the campaign table plus any failures.
pub fn render_report(reports: &[ChipReport], seeds: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fault campaign: {} seeds x {} chips (warm+cold) = {} injected runs\n",
        seeds,
        reports.len(),
        reports.iter().map(|r| r.runs * 2).sum::<u64>(),
    ));
    out.push_str(&format!(
        "{:<14} {:>6} {:>6} {:>9} {:>8} {:>7} {:>12} {:>12}\n",
        "chip", "runs", "fired", "recovers", "restarts", "killed", "warm cyc", "cold cyc"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<14} {:>6} {:>6} {:>9} {:>8} {:>7} {:>12.0} {:>12.0}\n",
            r.chip,
            r.runs * 2,
            r.fired,
            r.recoveries,
            r.restarts,
            r.killed,
            r.warm_mean(),
            r.cold_mean(),
        ));
    }
    let failures: Vec<&String> = reports.iter().flat_map(|r| &r.failures).collect();
    if failures.is_empty() {
        out.push_str("all runs: bystander traces identical, zero violations, converged\n");
    } else {
        out.push_str(&format!("{} FAILURES:\n", failures.len()));
        for f in failures {
            out.push_str(&format!("  {f}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::proptest;
    use tt_hw::platform::{HIFIVE1, NRF52840DK};

    #[test]
    fn reference_run_is_clean_and_deterministic() {
        let a = run_one(&NRF52840DK, None);
        let b = run_one(&NRF52840DK, None);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.states.iter().all(|s| *s == ProcessState::Exited));
        assert_eq!(a.fired, 0);
        assert_eq!(
            normalize(&a.trace.events, TraceScope::Observable),
            normalize(&b.trace.events, TraceScope::Observable),
        );
    }

    #[test]
    fn arm_campaign_smoke_holds_the_oracle() {
        let report = run_chip_campaign(&NRF52840DK, 4);
        assert_eq!(report.runs, 4);
        assert!(report.failures.is_empty(), "{:#?}", report.failures);
    }

    #[test]
    fn pmp_campaign_smoke_holds_the_oracle() {
        let report = run_chip_campaign(&HIFIVE1, 3);
        assert!(report.failures.is_empty(), "{:#?}", report.failures);
    }

    #[test]
    fn parallel_campaign_report_is_byte_identical_to_serial() {
        let chips = [NRF52840DK, HIFIVE1];
        let serial = run_campaign_on(&chips, 3, 1);
        for threads in [2, 8] {
            let parallel = run_campaign_on(&chips, 3, threads);
            assert_eq!(
                render_report(&serial, 3),
                render_report(&parallel, 3),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn injected_runs_do_fire_against_the_victim() {
        // Across a handful of seeds at least one plan must actually fire
        // on each architecture — otherwise the campaign tests nothing.
        let fired: u64 = (0..6).map(|s| run_one(&NRF52840DK, Some(s)).fired).sum();
        assert!(fired > 0, "no ARM injection fired in 6 seeds");
        let fired: u64 = (0..6).map(|s| run_one(&HIFIVE1, Some(s)).fired).sum();
        assert!(fired > 0, "no PMP injection fired in 6 seeds");
    }

    /// Asserts a restored-machine run equals a fresh-boot run in every
    /// observable dimension: raw Full-scope trace, violations, terminal
    /// states, fired count, and recovery tallies.
    fn assert_run_equivalent(chip: &ChipProfile, seed: Option<u64>, cold: bool, what: &str) {
        let (fresh, restored) = if cold {
            let fresh = tt_hw::commit_cache::with_disabled(|| run_one(chip, seed));
            let restored = tt_hw::commit_cache::with_disabled(|| {
                let mut runner = FleetRunner::new(chip);
                runner.run_seed(seed)
            });
            (fresh, restored)
        } else {
            let fresh = run_one(chip, seed);
            let mut runner = FleetRunner::new(chip);
            (fresh, runner.run_seed(seed))
        };
        let ctx = format!("{what}: {} seed {seed:?} cold {cold}", chip.name);
        assert_eq!(
            fresh.trace.events, restored.trace.events,
            "{ctx}: Full-scope trace diverged"
        );
        assert_eq!(
            fresh.trace.dropped, restored.trace.dropped,
            "{ctx}: dropped"
        );
        assert_eq!(fresh.violations, restored.violations, "{ctx}: violations");
        assert_eq!(fresh.states, restored.states, "{ctx}: states");
        assert_eq!(fresh.fired, restored.fired, "{ctx}: fired");
        assert_eq!(fresh.restarts, restored.restarts, "{ctx}: restarts");
        assert_eq!(fresh.recoveries, restored.recoveries, "{ctx}: recoveries");
        assert_eq!(
            fresh.recovery_cycles, restored.recovery_cycles,
            "{ctx}: recovery_cycles"
        );
        // Commit-cache counters are restore-equivalence surface too: a
        // restore that resurrected stale hit/miss tallies (or missed a
        // reset_stats interaction) shows up here even when the trace
        // doesn't diverge.
        assert_eq!(fresh.cache_hits, restored.cache_hits, "{ctx}: cache_hits");
        assert_eq!(
            fresh.cache_misses, restored.cache_misses,
            "{ctx}: cache_misses"
        );
        trace::recycle(fresh.trace);
        trace::recycle(restored.trace);
    }

    #[test]
    fn restored_runs_match_fresh_boots_on_all_chips_and_modes() {
        for chip in &ALL_CHIPS {
            for cold in [false, true] {
                for seed in [None, Some(3)] {
                    assert_run_equivalent(chip, seed, cold, "restore-equivalence");
                }
            }
        }
    }

    #[test]
    fn snapshot_run_restore_run_round_trips_byte_identically() {
        // The PR 6 drift gate: run → restore → run the *same* runner and
        // demand byte-identity — any per-run state restore() misses
        // (commit-cache entries, kernel counters, backoff state,
        // injection cursors, TLS buffers) shows up as a diff here.
        for chip in [&NRF52840DK, &HIFIVE1] {
            let mut runner = FleetRunner::new(chip);
            for seed in 0..8u64 {
                let first = runner.run_seed(Some(seed));
                let second = runner.run_seed(Some(seed));
                assert_eq!(
                    first.trace.events, second.trace.events,
                    "{} seed {seed}: second run on a restored machine diverged",
                    chip.name
                );
                assert_eq!(first.violations, second.violations);
                assert_eq!(first.states, second.states);
                assert_eq!(first.fired, second.fired);
                assert_eq!(first.restarts, second.restarts);
                assert_eq!(first.recovery_cycles, second.recovery_cycles);
                trace::recycle(first.trace);
                trace::recycle(second.trace);
            }
        }
    }

    #[test]
    fn midrun_and_fallback_runs_interleave_byte_identically() {
        // Alternating restore targets on one runner exercises the
        // dirty-state merge both ways: a mid-run restore followed by a
        // post-boot restore (and back) must not leave pages from the
        // other snapshot behind. Seeds are picked so one plan fires
        // inside the first tick (forcing the post-boot fallback) and one
        // does not (taking the mid-run path).
        for chip in [&NRF52840DK, &HIFIVE1] {
            let mut runner = FleetRunner::new(chip);
            assert!(runner.capture_ns() > 0);
            let seen = runner.midrun.as_ref().unwrap().seen;
            let fallback_seed = (0..500u64)
                .find(|&s| InjectionPlan::from_seed(s, VICTIM as u32).fires_within(&seen))
                .expect("some seed schedules an injection inside tick 1");
            let midrun_seed = (0..500u64)
                .find(|&s| !InjectionPlan::from_seed(s, VICTIM as u32).fires_within(&seen))
                .expect("some seed stays clear of tick 1");
            let expect_fallback = run_one(chip, Some(fallback_seed));
            let expect_midrun = run_one(chip, Some(midrun_seed));
            let expect_ref = run_one(chip, None);
            for round in 0..3 {
                let (got, phases) = runner.run_seed_phased(Some(midrun_seed));
                assert!(phases.midrun, "{}: eligible plan skipped midrun", chip.name);
                assert_eq!(
                    expect_midrun.trace.events, got.trace.events,
                    "{} round {round}: midrun-path run diverged",
                    chip.name
                );
                assert_eq!(expect_midrun.violations, got.violations);
                assert_eq!(expect_midrun.fired, got.fired);
                trace::recycle(got.trace);
                let (got, phases) = runner.run_seed_phased(Some(fallback_seed));
                assert!(
                    !phases.midrun,
                    "{}: prefix-firing plan took the midrun path",
                    chip.name
                );
                assert_eq!(
                    expect_fallback.trace.events, got.trace.events,
                    "{} round {round}: fallback-path run diverged after a midrun restore",
                    chip.name
                );
                assert_eq!(expect_fallback.violations, got.violations);
                assert_eq!(expect_fallback.fired, got.fired);
                trace::recycle(got.trace);
                let (got, phases) = runner.run_seed_phased(None);
                assert!(phases.midrun, "{}: reference run skipped midrun", chip.name);
                assert_eq!(
                    expect_ref.trace.events, got.trace.events,
                    "{} round {round}: reference-shaped run diverged",
                    chip.name
                );
                trace::recycle(got.trace);
            }
            trace::recycle(expect_fallback.trace);
            trace::recycle(expect_midrun.trace);
            trace::recycle(expect_ref.trace);
        }
    }

    #[test]
    fn corpus_guided_priority_fronts_units_without_changing_content() {
        let chips = [NRF52840DK, HIFIVE1];
        // Priority list: one valid duplicate pair, one out-of-range chip,
        // one out-of-range seed — only (1, 1, true) and (0, 0, false)
        // should be fronted, once each.
        let priority = [
            (1, 1, true),
            (9, 0, false),
            (1, 1, true),
            (0, 0, false),
            (0, 7, true),
        ];
        let result = run_campaign_profiled(&chips, 2, 1, &priority);
        let schedule: Vec<Unit> = result
            .outcomes
            .iter()
            .map(|o| (o.chip, o.seed, o.cold))
            .collect();
        assert_eq!(schedule[..2], [(1, 1, true), (0, 0, false)]);
        assert_eq!(schedule.len(), chips.len() * 2 * 2, "units ran once each");
        let mut sorted = schedule.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), schedule.len(), "a unit ran twice");
        // Same campaign without priority: identical aggregate reports
        // (failure order could differ by design, but these runs pass).
        let (baseline, _) = run_campaign_detailed(&chips, 2, 1);
        assert_eq!(
            render_report(&baseline, 2),
            render_report(&result.reports, 2)
        );
        assert!(result.boots > 0);
        assert!(result.capture_ns > 0);
        // Phase timings populated, and at least one unit resumed midrun.
        assert!(result.outcomes.iter().any(|o| o.midrun));
        assert!(result.outcomes.iter().all(|o| o.run_ns > 0));
    }

    #[test]
    fn interleaved_runners_do_not_leak_thread_local_state() {
        // Two chips alternating on one worker thread, with deliberate
        // TLS pollution between runs: stale cycle counts, a stale
        // process context, a dirty method-record buffer. restore() must
        // make every run start from its own boot state regardless.
        let mut arm = FleetRunner::new(&NRF52840DK);
        let mut rv = FleetRunner::new(&HIFIVE1);
        let expect_arm = run_one(&NRF52840DK, Some(2));
        let expect_rv = run_one(&HIFIVE1, Some(2));
        for round in 0..3 {
            // Pollute the thread-local run context.
            tt_hw::cycles::charge_n(tt_hw::cycles::Cost::Alu, 10_000 + round);
            tt_hw::cycles::set_recording(true);
            tt_hw::cycles::record_method("polluter", 99);
            trace::set_current_pid(42);
            let got_arm = arm.run_seed(Some(2));
            let got_rv = rv.run_seed(Some(2));
            assert_eq!(
                expect_arm.trace.events, got_arm.trace.events,
                "round {round}: ARM trace polluted by interleaving"
            );
            assert_eq!(
                expect_rv.trace.events, got_rv.trace.events,
                "round {round}: RISC-V trace polluted by interleaving"
            );
            assert_eq!(expect_arm.violations, got_arm.violations);
            assert_eq!(expect_rv.violations, got_rv.violations);
            trace::recycle(got_arm.trace);
            trace::recycle(got_rv.trace);
        }
        trace::recycle(expect_arm.trace);
        trace::recycle(expect_rv.trace);
    }

    #[test]
    fn detailed_campaign_outcomes_match_schedule_order() {
        let chips = [NRF52840DK, HIFIVE1];
        let (reports, outcomes) = run_campaign_detailed(&chips, 2, 1);
        assert_eq!(outcomes.len(), chips.len() * 2 * 2);
        let schedule: Vec<(usize, u64, bool)> =
            outcomes.iter().map(|o| (o.chip, o.seed, o.cold)).collect();
        assert_eq!(
            schedule,
            vec![
                (0, 0, false),
                (0, 0, true),
                (0, 1, false),
                (0, 1, true),
                (1, 0, false),
                (1, 0, true),
                (1, 1, false),
                (1, 1, true),
            ]
        );
        assert!(outcomes.iter().all(|o| o.failures.is_empty()));
        assert!(outcomes.iter().all(|o| o.trace_len > 0));
        // Tallies in the reports are exactly the outcome sums.
        let fired: u64 = outcomes.iter().filter(|o| !o.cold).map(|o| o.fired).sum();
        assert_eq!(reports.iter().map(|r| r.fired).sum::<u64>(), fired);
    }

    #[test]
    fn shrinking_a_seed_is_deterministic_across_invocations() {
        // The campaign oracle holds on every seed, so shrink_failing_seed
        // returns the full plan unchanged — still a determinism check.
        let a = shrink_failing_seed(&NRF52840DK, 5, false);
        let b = shrink_failing_seed(&NRF52840DK, 5, false);
        assert_eq!(a, b);
        assert_eq!(a, InjectionPlan::from_seed(5, VICTIM as u32));
        // A predicate that *does* reproduce (injections fired) exercises
        // the real shrink loop on restored machines: the minimized plan
        // must be identical across invocations and runner instances.
        let shrink_fired = || {
            let mut runner = FleetRunner::new(&NRF52840DK);
            let plan = InjectionPlan::from_seed(11, VICTIM as u32);
            crate::shrink::shrink_plan(&plan, |p| {
                let run = runner.run_plan(Some(p.clone()));
                let fired = run.fired;
                trace::recycle(run.trace);
                fired > 0
            })
        };
        let first = shrink_fired();
        let second = shrink_fired();
        assert_eq!(
            first, second,
            "minimized schedule differs across re-invocations"
        );
    }

    #[test]
    fn scheduled_runs_on_restored_machines_match_fresh_boots() {
        use tt_hw::sched::ArrivalPoint;
        // An early arrival (fires inside tick 1, forcing the post-boot
        // fallback), a late one (mid-run eligible), and the empty
        // schedule (pure occurrence counting) — each must make the
        // fleet path byte-identical to a fresh boot with the same
        // schedule armed.
        let schedules = [
            InterruptSchedule::single(ArrivalPoint::SyscallEnter, 0),
            InterruptSchedule::single(ArrivalPoint::SchedulerDecision, 8),
            InterruptSchedule::single(ArrivalPoint::MpuCommit, 12),
            InterruptSchedule::empty(),
        ];
        for chip in [&NRF52840DK, &HIFIVE1] {
            let mut runner = FleetRunner::new(chip);
            for schedule in &schedules {
                for seed in [None, Some(7)] {
                    let fresh = run_one_scheduled(chip, seed, Some(schedule));
                    let restored = runner.run_scheduled(
                        seed.map(|s| InjectionPlan::from_seed(s, VICTIM as u32)),
                        schedule,
                    );
                    let ctx = format!("{} seed {seed:?} schedule {:#x}", chip.name, schedule.id());
                    assert_eq!(
                        fresh.trace.events, restored.trace.events,
                        "{ctx}: Full-scope trace diverged"
                    );
                    assert_eq!(fresh.violations, restored.violations, "{ctx}: violations");
                    assert_eq!(fresh.states, restored.states, "{ctx}: states");
                    assert_eq!(fresh.fired, restored.fired, "{ctx}: fired");
                    assert_eq!(fresh.irq_fired, restored.irq_fired, "{ctx}: irq_fired");
                    trace::recycle(fresh.trace);
                    trace::recycle(restored.trace);
                }
            }
        }
    }

    #[test]
    fn empty_schedule_is_trace_neutral() {
        // An armed-but-empty schedule exercises every arrival-point
        // hook's counting path; the run must stay byte-identical to one
        // with no schedule armed at all.
        let plain = run_one(&NRF52840DK, Some(3));
        let counted = run_one_scheduled(&NRF52840DK, Some(3), Some(&InterruptSchedule::empty()));
        assert_eq!(plain.trace.events, counted.trace.events);
        assert_eq!(plain.violations, counted.violations);
        assert_eq!(counted.irq_fired, 0);
        trace::recycle(plain.trace);
        trace::recycle(counted.trace);
    }

    #[test]
    fn scheduled_arrivals_fire_and_perturb_only_nonobservably_on_a_correct_kernel() {
        use tt_hw::sched::ArrivalPoint;
        // On the correct kernel an arrival that fires must leave IRQ
        // markers in the Full trace while every bystander's Observable
        // stream stays byte-identical to the reference.
        let reference = chip_reference(&NRF52840DK);
        let mut runner = FleetRunner::new(&NRF52840DK);
        let mut fired_somewhere = false;
        for at in [0, 5, 17] {
            let run = runner.run_scheduled(
                None,
                &InterruptSchedule::single(ArrivalPoint::SyscallExit, at),
            );
            if run.irq_fired > 0 {
                fired_somewhere = true;
                assert!(
                    run.trace
                        .events
                        .iter()
                        .any(|e| matches!(e, TraceEvent::IrqEnter { .. })),
                    "fired arrival left no IrqEnter marker"
                );
            }
            assert!(run.violations.is_empty(), "{:?}", run.violations);
            assert!(
                bystander_streams_match(
                    run.trace.events.iter(),
                    &reference.by_pid,
                    [0; BYSTANDERS]
                ),
                "at {at}: bystander stream diverged under a scheduled arrival"
            );
            trace::recycle(run.trace);
        }
        assert!(fired_somewhere, "no scheduled arrival fired at all");
    }

    proptest! {
        #[test]
        fn restored_runs_match_fresh_boots_for_arbitrary_units(
            chip_idx in 0usize..ALL_CHIPS.len(),
            seed in proptest::prelude::any::<u64>(),
            cold in proptest::prelude::any::<bool>(),
        ) {
            let chip = &ALL_CHIPS[chip_idx];
            assert_run_equivalent(chip, Some(seed), cold, "proptest");
        }
    }
}
