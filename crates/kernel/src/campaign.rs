//! The §6-style fault-injection campaign: isolation under fire.
//!
//! One campaign run boots a three-process TickTock kernel, arms a seeded
//! [`InjectionPlan`] against the *victim* (pid 0), and runs to
//! completion under the [`FaultPolicy::RestartWithBackoff`] recovery
//! policy. The two *bystander* processes never see an injection; the
//! oracle is that their [`TraceScope::Observable`] event streams are
//! **byte-identical** to an uninjected reference run of the same chip —
//! faults stay contained to the process they were injected into, no
//! matter what the fault corrupted.
//!
//! Every run also checks that no contract site was violated (the runs
//! execute under [`Mode::Observe`] so violations are collected, not
//! panicked), and that recovery converged: bystanders exit, the victim
//! ends [`ProcessState::Exited`] or — restart cap exhausted —
//! [`ProcessState::Killed`], never a livelock.

use crate::capsules::driver;
use crate::kernel::{App, AppFactory, FaultPolicy, Kernel, Step};
use crate::loader::flash_app;
use crate::pool;
use crate::process::{Flavor, ProcessState};
use crate::shrink;
use crate::snapshot::MachineSnapshot;
use crate::trace::{normalize, normalize_for_pid, render_event, Trace, TraceEvent, TraceScope};
use tt_contracts::{take_violations, with_mode, Mode};
use tt_hw::injection::{self, InjectionPlan};
use tt_hw::platform::{ChipProfile, ALL_CHIPS};
use tt_hw::trace;

/// Pid the injection plans target.
pub const VICTIM: usize = 0;
/// Number of bystander processes riding along.
pub const BYSTANDERS: usize = 2;

const TRACE_CAPACITY: usize = 65_536;
const MAX_TICKS: u64 = 400;
const MAX_RESTARTS: u32 = 5;
const BASE_DELAY: u64 = 2;
const MAX_DELAY: u64 = 16;

// ---------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------

/// The victim: a syscall-rich workload that exercises every injection
/// point — register commits (brk/sbrk re-stage regions), syscall
/// arguments, user-mode accesses, grant allocation.
struct Victim {
    step_no: u32,
}

impl App for Victim {
    fn name(&self) -> &'static str {
        "victim"
    }
    fn step(&mut self, k: &mut Kernel, pid: usize) -> Step {
        let ms = k.processes[pid].memory_start();
        let i = self.step_no;
        self.step_no += 1;
        match i % 8 {
            0 => {
                let _ = k.sys_print(pid, "v\r\n");
            }
            1 => {
                let _ = k.sys_sbrk(pid, 64);
            }
            2 => {
                let _ = k.user_write_u32(pid, ms + 128, i);
            }
            3 => {
                let _ = k.sys_memop(pid, 1);
            }
            4 => {
                let _ = k.sys_allow_rw(pid, ms + 256, 16);
            }
            5 => {
                let _ = k.sys_command(pid, driver::ALARM, 1, 50);
            }
            6 => {
                let _ = k.user_read_u32(pid, ms + 128);
            }
            _ => {
                let _ = k.sys_sbrk(pid, -64);
            }
        }
        if self.step_no >= 64 {
            Step::Exit
        } else {
            Step::Continue
        }
    }
}

/// A bystander: deterministic work that never touches cycle-dependent
/// capsules (sensor/ADC) or alarms, so its observable trace depends only
/// on its own behaviour.
struct Bystander {
    id: u32,
    step_no: u32,
}

impl App for Bystander {
    fn name(&self) -> &'static str {
        "bystander"
    }
    fn step(&mut self, k: &mut Kernel, pid: usize) -> Step {
        let ms = k.processes[pid].memory_start();
        let i = self.step_no;
        self.step_no += 1;
        match i % 4 {
            0 => {
                let _ = k.sys_print(pid, "b\r\n");
            }
            1 => {
                let _ = k.user_write_u32(pid, ms + 512 + 4 * (i as usize % 8), i ^ self.id);
            }
            2 => {
                let _ = k.sys_command(pid, driver::LED, 0, self.id);
            }
            _ => {
                let _ = k.user_read_u32(pid, ms + 512);
            }
        }
        if self.step_no >= 32 {
            Step::Exit
        } else {
            Step::Continue
        }
    }
}

fn mk_victim() -> Box<dyn App> {
    Box::new(Victim { step_no: 0 })
}
fn mk_bystander_1() -> Box<dyn App> {
    Box::new(Bystander { id: 1, step_no: 0 })
}
fn mk_bystander_2() -> Box<dyn App> {
    Box::new(Bystander { id: 2, step_no: 0 })
}

// ---------------------------------------------------------------------
// One run.
// ---------------------------------------------------------------------

/// Outcome of one campaign run (injected or reference).
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The seed, or `None` for the uninjected reference run.
    pub seed: Option<u64>,
    /// Number of injections that actually fired.
    pub fired: u64,
    /// Contract violations observed during the run (rendered).
    pub violations: Vec<String>,
    /// Terminal state per pid.
    pub states: Vec<ProcessState>,
    /// Victim restart count.
    pub restarts: u32,
    /// Victim recovery count.
    pub recoveries: u32,
    /// Cycles the kernel spent recovering the victim.
    pub recovery_cycles: u64,
    /// The full event trace.
    pub trace: Trace,
}

/// Boots the campaign kernel on `chip`: TickTock flavour, backoff
/// restart policy, MPU scrub, three processes flashed and loaded. This
/// is the exact state [`MachineSnapshot::capture`] freezes for the fleet
/// path — [`run_one`] and [`FleetRunner`] share it so a restored run has
/// the same starting point as a fresh boot.
fn boot_campaign_kernel(chip: &ChipProfile) -> Kernel {
    let mut k = Kernel::boot(Flavor::Granular, chip);
    k.fault_policy = FaultPolicy::RestartWithBackoff {
        max_restarts: MAX_RESTARTS,
        base_delay: BASE_DELAY,
        max_delay: MAX_DELAY,
    };
    k.mpu_scrub = true;
    let base = chip.map.flash.start + 0x4_0000;
    for (slot, name) in [(0usize, "victim"), (1, "bys1"), (2, "bys2")] {
        let img = flash_app(&mut k.mem, base + slot * 0x1000, name, 0x1000, 3000, 1024)
            .expect("flash image");
        k.load_process(&img).expect("load process");
    }
    k
}

/// Drives the three campaign workloads to completion on a booted (or
/// restored) kernel.
fn run_apps(k: &mut Kernel) {
    let mut apps: Vec<Box<dyn App>> = vec![mk_victim(), mk_bystander_1(), mk_bystander_2()];
    let factories: [AppFactory; 3] = [mk_victim, mk_bystander_1, mk_bystander_2];
    k.run_with_factories(&mut apps, Some(&factories), MAX_TICKS);
}

/// Drains the per-run sinks (violations, trace) into a [`RunRecord`] and
/// stops tracing.
fn collect_record(kernel: &Kernel, seed: Option<u64>, fired: u64) -> RunRecord {
    let violations = take_violations().iter().map(|v| format!("{v:?}")).collect();
    let trace = trace::take();
    trace::disable();
    RunRecord {
        seed,
        fired,
        violations,
        states: kernel.processes.iter().map(|p| p.state.clone()).collect(),
        restarts: kernel.restarts[VICTIM],
        recoveries: kernel.recoveries[VICTIM],
        recovery_cycles: kernel.recovery_cycles[VICTIM],
        trace,
    }
}

/// Executes one three-process run on `chip`, with the injection plan for
/// `seed` armed against the victim (or no plan for the reference run).
///
/// This is the fresh-boot path: every run pays a full [`Kernel::boot`]
/// plus three flash/load cycles. Fleet campaigns use [`FleetRunner`],
/// which boots once and [`MachineSnapshot::restore`]s per run; the two
/// must produce byte-identical [`RunRecord`]s (the injection engine only
/// counts occurrences in the victim's context, and no process context
/// exists during boot, so arming before boot and arming after restore
/// see the same occurrence stream).
pub fn run_one(chip: &ChipProfile, seed: Option<u64>) -> RunRecord {
    tt_hw::cycles::reset();
    trace::enable(TRACE_CAPACITY);
    if let Some(s) = seed {
        injection::arm(InjectionPlan::from_seed(s, VICTIM as u32));
    }
    let kernel = with_mode(Mode::Observe, || {
        let mut k = boot_campaign_kernel(chip);
        run_apps(&mut k);
        k
    });
    let fired = if seed.is_some() {
        injection::disarm()
    } else {
        0
    };
    collect_record(&kernel, seed, fired)
}

// ---------------------------------------------------------------------
// The fleet path: boot once, restore per run.
// ---------------------------------------------------------------------

/// A reusable campaign machine for one chip: boots once, snapshots, and
/// replays any number of seeds by restoring the snapshot instead of
/// re-booting.
///
/// A runner is thread-affine (the snapshot holds `Rc` hardware handles
/// and replays into this thread's trace ring); the fleet pool builds one
/// per `(chip, cache-mode)` per worker via [`pool::run_indexed_ctx`].
/// For cold-cache runners, both [`FleetRunner::new`] and every run must
/// execute under `tt_hw::commit_cache::with_disabled` — the commit cache
/// changes which `RegWrite` events boot emits, so a cold run restored
/// from a warm boot snapshot would diverge from a cold fresh boot.
pub struct FleetRunner {
    chip: ChipProfile,
    kernel: Kernel,
    snapshot: MachineSnapshot,
    /// Violations the boot itself produced (none, for a healthy kernel),
    /// drained at capture time; prepended to every run's record so a
    /// restored run reports exactly what a fresh-boot run would.
    boot_violations: Vec<String>,
}

impl FleetRunner {
    /// Boots the campaign kernel on `chip` and captures the post-boot
    /// snapshot. The boot executes under [`Mode::Observe`] with tracing
    /// enabled, exactly like [`run_one`]'s prelude.
    pub fn new(chip: &ChipProfile) -> Self {
        tt_hw::cycles::reset();
        trace::enable(TRACE_CAPACITY);
        let mut kernel = with_mode(Mode::Observe, || boot_campaign_kernel(chip));
        let snapshot = MachineSnapshot::capture(&mut kernel);
        let boot_violations = take_violations().iter().map(|v| format!("{v:?}")).collect();
        trace::disable();
        Self {
            chip: *chip,
            kernel,
            snapshot,
            boot_violations,
        }
    }

    /// The chip this runner was booted for.
    pub fn chip(&self) -> &ChipProfile {
        &self.chip
    }

    /// Restores the boot snapshot and executes one run with `plan` armed
    /// against the victim (or no plan for a reference-shaped run).
    pub fn run_plan(&mut self, plan: Option<InjectionPlan>) -> RunRecord {
        let seed = plan.as_ref().map(|p| p.seed);
        let armed = plan.is_some();
        self.snapshot.restore(&mut self.kernel);
        if let Some(p) = plan {
            injection::arm(p);
        }
        with_mode(Mode::Observe, || run_apps(&mut self.kernel));
        let fired = if armed { injection::disarm() } else { 0 };
        let mut record = collect_record(&self.kernel, seed, fired);
        if !self.boot_violations.is_empty() {
            let mut violations = self.boot_violations.clone();
            violations.append(&mut record.violations);
            record.violations = violations;
        }
        record
    }

    /// [`FleetRunner::run_plan`] with the plan derived from `seed`
    /// (`None` = uninjected reference-shaped run).
    pub fn run_seed(&mut self, seed: Option<u64>) -> RunRecord {
        self.run_plan(seed.map(|s| InjectionPlan::from_seed(s, VICTIM as u32)))
    }

    /// Pays one restore and discards the result: the per-run reset cost
    /// the fleet benchmark compares against [`boot_probe`].
    pub fn restore_probe(&mut self) {
        self.snapshot.restore(&mut self.kernel);
        trace::recycle(trace::take());
        trace::disable();
    }
}

/// Pays one fresh campaign boot on `chip` and discards the kernel: the
/// per-run reset cost of the pre-fleet campaign, measured for the
/// restore-vs-boot speedup gate.
pub fn boot_probe(chip: &ChipProfile) {
    tt_hw::cycles::reset();
    trace::enable(TRACE_CAPACITY);
    let kernel = with_mode(Mode::Observe, || boot_campaign_kernel(chip));
    drop(take_violations());
    trace::recycle(trace::take());
    trace::disable();
    drop(kernel);
}

// ---------------------------------------------------------------------
// The per-chip campaign.
// ---------------------------------------------------------------------

/// Aggregated campaign result for one chip.
#[derive(Debug, Clone)]
pub struct ChipReport {
    /// Chip name.
    pub chip: &'static str,
    /// Seeded injection runs executed (warm; the cold pass doubles this).
    pub runs: u64,
    /// Injections that fired across all runs.
    pub fired: u64,
    /// Failed oracle checks, rendered for the report. Empty on success.
    pub failures: Vec<String>,
    /// Victim recoveries across all warm runs.
    pub recoveries: u64,
    /// Victim restarts across all warm runs.
    pub restarts: u64,
    /// Runs that ended with the victim permanently killed.
    pub killed: u64,
    /// Total victim recovery cycles, commit cache enabled.
    pub warm_cycles: u64,
    /// Victim recoveries in the warm pass (divisor for the mean).
    pub warm_recoveries: u64,
    /// Total victim recovery cycles with the commit cache disabled.
    pub cold_cycles: u64,
    /// Victim recoveries in the cold pass.
    pub cold_recoveries: u64,
}

impl ChipReport {
    /// Mean recovery latency in cycles, commit cache enabled.
    pub fn warm_mean(&self) -> f64 {
        self.warm_cycles as f64 / (self.warm_recoveries.max(1)) as f64
    }
    /// Mean recovery latency in cycles, commit cache disabled.
    pub fn cold_mean(&self) -> f64 {
        self.cold_cycles as f64 / (self.cold_recoveries.max(1)) as f64
    }
}

fn first_injected_event(trace: &Trace) -> String {
    trace
        .events
        .iter()
        .find(|e| matches!(e, TraceEvent::FaultInjected { .. }))
        .map(render_event)
        .unwrap_or_else(|| "<no injection fired>".into())
}

/// Checks one injected run against the reference. Appends rendered
/// failures (empty = run passed).
fn validate_run(
    chip: &ChipProfile,
    run: &RunRecord,
    reference_by_pid: &[Vec<TraceEvent>],
    reference_full: &[TraceEvent],
    failures: &mut Vec<String>,
) {
    let seed = run.seed.unwrap_or(0);
    let tag = |what: &str| format!("{} seed {seed}: {what}", chip.name);
    // 1. Contract sites all held, at every step of recovery.
    for v in &run.violations {
        failures.push(tag(&format!("contract violation: {v}")));
    }
    // 2. Bystander isolation: observable traces byte-identical to the
    //    uninjected reference.
    for (b, reference) in reference_by_pid.iter().enumerate() {
        let pid = (VICTIM + 1 + b) as u32;
        let got = normalize_for_pid(&run.trace.events, TraceScope::Observable, pid);
        if got != *reference {
            let at = got
                .iter()
                .zip(reference.iter())
                .position(|(g, r)| g != r)
                .unwrap_or_else(|| got.len().min(reference.len()));
            let render = |events: &[TraceEvent], i: usize| {
                events
                    .get(i)
                    .map(render_event)
                    .unwrap_or_else(|| "<end of trace>".into())
            };
            failures.push(tag(&format!(
                "bystander pid{pid} trace diverged at event #{at}: reference `{}` vs injected \
                 `{}`; first injected fault: {}",
                render(reference, at),
                render(&got, at),
                first_injected_event(&run.trace),
            )));
        }
    }
    // 3. Convergence: bystanders ran to completion, the victim either
    //    finished or was permanently killed within the restart cap.
    for b in 0..BYSTANDERS {
        let pid = VICTIM + 1 + b;
        if run.states[pid] != ProcessState::Exited {
            failures.push(tag(&format!(
                "bystander pid{pid} did not exit: {:?}",
                run.states[pid]
            )));
        }
    }
    if !matches!(
        run.states[VICTIM],
        ProcessState::Exited | ProcessState::Killed
    ) {
        failures.push(tag(&format!(
            "victim did not converge: {:?} after {} restarts",
            run.states[VICTIM], run.restarts
        )));
    }
    if run.restarts > MAX_RESTARTS {
        failures.push(tag(&format!("restart cap exceeded: {}", run.restarts)));
    }
    // 4. A plan whose injections never fired must replay the reference
    //    exactly — the engine itself is observable-trace-neutral.
    if run.fired == 0 {
        let got = normalize(&run.trace.events, TraceScope::Observable);
        if got != reference_full {
            failures.push(tag("zero-fired run diverged from the reference"));
        }
    }
}

/// The uninjected reference for one chip, reduced to what the oracle
/// needs: the normalized observable traces (shared read-only by every
/// unit of that chip) plus the reference run's own health checks. One
/// reference serves both cache modes — observable traces are
/// cache-independent, so the warm and cold passes validate against the
/// same baseline (as the serial campaign always has).
struct ChipReference {
    violations: Vec<String>,
    states: Vec<ProcessState>,
    by_pid: Vec<Vec<TraceEvent>>,
    full: Vec<TraceEvent>,
}

fn chip_reference(chip: &ChipProfile) -> ChipReference {
    let reference = run_one(chip, None);
    let by_pid = (0..BYSTANDERS)
        .map(|b| {
            normalize_for_pid(
                &reference.trace.events,
                TraceScope::Observable,
                (VICTIM + 1 + b) as u32,
            )
        })
        .collect();
    let full = normalize(&reference.trace.events, TraceScope::Observable);
    let out = ChipReference {
        violations: reference.violations,
        states: reference.states,
        by_pid,
        full,
    };
    trace::recycle(reference.trace);
    out
}

/// One scheduled unit of campaign work: chip index, seed, cache mode.
type Unit = (usize, u64, bool);

/// What one injected run reduces to before the ordered merge: the
/// fixed-size summary a fleet campaign keeps per run (everything
/// [`crate::corpus::CorpusRecord`] needs, plus the rendered failures).
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// Index of the chip in the campaign's chip slice.
    pub chip: usize,
    /// The injection seed.
    pub seed: u64,
    /// `true` for the commit-cache-disabled pass.
    pub cold: bool,
    /// Rendered oracle failures (empty = run passed).
    pub failures: Vec<String>,
    /// Injections that fired.
    pub fired: u64,
    /// Victim recoveries.
    pub recoveries: u32,
    /// Victim restarts.
    pub restarts: u32,
    /// Whether the victim ended permanently killed.
    pub killed: bool,
    /// Cycles spent recovering the victim.
    pub recovery_cycles: u64,
    /// Events in the run's trace.
    pub trace_len: usize,
}

/// A worker-local cache of booted [`FleetRunner`]s, one slot per
/// `(chip, cache-mode)`. Runners are built lazily the first time a
/// worker draws a unit for that slot, then reused — every subsequent run
/// on the slot is a restore, not a boot.
struct SnapshotCache {
    runners: Vec<Option<FleetRunner>>,
}

impl SnapshotCache {
    fn new(chips: usize) -> Self {
        Self {
            runners: (0..chips * 2).map(|_| None).collect(),
        }
    }

    fn run(&mut self, chips: &[ChipProfile], c: usize, cold: bool, seed: u64) -> RunRecord {
        let slot = c * 2 + usize::from(cold);
        if cold {
            // Cold pass: boot *and* run with the commit cache disabled —
            // the cache changes which RegWrite events boot emits, so the
            // cold snapshot must come from a cold boot.
            tt_hw::commit_cache::with_disabled(|| {
                let runner = self.runners[slot].get_or_insert_with(|| FleetRunner::new(&chips[c]));
                runner.run_seed(Some(seed))
            })
        } else {
            // Warm pass: commit cache enabled (the production config).
            let runner = self.runners[slot].get_or_insert_with(|| FleetRunner::new(&chips[c]));
            runner.run_seed(Some(seed))
        }
    }
}

fn run_unit(
    cache: &mut SnapshotCache,
    chips: &[ChipProfile],
    unit: Unit,
    reference: &ChipReference,
) -> UnitOutcome {
    let (c, seed, cold) = unit;
    let run = cache.run(chips, c, cold, seed);
    let mut failures = Vec::new();
    validate_run(
        &chips[c],
        &run,
        &reference.by_pid,
        &reference.full,
        &mut failures,
    );
    let outcome = UnitOutcome {
        chip: c,
        seed,
        cold,
        failures,
        fired: run.fired,
        recoveries: run.recoveries,
        restarts: run.restarts,
        killed: run.states[VICTIM] == ProcessState::Killed,
        recovery_cycles: run.recovery_cycles,
        trace_len: run.trace.events.len(),
    };
    // Hand the drained event buffer back to this worker's ring: the next
    // run on this thread then records without allocating.
    trace::recycle(run.trace);
    outcome
}

fn reference_report(chip: &ChipProfile, reference: &ChipReference) -> ChipReport {
    let mut report = ChipReport {
        chip: chip.name,
        runs: 0,
        fired: 0,
        failures: Vec::new(),
        recoveries: 0,
        restarts: 0,
        killed: 0,
        warm_cycles: 0,
        warm_recoveries: 0,
        cold_cycles: 0,
        cold_recoveries: 0,
    };
    for v in &reference.violations {
        report
            .failures
            .push(format!("{} reference: contract violation: {v}", chip.name));
    }
    if reference.states.iter().any(|s| *s != ProcessState::Exited) {
        report.failures.push(format!(
            "{} reference: processes did not all exit: {:?}",
            chip.name, reference.states
        ));
    }
    report
}

/// [`run_campaign_on`], additionally returning the per-unit outcomes in
/// schedule order (chip-major, then seed, warm before cold) — the raw
/// material for `ci/corpus/` persistence and the fleet benchmark.
///
/// Work fans out over [`pool::run_indexed_ctx`]: each worker lazily
/// boots one [`FleetRunner`] per `(chip, cache-mode)` slot it draws work
/// for, and every unit after the first on a slot is a
/// [`MachineSnapshot::restore`] instead of a [`Kernel::boot`]. Results
/// merge in unit order, and restored runs are byte-identical to fresh
/// boots, so the returned reports — failure strings included — are
/// byte-identical for any thread count.
pub fn run_campaign_detailed(
    chips: &[ChipProfile],
    seeds: u64,
    threads: usize,
) -> (Vec<ChipReport>, Vec<UnitOutcome>) {
    // Phase 1: one uninjected reference per chip, computed once and
    // shared read-only by every unit of that chip. References stay on
    // the fresh-boot path: the oracle is anchored to a boot that never
    // went through snapshot/restore.
    let references: Vec<ChipReference> =
        pool::run_indexed(chips, threads, |_, chip| chip_reference(chip));
    // Phase 2: every (chip, seed, cache-mode) run as its own unit.
    let mut units: Vec<Unit> = Vec::with_capacity(chips.len() * (seeds as usize) * 2);
    for c in 0..chips.len() {
        for seed in 0..seeds {
            units.push((c, seed, false));
            units.push((c, seed, true));
        }
    }
    let refs = &references;
    let outcomes = pool::run_indexed_ctx(
        &units,
        threads,
        || SnapshotCache::new(chips.len()),
        |cache, _, &unit| run_unit(cache, chips, unit, &refs[unit.0]),
    );
    // Ordered merge: reference checks first (as the serial runner
    // reported them), then each unit's failures and tallies in schedule
    // order.
    let mut reports: Vec<ChipReport> = chips
        .iter()
        .zip(refs)
        .map(|(chip, r)| reference_report(chip, r))
        .collect();
    for unit in &outcomes {
        let report = &mut reports[unit.chip];
        report.failures.extend(unit.failures.iter().cloned());
        if unit.cold {
            report.cold_cycles += unit.recovery_cycles;
            report.cold_recoveries += u64::from(unit.recoveries);
        } else {
            report.runs += 1;
            report.fired += unit.fired;
            report.recoveries += u64::from(unit.recoveries);
            report.restarts += u64::from(unit.restarts);
            report.killed += u64::from(unit.killed);
            report.warm_cycles += unit.recovery_cycles;
            report.warm_recoveries += u64::from(unit.recoveries);
        }
    }
    (reports, outcomes)
}

/// Runs the campaign over any chip slice on a work-stealing pool of
/// `threads` workers. The unit of work is a single `(chip, seed,
/// warm/cold)` run — not a whole chip — so cores stay busy through the
/// tail of the campaign. See [`run_campaign_detailed`] for the fleet
/// (snapshot/restore) execution scheme and the determinism argument.
pub fn run_campaign_on(chips: &[ChipProfile], seeds: u64, threads: usize) -> Vec<ChipReport> {
    run_campaign_detailed(chips, seeds, threads).0
}

// ---------------------------------------------------------------------
// Shrinking a failing seed.
// ---------------------------------------------------------------------

/// Shrinks the plan behind a failing `(chip, seed, cache-mode)` run to a
/// 1-minimal schedule that still fails the campaign oracle, replaying
/// candidate plans on one serial [`FleetRunner`].
///
/// The reference is recomputed from a fresh boot and the predicate runs
/// serially on the calling thread, so the minimized schedule is a pure
/// function of `(chip, seed, cold)` — identical across re-invocations
/// and across whatever thread count the campaign that *found* the seed
/// was using.
pub fn shrink_failing_seed(chip: &ChipProfile, seed: u64, cold: bool) -> InjectionPlan {
    let reference = if cold {
        tt_hw::commit_cache::with_disabled(|| chip_reference(chip))
    } else {
        chip_reference(chip)
    };
    let mut runner = if cold {
        tt_hw::commit_cache::with_disabled(|| FleetRunner::new(chip))
    } else {
        FleetRunner::new(chip)
    };
    let plan = InjectionPlan::from_seed(seed, VICTIM as u32);
    shrink::shrink_plan(&plan, |candidate| {
        let run = if cold {
            tt_hw::commit_cache::with_disabled(|| runner.run_plan(Some(candidate.clone())))
        } else {
            runner.run_plan(Some(candidate.clone()))
        };
        let mut failures = Vec::new();
        validate_run(
            chip,
            &run,
            &reference.by_pid,
            &reference.full,
            &mut failures,
        );
        trace::recycle(run.trace);
        !failures.is_empty()
    })
}

/// Runs `seeds` injection runs (plus one reference and a cold-cache
/// pass) against one chip, serially on the calling thread.
pub fn run_chip_campaign(chip: &ChipProfile, seeds: u64) -> ChipReport {
    run_campaign_on(std::slice::from_ref(chip), seeds, 1)
        .pop()
        .expect("one chip, one report")
}

/// Runs the campaign on all seven chips over the work-stealing pool
/// sized by [`pool::default_threads`] (`TT_BENCH_THREADS` or the
/// machine's available parallelism).
pub fn run_campaign(seeds: u64) -> Vec<ChipReport> {
    run_campaign_with_threads(seeds, pool::default_threads())
}

/// [`run_campaign`] with an explicit worker count (1 = serial). Reports
/// are byte-identical across thread counts.
pub fn run_campaign_with_threads(seeds: u64, threads: usize) -> Vec<ChipReport> {
    run_campaign_on(&ALL_CHIPS, seeds, threads)
}

/// Renders the campaign table plus any failures.
pub fn render_report(reports: &[ChipReport], seeds: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fault campaign: {} seeds x {} chips (warm+cold) = {} injected runs\n",
        seeds,
        reports.len(),
        reports.iter().map(|r| r.runs * 2).sum::<u64>(),
    ));
    out.push_str(&format!(
        "{:<14} {:>6} {:>6} {:>9} {:>8} {:>7} {:>12} {:>12}\n",
        "chip", "runs", "fired", "recovers", "restarts", "killed", "warm cyc", "cold cyc"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<14} {:>6} {:>6} {:>9} {:>8} {:>7} {:>12.0} {:>12.0}\n",
            r.chip,
            r.runs * 2,
            r.fired,
            r.recoveries,
            r.restarts,
            r.killed,
            r.warm_mean(),
            r.cold_mean(),
        ));
    }
    let failures: Vec<&String> = reports.iter().flat_map(|r| &r.failures).collect();
    if failures.is_empty() {
        out.push_str("all runs: bystander traces identical, zero violations, converged\n");
    } else {
        out.push_str(&format!("{} FAILURES:\n", failures.len()));
        for f in failures {
            out.push_str(&format!("  {f}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::proptest;
    use tt_hw::platform::{HIFIVE1, NRF52840DK};

    #[test]
    fn reference_run_is_clean_and_deterministic() {
        let a = run_one(&NRF52840DK, None);
        let b = run_one(&NRF52840DK, None);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.states.iter().all(|s| *s == ProcessState::Exited));
        assert_eq!(a.fired, 0);
        assert_eq!(
            normalize(&a.trace.events, TraceScope::Observable),
            normalize(&b.trace.events, TraceScope::Observable),
        );
    }

    #[test]
    fn arm_campaign_smoke_holds_the_oracle() {
        let report = run_chip_campaign(&NRF52840DK, 4);
        assert_eq!(report.runs, 4);
        assert!(report.failures.is_empty(), "{:#?}", report.failures);
    }

    #[test]
    fn pmp_campaign_smoke_holds_the_oracle() {
        let report = run_chip_campaign(&HIFIVE1, 3);
        assert!(report.failures.is_empty(), "{:#?}", report.failures);
    }

    #[test]
    fn parallel_campaign_report_is_byte_identical_to_serial() {
        let chips = [NRF52840DK, HIFIVE1];
        let serial = run_campaign_on(&chips, 3, 1);
        for threads in [2, 8] {
            let parallel = run_campaign_on(&chips, 3, threads);
            assert_eq!(
                render_report(&serial, 3),
                render_report(&parallel, 3),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn injected_runs_do_fire_against_the_victim() {
        // Across a handful of seeds at least one plan must actually fire
        // on each architecture — otherwise the campaign tests nothing.
        let fired: u64 = (0..6).map(|s| run_one(&NRF52840DK, Some(s)).fired).sum();
        assert!(fired > 0, "no ARM injection fired in 6 seeds");
        let fired: u64 = (0..6).map(|s| run_one(&HIFIVE1, Some(s)).fired).sum();
        assert!(fired > 0, "no PMP injection fired in 6 seeds");
    }

    /// Asserts a restored-machine run equals a fresh-boot run in every
    /// observable dimension: raw Full-scope trace, violations, terminal
    /// states, fired count, and recovery tallies.
    fn assert_run_equivalent(chip: &ChipProfile, seed: Option<u64>, cold: bool, what: &str) {
        let (fresh, restored) = if cold {
            let fresh = tt_hw::commit_cache::with_disabled(|| run_one(chip, seed));
            let restored = tt_hw::commit_cache::with_disabled(|| {
                let mut runner = FleetRunner::new(chip);
                runner.run_seed(seed)
            });
            (fresh, restored)
        } else {
            let fresh = run_one(chip, seed);
            let mut runner = FleetRunner::new(chip);
            (fresh, runner.run_seed(seed))
        };
        let ctx = format!("{what}: {} seed {seed:?} cold {cold}", chip.name);
        assert_eq!(
            fresh.trace.events, restored.trace.events,
            "{ctx}: Full-scope trace diverged"
        );
        assert_eq!(
            fresh.trace.dropped, restored.trace.dropped,
            "{ctx}: dropped"
        );
        assert_eq!(fresh.violations, restored.violations, "{ctx}: violations");
        assert_eq!(fresh.states, restored.states, "{ctx}: states");
        assert_eq!(fresh.fired, restored.fired, "{ctx}: fired");
        assert_eq!(fresh.restarts, restored.restarts, "{ctx}: restarts");
        assert_eq!(fresh.recoveries, restored.recoveries, "{ctx}: recoveries");
        assert_eq!(
            fresh.recovery_cycles, restored.recovery_cycles,
            "{ctx}: recovery_cycles"
        );
        trace::recycle(fresh.trace);
        trace::recycle(restored.trace);
    }

    #[test]
    fn restored_runs_match_fresh_boots_on_all_chips_and_modes() {
        for chip in &ALL_CHIPS {
            for cold in [false, true] {
                for seed in [None, Some(3)] {
                    assert_run_equivalent(chip, seed, cold, "restore-equivalence");
                }
            }
        }
    }

    #[test]
    fn snapshot_run_restore_run_round_trips_byte_identically() {
        // The PR 6 drift gate: run → restore → run the *same* runner and
        // demand byte-identity — any per-run state restore() misses
        // (commit-cache entries, kernel counters, backoff state,
        // injection cursors, TLS buffers) shows up as a diff here.
        for chip in [&NRF52840DK, &HIFIVE1] {
            let mut runner = FleetRunner::new(chip);
            for seed in 0..8u64 {
                let first = runner.run_seed(Some(seed));
                let second = runner.run_seed(Some(seed));
                assert_eq!(
                    first.trace.events, second.trace.events,
                    "{} seed {seed}: second run on a restored machine diverged",
                    chip.name
                );
                assert_eq!(first.violations, second.violations);
                assert_eq!(first.states, second.states);
                assert_eq!(first.fired, second.fired);
                assert_eq!(first.restarts, second.restarts);
                assert_eq!(first.recovery_cycles, second.recovery_cycles);
                trace::recycle(first.trace);
                trace::recycle(second.trace);
            }
        }
    }

    #[test]
    fn interleaved_runners_do_not_leak_thread_local_state() {
        // Two chips alternating on one worker thread, with deliberate
        // TLS pollution between runs: stale cycle counts, a stale
        // process context, a dirty method-record buffer. restore() must
        // make every run start from its own boot state regardless.
        let mut arm = FleetRunner::new(&NRF52840DK);
        let mut rv = FleetRunner::new(&HIFIVE1);
        let expect_arm = run_one(&NRF52840DK, Some(2));
        let expect_rv = run_one(&HIFIVE1, Some(2));
        for round in 0..3 {
            // Pollute the thread-local run context.
            tt_hw::cycles::charge_n(tt_hw::cycles::Cost::Alu, 10_000 + round);
            tt_hw::cycles::set_recording(true);
            tt_hw::cycles::record_method("polluter", 99);
            trace::set_current_pid(42);
            let got_arm = arm.run_seed(Some(2));
            let got_rv = rv.run_seed(Some(2));
            assert_eq!(
                expect_arm.trace.events, got_arm.trace.events,
                "round {round}: ARM trace polluted by interleaving"
            );
            assert_eq!(
                expect_rv.trace.events, got_rv.trace.events,
                "round {round}: RISC-V trace polluted by interleaving"
            );
            assert_eq!(expect_arm.violations, got_arm.violations);
            assert_eq!(expect_rv.violations, got_rv.violations);
            trace::recycle(got_arm.trace);
            trace::recycle(got_rv.trace);
        }
        trace::recycle(expect_arm.trace);
        trace::recycle(expect_rv.trace);
    }

    #[test]
    fn detailed_campaign_outcomes_match_schedule_order() {
        let chips = [NRF52840DK, HIFIVE1];
        let (reports, outcomes) = run_campaign_detailed(&chips, 2, 1);
        assert_eq!(outcomes.len(), chips.len() * 2 * 2);
        let schedule: Vec<(usize, u64, bool)> =
            outcomes.iter().map(|o| (o.chip, o.seed, o.cold)).collect();
        assert_eq!(
            schedule,
            vec![
                (0, 0, false),
                (0, 0, true),
                (0, 1, false),
                (0, 1, true),
                (1, 0, false),
                (1, 0, true),
                (1, 1, false),
                (1, 1, true),
            ]
        );
        assert!(outcomes.iter().all(|o| o.failures.is_empty()));
        assert!(outcomes.iter().all(|o| o.trace_len > 0));
        // Tallies in the reports are exactly the outcome sums.
        let fired: u64 = outcomes.iter().filter(|o| !o.cold).map(|o| o.fired).sum();
        assert_eq!(reports.iter().map(|r| r.fired).sum::<u64>(), fired);
    }

    #[test]
    fn shrinking_a_seed_is_deterministic_across_invocations() {
        // The campaign oracle holds on every seed, so shrink_failing_seed
        // returns the full plan unchanged — still a determinism check.
        let a = shrink_failing_seed(&NRF52840DK, 5, false);
        let b = shrink_failing_seed(&NRF52840DK, 5, false);
        assert_eq!(a, b);
        assert_eq!(a, InjectionPlan::from_seed(5, VICTIM as u32));
        // A predicate that *does* reproduce (injections fired) exercises
        // the real shrink loop on restored machines: the minimized plan
        // must be identical across invocations and runner instances.
        let shrink_fired = || {
            let mut runner = FleetRunner::new(&NRF52840DK);
            let plan = InjectionPlan::from_seed(11, VICTIM as u32);
            crate::shrink::shrink_plan(&plan, |p| {
                let run = runner.run_plan(Some(p.clone()));
                let fired = run.fired;
                trace::recycle(run.trace);
                fired > 0
            })
        };
        let first = shrink_fired();
        let second = shrink_fired();
        assert_eq!(
            first, second,
            "minimized schedule differs across re-invocations"
        );
    }

    proptest! {
        #[test]
        fn restored_runs_match_fresh_boots_for_arbitrary_units(
            chip_idx in 0usize..ALL_CHIPS.len(),
            seed in proptest::prelude::any::<u64>(),
            cold in proptest::prelude::any::<bool>(),
        ) {
            let chip = &ALL_CHIPS[chip_idx];
            assert_run_equivalent(chip, Some(seed), cold, "proptest");
        }
    }
}
