//! Typed grants: kernel-owned per-process storage in the grant region.
//!
//! Tock capsules keep their per-process state in *grants*: typed
//! allocations in the kernel-owned top of the process memory block,
//! unreachable from user space (that unreachability is exactly what the
//! paper verifies). This module reproduces the typed interface over the
//! simulator's grant allocations: a [`Grant`] describes a POD layout, and
//! [`Grant::enter`] gives structured access with the borrow discipline
//! Tock enforces (no reentrant enters).

use crate::kernel::Kernel;
use crate::process::ProcessError;
use tt_hw::PtrU8;

/// A fixed-layout value storable in a grant: encodable to/from a byte
/// image of `SIZE` bytes.
pub trait GrantValue: Default {
    /// Byte size of the stored image.
    const SIZE: usize;
    /// Serializes into `buf` (`buf.len() == SIZE`).
    fn store(&self, buf: &mut [u8]);
    /// Deserializes from `buf`.
    fn load(buf: &[u8]) -> Self;
}

impl GrantValue for u32 {
    const SIZE: usize = 4;
    fn store(&self, buf: &mut [u8]) {
        buf.copy_from_slice(&self.to_le_bytes());
    }
    fn load(buf: &[u8]) -> Self {
        u32::from_le_bytes(buf.try_into().expect("4 bytes"))
    }
}

impl GrantValue for [u32; 4] {
    const SIZE: usize = 16;
    fn store(&self, buf: &mut [u8]) {
        for (i, w) in self.iter().enumerate() {
            buf[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
    }
    fn load(buf: &[u8]) -> Self {
        std::array::from_fn(|i| u32::from_le_bytes(buf[i * 4..i * 4 + 4].try_into().unwrap()))
    }
}

/// A typed grant slot: a driver's per-process state of type `T`.
#[derive(Debug, Clone, Copy)]
pub struct Grant<T: GrantValue> {
    /// The driver's grant identifier.
    pub grant_id: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: GrantValue> Grant<T> {
    /// Declares a typed grant for `grant_id`.
    pub fn new(grant_id: usize) -> Self {
        Self {
            grant_id,
            _marker: std::marker::PhantomData,
        }
    }

    /// Ensures the grant is allocated for `pid`, zero-initializing on
    /// first use, and returns its address.
    pub fn ensure(&self, kernel: &mut Kernel, pid: usize) -> Result<PtrU8, ProcessError> {
        if let Some((ptr, _)) = kernel.processes[pid].grant(self.grant_id) {
            return Ok(ptr);
        }
        let ptr = kernel.processes[pid].allocate_grant(self.grant_id, T::SIZE)?;
        let zeroes = vec![0u8; T::SIZE];
        kernel
            .mem
            .write_bytes(ptr.as_usize(), &zeroes)
            .map_err(|_| ProcessError::NoMemory)?;
        Ok(ptr)
    }

    /// Enters the grant: loads the typed value, runs `f` on it, and stores
    /// it back. Allocates on first use. This is the kernel-privileged
    /// path; the stored bytes live above the kernel break where no user
    /// access is admitted.
    pub fn enter<R>(
        &self,
        kernel: &mut Kernel,
        pid: usize,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ProcessError> {
        let ptr = self.ensure(kernel, pid)?;
        let mut buf = vec![0u8; T::SIZE];
        kernel
            .mem
            .read_bytes(ptr.as_usize(), &mut buf)
            .map_err(|_| ProcessError::NoMemory)?;
        let mut value = T::load(&buf);
        let out = f(&mut value);
        value.store(&mut buf);
        kernel
            .mem
            .write_bytes(ptr.as_usize(), &buf)
            .map_err(|_| ProcessError::NoMemory)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::flash_app;
    use crate::process::Flavor;
    use tt_hw::mem::AccessType;
    use tt_hw::platform::NRF52840DK;
    use tt_legacy::BugVariant;

    fn kernel(flavor: Flavor) -> (Kernel, usize) {
        let mut k = Kernel::boot(flavor, &NRF52840DK);
        let img = flash_app(&mut k.mem, 0x0004_0000, "g", 0x1000, 2048, 512).unwrap();
        let pid = k.load_process(&img).unwrap();
        (k, pid)
    }

    fn flavors() -> [Flavor; 2] {
        [Flavor::Legacy(BugVariant::Fixed), Flavor::Granular]
    }

    #[test]
    fn enter_roundtrips_typed_state() {
        for flavor in flavors() {
            let (mut k, pid) = kernel(flavor);
            let grant: Grant<u32> = Grant::new(7);
            let v = grant.enter(&mut k, pid, |count| {
                *count += 1;
                *count
            });
            assert_eq!(v, Ok(1));
            let v = grant.enter(&mut k, pid, |count| {
                *count += 10;
                *count
            });
            assert_eq!(v, Ok(11), "{flavor:?}");
        }
    }

    #[test]
    fn first_use_is_zero_initialized() {
        for flavor in flavors() {
            let (mut k, pid) = kernel(flavor);
            let grant: Grant<[u32; 4]> = Grant::new(3);
            let snapshot = grant.enter(&mut k, pid, |arr| *arr).unwrap();
            assert_eq!(snapshot, [0; 4]);
        }
    }

    #[test]
    fn array_grants_roundtrip() {
        for flavor in flavors() {
            let (mut k, pid) = kernel(flavor);
            let grant: Grant<[u32; 4]> = Grant::new(3);
            grant
                .enter(&mut k, pid, |arr| *arr = [1, 2, 3, 0xDEAD_BEEF])
                .unwrap();
            let back = grant.enter(&mut k, pid, |arr| *arr).unwrap();
            assert_eq!(back, [1, 2, 3, 0xDEAD_BEEF]);
        }
    }

    #[test]
    fn distinct_grants_do_not_alias() {
        for flavor in flavors() {
            let (mut k, pid) = kernel(flavor);
            let a: Grant<u32> = Grant::new(1);
            let b: Grant<u32> = Grant::new(2);
            a.enter(&mut k, pid, |v| *v = 111).unwrap();
            b.enter(&mut k, pid, |v| *v = 222).unwrap();
            assert_eq!(a.enter(&mut k, pid, |v| *v), Ok(111));
            assert_eq!(b.enter(&mut k, pid, |v| *v), Ok(222));
        }
    }

    #[test]
    fn grant_contents_are_not_user_accessible() {
        for flavor in flavors() {
            let (mut k, pid) = kernel(flavor);
            let grant: Grant<u32> = Grant::new(1);
            let ptr = grant.ensure(&mut k, pid).unwrap();
            grant.enter(&mut k, pid, |v| *v = 0x005E_C2E7).unwrap();
            k.processes[pid].setup_mpu();
            // The grant address is above the kernel break: user reads and
            // writes are denied by the protection hardware.
            assert!(
                !k.user_probe(ptr.as_usize(), AccessType::Read),
                "{flavor:?}: grant readable from user space"
            );
            assert!(!k.user_probe(ptr.as_usize(), AccessType::Write));
        }
    }

    #[test]
    fn grant_exhaustion_propagates() {
        for flavor in flavors() {
            let (mut k, pid) = kernel(flavor);
            // Exhaust the reservation with minimal chunks so no gap large
            // enough for another allocation remains.
            let mut id = 100;
            while k.processes[pid].allocate_grant(id, 8).is_ok() {
                id += 1;
            }
            let grant: Grant<[u32; 4]> = Grant::new(9999);
            assert_eq!(
                grant.enter(&mut k, pid, |_| ()),
                Err(ProcessError::NoMemory)
            );
        }
    }
}
