//! Process loading from flash: a TBF-like application image format.
//!
//! Tock loads processes from flash images carrying a Tock Binary Format
//! header (total size, entry point, minimum RAM). The simulator keeps the
//! same structure: images are programmed into the chip's flash and parsed
//! back at boot, and the flash region handed to the MPU is derived from
//! the image placement.

use tt_hw::mem::PhysicalMemory;
use tt_hw::PtrU8;

/// Magic number marking a valid app header (Tock uses TBF version tags).
pub const TBF_MAGIC: u32 = 0x5449_434B; // "TICK"

/// Parsed application header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppImage {
    /// App name (up to 16 bytes in the header).
    pub name: String,
    /// Flash address of the header.
    pub flash_start: PtrU8,
    /// Total flash footprint (header + code), a power of two for the
    /// Cortex-M flash region.
    pub flash_size: usize,
    /// Entry point offset from `flash_start`.
    pub entry_offset: usize,
    /// Minimum RAM the app requests for stack + data + heap.
    pub min_ram_size: usize,
    /// Grant-region reservation the kernel makes for this app.
    pub kernel_reserved: usize,
}

impl AppImage {
    /// The entry point address.
    pub fn entry_point(&self) -> PtrU8 {
        self.flash_start.offset(self.entry_offset)
    }
}

/// Header layout: magic(4) name_len(4) name(16) flash_size(4)
/// entry_offset(4) min_ram(4) kernel_reserved(4) = 40 bytes.
pub const HEADER_BYTES: usize = 40;

/// Errors from image handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadError {
    /// The header magic is wrong or the header is truncated.
    BadHeader,
    /// The image does not fit at the requested flash address.
    DoesNotFit,
    /// The declared size is not a power of two or is misaligned (the
    /// Cortex-M flash region constraint).
    BadGeometry,
}

/// Serializes and programs an app image into flash; returns the parsed
/// [`AppImage`] as the loader would see it at boot.
pub fn flash_app(
    mem: &mut PhysicalMemory,
    flash_start: usize,
    name: &str,
    flash_size: usize,
    min_ram_size: usize,
    kernel_reserved: usize,
) -> Result<AppImage, LoadError> {
    if !tt_contracts::math::is_pow2(flash_size)
        || flash_size < HEADER_BYTES.next_power_of_two()
        || !flash_start.is_multiple_of(flash_size)
    {
        return Err(LoadError::BadGeometry);
    }
    let mut header = Vec::with_capacity(HEADER_BYTES);
    header.extend_from_slice(&TBF_MAGIC.to_le_bytes());
    let name_bytes = name.as_bytes();
    let name_len = name_bytes.len().min(16);
    header.extend_from_slice(&(name_len as u32).to_le_bytes());
    let mut name_field = [0u8; 16];
    name_field[..name_len].copy_from_slice(&name_bytes[..name_len]);
    header.extend_from_slice(&name_field);
    header.extend_from_slice(&(flash_size as u32).to_le_bytes());
    header.extend_from_slice(&(HEADER_BYTES as u32).to_le_bytes()); // Entry after header.
    header.extend_from_slice(&(min_ram_size as u32).to_le_bytes());
    header.extend_from_slice(&(kernel_reserved as u32).to_le_bytes());
    debug_assert_eq!(header.len(), HEADER_BYTES);
    mem.program_flash(flash_start, &header)
        .map_err(|_| LoadError::DoesNotFit)?;
    parse_app(mem, flash_start)
}

/// Parses an app header out of flash.
pub fn parse_app(mem: &PhysicalMemory, flash_start: usize) -> Result<AppImage, LoadError> {
    let magic = mem
        .read_u32(flash_start)
        .map_err(|_| LoadError::BadHeader)?;
    if magic != TBF_MAGIC {
        return Err(LoadError::BadHeader);
    }
    let read = |off: usize| {
        mem.read_u32(flash_start + off)
            .map_err(|_| LoadError::BadHeader)
    };
    let name_len = read(4)? as usize;
    let mut name_bytes = [0u8; 16];
    mem.read_bytes(flash_start + 8, &mut name_bytes)
        .map_err(|_| LoadError::BadHeader)?;
    let name = String::from_utf8_lossy(&name_bytes[..name_len.min(16)]).into_owned();
    let flash_size = read(24)? as usize;
    let entry_offset = read(28)? as usize;
    let min_ram_size = read(32)? as usize;
    let kernel_reserved = read(36)? as usize;
    if !tt_contracts::math::is_pow2(flash_size) || !flash_start.is_multiple_of(flash_size) {
        return Err(LoadError::BadGeometry);
    }
    Ok(AppImage {
        name,
        flash_start: PtrU8::new(flash_start),
        flash_size,
        entry_offset,
        min_ram_size,
        kernel_reserved,
    })
}

/// Lays out several images back to back in flash, each aligned to its own
/// (power-of-two) size, starting at `base`.
pub fn flash_many(
    mem: &mut PhysicalMemory,
    base: usize,
    specs: &[(&str, usize, usize, usize)], // (name, flash_size, min_ram, kernel_reserved)
) -> Result<Vec<AppImage>, LoadError> {
    let mut at = base;
    let mut out = Vec::with_capacity(specs.len());
    for (name, flash_size, min_ram, kernel_reserved) in specs {
        at = tt_contracts::math::align_up(at, *flash_size);
        out.push(flash_app(
            mem,
            at,
            name,
            *flash_size,
            *min_ram,
            *kernel_reserved,
        )?);
        at += flash_size;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::platform::NRF52840DK;

    #[test]
    fn flash_and_parse_roundtrip() {
        let mut mem = NRF52840DK.memory();
        let img = flash_app(&mut mem, 0x0004_0000, "c_hello", 0x1000, 2048, 512).unwrap();
        assert_eq!(img.name, "c_hello");
        assert_eq!(img.flash_size, 0x1000);
        assert_eq!(img.min_ram_size, 2048);
        assert_eq!(img.kernel_reserved, 512);
        assert_eq!(img.entry_point().as_usize(), 0x0004_0000 + HEADER_BYTES);
        let reparsed = parse_app(&mem, 0x0004_0000).unwrap();
        assert_eq!(reparsed, img);
    }

    #[test]
    fn bad_magic_rejected() {
        let mem = NRF52840DK.memory();
        assert_eq!(parse_app(&mem, 0x0004_0000), Err(LoadError::BadHeader));
    }

    #[test]
    fn geometry_validation() {
        let mut mem = NRF52840DK.memory();
        assert_eq!(
            flash_app(&mut mem, 0x0004_0000, "x", 0x1100, 1024, 256),
            Err(LoadError::BadGeometry)
        );
        assert_eq!(
            flash_app(&mut mem, 0x0004_0100, "x", 0x1000, 1024, 256),
            Err(LoadError::BadGeometry)
        );
    }

    #[test]
    fn long_names_truncate_to_16_bytes() {
        let mut mem = NRF52840DK.memory();
        let img = flash_app(
            &mut mem,
            0x0004_0000,
            "a_very_long_application_name",
            0x1000,
            1024,
            256,
        )
        .unwrap();
        assert_eq!(img.name.len(), 16);
    }

    #[test]
    fn flash_many_aligns_each_image() {
        let mut mem = NRF52840DK.memory();
        let imgs = flash_many(
            &mut mem,
            0x0004_0000,
            &[
                ("one", 0x1000, 1024, 256),
                ("two", 0x2000, 2048, 256),
                ("three", 0x1000, 1024, 256),
            ],
        )
        .unwrap();
        assert_eq!(imgs[0].flash_start.as_usize(), 0x0004_0000);
        assert_eq!(imgs[1].flash_start.as_usize(), 0x0004_2000); // 0x2000-aligned.
        assert_eq!(imgs[2].flash_start.as_usize(), 0x0004_4000);
        for img in &imgs {
            assert_eq!(img.flash_start.as_usize() % img.flash_size, 0);
        }
    }

    #[test]
    fn image_overflowing_flash_rejected() {
        let mut mem = NRF52840DK.memory();
        let end = NRF52840DK.map.flash.end;
        let aligned = end - 0x1000 + 0x1000; // One past the last aligned slot.
        assert_eq!(
            flash_app(&mut mem, aligned, "x", 0x1000, 1024, 256),
            Err(LoadError::DoesNotFit)
        );
    }
}
