//! Property tests for the trace-equivalence oracle: across randomized
//! release-suite schedules on every `ChipProfile`,
//!
//! * Tock (`Legacy(Fixed)`) and TickTock (`Granular`) are observably
//!   trace-equivalent on every test where §6.1 expects no difference, and
//! * every flavor (including the buggy legacy variants) is deterministic:
//!   two runs of the same schedule produce identical full-scope traces.

use proptest::prelude::*;
use tt_hw::platform::ALL_CHIPS;
use tt_kernel::apps::release_tests;
use tt_kernel::differential::run_one_on;
use tt_kernel::process::Flavor;
use tt_kernel::trace::{diff_traces, render_divergence, TraceScope};
use tt_legacy::BugVariant;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cross-flavor equivalence the differential oracle gates on.
    #[test]
    fn flavors_are_observably_trace_equivalent(
        chip_idx in 0usize..ALL_CHIPS.len(),
        schedule in proptest::collection::vec(0usize..21, 1..4),
    ) {
        let chip = &ALL_CHIPS[chip_idx];
        let tests = release_tests();
        for &t in &schedule {
            let test = &tests[t];
            let tock = run_one_on(test, Flavor::Legacy(BugVariant::Fixed), chip);
            let ticktock = run_one_on(test, Flavor::Granular, chip);
            let d = diff_traces(&tock.trace, &ticktock.trace, TraceScope::Observable);
            if test.spec.expect_differs {
                // §6.1 expected differences (layout/sensor tests) may
                // legitimately diverge; nothing to assert about `d`.
                continue;
            }
            prop_assert!(
                d.is_none(),
                "{} on {}: {}",
                test.spec.name,
                chip.name,
                render_divergence(d.as_ref().unwrap(), "tock", "ticktock")
            );
            prop_assert_eq!(tock.console, ticktock.console);
        }
    }

    /// Full-scope determinism: any flavor, run twice, traces identically
    /// down to the register values.
    #[test]
    fn every_flavor_is_trace_deterministic(
        chip_idx in 0usize..ALL_CHIPS.len(),
        test_idx in 0usize..21,
        flavor_idx in 0usize..3,
    ) {
        let chip = &ALL_CHIPS[chip_idx];
        let flavor = [
            Flavor::Legacy(BugVariant::Fixed),
            Flavor::Legacy(BugVariant::Buggy),
            Flavor::Granular,
        ][flavor_idx];
        let test = &release_tests()[test_idx];
        let a = run_one_on(test, flavor, chip);
        let b = run_one_on(test, flavor, chip);
        let d = diff_traces(&a.trace, &b.trace, TraceScope::Full);
        prop_assert!(
            d.is_none(),
            "{} ({flavor:?}) on {}: {}",
            test.spec.name,
            chip.name,
            render_divergence(d.as_ref().unwrap(), "run-a", "run-b")
        );
    }
}
