//! The ISSUE acceptance test for the trace oracle: injecting a known
//! divergence (the `BugVariant::Buggy` legacy allocator) makes
//! `diff_traces` report a first-divergent-event that names the faulty MPU
//! register commit.

use tt_hw::platform::{ESP32_C3, NRF52840DK};
use tt_kernel::differential::{app_flash_base, TRACE_CAPACITY};
use tt_kernel::loader::flash_app;
use tt_kernel::process::Flavor;
use tt_kernel::trace::{self, diff_traces, RegName, Trace, TraceEvent, TraceScope};
use tt_kernel::Kernel;
use tt_legacy::BugVariant;

/// Boots a legacy kernel, loads one app, and issues a `brk` that the
/// fixed allocator must reject: on ARM, `brk(memory_start)` shrinks the
/// app region to nothing (`new_break <= region_start`); on RISC-V, a
/// grant is allocated first (moving the kernel break down) and the brk
/// then grows the app region over it. The buggy variant's missing/wrong
/// validation (tock#4366 / #2173 class) lets the break through and
/// commits a wrong MPU configuration — which the trace records.
fn brk_attack_trace(variant: BugVariant, chip: &tt_hw::platform::ChipProfile) -> (Trace, bool) {
    tt_hw::cycles::reset();
    trace::enable(TRACE_CAPACITY);
    let mut k = Kernel::boot(Flavor::Legacy(variant), chip);
    let img = flash_app(&mut k.mem, app_flash_base(chip), "t", 0x1000, 3000, 1024).unwrap();
    let pid = k.load_process(&img).unwrap();
    let target = if matches!(chip.arch, tt_hw::platform::Arch::CortexM) {
        k.processes[pid].memory_start()
    } else {
        // Carve a grant out of the top of the block, then try to grow the
        // app region over the whole block (grant included).
        k.processes[pid].allocate_grant(0, 256).unwrap();
        k.processes[pid].memory_start() + k.processes[pid].memory_size()
    };
    let ok = k.sys_brk(pid, target).is_ok();
    let t = trace::take();
    trace::disable();
    (t, ok)
}

fn is_mpu_commit_event(ev: &Option<TraceEvent>) -> bool {
    matches!(
        ev,
        Some(TraceEvent::RegWrite { .. }) | Some(TraceEvent::MpuCommit { .. })
    )
}

#[test]
fn buggy_arm_allocator_divergence_names_the_faulty_register_commit() {
    let (buggy, buggy_ok) = brk_attack_trace(BugVariant::Buggy, &NRF52840DK);
    let (fixed, fixed_ok) = brk_attack_trace(BugVariant::Fixed, &NRF52840DK);
    // The injected bug admits the bad break; the fixed allocator rejects it.
    assert!(buggy_ok && !fixed_ok);

    let d = diff_traces(&buggy, &fixed, TraceScope::Full)
        .expect("buggy and fixed kernels must trace-diverge");
    // The first divergent event is part of the MPU register commit the
    // buggy allocator should never have made.
    assert!(
        is_mpu_commit_event(&d.left) || is_mpu_commit_event(&d.right),
        "divergence should name an MPU register commit, got {d:?}"
    );
    // The buggy commit programs RASR subregion-disable bits the fixed
    // kernel never writes (the shrunk-to-nothing app region).
    let rasr_values = |t: &Trace| -> Vec<u32> {
        t.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::RegWrite {
                    reg: RegName::Rasr,
                    value,
                    ..
                } => Some(*value),
                _ => None,
            })
            .collect()
    };
    let fixed_rasr = rasr_values(&fixed);
    let faulty: Vec<u32> = rasr_values(&buggy)
        .into_iter()
        .filter(|v| !fixed_rasr.contains(v))
        .collect();
    assert!(
        !faulty.is_empty(),
        "buggy kernel should commit RASR values the fixed kernel never writes"
    );
}

#[test]
fn buggy_riscv_allocator_divergence_names_the_faulty_pmp_commit() {
    let (buggy, buggy_ok) = brk_attack_trace(BugVariant::Buggy, &ESP32_C3);
    let (fixed, fixed_ok) = brk_attack_trace(BugVariant::Fixed, &ESP32_C3);
    assert!(buggy_ok && !fixed_ok);

    let d = diff_traces(&buggy, &fixed, TraceScope::Full)
        .expect("buggy and fixed kernels must trace-diverge");
    assert!(
        is_mpu_commit_event(&d.left) || is_mpu_commit_event(&d.right),
        "divergence should name a PMP register commit, got {d:?}"
    );
    // The buggy commit programs a pmpaddr bound past the grant region —
    // an address the fixed kernel never writes.
    let addr_values = |t: &Trace| -> Vec<u32> {
        t.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::RegWrite {
                    reg: RegName::PmpAddr,
                    value,
                    ..
                } => Some(*value),
                _ => None,
            })
            .collect()
    };
    let fixed_addrs = addr_values(&fixed);
    assert!(
        addr_values(&buggy).iter().any(|v| !fixed_addrs.contains(v)),
        "buggy kernel should program a PMP bound the fixed kernel never writes"
    );
}

#[test]
fn divergence_is_visible_in_observable_scope_too() {
    // The bad break succeeds on the buggy kernel and fails on the fixed
    // one — an app-observable difference, caught without register events.
    let (buggy, _) = brk_attack_trace(BugVariant::Buggy, &NRF52840DK);
    let (fixed, _) = brk_attack_trace(BugVariant::Fixed, &NRF52840DK);
    let d = diff_traces(&buggy, &fixed, TraceScope::Observable).expect("observable divergence");
    assert!(
        matches!(
            (&d.left, &d.right),
            (
                Some(TraceEvent::SyscallExit { ok: true, .. }),
                Some(TraceEvent::SyscallExit { ok: false, .. })
            )
        ),
        "expected brk ok/err divergence, got {d:?}"
    );
}

#[test]
fn identical_kernels_produce_identical_traces() {
    let (a, _) = brk_attack_trace(BugVariant::Fixed, &NRF52840DK);
    let (b, _) = brk_attack_trace(BugVariant::Fixed, &NRF52840DK);
    assert_eq!(diff_traces(&a, &b, TraceScope::Full), None);
}
