//! Integration tests for the PR 4 fault-recovery subsystem: commit-cache
//! invalidation on every `Faulted` transition (a stale hit after a fault
//! is impossible), the `Kill` and `RestartWithBackoff` policies, and
//! proptests for backoff monotonicity and restart-cap termination.

use std::cell::RefCell;

use proptest::prelude::*;
use tt_hw::platform::{ChipProfile, ALL_CHIPS, NRF52840DK};
use tt_kernel::kernel::{App, AppFactory, FaultPolicy, Step};
use tt_kernel::loader::flash_app;
use tt_kernel::process::Flavor;
use tt_kernel::recovery::backoff_delay;
use tt_kernel::trace::{RecoveryStep, TraceEvent};
use tt_kernel::{trace, Kernel, ProcessState};

const TRACE_CAPACITY: usize = 65_536;

fn boot(chip: &ChipProfile) -> (Kernel, usize) {
    tt_hw::cycles::reset();
    trace::enable(TRACE_CAPACITY);
    let mut k = Kernel::boot(Flavor::Granular, chip);
    let image = flash_app(
        &mut k.mem,
        chip.map.flash.start + 0x4_0000,
        "fr",
        0x1000,
        4096,
        2048,
    )
    .unwrap();
    let pid = k.load_process(&image).unwrap();
    k.processes[pid].setup_mpu();
    (k, pid)
}

// ---------------------------------------------------------------------
// Satellite 1: stale cache hit after a fault is impossible.
// ---------------------------------------------------------------------

#[test]
fn every_fault_transition_invalidates_the_commit_cache() {
    for chip in &ALL_CHIPS {
        let (mut k, pid) = boot(chip);
        // Warm the cache, then fault: the transition into Faulted must
        // drop the cache, so the next setup_mpu is a full re-commit.
        k.processes[pid].setup_mpu();
        let hits = k.machine.cache().hits();
        k.processes[pid].setup_mpu();
        assert_eq!(k.machine.cache().hits(), hits + 1, "{}: warm", chip.name);

        k.fault_process(pid, "injected");
        assert!(k.recover_process(pid), "{}", chip.name);
        let misses = k.machine.cache().misses();
        k.processes[pid].setup_mpu();
        assert_eq!(
            k.machine.cache().misses(),
            misses + 1,
            "{}: the first switch-in after a fault must miss",
            chip.name
        );
        assert!(k.processes[pid].mpu_consistent(), "{}", chip.name);

        // Restart (Faulted -> restarted) also lands on a cold cache.
        k.fault_process(pid, "injected again");
        assert!(k.recover_process(pid));
        k.restart_process(pid).unwrap();
        let misses = k.machine.cache().misses();
        k.processes[pid].setup_mpu();
        assert_eq!(k.machine.cache().misses(), misses + 1, "{}", chip.name);
        trace::disable();
    }
}

#[test]
fn fault_path_repairs_corrupted_registers_without_a_stale_hit() {
    // Corrupt a register while the cache is warm: a bare cache hit would
    // re-arm the stale configuration without touching hardware, which is
    // exactly what the fault path must make impossible.
    let (mut k, pid) = boot(&NRF52840DK);
    k.processes[pid].setup_mpu(); // warm: cache holds (pid, generation)
    assert!(k.processes[pid].mpu_consistent());
    let mpu = k.machine.cortexm().unwrap();
    {
        let mut mpu = mpu.borrow_mut();
        let regs = mpu.region(0);
        mpu.write_rbar(regs.rbar ^ 0x20); // flip an address bit behind the cache
    }
    assert!(!k.processes[pid].mpu_consistent());
    k.fault_process(pid, "corrupted register file");
    assert!(k.recover_process(pid));
    let hits = k.machine.cache().hits();
    k.processes[pid].setup_mpu();
    assert_eq!(k.machine.cache().hits(), hits, "no stale hit after a fault");
    assert!(
        k.processes[pid].mpu_consistent(),
        "the post-fault re-commit repairs the corruption"
    );
    trace::disable();
}

// ---------------------------------------------------------------------
// Fault policies.
// ---------------------------------------------------------------------

thread_local! {
    /// Steps at which `ScheduledFaulter` faults, shared with the restart
    /// factory (an `AppFactory` is a plain fn pointer and cannot capture).
    static FAULT_SCHEDULE: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

struct ScheduledFaulter {
    step_no: u32,
}

impl App for ScheduledFaulter {
    fn name(&self) -> &'static str {
        "faulter"
    }
    fn step(&mut self, k: &mut Kernel, pid: usize) -> Step {
        let i = self.step_no;
        self.step_no += 1;
        if FAULT_SCHEDULE.with(|s| s.borrow().contains(&i)) {
            k.fault_process(pid, "scheduled fault");
            return Step::Continue;
        }
        let _ = k.sys_print(pid, "ok\r\n");
        if self.step_no >= 12 {
            Step::Exit
        } else {
            Step::Continue
        }
    }
}

fn mk_faulter() -> Box<dyn App> {
    Box::new(ScheduledFaulter { step_no: 0 })
}

fn run_policy(policy: FaultPolicy, schedule: &[u32], max_ticks: u64) -> Kernel {
    FAULT_SCHEDULE.with(|s| *s.borrow_mut() = schedule.to_vec());
    tt_hw::cycles::reset();
    trace::enable(TRACE_CAPACITY);
    let mut k = Kernel::boot(Flavor::Granular, &NRF52840DK);
    let image = flash_app(
        &mut k.mem,
        NRF52840DK.map.flash.start + 0x4_0000,
        "fr",
        0x1000,
        4096,
        2048,
    )
    .unwrap();
    k.load_process(&image).unwrap();
    k.fault_policy = policy;
    let mut apps: Vec<Box<dyn App>> = vec![mk_faulter()];
    let factories: [AppFactory; 1] = [mk_faulter];
    k.run_with_factories(&mut apps, Some(&factories), max_ticks);
    trace::disable();
    k
}

#[test]
fn kill_policy_kills_on_first_fault() {
    let k = run_policy(FaultPolicy::Kill, &[2], 50);
    assert_eq!(k.processes[0].state, ProcessState::Killed);
    assert_eq!(k.restarts[0], 0);
    assert_eq!(k.recoveries[0], 1, "killed processes are still scrubbed");
}

#[test]
fn backoff_policy_restarts_then_exits() {
    // One fault at step 2; the restarted instance runs the same schedule
    // but its fresh counter passes step 2 only once more... the schedule
    // applies to every incarnation, so fault forever -> the cap decides.
    let k = run_policy(
        FaultPolicy::RestartWithBackoff {
            max_restarts: 3,
            base_delay: 2,
            max_delay: 8,
        },
        &[],
        50,
    );
    assert_eq!(k.processes[0].state, ProcessState::Exited);
    assert_eq!(k.restarts[0], 0);
}

#[test]
fn backoff_policy_exhausts_cap_into_permanent_kill() {
    let k = run_policy(
        FaultPolicy::RestartWithBackoff {
            max_restarts: 3,
            base_delay: 2,
            max_delay: 8,
        },
        &[1],
        400,
    );
    assert_eq!(k.processes[0].state, ProcessState::Killed);
    assert_eq!(k.restarts[0], 3, "exactly max_restarts restarts");
    assert_eq!(k.recoveries[0], 4, "every fault recovered before the kill");
}

#[test]
fn backoff_delays_in_the_trace_are_monotone_and_capped() {
    tt_hw::cycles::reset();
    trace::enable(TRACE_CAPACITY);
    FAULT_SCHEDULE.with(|s| *s.borrow_mut() = vec![1]);
    let mut k = Kernel::boot(Flavor::Granular, &NRF52840DK);
    let image = flash_app(
        &mut k.mem,
        NRF52840DK.map.flash.start + 0x4_0000,
        "fr",
        0x1000,
        4096,
        2048,
    )
    .unwrap();
    k.load_process(&image).unwrap();
    k.fault_policy = FaultPolicy::RestartWithBackoff {
        max_restarts: 4,
        base_delay: 2,
        max_delay: 8,
    };
    let mut apps: Vec<Box<dyn App>> = vec![mk_faulter()];
    let factories: [AppFactory; 1] = [mk_faulter];
    k.run_with_factories(&mut apps, Some(&factories), 400);
    let events = trace::take().events;
    trace::disable();

    let delays: Vec<u64> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Recovery {
                step: RecoveryStep::BackoffScheduled { delay },
                ..
            } => Some(*delay),
            _ => None,
        })
        .collect();
    assert_eq!(delays, vec![2, 4, 8, 8], "doubles from base, capped at max");
    assert!(events.iter().any(|ev| matches!(
        ev,
        TraceEvent::Recovery {
            step: RecoveryStep::RestartExhausted,
            ..
        }
    )));
    assert!(events
        .iter()
        .any(|ev| matches!(ev, TraceEvent::ProcessKill { pid: 0 })));
}

// ---------------------------------------------------------------------
// Satellite 3: proptests.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The backoff is monotone in the attempt number and always within
    /// `[base.min(max), max]` — no zero-delay hot loops, no unbounded
    /// backoff.
    #[test]
    fn backoff_is_monotone_and_capped(
        base in 1u64..64,
        max in 1u64..512,
        attempt in 0u32..40,
    ) {
        let d = backoff_delay(base, max, attempt);
        let next = backoff_delay(base, max, attempt + 1);
        prop_assert!(d <= next, "monotone: {d} then {next}");
        prop_assert!(d >= base.min(max) && d <= max, "in range: {d}");
        // The cap is reachable: far enough out, the delay is exactly max.
        prop_assert_eq!(backoff_delay(base, max, 40), max);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The restart-cap policy terminates for arbitrary fault schedules:
    /// the kernel run always ends with the process Exited or permanently
    /// Killed, never a restart livelock, and never more than
    /// `max_restarts` restarts.
    #[test]
    fn restart_cap_terminates_any_fault_schedule(
        schedule in proptest::collection::vec(0u32..12, 0..4),
        max_restarts in 0u32..4,
        base_delay in 1u64..4,
        max_delay in 4u64..16,
    ) {
        let k = run_policy(
            FaultPolicy::RestartWithBackoff { max_restarts, base_delay, max_delay },
            &schedule,
            1000,
        );
        let state = &k.processes[0].state;
        prop_assert!(
            matches!(state, ProcessState::Exited | ProcessState::Killed),
            "converged: {state:?} after {} restarts",
            k.restarts[0]
        );
        prop_assert!(k.restarts[0] <= max_restarts);
        if schedule.is_empty() {
            prop_assert_eq!(state.clone(), ProcessState::Exited);
        } else {
            prop_assert_eq!(state.clone(), ProcessState::Killed);
        }
    }
}
