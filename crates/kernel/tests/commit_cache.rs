//! Integration tests for the PR 2 MPU commit cache: every path that must
//! invalidate the cache (brk/sbrk growth, grant allocation, process
//! restart, fault-policy respawn) forces a re-commit, visible in the
//! Full-scope trace as reappearing register writes, while cache hits
//! stay observably identical to full commits.

use proptest::prelude::*;
use tt_hw::platform::{Arch, ChipProfile, ALL_CHIPS};
use tt_kernel::kernel::{App, Step};
use tt_kernel::loader::flash_app;
use tt_kernel::process::Flavor;
use tt_kernel::trace::{diff_traces, normalize, RegName, TraceEvent, TraceScope};
use tt_kernel::{trace, Kernel};

const TRACE_CAPACITY: usize = 65_536;

fn boot(chip: &ChipProfile) -> (Kernel, usize) {
    tt_hw::cycles::reset();
    trace::enable(TRACE_CAPACITY);
    let mut k = Kernel::boot(Flavor::Granular, chip);
    let image = flash_app(
        &mut k.mem,
        chip.map.flash.start + 0x4_0000,
        "cache",
        0x1000,
        4096,
        2048,
    )
    .unwrap();
    let pid = k.load_process(&image).unwrap();
    k.processes[pid].setup_mpu();
    (k, pid)
}

/// Switches the process out (kernel runs) and back in, returning only the
/// events of the switch-in.
fn switch_in(k: &Kernel, pid: usize) -> Vec<TraceEvent> {
    k.machine.disable_user_protection();
    let _ = trace::take();
    k.processes[pid].setup_mpu();
    trace::take().events
}

/// The region-register names for a chip's protection unit (the writes
/// diff-commit elides on a hit).
fn region_regs(chip: &ChipProfile) -> [RegName; 2] {
    match chip.arch {
        Arch::CortexM => [RegName::Rbar, RegName::Rasr],
        Arch::Riscv32(_) => [RegName::PmpCfg, RegName::PmpAddr],
    }
}

fn count_writes(events: &[TraceEvent], names: &[RegName]) -> usize {
    events
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::RegWrite { reg, .. } if names.contains(reg)))
        .count()
}

fn has_commit(events: &[TraceEvent]) -> bool {
    events
        .iter()
        .any(|ev| matches!(ev, TraceEvent::MpuCommit { .. }))
}

fn has_allocator_commit(events: &[TraceEvent]) -> bool {
    events
        .iter()
        .any(|ev| matches!(ev, TraceEvent::AllocatorCommit { .. }))
}

#[test]
fn warm_switch_in_elides_region_writes_but_stays_observable() {
    for chip in &ALL_CHIPS {
        let (k, pid) = boot(chip);
        let events = switch_in(&k, pid);
        assert_eq!(
            count_writes(&events, &region_regs(chip)),
            0,
            "{}: a cache hit must not touch region registers",
            chip.name
        );
        assert!(
            !has_allocator_commit(&events),
            "{}: a cache hit skips the allocator commit",
            chip.name
        );
        // The hit is still an observable MpuCommit — the Observable trace
        // scope (what the differential oracle gates on) sees the same
        // protocol with the cache on or off.
        assert!(has_commit(&events), "{}", chip.name);
        assert!(
            normalize(&events, TraceScope::Observable)
                .iter()
                .any(|ev| matches!(ev, TraceEvent::MpuCommit { .. })),
            "{}: MpuCommit must survive Observable normalization",
            chip.name
        );
        if chip.arch == Arch::CortexM {
            assert_eq!(
                count_writes(&events, &[RegName::Ctrl]),
                1,
                "{}: an ARM hit re-enables MPU_CTRL and nothing else",
                chip.name
            );
        }
        trace::disable();
    }
}

#[test]
fn brk_growth_forces_region_writes_to_reappear() {
    for chip in &ALL_CHIPS {
        let (mut k, pid) = boot(chip);
        // Warm up: the switch-in right after boot is a hit.
        assert_eq!(count_writes(&switch_in(&k, pid), &region_regs(chip)), 0);
        // Growing the break moves the allocator generation; the next
        // switch-in must re-commit, and the changed boundary registers
        // show up again in the Full-scope trace.
        k.processes[pid].sbrk(64).unwrap();
        let events = switch_in(&k, pid);
        assert!(
            count_writes(&events, &region_regs(chip)) > 0,
            "{}: post-sbrk switch-in must rewrite region registers",
            chip.name
        );
        assert!(has_allocator_commit(&events), "{}", chip.name);
        assert!(has_commit(&events), "{}", chip.name);
        trace::disable();
    }
}

#[test]
fn grant_allocation_forces_a_recommit() {
    for chip in &ALL_CHIPS {
        let (mut k, pid) = boot(chip);
        let cache = k.machine.cache().clone();
        assert_eq!(count_writes(&switch_in(&k, pid), &region_regs(chip)), 0);
        cache.reset_stats();
        k.processes[pid].allocate_grant(7, 64).unwrap();
        let events = switch_in(&k, pid);
        // The generation moved, so the lookup misses and the allocator
        // re-commits. Grant memory is kernel-owned, so the user-visible
        // region values may be unchanged — diff-commit is then allowed to
        // elide the individual register writes, but the commit itself must
        // happen.
        assert_eq!(
            (cache.hits(), cache.misses()),
            (0, 1),
            "{}: post-grant switch-in must miss",
            chip.name
        );
        assert!(has_allocator_commit(&events), "{}", chip.name);
        trace::disable();
    }
}

#[test]
fn restart_forces_a_full_recommit() {
    for chip in &ALL_CHIPS {
        let (mut k, pid) = boot(chip);
        // Commit a grown configuration, then restart: the fresh process's
        // smaller break must actually reach the hardware.
        k.processes[pid].sbrk(96).unwrap();
        switch_in(&k, pid);
        k.fault_process(pid, "deliberate");
        let _ = trace::take();
        k.restart_process(pid).unwrap();
        // The fresh process's smaller break reaches the hardware during
        // the restart itself (`Process::create` commits), and the next
        // switch-in re-commits under the invalidated cache.
        let mut events = trace::take().events;
        events.extend(switch_in(&k, pid));
        assert!(
            count_writes(&events, &region_regs(chip)) > 0,
            "{}: restart must rewrite region registers",
            chip.name
        );
        assert!(has_allocator_commit(&events), "{}", chip.name);
        trace::disable();
    }
}

/// A program that grows its break and then faults, to drive the
/// fault-policy respawn path of the scheduler loop.
struct GrowThenCrash {
    crashed: bool,
}

impl App for GrowThenCrash {
    fn name(&self) -> &'static str {
        "cache"
    }
    fn step(&mut self, kernel: &mut Kernel, pid: usize) -> Step {
        if !self.crashed {
            self.crashed = true;
            let _ = kernel.sys_sbrk(pid, 128);
            kernel.fault_process(pid, "deliberate");
        }
        Step::Yield
    }
}

fn mk_crasher() -> Box<dyn App> {
    Box::new(GrowThenCrash { crashed: false })
}

#[test]
fn fault_policy_respawn_forces_a_full_recommit() {
    for chip in &ALL_CHIPS {
        let (mut k, pid) = boot(chip);
        k.fault_policy = tt_kernel::kernel::FaultPolicy::Restart { max_restarts: 1 };
        let _ = trace::take();
        let mut apps: Vec<Box<dyn App>> = vec![mk_crasher()];
        let factories: [fn() -> Box<dyn App>; 1] = [mk_crasher];
        k.run_with_factories(&mut apps, Some(&factories), 20);
        assert_eq!(k.restarts[pid], 1, "{}", chip.name);
        let events = trace::take().events;
        let restart_at = events
            .iter()
            .position(|ev| matches!(ev, TraceEvent::ProcessRestart { .. }))
            .unwrap_or_else(|| panic!("{}: no ProcessRestart in trace", chip.name));
        // The respawned process's first switch-in undoes the crashed
        // instance's sbrk, so its commit rewrites the boundary registers.
        assert!(
            count_writes(&events[restart_at..], &region_regs(chip)) > 0,
            "{}: post-respawn commit must rewrite region registers",
            chip.name
        );
        trace::disable();
    }
}

/// Runs a randomized interleaving of memory operations and context
/// switches, returning the raw trace plus the final layout.
fn run_schedule(chip: &ChipProfile, ops: &[usize]) -> (Vec<TraceEvent>, usize, usize) {
    let (mut k, pid) = boot(chip);
    let ms = k.processes[pid].memory_start();
    let _ = trace::take();
    let mut grant_id = 100usize;
    for &op in ops {
        match op {
            0 => {
                let _ = k.processes[pid].sbrk(64);
            }
            1 => {
                let _ = k.processes[pid].sbrk(-48);
            }
            2 => {
                let _ = k.processes[pid].allocate_grant(grant_id, 32);
                grant_id += 1;
            }
            3 => {
                k.machine.disable_user_protection();
                k.processes[pid].setup_mpu();
            }
            _ => {
                let _ = k.sys_allow_rw(pid, ms + 64, 64);
            }
        }
    }
    let events = trace::take().events;
    let layout = (
        k.processes[pid].app_break(),
        k.processes[pid].kernel_break(),
    );
    trace::disable();
    (events, layout.0, layout.1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The cache is pure optimisation: any interleaving of memory ops and
    /// context switches, on any chip, produces an observably identical
    /// trace and the same final layout with caching on and off.
    #[test]
    fn caching_is_observably_transparent(
        chip_idx in 0usize..ALL_CHIPS.len(),
        ops in proptest::collection::vec(0usize..5, 1..24),
    ) {
        let chip = &ALL_CHIPS[chip_idx];
        let (on, on_app, on_kernel) = run_schedule(chip, &ops);
        let (off, off_app, off_kernel) =
            tt_hw::commit_cache::with_disabled(|| run_schedule(chip, &ops));
        prop_assert_eq!((on_app, on_kernel), (off_app, off_kernel));
        let on_trace = trace::Trace { events: on, dropped: 0 };
        let off_trace = trace::Trace { events: off, dropped: 0 };
        let d = diff_traces(&on_trace, &off_trace, TraceScope::Observable);
        prop_assert!(
            d.is_none(),
            "{}: cache on/off diverged observably: {:?}",
            chip.name,
            d
        );
    }

    /// Cached runs never cost more cycles than uncached runs of the same
    /// schedule.
    #[test]
    fn caching_never_costs_cycles(
        chip_idx in 0usize..ALL_CHIPS.len(),
        ops in proptest::collection::vec(0usize..5, 1..24),
    ) {
        let chip = &ALL_CHIPS[chip_idx];
        run_schedule(chip, &ops);
        let on_cycles = tt_hw::cycles::now();
        tt_hw::commit_cache::with_disabled(|| run_schedule(chip, &ops));
        let off_cycles = tt_hw::cycles::now();
        prop_assert!(
            on_cycles <= off_cycles,
            "{}: cached {} > uncached {}",
            chip.name,
            on_cycles,
            off_cycles
        );
    }
}
