//! Property tests for the FluxArm semantics: the machine invariants that
//! §4.5's proof relies on, checked over randomized states.

use proptest::prelude::*;
use tt_fluxarm::cpu::{Arm7, Control, Gpr};
use tt_fluxarm::exceptions::{ExceptionNumber, FRAME_BYTES};
use tt_fluxarm::handlers;
use tt_fluxarm::switch::{cpu_state_correct, StoredState};
use tt_fluxarm::{add_with_carry, Cond, Flags};
use tt_hw::AddrRange;

fn fresh_cpu() -> Arm7 {
    Arm7::new(
        AddrRange::new(0x2000_0000, 0x2000_1000),
        AddrRange::new(0x2000_1000, 0x2000_3000),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Exception entry followed by return restores the full caller-visible
    /// state, for every (privilege, stack-selection) combination and
    /// arbitrary register contents.
    #[test]
    fn exception_roundtrip_preserves_caller_state(
        control_bits in 0u32..4,
        regs in prop::array::uniform4(any::<u32>()),
        pc_q in 0u32..0x1000,
        psr_flags in 0u32..16,
    ) {
        let mut cpu = fresh_cpu();
        cpu.control = Control(control_bits);
        cpu.msp = 0x2000_0F00;
        cpu.psp = 0x2000_2F00;
        cpu.set_gpr(Gpr::R0, regs[0]);
        cpu.set_gpr(Gpr::R1, regs[1]);
        cpu.set_gpr(Gpr::R3, regs[2]);
        cpu.set_gpr(Gpr::R12, regs[3]);
        cpu.pc = pc_q * 4;
        cpu.psr = psr_flags << 28;
        let before = cpu.clone();

        cpu.exception_entry(ExceptionNumber::PendSv);
        prop_assert!(cpu.mode_is_handler());
        prop_assert!(cpu.is_privileged());
        prop_assert_eq!(cpu.ipsr(), 14);
        let exc = cpu.lr;
        cpu.exception_return(exc);

        prop_assert_eq!(cpu.gpr(Gpr::R0), before.gpr(Gpr::R0));
        prop_assert_eq!(cpu.gpr(Gpr::R1), before.gpr(Gpr::R1));
        prop_assert_eq!(cpu.gpr(Gpr::R3), before.gpr(Gpr::R3));
        prop_assert_eq!(cpu.gpr(Gpr::R12), before.gpr(Gpr::R12));
        prop_assert_eq!(cpu.pc, before.pc);
        prop_assert_eq!(cpu.psr, before.psr);
        prop_assert_eq!(cpu.active_sp(), before.active_sp());
        prop_assert_eq!(cpu.control.npriv(), before.control.npriv());
        prop_assert_eq!(cpu.mode_is_thread_privileged(), before.mode_is_thread_privileged());
    }

    /// The full verified control flow preserves kernel state for arbitrary
    /// havoc seeds and kernel register contents.
    #[test]
    fn verified_control_flow_is_seed_independent(
        seed in any::<u32>(),
        kernel_regs in prop::array::uniform8(any::<u32>()),
    ) {
        let mut cpu = fresh_cpu();
        for (i, r) in Gpr::CALLEE_SAVED.iter().enumerate() {
            cpu.set_gpr(*r, kernel_regs[i]);
        }
        let mut state = StoredState::new_for_process(&mut cpu, 0x4000, 0x2000_3000);
        let old = cpu.clone();
        cpu.control_flow_kernel_to_kernel(
            &mut state,
            ExceptionNumber::SysTick,
            handlers::svc_handler_to_process,
            handlers::sys_tick_isr,
            seed,
        );
        prop_assert!(cpu_state_correct(&cpu, &old));
        // The saved process stack pointer stays inside process RAM.
        prop_assert!(cpu.process_ram.contains(state.psp as usize));
    }

    /// The buggy SysTick handler fails `cpu_state_correct` for EVERY seed:
    /// the bug is unconditional, not input-dependent.
    #[test]
    fn buggy_systick_fails_for_every_seed(seed in any::<u32>()) {
        let violations = tt_contracts::with_mode(tt_contracts::Mode::Observe, || {
            let mut cpu = fresh_cpu();
            let mut state = StoredState::new_for_process(&mut cpu, 0x4000, 0x2000_3000);
            let old = cpu.clone();
            cpu.control_flow_kernel_to_kernel(
                &mut state,
                ExceptionNumber::SysTick,
                handlers::svc_handler_to_process,
                handlers::sys_tick_isr_buggy,
                seed,
            );
            let correct = cpu_state_correct(&cpu, &old);
            let v = tt_contracts::take_violations();
            (correct, v)
        });
        prop_assert!(!violations.0, "seed {seed} unexpectedly verified");
        prop_assert!(!violations.1.is_empty());
    }

    /// AddWithCarry agrees with 64-bit reference arithmetic everywhere.
    #[test]
    fn add_with_carry_reference(a in any::<u32>(), b in any::<u32>(), cin in any::<bool>()) {
        let (r, c, v) = add_with_carry(a, b, cin);
        let wide = a as u64 + b as u64 + cin as u64;
        prop_assert_eq!(r, wide as u32);
        prop_assert_eq!(c, wide > u32::MAX as u64);
        let swide = a as i32 as i64 + b as i32 as i64 + cin as i64;
        prop_assert_eq!(v, swide != (r as i32) as i64);
    }

    /// Condition codes match their arithmetic definitions after a compare.
    #[test]
    fn conditions_match_comparison_semantics(a in any::<u32>(), b in any::<u32>()) {
        let mut cpu = fresh_cpu();
        cpu.set_gpr(Gpr::R0, a);
        cpu.set_gpr(Gpr::R1, b);
        cpu.cmp_reg(Gpr::R0, Gpr::R1);
        let f = cpu.flags();
        prop_assert_eq!(Cond::Eq.passed(f), a == b);
        prop_assert_eq!(Cond::Ne.passed(f), a != b);
        prop_assert_eq!(Cond::Hs.passed(f), a >= b);
        prop_assert_eq!(Cond::Lo.passed(f), a < b);
        prop_assert_eq!(Cond::Hi.passed(f), a > b);
        prop_assert_eq!(Cond::Ls.passed(f), a <= b);
        prop_assert_eq!(Cond::Ge.passed(f), (a as i32) >= (b as i32));
        prop_assert_eq!(Cond::Lt.passed(f), (a as i32) < (b as i32));
        prop_assert!(Cond::Al.passed(f));
    }

    /// Stacked frames never overlap: entry decrements the active stack by
    /// exactly one frame and the stored words reproduce the registers.
    #[test]
    fn stacked_frame_layout(r0 in any::<u32>(), r12 in any::<u32>(), psr_hi in 0u32..16) {
        let mut cpu = fresh_cpu();
        cpu.set_gpr(Gpr::R0, r0);
        cpu.set_gpr(Gpr::R12, r12);
        cpu.psr = psr_hi << 28;
        let sp0 = cpu.active_sp();
        cpu.exception_entry(ExceptionNumber::SvCall);
        prop_assert_eq!(cpu.active_sp(), sp0 - FRAME_BYTES);
        let frame = cpu.peek_frame(cpu.msp);
        prop_assert_eq!(frame.r0, r0);
        prop_assert_eq!(frame.r12, r12);
        prop_assert_eq!(frame.psr, psr_hi << 28);
    }

    /// Flags encode/decode is the identity on the PSR top nibble and
    /// leaves the rest untouched.
    #[test]
    fn flags_psr_roundtrip(psr in any::<u32>()) {
        let f = Flags::from_psr(psr);
        let back = f.into_psr(psr);
        prop_assert_eq!(back, psr);
    }
}
