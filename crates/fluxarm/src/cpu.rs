//! The ARMv7-M CPU state modelled by FluxArm (paper Fig. 7, left).
//!
//! FluxArm is an executable formal semantics of the Tock-relevant subset of
//! the ARMv7-M ISA, produced by lifting ARM's Architecture Specification
//! Language (ASL) into Rust. The state mirrors the paper's `Arm7` struct:
//! general registers, the two stack pointers (MSP/PSP), CONTROL, PC, LR,
//! PSR, memory, and the current CPU mode.

use std::collections::BTreeMap;
use tt_hw::AddrRange;

/// General-purpose register names r0–r12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Gpr {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
}

impl Gpr {
    /// All sixteen encodable general registers r0–r12.
    pub const ALL: [Gpr; 13] = [
        Gpr::R0,
        Gpr::R1,
        Gpr::R2,
        Gpr::R3,
        Gpr::R4,
        Gpr::R5,
        Gpr::R6,
        Gpr::R7,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
    ];

    /// The callee-saved registers r4–r11 (AAPCS), whose preservation across
    /// an interrupt is part of `cpu_state_correct`.
    pub const CALLEE_SAVED: [Gpr; 8] = [
        Gpr::R4,
        Gpr::R5,
        Gpr::R6,
        Gpr::R7,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
    ];

    /// The caller-saved registers hardware stacks on exception entry.
    pub const CALLER_SAVED: [Gpr; 5] = [Gpr::R0, Gpr::R1, Gpr::R2, Gpr::R3, Gpr::R12];

    /// Register index 0–12.
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// Special registers addressable by MSR/MRS (the subset Tock uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecialRegister {
    /// Main stack pointer.
    Msp,
    /// Process stack pointer.
    Psp,
    /// CONTROL register (nPRIV, SPSEL).
    Control,
    /// Interrupt program status register (read-only via MRS).
    Ipsr,
    /// Link register (modelled as special for `pseudo_ldr_special`).
    Lr,
}

impl SpecialRegister {
    /// The paper's `lr()` constructor.
    pub const fn lr() -> Self {
        SpecialRegister::Lr
    }
}

/// CPU execution mode (ARMv7-M B1.4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuMode {
    /// Thread mode: running kernel main loop or a user process.
    Thread,
    /// Handler mode: servicing an exception; always privileged, always MSP.
    Handler,
}

/// The CONTROL register: bit 0 = nPRIV, bit 1 = SPSEL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Control(pub u32);

impl Control {
    /// Thread-mode privilege: `true` means unprivileged (nPRIV set).
    pub const fn npriv(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Thread-mode stack selection: `true` means PSP (SPSEL set).
    pub const fn spsel(self) -> bool {
        self.0 & 0b10 != 0
    }
}

/// Word-granular memory as FluxArm models it (the paper refines a hashmap).
///
/// Separate from `tt-hw`'s byte memory: FluxArm reasons about *which words
/// the context-switch code touches*, not about full program data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    words: BTreeMap<u32, u32>,
}

impl Memory {
    /// Creates empty memory (all words read as 0).
    // TRUSTED: refined API over the backing hashmap (paper §5: five
    // FluxArm functions are trusted to define it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word at `addr` (must be 4-aligned).
    // TRUSTED: refined hashmap read.
    pub fn read(&self, addr: u32) -> u32 {
        debug_assert_eq!(addr % 4, 0, "unaligned word read at {addr:#010x}");
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Writes the word at `addr` (must be 4-aligned).
    // TRUSTED: refined hashmap write.
    pub fn write(&mut self, addr: u32, value: u32) {
        debug_assert_eq!(addr % 4, 0, "unaligned word write at {addr:#010x}");
        self.words.insert(addr, value);
    }

    /// Erases every word in `range` — the havoc a process run applies to
    /// its own RAM (the paper's `process()` postcondition).
    // TRUSTED: refined hashmap range erase.
    pub fn havoc_range(&mut self, range: AddrRange, seed: u32) {
        let keys: Vec<u32> = self
            .words
            .range((range.start as u32)..(range.end as u32))
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            self.words.remove(&k);
        }
        // Scribble a few arbitrary values derived from the seed so "erased"
        // is not accidentally "zeroed" in downstream checks.
        let mut x = seed | 1;
        for i in 0..8u32 {
            let addr = (range.start as u32 + (x % range.len().max(4) as u32)) & !3;
            if addr >= range.start as u32 && addr < range.end as u32 {
                self.words.insert(addr, x.wrapping_mul(0x9E37_79B9));
            }
            x = x
                .wrapping_mul(1664525)
                .wrapping_add(1013904223)
                .wrapping_add(i);
        }
    }
}

/// The modelled CPU (paper Fig. 7, left).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arm7 {
    /// General registers r0–r12.
    pub regs: [u32; 13],
    /// Main stack pointer.
    pub msp: u32,
    /// Process stack pointer.
    pub psp: u32,
    /// CONTROL register.
    pub control: Control,
    /// Program counter.
    pub pc: u32,
    /// Link register.
    pub lr: u32,
    /// Program status register; bits `[8:0]` are the IPSR exception number.
    pub psr: u32,
    /// Memory.
    pub mem: Memory,
    /// Current CPU mode.
    pub mode: CpuMode,
    /// Kernel stack extent (for stack-safety contracts).
    pub kernel_stack: AddrRange,
    /// Process RAM extent (for the `process()` havoc and isolation checks).
    pub process_ram: AddrRange,
    /// Trace of retired operations (used by handler-shape tests).
    pub trace: Vec<&'static str>,
    /// Immediate of the most recent `svc` instruction (Tock's SVC handler
    /// reads it from the instruction before the stacked PC; the model
    /// latches it here).
    pub last_svc_imm: Option<u8>,
}

impl Arm7 {
    /// Creates a reset CPU with the given kernel stack and process RAM.
    pub fn new(kernel_stack: AddrRange, process_ram: AddrRange) -> Self {
        Self {
            regs: [0; 13],
            msp: kernel_stack.end as u32,
            psp: process_ram.end as u32,
            control: Control(0),
            pc: 0,
            lr: 0,
            psr: 0,
            mem: Memory::new(),
            mode: CpuMode::Thread,
            kernel_stack,
            process_ram,
            trace: Vec::new(),
            last_svc_imm: None,
        }
    }

    /// Reads a general register.
    pub fn gpr(&self, r: Gpr) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a general register.
    pub fn set_gpr(&mut self, r: Gpr, value: u32) {
        self.regs[r.index()] = value;
    }

    /// The stack pointer currently in effect (B1.4.1: handler mode and
    /// SPSEL=0 use MSP; thread mode with SPSEL=1 uses PSP).
    pub fn active_sp(&self) -> u32 {
        if self.mode == CpuMode::Thread && self.control.spsel() {
            self.psp
        } else {
            self.msp
        }
    }

    /// Sets the active stack pointer.
    pub fn set_active_sp(&mut self, value: u32) {
        if self.mode == CpuMode::Thread && self.control.spsel() {
            self.psp = value;
        } else {
            self.msp = value;
        }
    }

    /// Returns `true` if the CPU executes privileged right now (B1.4.3:
    /// handler mode is always privileged; thread mode per CONTROL.nPRIV).
    pub fn is_privileged(&self) -> bool {
        match self.mode {
            CpuMode::Handler => true,
            CpuMode::Thread => !self.control.npriv(),
        }
    }

    /// The paper's `mode_is_handler` refinement.
    pub fn mode_is_handler(&self) -> bool {
        self.mode == CpuMode::Handler
    }

    /// The paper's `mode_is_thread_privileged` refinement.
    pub fn mode_is_thread_privileged(&self) -> bool {
        self.mode == CpuMode::Thread && !self.control.npriv()
    }

    /// The paper's `mode_is_thread_unprivileged` refinement.
    pub fn mode_is_thread_unprivileged(&self) -> bool {
        self.mode == CpuMode::Thread && self.control.npriv()
    }

    /// IPSR exception number (low 9 bits of PSR).
    pub fn ipsr(&self) -> u32 {
        self.psr & 0x1FF
    }

    /// Returns `true` if `addr` is a valid RAM address in either the kernel
    /// stack or process RAM (the paper's `is_valid_ram_addr`).
    pub fn is_valid_ram_addr(&self, addr: u32) -> bool {
        self.kernel_stack.contains(addr as usize) || self.process_ram.contains(addr as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> Arm7 {
        Arm7::new(
            AddrRange::new(0x2000_0000, 0x2000_1000),
            AddrRange::new(0x2000_1000, 0x2000_3000),
        )
    }

    #[test]
    fn reset_state_is_privileged_thread_on_msp() {
        let c = cpu();
        assert!(c.mode_is_thread_privileged());
        assert!(c.is_privileged());
        assert_eq!(c.active_sp(), 0x2000_1000);
        assert_eq!(c.ipsr(), 0);
    }

    #[test]
    fn control_bits_decode() {
        assert!(!Control(0b00).npriv());
        assert!(Control(0b01).npriv());
        assert!(Control(0b10).spsel());
        assert!(Control(0b11).npriv() && Control(0b11).spsel());
    }

    #[test]
    fn active_sp_follows_mode_and_spsel() {
        let mut c = cpu();
        c.msp = 0x2000_0800;
        c.psp = 0x2000_2000;
        assert_eq!(c.active_sp(), 0x2000_0800);
        c.control = Control(0b10);
        assert_eq!(c.active_sp(), 0x2000_2000);
        c.mode = CpuMode::Handler;
        // Handler mode always uses MSP regardless of SPSEL.
        assert_eq!(c.active_sp(), 0x2000_0800);
        c.mode = CpuMode::Thread;
        c.set_active_sp(0x2000_1F00);
        assert_eq!(c.psp, 0x2000_1F00);
    }

    #[test]
    fn handler_mode_is_always_privileged() {
        let mut c = cpu();
        c.control = Control(0b01); // nPRIV set.
        assert!(!c.is_privileged());
        c.mode = CpuMode::Handler;
        assert!(c.is_privileged());
        assert!(c.mode_is_handler());
        assert!(!c.mode_is_thread_privileged());
    }

    #[test]
    fn gpr_read_write() {
        let mut c = cpu();
        c.set_gpr(Gpr::R7, 42);
        assert_eq!(c.gpr(Gpr::R7), 42);
        assert_eq!(c.gpr(Gpr::R0), 0);
        assert_eq!(Gpr::R12.index(), 12);
    }

    #[test]
    fn memory_read_write_and_default_zero() {
        let mut m = Memory::new();
        assert_eq!(m.read(0x2000_0000), 0);
        m.write(0x2000_0000, 0xCAFE);
        assert_eq!(m.read(0x2000_0000), 0xCAFE);
    }

    #[test]
    #[cfg(debug_assertions)] // the alignment check is a debug_assert
    #[should_panic(expected = "unaligned")]
    fn unaligned_word_write_asserts() {
        let mut m = Memory::new();
        m.write(0x2000_0002, 1);
    }

    #[test]
    fn havoc_erases_only_the_range() {
        let mut m = Memory::new();
        m.write(0x2000_0000, 7); // Kernel word.
        m.write(0x2000_1000, 9); // Process word.
        m.havoc_range(AddrRange::new(0x2000_1000, 0x2000_3000), 1234);
        assert_eq!(m.read(0x2000_0000), 7);
        // The process word is no longer 9-or-0-determined; just confirm the
        // kernel word survived and the model did not panic.
    }

    #[test]
    fn valid_ram_addr_covers_both_regions() {
        let c = cpu();
        assert!(c.is_valid_ram_addr(0x2000_0000));
        assert!(c.is_valid_ram_addr(0x2000_2FFF));
        assert!(!c.is_valid_ram_addr(0x2000_3000));
        assert!(!c.is_valid_ram_addr(0x1000_0000));
    }

    #[test]
    fn callee_saved_list_is_r4_to_r11() {
        assert_eq!(Gpr::CALLEE_SAVED.len(), 8);
        assert_eq!(Gpr::CALLEE_SAVED[0], Gpr::R4);
        assert_eq!(Gpr::CALLEE_SAVED[7], Gpr::R11);
    }
}
