//! Exception entry and return semantics (ARMv7-M B1.5.6 / B1.5.8).
//!
//! This models how the hardware behaves "when exceptions occur by saving
//! the caller-saved registers on the stack, using the exception number to
//! decide which isr to call, and then … restoring the caller-saved registers
//! off the stack before yielding control back to the specified target"
//! (paper §4.5, `preempt`).

use crate::cpu::{Arm7, Control, CpuMode, Gpr};
use tt_contracts::{ensures, requires};

/// EXC_RETURN: return to handler mode, frame on MSP.
pub const EXC_RETURN_HANDLER: u32 = 0xFFFF_FFF1;
/// EXC_RETURN: return to thread mode, frame on MSP.
pub const EXC_RETURN_THREAD_MSP: u32 = 0xFFFF_FFF9;
/// EXC_RETURN: return to thread mode, frame on PSP.
pub const EXC_RETURN_THREAD_PSP: u32 = 0xFFFF_FFFD;

/// Architecturally defined exception numbers used by Tock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExceptionNumber {
    /// MemManage fault (MPU access violation): 4.
    MemManage,
    /// Supervisor call (syscall entry): 11.
    SvCall,
    /// PendSV (context-switch request): 14.
    PendSv,
    /// SysTick (timer preemption): 15.
    SysTick,
    /// External interrupt n: 16 + n.
    Irq(u8),
}

impl ExceptionNumber {
    /// The IPSR value for the exception.
    pub const fn number(self) -> u32 {
        match self {
            ExceptionNumber::MemManage => 4,
            ExceptionNumber::SvCall => 11,
            ExceptionNumber::PendSv => 14,
            ExceptionNumber::SysTick => 15,
            ExceptionNumber::Irq(n) => 16 + n as u32,
        }
    }
}

/// The eight-word hardware-stacked exception frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExceptionFrame {
    /// Stacked r0–r3 and r12.
    pub r0: u32,
    /// r1.
    pub r1: u32,
    /// r2.
    pub r2: u32,
    /// r3.
    pub r3: u32,
    /// r12.
    pub r12: u32,
    /// Stacked link register.
    pub lr: u32,
    /// Return address (pc at preemption).
    pub pc: u32,
    /// Stacked program status register.
    pub psr: u32,
}

/// Size in bytes of the stacked frame.
pub const FRAME_BYTES: u32 = 32;

impl Arm7 {
    /// Hardware exception entry (B1.5.6 `PushStack` + `ExceptionTaken`).
    ///
    /// Pushes the caller-saved frame onto the *currently active* stack,
    /// switches to handler mode (privileged, MSP), records the exception
    /// number in IPSR, and leaves the EXC_RETURN value in LR.
    pub fn exception_entry(&mut self, exception: ExceptionNumber) {
        let frame_ptr = self.active_sp().wrapping_sub(FRAME_BYTES);
        requires!("exception_entry", self.is_valid_sp_addr(frame_ptr));
        let was_thread = self.mode == CpuMode::Thread;
        let used_psp = was_thread && self.control.spsel();

        // PushStack: lowest register at lowest address.
        let words = [
            self.gpr(Gpr::R0),
            self.gpr(Gpr::R1),
            self.gpr(Gpr::R2),
            self.gpr(Gpr::R3),
            self.gpr(Gpr::R12),
            self.lr,
            self.pc,
            self.psr,
        ];
        for (i, w) in words.iter().enumerate() {
            self.mem.write(frame_ptr.wrapping_add(4 * i as u32), *w);
        }
        self.set_active_sp(frame_ptr);

        // ExceptionTaken: handler mode, MSP, IPSR = exception number.
        self.mode = CpuMode::Handler;
        self.psr = (self.psr & !0x1FF) | exception.number();
        self.lr = if !was_thread {
            EXC_RETURN_HANDLER
        } else if used_psp {
            EXC_RETURN_THREAD_PSP
        } else {
            EXC_RETURN_THREAD_MSP
        };
        self.trace.push("exception_entry");
        ensures!("exception_entry", self.mode_is_handler());
        ensures!("exception_entry", self.ipsr() == exception.number());
        ensures!("exception_entry", self.is_privileged());
    }

    /// Hardware exception return (B1.5.8 `ExceptionReturn` + `PopStack`),
    /// triggered by `bx` with an EXC_RETURN value in the handler.
    ///
    /// Restores the caller-saved frame from the stack the EXC_RETURN selects
    /// and switches mode/SPSEL accordingly. Crucially, **nPRIV is not
    /// modified**: if the handler did not explicitly reset CONTROL, the
    /// thread resumes with whatever privilege the *process* had — the root
    /// cause of the paper's interrupt-assembly bug (§2.2).
    pub fn exception_return(&mut self, exc_return: u32) {
        requires!("exception_return", self.mode_is_handler());
        requires!(
            "exception_return",
            exc_return == EXC_RETURN_HANDLER
                || exc_return == EXC_RETURN_THREAD_MSP
                || exc_return == EXC_RETURN_THREAD_PSP
        );
        let (mode, spsel) = match exc_return {
            EXC_RETURN_HANDLER => (CpuMode::Handler, false),
            EXC_RETURN_THREAD_MSP => (CpuMode::Thread, false),
            _ => (CpuMode::Thread, true),
        };
        let frame_ptr = if exc_return == EXC_RETURN_THREAD_PSP {
            self.psp
        } else {
            self.msp
        };
        requires!(
            "exception_return",
            self.is_valid_sp_addr(frame_ptr.wrapping_add(FRAME_BYTES))
        );

        // PopStack.
        let read = |cpu: &Arm7, i: u32| cpu.mem.read(frame_ptr.wrapping_add(4 * i));
        let frame = ExceptionFrame {
            r0: read(self, 0),
            r1: read(self, 1),
            r2: read(self, 2),
            r3: read(self, 3),
            r12: read(self, 4),
            lr: read(self, 5),
            pc: read(self, 6),
            psr: read(self, 7),
        };
        self.set_gpr(Gpr::R0, frame.r0);
        self.set_gpr(Gpr::R1, frame.r1);
        self.set_gpr(Gpr::R2, frame.r2);
        self.set_gpr(Gpr::R3, frame.r3);
        self.set_gpr(Gpr::R12, frame.r12);
        self.lr = frame.lr;
        self.pc = frame.pc;

        let new_sp = frame_ptr.wrapping_add(FRAME_BYTES);
        if exc_return == EXC_RETURN_THREAD_PSP {
            self.psp = new_sp;
        } else {
            self.msp = new_sp;
        }

        // Mode and stack selection; IPSR restored from the frame. nPRIV is
        // deliberately untouched (B1.5.8).
        self.mode = mode;
        self.control = Control((self.control.0 & 0b01) | if spsel { 0b10 } else { 0b00 });
        self.psr = frame.psr;
        self.trace.push("exception_return");
        ensures!(
            "exception_return",
            (exc_return == EXC_RETURN_HANDLER) == self.mode_is_handler()
        );
    }

    /// Reads the exception frame currently at the top of the given stack
    /// pointer, without popping (inspection helper for handlers and tests).
    pub fn peek_frame(&self, frame_ptr: u32) -> ExceptionFrame {
        ExceptionFrame {
            r0: self.mem.read(frame_ptr),
            r1: self.mem.read(frame_ptr + 4),
            r2: self.mem.read(frame_ptr + 8),
            r3: self.mem.read(frame_ptr + 12),
            r12: self.mem.read(frame_ptr + 16),
            lr: self.mem.read(frame_ptr + 20),
            pc: self.mem.read(frame_ptr + 24),
            psr: self.mem.read(frame_ptr + 28),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_contracts::{take_violations, with_mode, Mode};
    use tt_hw::AddrRange;

    fn cpu() -> Arm7 {
        Arm7::new(
            AddrRange::new(0x2000_0000, 0x2000_1000),
            AddrRange::new(0x2000_1000, 0x2000_3000),
        )
    }

    #[test]
    fn exception_numbers() {
        assert_eq!(ExceptionNumber::MemManage.number(), 4);
        assert_eq!(ExceptionNumber::SvCall.number(), 11);
        assert_eq!(ExceptionNumber::PendSv.number(), 14);
        assert_eq!(ExceptionNumber::SysTick.number(), 15);
        assert_eq!(ExceptionNumber::Irq(3).number(), 19);
    }

    #[test]
    fn entry_from_privileged_thread_msp() {
        let mut c = cpu();
        c.set_gpr(Gpr::R0, 0xAA);
        c.pc = 0x100;
        c.psr = 0x0100_0000;
        let old_msp = c.msp;
        c.exception_entry(ExceptionNumber::SysTick);
        assert!(c.mode_is_handler());
        assert_eq!(c.ipsr(), 15);
        assert_eq!(c.lr, EXC_RETURN_THREAD_MSP);
        assert_eq!(c.msp, old_msp - 32);
        let frame = c.peek_frame(c.msp);
        assert_eq!(frame.r0, 0xAA);
        assert_eq!(frame.pc, 0x100);
        assert_eq!(frame.psr, 0x0100_0000);
    }

    #[test]
    fn entry_from_unprivileged_thread_psp() {
        let mut c = cpu();
        c.control = Control(0b11); // Unprivileged, PSP.
        c.psp = 0x2000_2800;
        let old_msp = c.msp;
        c.exception_entry(ExceptionNumber::SysTick);
        assert_eq!(c.lr, EXC_RETURN_THREAD_PSP);
        assert_eq!(c.psp, 0x2000_2800 - 32); // Frame went to PSP.
        assert_eq!(c.msp, old_msp); // MSP untouched.
        assert!(c.is_privileged(), "handler mode is privileged");
        assert!(c.control.npriv(), "nPRIV unchanged by entry");
    }

    #[test]
    fn nested_entry_returns_handler_exc_return() {
        let mut c = cpu();
        c.exception_entry(ExceptionNumber::SysTick);
        c.exception_entry(ExceptionNumber::Irq(0));
        assert_eq!(c.lr, EXC_RETURN_HANDLER);
        assert_eq!(c.ipsr(), 16);
    }

    #[test]
    fn entry_return_roundtrip_preserves_frame_registers() {
        let mut c = cpu();
        c.set_gpr(Gpr::R1, 0x11);
        c.set_gpr(Gpr::R3, 0x33);
        c.set_gpr(Gpr::R12, 0xCC);
        c.pc = 0x2244;
        c.lr = 0x99;
        c.psr = 0x2100_0000;
        c.exception_entry(ExceptionNumber::PendSv);
        // Handler clobbers caller-saved registers.
        c.set_gpr(Gpr::R1, 0);
        c.set_gpr(Gpr::R3, 0);
        let exc = c.lr;
        c.exception_return(exc);
        assert_eq!(c.gpr(Gpr::R1), 0x11);
        assert_eq!(c.gpr(Gpr::R3), 0x33);
        assert_eq!(c.gpr(Gpr::R12), 0xCC);
        assert_eq!(c.pc, 0x2244);
        assert_eq!(c.lr, 0x99);
        assert_eq!(c.psr, 0x2100_0000);
        assert!(c.mode_is_thread_privileged());
    }

    #[test]
    fn return_to_psp_selects_process_stack() {
        let mut c = cpu();
        c.control = Control(0b11);
        c.psp = 0x2000_2800;
        c.exception_entry(ExceptionNumber::SysTick);
        c.exception_return(EXC_RETURN_THREAD_PSP);
        assert_eq!(c.psp, 0x2000_2800);
        assert!(c.control.spsel());
        assert!(
            c.control.npriv(),
            "exception return must not elevate privilege"
        );
        assert!(!c.is_privileged());
    }

    #[test]
    fn return_to_msp_clears_spsel_but_not_npriv() {
        let mut c = cpu();
        c.control = Control(0b11);
        c.psp = 0x2000_2800;
        c.exception_entry(ExceptionNumber::SysTick);
        // A handler that returns to thread/MSP without fixing CONTROL:
        // the thread now runs on MSP but STILL UNPRIVILEGED — this is the
        // paper's missed-mode-switch hazard made concrete.
        c.exception_return(EXC_RETURN_THREAD_MSP);
        assert!(!c.control.spsel());
        assert!(c.control.npriv());
        assert!(!c.is_privileged());
    }

    #[test]
    fn return_requires_handler_mode() {
        with_mode(Mode::Observe, || {
            let mut c = cpu();
            c.exception_return(EXC_RETURN_THREAD_MSP);
        });
        assert!(!take_violations().is_empty());
    }

    #[test]
    fn return_rejects_garbage_exc_return() {
        with_mode(Mode::Observe, || {
            let mut c = cpu();
            c.exception_entry(ExceptionNumber::SysTick);
            c.exception_return(0xFFFF_FF00);
        });
        assert!(take_violations()
            .iter()
            .any(|v| v.site == "exception_return"));
    }

    #[test]
    fn entry_with_overflowing_stack_is_rejected() {
        with_mode(Mode::Observe, || {
            let mut c = cpu();
            c.msp = c.kernel_stack.start as u32 + 16; // Not enough for a frame.
            c.exception_entry(ExceptionNumber::SysTick);
        });
        assert!(take_violations()
            .iter()
            .any(|v| v.site == "exception_entry"));
    }
}
