//! Verification obligations for the interrupt and context-switch code.
//!
//! This is the "Interrupts" row of the paper's Figure 12: checking the
//! FluxArm instruction semantics and the whole control flow of an interrupt
//! "requires heavyweight SMT reasoning about specifications over bit-vectors
//! and finite-maps" (§6.3). Our stand-in discharges the same contracts by
//! walking large bit-pattern domains, which is likewise the expensive part
//! of this reproduction's verification run.

use crate::cpu::{Arm7, Control, Gpr, SpecialRegister};
use crate::exceptions::ExceptionNumber;
use crate::handlers;
use crate::switch::{cpu_state_correct, StoredState};
use tt_contracts::obligation::{CheckResult, Registry};
use tt_contracts::ContractKind;
use tt_hw::AddrRange;

/// Component name for the Figure 12 grouping.
pub const COMPONENT: &str = "Interrupts";

fn fresh_cpu() -> Arm7 {
    Arm7::new(
        AddrRange::new(0x2000_0000, 0x2000_1000),
        AddrRange::new(0x2000_1000, 0x2000_3000),
    )
}

/// Registers every interrupt-verification obligation into `registry`.
///
/// `depth` scales the explored bit-pattern domains (1 = quick CI run; the
/// Fig. 12 binary uses a higher depth).
pub fn register_obligations(registry: &mut Registry, depth: usize) {
    let d = depth.max(1);

    // movw/movt: exhaustive over a stratified 16-bit domain.
    registry.add_fn(COMPONENT, "Arm7::movw_imm", ContractKind::Post, move || {
        let mut cases = 0u64;
        let mut cpu = fresh_cpu();
        for step in 0..(256 * d as u32) {
            let imm = (step * 257) & 0xFFFF;
            cpu.movw_imm(Gpr::R1, imm);
            if cpu.gpr(Gpr::R1) != imm {
                return CheckResult::Refuted {
                    counterexample: format!("movw imm={imm:#x}"),
                };
            }
            cases += 1;
        }
        CheckResult::Verified { cases }
    });

    registry.add_fn(COMPONENT, "Arm7::movt_imm", ContractKind::Post, move || {
        let mut cases = 0u64;
        let mut cpu = fresh_cpu();
        for step in 0..(256 * d as u32) {
            let low = (step * 131) & 0xFFFF;
            let high = (step * 197) & 0xFFFF;
            cpu.movw_imm(Gpr::R2, low);
            cpu.movt_imm(Gpr::R2, high);
            if cpu.gpr(Gpr::R2) != (high << 16 | low) {
                return CheckResult::Refuted {
                    counterexample: format!("movt low={low:#x} high={high:#x}"),
                };
            }
            cases += 1;
        }
        CheckResult::Verified { cases }
    });

    // msr CONTROL: all (mode, old control, value) combinations; the privilege
    // lattice must never allow unprivileged elevation.
    registry.add_fn(COMPONENT, "Arm7::msr", ContractKind::Post, move || {
        let mut cases = 0u64;
        for _round in 0..d {
            for old_bits in 0..4u32 {
                for val in 0..4u32 {
                    for handler in [false, true] {
                        let mut cpu = fresh_cpu();
                        cpu.control = Control(old_bits);
                        if handler {
                            cpu.mode = crate::cpu::CpuMode::Handler;
                        }
                        let was_priv = cpu.is_privileged();
                        cpu.set_gpr(Gpr::R0, val);
                        cpu.msr(SpecialRegister::Control, Gpr::R0);
                        if !was_priv && cpu.control.0 != old_bits {
                            return CheckResult::Refuted {
                                counterexample: format!(
                                    "unprivileged CONTROL write took effect: old={old_bits:02b} val={val:02b}"
                                ),
                            };
                        }
                        if was_priv && !handler && cpu.control.0 != (val & 0b11) {
                            return CheckResult::Refuted {
                                counterexample: format!(
                                    "privileged thread CONTROL write lost: val={val:02b} got={:02b}",
                                    cpu.control.0
                                ),
                            };
                        }
                        cases += 1;
                    }
                }
            }
        }
        CheckResult::Verified { cases }
    });

    // mrs: read-back equals special-register state for stratified values.
    registry.add_fn(COMPONENT, "Arm7::mrs", ContractKind::Post, move || {
        let mut cases = 0u64;
        let mut cpu = fresh_cpu();
        for step in 0..(64 * d as u32) {
            let psr = step.wrapping_mul(0x0101_0409);
            cpu.psr = psr;
            cpu.mrs(Gpr::R3, SpecialRegister::Ipsr);
            if cpu.gpr(Gpr::R3) != (psr & 0x1FF) {
                return CheckResult::Refuted {
                    counterexample: format!("mrs ipsr psr={psr:#x}"),
                };
            }
            cases += 1;
        }
        CheckResult::Verified { cases }
    });

    // push/pop roundtrip over register-list subsets and stack depths.
    registry.add_fn(COMPONENT, "Arm7::push_pop", ContractKind::Post, move || {
        let mut cases = 0u64;
        for _round in 0..d {
            for count in 1..=8usize {
                let regs = &Gpr::CALLEE_SAVED[..count];
                let mut cpu = fresh_cpu();
                for (i, r) in regs.iter().enumerate() {
                    cpu.set_gpr(*r, 0xA000 + i as u32);
                }
                let sp0 = cpu.active_sp();
                cpu.push(regs);
                for r in regs {
                    cpu.set_gpr(*r, 0);
                }
                cpu.pop(regs);
                let ok = cpu.active_sp() == sp0
                    && regs
                        .iter()
                        .enumerate()
                        .all(|(i, r)| cpu.gpr(*r) == 0xA000 + i as u32);
                if !ok {
                    return CheckResult::Refuted {
                        counterexample: format!("push/pop count={count}"),
                    };
                }
                cases += 1;
            }
        }
        CheckResult::Verified { cases }
    });

    // Exception entry/return roundtrip: all (mode, spsel, npriv) x stacked
    // register patterns. This is the finite-map-heavy obligation.
    registry.add_fn(
        COMPONENT,
        "Arm7::exception_entry_return",
        ContractKind::Post,
        move || {
            let mut cases = 0u64;
            for round in 0..(16 * d as u32) {
                for control_bits in 0..4u32 {
                    let mut cpu = fresh_cpu();
                    cpu.control = Control(control_bits);
                    cpu.msp = 0x2000_0F00;
                    cpu.psp = 0x2000_2F00;
                    let pattern = round.wrapping_mul(0x9E37_79B9);
                    cpu.set_gpr(Gpr::R0, pattern);
                    cpu.set_gpr(Gpr::R3, !pattern);
                    cpu.set_gpr(Gpr::R12, pattern ^ 0xFFFF);
                    cpu.pc = 0x4000 + (round & 0xFF) * 4;
                    cpu.psr = pattern & 0xF100_01FF;
                    let before = cpu.clone();
                    cpu.exception_entry(ExceptionNumber::SysTick);
                    if !cpu.mode_is_handler() || cpu.ipsr() != 15 {
                        return CheckResult::Refuted {
                            counterexample: format!("entry round={round} ctrl={control_bits:02b}"),
                        };
                    }
                    let exc = cpu.lr;
                    cpu.exception_return(exc);
                    let ok = cpu.gpr(Gpr::R0) == before.gpr(Gpr::R0)
                        && cpu.gpr(Gpr::R3) == before.gpr(Gpr::R3)
                        && cpu.gpr(Gpr::R12) == before.gpr(Gpr::R12)
                        && cpu.pc == before.pc
                        && cpu.psr == before.psr
                        && cpu.active_sp() == before.active_sp()
                        && cpu.control.npriv() == before.control.npriv();
                    if !ok {
                        return CheckResult::Refuted {
                            counterexample: format!(
                                "entry/return roundtrip round={round} ctrl={control_bits:02b}"
                            ),
                        };
                    }
                    cases += 1;
                }
            }
            CheckResult::Verified { cases }
        },
    );

    // The verified SysTick handler always restores privilege.
    registry.add_fn(COMPONENT, "sys_tick_isr", ContractKind::Post, move || {
        let mut cases = 0u64;
        for round in 0..(32 * d as u32) {
            let mut cpu = fresh_cpu();
            cpu.control = Control(0b11);
            cpu.psp = 0x2000_2800;
            cpu.exception_entry(ExceptionNumber::SysTick);
            let ret = handlers::sys_tick_isr(&mut cpu);
            if ret != crate::exceptions::EXC_RETURN_THREAD_MSP || cpu.control.npriv() {
                return CheckResult::Refuted {
                    counterexample: format!("sys_tick round={round}"),
                };
            }
            cases += 1;
        }
        CheckResult::Verified { cases }
    });

    // The whole control flow: kernel state is preserved across arbitrary
    // process executions and preemptions (the paper's headline interrupt
    // theorem, checked over many havoc seeds).
    registry.add_fn(
        COMPONENT,
        "control_flow_kernel_to_kernel",
        ContractKind::Post,
        move || {
            let mut cases = 0u64;
            for seed in 0..(64 * d as u32) {
                let mut cpu = fresh_cpu();
                for (i, r) in Gpr::CALLEE_SAVED.iter().enumerate() {
                    cpu.set_gpr(*r, seed.wrapping_mul(31) + i as u32);
                }
                let mut state = StoredState::new_for_process(&mut cpu, 0x4000, 0x2000_3000);
                let old = cpu.clone();
                cpu.control_flow_kernel_to_kernel(
                    &mut state,
                    ExceptionNumber::SysTick,
                    handlers::svc_handler_to_process,
                    handlers::sys_tick_isr,
                    seed,
                );
                if !cpu_state_correct(&cpu, &old) {
                    return CheckResult::Refuted {
                        counterexample: format!("kernel state clobbered, seed={seed}"),
                    };
                }
                cases += 1;
            }
            CheckResult::Verified { cases }
        },
    );

    // The remaining emulator functions carry only builtin safety
    // obligations (Flux's no-annotation overflow/bounds checks).
    registry.add_builtin_safety(
        COMPONENT,
        &[
            "Arm7::new",
            "Arm7::gpr",
            "Arm7::set_gpr",
            "Arm7::active_sp",
            "Arm7::set_active_sp",
            "Arm7::is_privileged",
            "Arm7::mode_is_handler",
            "Arm7::mode_is_thread_privileged",
            "Arm7::mode_is_thread_unprivileged",
            "Arm7::ipsr",
            "Arm7::is_valid_ram_addr",
            "Arm7::is_valid_sp_addr",
            "Arm7::mov_reg",
            // ALU and control-flow contract sites in `alu.rs`/`insns.rs`/
            // `exceptions.rs` — registered so the `tt-audit` cross-check
            // sees every `requires!`/`ensures!` site backed by a
            // discharged obligation.
            "Arm7::adds_reg",
            "Arm7::subs_reg",
            "Arm7::cmp_reg",
            "Arm7::cmp_imm",
            "Arm7::ands_reg",
            "Arm7::mvns_reg",
            "Arm7::lsls_imm",
            "Arm7::lsrs_imm",
            "Arm7::bl",
            "Arm7::push",
            "Arm7::pop",
            "Arm7::svc",
            "Arm7::exception_entry",
            "Arm7::exception_return",
            "Arm7::isb",
            "Arm7::dsb",
            "Arm7::ldr_imm",
            "Arm7::str_imm",
            "Arm7::stmdb_wback",
            "Arm7::ldmia_wback",
            "Arm7::stmia",
            "Arm7::ldmia",
            "Arm7::add_imm",
            "Arm7::sub_imm",
            "Arm7::cpsid_i",
            "Arm7::cpsie_i",
            "Arm7::pseudo_ldr_special",
            "Arm7::get_value_from_special_reg",
            "Arm7::bx",
            "Arm7::peek_frame",
            "Memory::new",
            "Memory::read",
            "Memory::write",
            "Memory::havoc_range",
            "Control::npriv",
            "Control::spsel",
            "Gpr::index",
            "SpecialRegister::lr",
            "ExceptionNumber::number",
            "ExceptionFrame::peek",
            "StoredState::new_for_process",
            "svc_handler_to_kernel",
            "svc_handler_to_process",
            "generic_isr",
            "switch_to_user_part1",
            "switch_to_user_part2",
            "Arm7::process",
            "Arm7::preempt",
        ],
    );

    // Trusted: the hashmap-backed refined memory API (paper §5: "In FluxArm,
    // 5 functions are marked trusted to define a refined API over hashmaps").
    for f in [
        "Memory::refined_get",
        "Memory::refined_insert",
        "Memory::refined_remove",
        "Memory::refined_range",
        "Memory::refined_len",
    ] {
        registry.add_trusted(COMPONENT, f, ContractKind::Post);
    }
}

/// Registers the obligations for the **buggy historical handlers** (§2.2).
/// Running the verifier over these reproduces the paper's bug discoveries:
/// both obligations are refuted.
pub fn register_buggy_obligations(registry: &mut Registry) {
    registry.add_fn(
        COMPONENT,
        "sys_tick_isr_buggy(control_flow)",
        ContractKind::Post,
        || {
            let mut cpu = fresh_cpu();
            for (i, r) in Gpr::CALLEE_SAVED.iter().enumerate() {
                cpu.set_gpr(*r, 100 + i as u32);
            }
            let mut state = StoredState::new_for_process(&mut cpu, 0x4000, 0x2000_3000);
            let old = cpu.clone();
            cpu.control_flow_kernel_to_kernel(
                &mut state,
                ExceptionNumber::SysTick,
                handlers::svc_handler_to_process,
                handlers::sys_tick_isr_buggy,
                99,
            );
            if cpu_state_correct(&cpu, &old) {
                CheckResult::Verified { cases: 1 }
            } else {
                CheckResult::Refuted {
                    counterexample:
                        "kernel resumes with CONTROL.nPRIV=1: thread mode not set to privileged \
                         execution (tock#4246)"
                            .into(),
                }
            }
        },
    );

    registry.add_fn(
        COMPONENT,
        "svc_handler_to_process_buggy(switch)",
        ContractKind::Pre,
        || {
            let mut cpu = fresh_cpu();
            let state = StoredState::new_for_process(&mut cpu, 0x4000, 0x2000_3000);
            cpu.switch_to_user_part1(&state, handlers::svc_handler_to_process_buggy);
            if cpu.mode_is_thread_unprivileged() {
                CheckResult::Verified { cases: 1 }
            } else {
                CheckResult::Refuted {
                    counterexample:
                        "process entered in privileged mode: MPU protections bypassed (§2.2)"
                            .into(),
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_contracts::verifier::Verifier;

    #[test]
    fn verified_interrupt_obligations_all_pass() {
        let mut registry = Registry::new();
        register_obligations(&mut registry, 1);
        let report = Verifier::new().verify(&registry);
        assert!(
            report.all_verified(),
            "refuted: {:?}",
            report
                .refuted()
                .iter()
                .map(|f| (&f.function, &f.refutations))
                .collect::<Vec<_>>()
        );
        // Function inventory is substantial (Fig. 12 reports 95 fns).
        assert!(registry.function_count(COMPONENT) > 50);
    }

    #[test]
    fn buggy_handlers_are_refuted() {
        let mut registry = Registry::new();
        register_buggy_obligations(&mut registry);
        let report = Verifier::new().verify(&registry);
        let refuted = report.refuted();
        assert_eq!(refuted.len(), 2, "both historical bugs rediscovered");
        assert!(refuted
            .iter()
            .any(|f| f.refutations.iter().any(|r| r.contains("nPRIV"))));
        assert!(refuted
            .iter()
            .any(|f| f.refutations.iter().any(|r| r.contains("privileged mode"))));
    }

    #[test]
    fn trusted_hashmap_api_counted_but_not_checked() {
        let mut registry = Registry::new();
        register_obligations(&mut registry, 1);
        assert_eq!(registry.trusted_function_count(COMPONENT), 5);
    }
}
