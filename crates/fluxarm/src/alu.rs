//! Flag-setting ALU and branch instructions.
//!
//! Tock's handlers mostly move data, but the surrounding kernel assembly
//! (and several release-test stubs) use compares, conditional branches and
//! logical operations. This module extends FluxArm with the flag-setting
//! subset: APSR.{N,Z,C,V} semantics per ARMv7-M A7.3, with each
//! instruction's flag contract checked against the arithmetic definition.

use crate::cpu::{Arm7, Gpr};
use tt_contracts::ensures;

/// APSR condition flags (PSR bits 31..28).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flags {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Carry.
    pub c: bool,
    /// Overflow.
    pub v: bool,
}

impl Flags {
    /// Decodes the flags from a PSR value.
    pub const fn from_psr(psr: u32) -> Self {
        Self {
            n: psr & (1 << 31) != 0,
            z: psr & (1 << 30) != 0,
            c: psr & (1 << 29) != 0,
            v: psr & (1 << 28) != 0,
        }
    }

    /// Encodes the flags into the top nibble of a PSR value.
    pub const fn into_psr(self, psr: u32) -> u32 {
        (psr & 0x0FFF_FFFF)
            | ((self.n as u32) << 31)
            | ((self.z as u32) << 30)
            | ((self.c as u32) << 29)
            | ((self.v as u32) << 28)
    }
}

/// Condition codes for conditional execution (A7.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal (Z set).
    Eq,
    /// Not equal (Z clear).
    Ne,
    /// Unsigned higher or same (C set).
    Hs,
    /// Unsigned lower (C clear).
    Lo,
    /// Negative (N set).
    Mi,
    /// Positive or zero (N clear).
    Pl,
    /// Signed greater than or equal (N == V).
    Ge,
    /// Signed less than (N != V).
    Lt,
    /// Unsigned higher (C set and Z clear).
    Hi,
    /// Unsigned lower or same (C clear or Z set).
    Ls,
    /// Always.
    Al,
}

impl Cond {
    /// Evaluates the condition against the flags (A7.3.1 `ConditionPassed`).
    pub const fn passed(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Hs => f.c,
            Cond::Lo => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Hi => f.c && !f.z,
            Cond::Ls => !f.c || f.z,
            Cond::Al => true,
        }
    }
}

/// `AddWithCarry` from the ARM pseudocode (A2.2.1): returns (result,
/// carry, overflow).
pub const fn add_with_carry(a: u32, b: u32, carry_in: bool) -> (u32, bool, bool) {
    let unsigned = a as u64 + b as u64 + carry_in as u64;
    let signed = a as i32 as i64 + b as i32 as i64 + carry_in as i64;
    let result = unsigned as u32;
    let carry = unsigned >> 32 != 0;
    let overflow = result as i32 as i64 != signed;
    (result, carry, overflow)
}

impl Arm7 {
    /// Current APSR flags.
    pub fn flags(&self) -> Flags {
        Flags::from_psr(self.psr)
    }

    fn set_flags_nzcv(&mut self, result: u32, c: bool, v: bool) {
        let f = Flags {
            n: result & (1 << 31) != 0,
            z: result == 0,
            c,
            v,
        };
        self.psr = f.into_psr(self.psr);
    }

    /// `adds rd, rn, rm` — A7-190: add, setting flags.
    pub fn adds_reg(&mut self, rd: Gpr, rn: Gpr, rm: Gpr) {
        let (a, b) = (self.gpr(rn), self.gpr(rm));
        let (result, c, v) = add_with_carry(a, b, false);
        self.set_gpr(rd, result);
        self.set_flags_nzcv(result, c, v);
        self.trace.push("adds");
        ensures!("adds_reg", self.gpr(rd) == a.wrapping_add(b));
        ensures!("adds_reg", self.flags().z == (result == 0));
    }

    /// `subs rd, rn, rm` — A7-450: subtract, setting flags
    /// (`AddWithCarry(rn, NOT rm, '1')`).
    pub fn subs_reg(&mut self, rd: Gpr, rn: Gpr, rm: Gpr) {
        let (a, b) = (self.gpr(rn), self.gpr(rm));
        let (result, c, v) = add_with_carry(a, !b, true);
        self.set_gpr(rd, result);
        self.set_flags_nzcv(result, c, v);
        self.trace.push("subs");
        ensures!("subs_reg", self.gpr(rd) == a.wrapping_sub(b));
        // ARM carry-out of a subtract means "no borrow".
        ensures!("subs_reg", self.flags().c == (a >= b));
    }

    /// `cmp rn, rm` — A7-227: compare (subtract discarding the result).
    pub fn cmp_reg(&mut self, rn: Gpr, rm: Gpr) {
        let (a, b) = (self.gpr(rn), self.gpr(rm));
        let (result, c, v) = add_with_carry(a, !b, true);
        self.set_flags_nzcv(result, c, v);
        self.trace.push("cmp");
        ensures!("cmp_reg", self.flags().z == (a == b));
        ensures!("cmp_reg", self.flags().c == (a >= b));
    }

    /// `cmp rn, #imm` — A7-226.
    pub fn cmp_imm(&mut self, rn: Gpr, imm: u32) {
        let a = self.gpr(rn);
        let (result, c, v) = add_with_carry(a, !imm, true);
        self.set_flags_nzcv(result, c, v);
        self.trace.push("cmp");
        ensures!("cmp_imm", self.flags().z == (a == imm));
    }

    /// `ands rd, rn, rm` — A7-200 (C unchanged in this encoding subset).
    pub fn ands_reg(&mut self, rd: Gpr, rn: Gpr, rm: Gpr) {
        let result = self.gpr(rn) & self.gpr(rm);
        self.set_gpr(rd, result);
        let f = self.flags();
        self.set_flags_nzcv(result, f.c, f.v);
        self.trace.push("ands");
        ensures!("ands_reg", self.gpr(rd) == self.gpr(rn) & self.gpr(rm));
    }

    /// `orrs rd, rn, rm` — A7-310.
    pub fn orrs_reg(&mut self, rd: Gpr, rn: Gpr, rm: Gpr) {
        let result = self.gpr(rn) | self.gpr(rm);
        self.set_gpr(rd, result);
        let f = self.flags();
        self.set_flags_nzcv(result, f.c, f.v);
        self.trace.push("orrs");
    }

    /// `eors rd, rn, rm` — A7-239.
    pub fn eors_reg(&mut self, rd: Gpr, rn: Gpr, rm: Gpr) {
        let result = self.gpr(rn) ^ self.gpr(rm);
        self.set_gpr(rd, result);
        let f = self.flags();
        self.set_flags_nzcv(result, f.c, f.v);
        self.trace.push("eors");
    }

    /// `mvns rd, rm` — A7-304: bitwise NOT.
    pub fn mvns_reg(&mut self, rd: Gpr, rm: Gpr) {
        let result = !self.gpr(rm);
        self.set_gpr(rd, result);
        let f = self.flags();
        self.set_flags_nzcv(result, f.c, f.v);
        self.trace.push("mvns");
        ensures!("mvns_reg", self.gpr(rd) == !self.gpr(rm));
    }

    /// `lsls rd, rm, #shift` — A7-282: logical shift left; C is the last
    /// bit shifted out.
    pub fn lsls_imm(&mut self, rd: Gpr, rm: Gpr, shift: u32) {
        tt_contracts::requires!("lsls_imm", shift < 32);
        let value = self.gpr(rm);
        let carry = if shift == 0 {
            self.flags().c
        } else {
            value & (1 << (32 - shift)) != 0
        };
        let result = if shift == 0 { value } else { value << shift };
        self.set_gpr(rd, result);
        let v = self.flags().v;
        self.set_flags_nzcv(result, carry, v);
        self.trace.push("lsls");
    }

    /// `lsrs rd, rm, #shift` — A7-284: logical shift right.
    pub fn lsrs_imm(&mut self, rd: Gpr, rm: Gpr, shift: u32) {
        tt_contracts::requires!("lsrs_imm", (1..=32).contains(&shift));
        let value = self.gpr(rm);
        let carry = value & (1 << (shift - 1)) != 0;
        let result = if shift == 32 { 0 } else { value >> shift };
        self.set_gpr(rd, result);
        let v = self.flags().v;
        self.set_flags_nzcv(result, carry, v);
        self.trace.push("lsrs");
    }

    /// `b<cond> target` — A7-205: conditional branch. Returns whether the
    /// branch was taken.
    pub fn b_cond(&mut self, cond: Cond, target: u32) -> bool {
        let taken = cond.passed(self.flags());
        if taken {
            self.pc = target & !1;
        }
        self.trace.push("b_cond");
        taken
    }

    /// `bl target` — A7-207: branch with link (LR = return address).
    pub fn bl(&mut self, target: u32, return_addr: u32) {
        self.lr = return_addr | 1; // Thumb bit set in LR, as hardware does.
        self.pc = target & !1;
        self.trace.push("bl");
        ensures!("bl", self.pc == target & !1);
        ensures!("bl", self.lr == (return_addr | 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::AddrRange;

    fn cpu() -> Arm7 {
        Arm7::new(
            AddrRange::new(0x2000_0000, 0x2000_1000),
            AddrRange::new(0x2000_1000, 0x2000_3000),
        )
    }

    #[test]
    fn add_with_carry_matches_reference_exhaustively() {
        // Exhaustive over stratified corners x corners x carry.
        let corners = [
            0u32,
            1,
            2,
            0x7FFF_FFFE,
            0x7FFF_FFFF,
            0x8000_0000,
            0x8000_0001,
            0xFFFF_FFFE,
            0xFFFF_FFFF,
            0x1234_5678,
        ];
        for &a in &corners {
            for &b in &corners {
                for cin in [false, true] {
                    let (r, c, v) = add_with_carry(a, b, cin);
                    let wide = a as u64 + b as u64 + cin as u64;
                    assert_eq!(r, wide as u32);
                    assert_eq!(c, wide > u32::MAX as u64);
                    let swide = a as i32 as i64 + b as i32 as i64 + cin as i64;
                    assert_eq!(v, swide != r as i32 as i64);
                }
            }
        }
    }

    #[test]
    fn adds_sets_zero_and_carry() {
        let mut c = cpu();
        c.set_gpr(Gpr::R0, u32::MAX);
        c.set_gpr(Gpr::R1, 1);
        c.adds_reg(Gpr::R2, Gpr::R0, Gpr::R1);
        assert_eq!(c.gpr(Gpr::R2), 0);
        let f = c.flags();
        assert!(f.z && f.c && !f.n && !f.v);
    }

    #[test]
    fn subs_overflow_detection() {
        let mut c = cpu();
        c.set_gpr(Gpr::R0, 0x8000_0000); // i32::MIN
        c.set_gpr(Gpr::R1, 1);
        c.subs_reg(Gpr::R2, Gpr::R0, Gpr::R1);
        assert_eq!(c.gpr(Gpr::R2), 0x7FFF_FFFF);
        assert!(c.flags().v, "signed overflow on MIN - 1");
        assert!(c.flags().c, "no borrow");
    }

    #[test]
    fn cmp_drives_all_unsigned_conditions() {
        let mut c = cpu();
        c.set_gpr(Gpr::R0, 5);
        c.set_gpr(Gpr::R1, 7);
        c.cmp_reg(Gpr::R0, Gpr::R1); // 5 < 7.
        let f = c.flags();
        assert!(Cond::Lo.passed(f));
        assert!(Cond::Ne.passed(f));
        assert!(Cond::Lt.passed(f));
        assert!(!Cond::Hs.passed(f));
        assert!(!Cond::Eq.passed(f));
        assert!(Cond::Ls.passed(f));
        assert!(!Cond::Hi.passed(f));
        c.cmp_reg(Gpr::R1, Gpr::R0); // 7 > 5.
        let f = c.flags();
        assert!(Cond::Hi.passed(f));
        assert!(Cond::Ge.passed(f));
        c.cmp_reg(Gpr::R0, Gpr::R0); // Equal.
        let f = c.flags();
        assert!(Cond::Eq.passed(f) && Cond::Hs.passed(f) && Cond::Ge.passed(f));
        assert!(Cond::Al.passed(f));
    }

    #[test]
    fn signed_conditions_across_sign_boundary() {
        let mut c = cpu();
        c.set_gpr(Gpr::R0, (-3i32) as u32);
        c.set_gpr(Gpr::R1, 2);
        c.cmp_reg(Gpr::R0, Gpr::R1); // -3 < 2 signed, but unsigned-higher.
        let f = c.flags();
        assert!(Cond::Lt.passed(f), "signed less-than");
        assert!(Cond::Hs.passed(f), "unsigned higher-or-same");
        assert!(Cond::Mi.passed(f));
    }

    #[test]
    fn logical_ops_set_nz_only() {
        let mut c = cpu();
        c.set_gpr(Gpr::R0, 0xFF00_0000);
        c.set_gpr(Gpr::R1, 0x0F00_0000);
        c.ands_reg(Gpr::R2, Gpr::R0, Gpr::R1);
        assert_eq!(c.gpr(Gpr::R2), 0x0F00_0000);
        assert!(!c.flags().n && !c.flags().z);
        c.eors_reg(Gpr::R3, Gpr::R1, Gpr::R1);
        assert!(c.flags().z);
        c.orrs_reg(Gpr::R4, Gpr::R0, Gpr::R1);
        assert!(c.flags().n);
        c.mvns_reg(Gpr::R5, Gpr::R4);
        assert_eq!(c.gpr(Gpr::R5), !0xFF00_0000u32);
    }

    #[test]
    fn shifts_produce_correct_carry_out() {
        let mut c = cpu();
        c.set_gpr(Gpr::R0, 0x8000_0001);
        c.lsls_imm(Gpr::R1, Gpr::R0, 1);
        assert_eq!(c.gpr(Gpr::R1), 2);
        assert!(c.flags().c, "top bit shifted out");
        c.set_gpr(Gpr::R2, 0b11);
        c.lsrs_imm(Gpr::R3, Gpr::R2, 1);
        assert_eq!(c.gpr(Gpr::R3), 1);
        assert!(c.flags().c, "bottom bit shifted out");
        c.lsrs_imm(Gpr::R4, Gpr::R2, 32);
        assert_eq!(c.gpr(Gpr::R4), 0);
    }

    #[test]
    fn conditional_branch_taken_and_not() {
        let mut c = cpu();
        c.set_gpr(Gpr::R0, 1);
        c.set_gpr(Gpr::R1, 1);
        c.cmp_reg(Gpr::R0, Gpr::R1);
        let pc0 = c.pc;
        assert!(!c.b_cond(Cond::Ne, 0x9000));
        assert_eq!(c.pc, pc0, "untaken branch leaves pc");
        assert!(c.b_cond(Cond::Eq, 0x9001));
        assert_eq!(c.pc, 0x9000, "taken branch clears thumb bit");
    }

    #[test]
    fn bl_links_return_address() {
        let mut c = cpu();
        c.bl(0x0000_8000, 0x0000_0124);
        assert_eq!(c.pc, 0x8000);
        assert_eq!(c.lr, 0x125);
    }

    #[test]
    fn flags_roundtrip_through_psr() {
        for bits in 0..16u32 {
            let f = Flags {
                n: bits & 8 != 0,
                z: bits & 4 != 0,
                c: bits & 2 != 0,
                v: bits & 1 != 0,
            };
            let psr = f.into_psr(0x0000_01FF);
            assert_eq!(Flags::from_psr(psr), f);
            assert_eq!(psr & 0x0FFF_FFFF, 0x0000_01FF, "IPSR preserved");
        }
    }
}
