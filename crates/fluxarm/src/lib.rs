//! FluxArm: an executable formal semantics of the Tock-relevant ARMv7-M
//! subset (paper §4.5).
//!
//! The paper verifies Tock's inline-assembly interrupt handlers and context
//! switch by lifting ARM's Architecture Specification Language into Rust
//! and attaching Flux contracts. This crate is that artifact, executable:
//!
//! * [`cpu`] — the modelled CPU state (`Arm7`, Fig. 7 left);
//! * [`insns`] — instruction semantics with contracts (Fig. 7 right);
//! * [`alu`] — flag-setting ALU/branch instructions (APSR semantics);
//! * [`exceptions`] — hardware exception entry/return (B1.5.6/B1.5.8);
//! * [`handlers`] — Tock's top-half handlers, verified and **buggy
//!   historical variants** (Fig. 8 left, §2.2);
//! * [`switch`] — the kernel↔process context switch and the
//!   `cpu_state_correct` machine invariant (Fig. 8 right);
//! * [`contracts`] — the verification obligations behind Figure 12's
//!   "Interrupts" row.

pub mod alu;
pub mod asm;
pub mod contracts;
pub mod cpu;
pub mod exceptions;
pub mod handlers;
pub mod insns;
pub mod switch;

pub use alu::{add_with_carry, Cond, Flags};
pub use asm::{Insn, Program};
pub use cpu::{Arm7, Control, CpuMode, Gpr, Memory, SpecialRegister};
pub use exceptions::{
    ExceptionFrame, ExceptionNumber, EXC_RETURN_HANDLER, EXC_RETURN_THREAD_MSP,
    EXC_RETURN_THREAD_PSP,
};
pub use switch::{cpu_state_correct, StoredState};
