//! Tock's top-half interrupt handlers, modelled in FluxArm (paper Fig. 8).
//!
//! Each handler is "a short sequence of assembly instructions represented by
//! the corresponding sequence of FluxArm method calls". Alongside the
//! verified handlers, this module keeps the **buggy historical variants**
//! the paper found (§2.2): handlers that omit the CONTROL-register mode
//! switch, leaving the CPU in the wrong privilege after a context switch.

use crate::cpu::{Arm7, Gpr, SpecialRegister};
use crate::exceptions::{ExceptionNumber, EXC_RETURN_THREAD_MSP, EXC_RETURN_THREAD_PSP};
use crate::insns::IsbOpt;
use tt_contracts::{ensures, requires};

/// A top-half handler: runs in handler mode, returns the EXC_RETURN value
/// the wrapper assembly feeds to `bx lr`.
pub type IsrFn = fn(&mut Arm7) -> u32;

/// The verified SysTick handler (paper Fig. 8, left).
///
/// Fires while a *process* runs; must return control to the **kernel** in
/// privileged thread mode on MSP. The `msr CONTROL, r0` with `r0 = 0` is
/// the critical mode switch: exception return does not touch nPRIV, so
/// without it the kernel would resume with the process's privilege level.
pub fn sys_tick_isr(cpu: &mut Arm7) -> u32 {
    requires!("sys_tick_isr", cpu.mode_is_handler());
    let lr = SpecialRegister::lr();
    cpu.movw_imm(Gpr::R0, 0);
    cpu.msr(SpecialRegister::Control, Gpr::R0);
    cpu.isb(Some(IsbOpt::Sys));
    cpu.pseudo_ldr_special(lr, EXC_RETURN_THREAD_MSP);
    let ret = cpu.get_value_from_special_reg(lr);
    ensures!("sys_tick_isr", ret == EXC_RETURN_THREAD_MSP);
    ensures!("sys_tick_isr", !cpu.control.npriv());
    ret
}

/// The **buggy** SysTick handler: the historical Tock bug (tock#4246,
/// §2.2 "Interrupt Assembly Missed Mode Switch") — the CONTROL write is
/// missing, so nPRIV keeps the preempted process's value and the kernel
/// resumes unprivileged.
///
/// The `ensures!` postcondition that the verified handler discharges is
/// *absent* here; the violation surfaces at the whole-control-flow check
/// (`cpu_state_correct`), exactly as Flux reported it.
pub fn sys_tick_isr_buggy(cpu: &mut Arm7) -> u32 {
    requires!("sys_tick_isr_buggy", cpu.mode_is_handler());
    let lr = SpecialRegister::lr();
    // BUG: `movw r0, #0; msr CONTROL, r0; isb` omitted.
    cpu.pseudo_ldr_special(lr, EXC_RETURN_THREAD_MSP);
    cpu.get_value_from_special_reg(lr)
}

/// The verified SVC handler, kernel→process direction.
///
/// Tock's `switch_to_user` executes `svc` from the kernel; this handler
/// marks the thread unprivileged (`CONTROL.nPRIV = 1`) and returns with
/// `EXC_RETURN_THREAD_PSP` so the hardware pops the *process* frame from
/// PSP and resumes user code unprivileged.
pub fn svc_handler_to_process(cpu: &mut Arm7) -> u32 {
    requires!("svc_handler_to_process", cpu.mode_is_handler());
    let lr = SpecialRegister::lr();
    cpu.movw_imm(Gpr::R0, 1);
    cpu.msr(SpecialRegister::Control, Gpr::R0);
    cpu.isb(Some(IsbOpt::Sys));
    cpu.pseudo_ldr_special(lr, EXC_RETURN_THREAD_PSP);
    let ret = cpu.get_value_from_special_reg(lr);
    ensures!("svc_handler_to_process", ret == EXC_RETURN_THREAD_PSP);
    ensures!("svc_handler_to_process", cpu.control.npriv());
    ret
}

/// The **buggy** SVC handler: omits setting `CONTROL.nPRIV`, so the
/// hardware pops the process frame and starts executing *process code in
/// privileged mode*, letting it bypass the MPU entirely — the paper's
/// §2.2 scenario "Tock jump\[s\] into process code while still in privileged
/// execution mode".
pub fn svc_handler_to_process_buggy(cpu: &mut Arm7) -> u32 {
    requires!("svc_handler_to_process_buggy", cpu.mode_is_handler());
    let lr = SpecialRegister::lr();
    // BUG: `movw r0, #1; msr CONTROL, r0; isb` omitted.
    cpu.pseudo_ldr_special(lr, EXC_RETURN_THREAD_PSP);
    cpu.get_value_from_special_reg(lr)
}

/// The verified SVC handler, process→kernel direction (a syscall): resets
/// the thread to privileged and returns to the kernel frame on MSP.
pub fn svc_handler_to_kernel(cpu: &mut Arm7) -> u32 {
    requires!("svc_handler_to_kernel", cpu.mode_is_handler());
    let lr = SpecialRegister::lr();
    cpu.movw_imm(Gpr::R0, 0);
    cpu.msr(SpecialRegister::Control, Gpr::R0);
    cpu.isb(Some(IsbOpt::Sys));
    cpu.pseudo_ldr_special(lr, EXC_RETURN_THREAD_MSP);
    let ret = cpu.get_value_from_special_reg(lr);
    ensures!("svc_handler_to_kernel", ret == EXC_RETURN_THREAD_MSP);
    ensures!("svc_handler_to_kernel", !cpu.control.npriv());
    ret
}

/// The verified MemManage handler (PR 4's fault-recovery entry path).
///
/// Fires when an unprivileged access violates the MPU while a process
/// runs. Like SysTick, it must hand control back to the **kernel** in
/// privileged thread mode on MSP — the fault-recovery subsystem runs in
/// the kernel, so resuming with the faulting process's privilege (or to
/// its frame on PSP) would re-enter the very code that just faulted.
pub fn mem_manage_handler(cpu: &mut Arm7) -> u32 {
    requires!("mem_manage_handler", cpu.mode_is_handler());
    requires!(
        "mem_manage_handler",
        cpu.ipsr() == ExceptionNumber::MemManage.number()
    );
    let lr = SpecialRegister::lr();
    cpu.movw_imm(Gpr::R0, 0);
    cpu.msr(SpecialRegister::Control, Gpr::R0);
    cpu.isb(Some(IsbOpt::Sys));
    cpu.pseudo_ldr_special(lr, EXC_RETURN_THREAD_MSP);
    let ret = cpu.get_value_from_special_reg(lr);
    ensures!("mem_manage_handler", ret == EXC_RETURN_THREAD_MSP);
    ensures!("mem_manage_handler", !cpu.control.npriv());
    ret
}

/// A generic external-interrupt handler: services the device (modelled as a
/// trace event) and resumes the kernel like SysTick does.
pub fn generic_isr(cpu: &mut Arm7) -> u32 {
    requires!("generic_isr", cpu.mode_is_handler());
    cpu.trace.push("device_service");
    sys_tick_isr(cpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Control;
    use crate::exceptions::ExceptionNumber;
    use tt_contracts::{take_violations, with_mode, Mode};
    use tt_hw::AddrRange;

    fn preempted_cpu() -> Arm7 {
        let mut c = Arm7::new(
            AddrRange::new(0x2000_0000, 0x2000_1000),
            AddrRange::new(0x2000_1000, 0x2000_3000),
        );
        // Simulate a process being preempted: unprivileged thread on PSP.
        c.control = Control(0b11);
        c.psp = 0x2000_2800;
        c.exception_entry(ExceptionNumber::SysTick);
        c
    }

    #[test]
    fn verified_systick_resets_privilege() {
        let mut c = preempted_cpu();
        assert!(c.control.npriv());
        let ret = sys_tick_isr(&mut c);
        assert_eq!(ret, EXC_RETURN_THREAD_MSP);
        assert!(!c.control.npriv(), "CONTROL cleared by the handler");
        // Handler shape includes the barrier after the CONTROL write.
        let msr_pos = c.trace.iter().position(|t| *t == "msr").unwrap();
        let isb_pos = c.trace.iter().position(|t| *t == "isb").unwrap();
        assert!(isb_pos > msr_pos);
    }

    #[test]
    fn buggy_systick_leaves_process_privilege() {
        let mut c = preempted_cpu();
        let ret = sys_tick_isr_buggy(&mut c);
        assert_eq!(ret, EXC_RETURN_THREAD_MSP);
        assert!(
            c.control.npriv(),
            "bug: nPRIV still set from the preempted process"
        );
        // After the return the kernel thread would be unprivileged.
        c.msp = 0x2000_0800; // A kernel frame exists in this model's memory.
        c.exception_return(ret);
        assert!(!c.is_privileged(), "kernel resumed without privilege");
    }

    #[test]
    fn verified_svc_to_process_sets_npriv() {
        let mut c = Arm7::new(
            AddrRange::new(0x2000_0000, 0x2000_1000),
            AddrRange::new(0x2000_1000, 0x2000_3000),
        );
        c.exception_entry(ExceptionNumber::SvCall);
        let ret = svc_handler_to_process(&mut c);
        assert_eq!(ret, EXC_RETURN_THREAD_PSP);
        assert!(c.control.npriv());
    }

    #[test]
    fn buggy_svc_to_process_keeps_privilege() {
        let mut c = Arm7::new(
            AddrRange::new(0x2000_0000, 0x2000_1000),
            AddrRange::new(0x2000_1000, 0x2000_3000),
        );
        c.psp = 0x2000_2800; // Pretend a process frame is staged at PSP.
        c.exception_entry(ExceptionNumber::SvCall);
        let ret = svc_handler_to_process_buggy(&mut c);
        c.exception_return(ret);
        // The process is now running but the CPU is still privileged: the
        // MPU's unprivileged checks no longer constrain it.
        assert!(c.mode_is_thread_privileged());
        assert!(
            c.is_privileged(),
            "isolation break: process executes privileged"
        );
    }

    #[test]
    fn handlers_require_handler_mode() {
        with_mode(Mode::Observe, || {
            let mut c = Arm7::new(
                AddrRange::new(0x2000_0000, 0x2000_1000),
                AddrRange::new(0x2000_1000, 0x2000_3000),
            );
            let _ = sys_tick_isr(&mut c);
        });
        assert!(take_violations().iter().any(|v| v.site == "sys_tick_isr"));
    }

    #[test]
    fn svc_to_kernel_restores_privilege() {
        let mut c = preempted_cpu(); // nPRIV = 1 from the process.
        let ret = svc_handler_to_kernel(&mut c);
        assert_eq!(ret, EXC_RETURN_THREAD_MSP);
        assert!(!c.control.npriv());
    }

    #[test]
    fn mem_manage_returns_to_privileged_kernel() {
        let mut c = Arm7::new(
            AddrRange::new(0x2000_0000, 0x2000_1000),
            AddrRange::new(0x2000_1000, 0x2000_3000),
        );
        // A process faults: unprivileged thread on PSP takes MemManage.
        c.control = Control(0b11);
        c.psp = 0x2000_2800;
        c.exception_entry(ExceptionNumber::MemManage);
        assert_eq!(c.ipsr(), 4);
        let ret = mem_manage_handler(&mut c);
        assert_eq!(ret, EXC_RETURN_THREAD_MSP);
        assert!(!c.control.npriv(), "kernel resumes privileged");
    }

    #[test]
    fn mem_manage_requires_its_own_vector() {
        with_mode(Mode::Observe, || {
            let mut c = preempted_cpu(); // IPSR = SysTick, not MemManage.
            let _ = mem_manage_handler(&mut c);
        });
        assert!(take_violations()
            .iter()
            .any(|v| v.site == "mem_manage_handler"));
    }

    #[test]
    fn generic_isr_services_device_then_behaves_like_systick() {
        let mut c = preempted_cpu();
        let ret = generic_isr(&mut c);
        assert_eq!(ret, EXC_RETURN_THREAD_MSP);
        assert!(c.trace.contains(&"device_service"));
        assert!(!c.control.npriv());
    }
}
