//! Instructions as data: a reified ARMv7-M subset and a program runner.
//!
//! The paper models each handler as "a short sequence of assembly
//! instructions represented by the corresponding sequence of FluxArm
//! method calls" (Fig. 8). This module adds the missing half of the lifted
//! ASL story: an [`Insn`] value per instruction, an [`Arm7::execute`] step
//! function mapping each value to its semantics, and [`Program`]s — so the
//! verified handlers can also be written down as data, compared, printed,
//! and executed. The §2.2 missed-mode-switch bug becomes literally *a
//! missing line in a program listing*.

use crate::cpu::{Arm7, Gpr, SpecialRegister};
use crate::exceptions::EXC_RETURN_THREAD_MSP;
use crate::insns::IsbOpt;

/// One reified instruction of the modelled subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `movw rd, #imm16`.
    MovwImm(Gpr, u16),
    /// `movt rd, #imm16`.
    MovtImm(Gpr, u16),
    /// `mov rd, rm`.
    MovReg(Gpr, Gpr),
    /// `msr special, rn`.
    Msr(SpecialRegister, Gpr),
    /// `mrs rd, special`.
    Mrs(Gpr, SpecialRegister),
    /// `isb sy`.
    Isb,
    /// `dsb`.
    Dsb,
    /// `ldr rt, [rn, #imm]`.
    LdrImm(Gpr, Gpr, u32),
    /// `str rt, [rn, #imm]`.
    StrImm(Gpr, Gpr, u32),
    /// `push {r4-r11}` (the kernel-save register list).
    PushCalleeSaved,
    /// `pop {r4-r11}`.
    PopCalleeSaved,
    /// `add rd, rn, #imm`.
    AddImm(Gpr, Gpr, u32),
    /// `sub rd, rn, #imm`.
    SubImm(Gpr, Gpr, u32),
    /// `cpsid i`.
    CpsidI,
    /// `cpsie i`.
    CpsieI,
    /// Pseudo: load an EXC_RETURN constant into LR.
    LdrLrExcReturn(u32),
}

impl Arm7 {
    /// Executes one reified instruction — the dispatch table tying each
    /// [`Insn`] value to its operational semantics.
    pub fn execute(&mut self, insn: Insn) {
        match insn {
            Insn::MovwImm(rd, imm) => self.movw_imm(rd, imm as u32),
            Insn::MovtImm(rd, imm) => self.movt_imm(rd, imm as u32),
            Insn::MovReg(rd, rm) => self.mov_reg(rd, rm),
            Insn::Msr(sr, rn) => self.msr(sr, rn),
            Insn::Mrs(rd, sr) => self.mrs(rd, sr),
            Insn::Isb => self.isb(Some(IsbOpt::Sys)),
            Insn::Dsb => self.dsb(),
            Insn::LdrImm(rt, rn, imm) => self.ldr_imm(rt, rn, imm),
            Insn::StrImm(rt, rn, imm) => self.str_imm(rt, rn, imm),
            Insn::PushCalleeSaved => self.push(&Gpr::CALLEE_SAVED),
            Insn::PopCalleeSaved => self.pop(&Gpr::CALLEE_SAVED),
            Insn::AddImm(rd, rn, imm) => self.add_imm(rd, rn, imm),
            Insn::SubImm(rd, rn, imm) => self.sub_imm(rd, rn, imm),
            Insn::CpsidI => self.cpsid_i(),
            Insn::CpsieI => self.cpsie_i(),
            Insn::LdrLrExcReturn(v) => self.pseudo_ldr_special(SpecialRegister::lr(), v),
        }
    }

    /// Executes a whole program in order.
    pub fn run_program(&mut self, program: &Program) {
        for insn in &program.insns {
            self.execute(*insn);
        }
    }
}

/// A named straight-line instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Listing name (e.g. `"sys_tick_isr"`).
    pub name: &'static str,
    /// The instructions, in order.
    pub insns: Vec<Insn>,
}

impl Program {
    /// The verified SysTick handler body as a listing (paper Fig. 8 left).
    pub fn sys_tick_isr() -> Self {
        Self {
            name: "sys_tick_isr",
            insns: vec![
                Insn::MovwImm(Gpr::R0, 0),
                Insn::Msr(SpecialRegister::Control, Gpr::R0),
                Insn::Isb,
                Insn::LdrLrExcReturn(EXC_RETURN_THREAD_MSP),
            ],
        }
    }

    /// The buggy historical SysTick handler: the same listing with the
    /// CONTROL write (and its barrier) missing — tock#4246 as a diff.
    pub fn sys_tick_isr_buggy() -> Self {
        Self {
            name: "sys_tick_isr_buggy",
            insns: vec![Insn::LdrLrExcReturn(EXC_RETURN_THREAD_MSP)],
        }
    }

    /// Renders the listing as assembly-ish text.
    pub fn listing(&self) -> String {
        let mut out = format!("{}:\n", self.name);
        for insn in &self.insns {
            out.push_str(&format!("    {insn:?}\n"));
        }
        out
    }

    /// The instructions present in `other` but missing here (order-
    /// preserving diff used to display what a buggy listing dropped).
    pub fn missing_from(&self, other: &Program) -> Vec<Insn> {
        let mut mine = self.insns.iter().peekable();
        let mut missing = Vec::new();
        for insn in &other.insns {
            if mine.peek() == Some(&insn) {
                mine.next();
            } else {
                missing.push(*insn);
            }
        }
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Control;
    use crate::exceptions::ExceptionNumber;
    use tt_hw::AddrRange;

    fn cpu() -> Arm7 {
        Arm7::new(
            AddrRange::new(0x2000_0000, 0x2000_1000),
            AddrRange::new(0x2000_1000, 0x2000_3000),
        )
    }

    #[test]
    fn reified_systick_program_equals_method_version() {
        // Run the listing and the hand-written handler on identical
        // preempted states; final CPU states must agree exactly.
        let mk = || {
            let mut c = cpu();
            c.control = Control(0b11);
            c.psp = 0x2000_2800;
            c.exception_entry(ExceptionNumber::SysTick);
            c
        };
        let mut via_program = mk();
        via_program.run_program(&Program::sys_tick_isr());
        let mut via_methods = mk();
        let ret = crate::handlers::sys_tick_isr(&mut via_methods);
        assert_eq!(via_program.lr, ret);
        assert_eq!(via_program.control, via_methods.control);
        assert_eq!(via_program.regs, via_methods.regs);
        assert_eq!(via_program.psr, via_methods.psr);
        assert_eq!(via_program.trace, via_methods.trace);
    }

    #[test]
    fn buggy_listing_is_exactly_the_missing_mode_switch() {
        let good = Program::sys_tick_isr();
        let bad = Program::sys_tick_isr_buggy();
        let missing = bad.missing_from(&good);
        assert_eq!(
            missing,
            vec![
                Insn::MovwImm(Gpr::R0, 0),
                Insn::Msr(SpecialRegister::Control, Gpr::R0),
                Insn::Isb,
            ],
            "the bug is precisely the dropped CONTROL sequence"
        );
    }

    #[test]
    fn every_insn_variant_executes() {
        let mut c = cpu();
        c.set_gpr(Gpr::R1, 0x2000_2000);
        let program = Program {
            name: "smoke",
            insns: vec![
                Insn::MovwImm(Gpr::R0, 0xBEEF),
                Insn::MovtImm(Gpr::R0, 0xDEAD),
                Insn::MovReg(Gpr::R2, Gpr::R0),
                Insn::StrImm(Gpr::R2, Gpr::R1, 0),
                Insn::LdrImm(Gpr::R3, Gpr::R1, 0),
                Insn::AddImm(Gpr::R4, Gpr::R3, 4),
                Insn::SubImm(Gpr::R5, Gpr::R4, 8),
                Insn::PushCalleeSaved,
                Insn::PopCalleeSaved,
                Insn::Mrs(Gpr::R6, SpecialRegister::Msp),
                Insn::Msr(SpecialRegister::Psp, Gpr::R1),
                Insn::CpsidI,
                Insn::CpsieI,
                Insn::Dsb,
                Insn::Isb,
                Insn::LdrLrExcReturn(EXC_RETURN_THREAD_MSP),
            ],
        };
        c.run_program(&program);
        assert_eq!(c.gpr(Gpr::R3), 0xDEAD_BEEF);
        assert_eq!(c.gpr(Gpr::R5), 0xDEAD_BEEF - 4);
        assert_eq!(c.psp, 0x2000_2000);
        assert_eq!(c.lr, EXC_RETURN_THREAD_MSP);
        assert_eq!(c.gpr(Gpr::R6), c.msp);
    }

    #[test]
    fn listing_renders_readably() {
        let text = Program::sys_tick_isr().listing();
        assert!(text.starts_with("sys_tick_isr:"));
        assert!(text.contains("Msr(Control, R0)"));
        assert!(text.contains("LdrLrExcReturn"));
    }
}
