//! Instruction semantics: the Tock-relevant ARMv7-M subset.
//!
//! Each method is one instruction, "both executable Rust and a formal
//! semantics specified as a Flux contract" (paper Fig. 7, right). The
//! contracts here are the same predicates, checked at execution time: a
//! `requires!` refusal corresponds to Flux rejecting a handler that uses an
//! instruction outside its specified domain, and `ensures!` checks the
//! lifted ASL postcondition against the Rust implementation.
//!
//! References are to the ARMv7-M Architecture Reference Manual (DDI 0403E).

use crate::cpu::{Arm7, Control, CpuMode, Gpr, SpecialRegister};
use tt_contracts::{ensures, requires};

/// ISB option (the paper's `IsbOpt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsbOpt {
    /// Full-system barrier (`isb sy`).
    Sys,
}

impl Arm7 {
    /// Returns `true` if `addr` may be loaded into a stack pointer: inside
    /// kernel stack or process RAM, or exactly one past the end (an empty
    /// full-descending stack).
    pub fn is_valid_sp_addr(&self, addr: u32) -> bool {
        let a = addr as usize;
        (a >= self.kernel_stack.start && a <= self.kernel_stack.end)
            || (a >= self.process_ram.start && a <= self.process_ram.end)
    }

    /// `movw rd, #imm16` — A7-291: writes the zero-extended immediate.
    pub fn movw_imm(&mut self, rd: Gpr, imm16: u32) {
        requires!("movw_imm", imm16 <= 0xFFFF);
        self.set_gpr(rd, imm16);
        self.trace.push("movw");
        ensures!("movw_imm", self.gpr(rd) == imm16);
    }

    /// `movt rd, #imm16` — A7-294: writes the immediate to the top half,
    /// preserving the bottom half.
    pub fn movt_imm(&mut self, rd: Gpr, imm16: u32) {
        requires!("movt_imm", imm16 <= 0xFFFF);
        let old_low = self.gpr(rd) & 0xFFFF;
        self.set_gpr(rd, (imm16 << 16) | old_low);
        self.trace.push("movt");
        ensures!("movt_imm", self.gpr(rd) >> 16 == imm16);
        ensures!("movt_imm", self.gpr(rd) & 0xFFFF == old_low);
    }

    /// `mov rd, rm` — A7-289.
    pub fn mov_reg(&mut self, rd: Gpr, rm: Gpr) {
        let v = self.gpr(rm);
        self.set_gpr(rd, v);
        self.trace.push("mov");
        ensures!("mov_reg", self.gpr(rd) == self.gpr(rm));
    }

    /// `msr special, rn` — B5-677 and the paper's Fig. 7 (right).
    ///
    /// Contract (paper): the target must not be IPSR (read-only), and a
    /// stack-pointer write must carry a valid RAM address. Writes to
    /// CONTROL from unprivileged code are ignored by hardware (B5-677) —
    /// the detail that makes the missed-mode-switch bug unrecoverable from
    /// user mode.
    pub fn msr(&mut self, reg: SpecialRegister, rn: Gpr) {
        let val = self.gpr(rn);
        requires!("msr", reg != SpecialRegister::Ipsr);
        requires!(
            "msr",
            !matches!(reg, SpecialRegister::Msp | SpecialRegister::Psp)
                || self.is_valid_sp_addr(val)
        );
        let old_control = self.control;
        match reg {
            SpecialRegister::Msp => {
                if self.is_privileged() {
                    self.msp = val & !0b11;
                }
            }
            SpecialRegister::Psp => {
                if self.is_privileged() {
                    self.psp = val & !0b11;
                }
            }
            SpecialRegister::Control => {
                if self.is_privileged() {
                    // In handler mode SPSEL writes are ignored (B1.4.4).
                    let mask = if self.mode == CpuMode::Handler {
                        0b01
                    } else {
                        0b11
                    };
                    self.control = Control((old_control.0 & !mask) | (val & mask));
                } // Unprivileged CONTROL writes are ignored.
            }
            SpecialRegister::Lr => self.lr = val,
            // Rejected by the precondition; a no-op here so Observe-mode
            // verification can continue past the refutation.
            SpecialRegister::Ipsr => {}
        }
        self.trace.push("msr");
        ensures!(
            "msr",
            reg != SpecialRegister::Control
                || !self.is_privileged()
                || self.mode == CpuMode::Handler
                || self.control.0 == val & 0b11
        );
    }

    /// `mrs rd, special` — B5-675.
    pub fn mrs(&mut self, rd: Gpr, reg: SpecialRegister) {
        let v = match reg {
            SpecialRegister::Msp => self.msp,
            SpecialRegister::Psp => self.psp,
            SpecialRegister::Control => self.control.0,
            SpecialRegister::Ipsr => self.ipsr(),
            SpecialRegister::Lr => self.lr,
        };
        self.set_gpr(rd, v);
        self.trace.push("mrs");
        ensures!(
            "mrs",
            reg != SpecialRegister::Ipsr || self.gpr(rd) == (self.psr & 0x1FF)
        );
    }

    /// `isb` — A7-236: instruction synchronization barrier. In the model it
    /// is the sequencing point after which a CONTROL write is architecturally
    /// visible; the trace entry lets handler-shape checks demand it.
    pub fn isb(&mut self, _opt: Option<IsbOpt>) {
        self.trace.push("isb");
    }

    /// `dsb` — A7-233: data synchronization barrier.
    pub fn dsb(&mut self) {
        self.trace.push("dsb");
    }

    /// `ldr rt, [rn, #imm]` — A7-246.
    pub fn ldr_imm(&mut self, rt: Gpr, rn: Gpr, imm: u32) {
        let addr = self.gpr(rn).wrapping_add(imm);
        requires!("ldr_imm", addr.is_multiple_of(4));
        requires!("ldr_imm", self.is_valid_ram_addr(addr));
        let v = self.mem.read(addr);
        self.set_gpr(rt, v);
        self.trace.push("ldr");
        ensures!("ldr_imm", self.gpr(rt) == self.mem.read(addr));
    }

    /// `str rt, [rn, #imm]` — A7-428.
    pub fn str_imm(&mut self, rt: Gpr, rn: Gpr, imm: u32) {
        let addr = self.gpr(rn).wrapping_add(imm);
        requires!("str_imm", addr.is_multiple_of(4));
        requires!("str_imm", self.is_valid_ram_addr(addr));
        let v = self.gpr(rt);
        self.mem.write(addr, v);
        self.trace.push("str");
        ensures!("str_imm", self.mem.read(addr) == self.gpr(rt));
    }

    /// `stmdb rn!, {regs}` — A7-422: store-multiple decrement-before with
    /// writeback. This is Tock's `stmdb sp!, {r4-r11}` kernel-register save.
    pub fn stmdb_wback(&mut self, rn: Gpr, regs: &[Gpr]) {
        let base = self.gpr(rn);
        let new_base = base.wrapping_sub(4 * regs.len() as u32);
        requires!("stmdb_wback", self.is_valid_sp_addr(new_base));
        let mut addr = new_base;
        // Lowest-numbered register at lowest address (A7-422).
        let mut sorted: Vec<Gpr> = regs.to_vec();
        sorted.sort_unstable();
        for r in &sorted {
            self.mem.write(addr, self.gpr(*r));
            addr = addr.wrapping_add(4);
        }
        self.set_gpr(rn, new_base);
        self.trace.push("stmdb");
        ensures!("stmdb_wback", self.gpr(rn) == new_base);
    }

    /// `ldmia rn!, {regs}` — A7-242: load-multiple increment-after with
    /// writeback. Tock's `ldmia sp!, {r4-r11}` kernel-register restore.
    pub fn ldmia_wback(&mut self, rn: Gpr, regs: &[Gpr]) {
        let base = self.gpr(rn);
        requires!("ldmia_wback", self.is_valid_ram_addr(base));
        let mut addr = base;
        let mut sorted: Vec<Gpr> = regs.to_vec();
        sorted.sort_unstable();
        for r in &sorted {
            let v = self.mem.read(addr);
            self.set_gpr(*r, v);
            addr = addr.wrapping_add(4);
        }
        self.set_gpr(rn, addr);
        self.trace.push("ldmia");
        ensures!(
            "ldmia_wback",
            self.gpr(rn) == base.wrapping_add(4 * regs.len() as u32)
        );
    }

    /// Store-multiple to an address in a register *without* writeback
    /// (`stmia rn, {regs}`) — used to save process registers into the
    /// stored-state buffer.
    pub fn stmia(&mut self, rn: Gpr, regs: &[Gpr]) {
        let base = self.gpr(rn);
        requires!("stmia", self.is_valid_ram_addr(base));
        let mut addr = base;
        let mut sorted: Vec<Gpr> = regs.to_vec();
        sorted.sort_unstable();
        for r in &sorted {
            self.mem.write(addr, self.gpr(*r));
            addr = addr.wrapping_add(4);
        }
        self.trace.push("stmia");
    }

    /// Load-multiple from an address in a register without writeback.
    pub fn ldmia(&mut self, rn: Gpr, regs: &[Gpr]) {
        let base = self.gpr(rn);
        requires!("ldmia", self.is_valid_ram_addr(base));
        let mut addr = base;
        let mut sorted: Vec<Gpr> = regs.to_vec();
        sorted.sort_unstable();
        for r in &sorted {
            let v = self.mem.read(addr);
            self.set_gpr(*r, v);
            addr = addr.wrapping_add(4);
        }
        self.trace.push("ldmia_nb");
    }

    /// `add rd, rn, #imm` — A7-189 (wrapping, flags not modelled).
    pub fn add_imm(&mut self, rd: Gpr, rn: Gpr, imm: u32) {
        let v = self.gpr(rn).wrapping_add(imm);
        self.set_gpr(rd, v);
        self.trace.push("add");
    }

    /// `sub rd, rn, #imm` — A7-448.
    pub fn sub_imm(&mut self, rd: Gpr, rn: Gpr, imm: u32) {
        let v = self.gpr(rn).wrapping_sub(imm);
        self.set_gpr(rd, v);
        self.trace.push("sub");
    }

    /// `push {regs}` — A7-350: store-multiple decrement-before on the
    /// *active* stack pointer (Tock's `push {r4-r11}` kernel-register save).
    pub fn push(&mut self, regs: &[Gpr]) {
        let new_sp = self.active_sp().wrapping_sub(4 * regs.len() as u32);
        requires!("push", self.is_valid_sp_addr(new_sp));
        let mut sorted: Vec<Gpr> = regs.to_vec();
        sorted.sort_unstable();
        let mut addr = new_sp;
        for r in &sorted {
            self.mem.write(addr, self.gpr(*r));
            addr = addr.wrapping_add(4);
        }
        self.set_active_sp(new_sp);
        self.trace.push("push");
        ensures!("push", self.active_sp() == new_sp);
    }

    /// `pop {regs}` — A7-348: load-multiple increment-after on the active
    /// stack pointer.
    pub fn pop(&mut self, regs: &[Gpr]) {
        let base = self.active_sp();
        requires!("pop", self.is_valid_ram_addr(base));
        let mut sorted: Vec<Gpr> = regs.to_vec();
        sorted.sort_unstable();
        let mut addr = base;
        for r in &sorted {
            let v = self.mem.read(addr);
            self.set_gpr(*r, v);
            addr = addr.wrapping_add(4);
        }
        self.set_active_sp(addr);
        self.trace.push("pop");
        ensures!(
            "pop",
            self.active_sp() == base.wrapping_add(4 * regs.len() as u32)
        );
    }

    /// `cpsid i` — B5-672: disable interrupts (modelled as a trace event;
    /// FluxArm reasons about single interrupt arrivals, not nesting).
    pub fn cpsid_i(&mut self) {
        requires!("cpsid_i", self.is_privileged());
        self.trace.push("cpsid");
    }

    /// `cpsie i` — B5-672: enable interrupts.
    pub fn cpsie_i(&mut self) {
        requires!("cpsie_i", self.is_privileged());
        self.trace.push("cpsie");
    }

    /// `svc #imm` — B2-281: supervisor call. Latches the immediate (which
    /// real handlers recover from the instruction stream) and takes the
    /// SVCall exception; the caller then runs its SVC handler and the
    /// handler's exception return.
    pub fn svc(&mut self, imm: u8) {
        requires!("svc", self.mode == crate::cpu::CpuMode::Thread);
        self.last_svc_imm = Some(imm);
        self.trace.push("svc");
        self.exception_entry(crate::exceptions::ExceptionNumber::SvCall);
        ensures!("svc", self.mode_is_handler());
        ensures!("svc", self.ipsr() == 11);
    }

    /// The paper's `pseudo_ldr_special`: load a constant into a special
    /// register (used to place `EXC_RETURN` values in LR).
    pub fn pseudo_ldr_special(&mut self, reg: SpecialRegister, value: u32) {
        requires!("pseudo_ldr_special", reg == SpecialRegister::Lr);
        self.lr = value;
        self.trace.push("ldr_special");
        ensures!("pseudo_ldr_special", self.lr == value);
    }

    /// The paper's `get_value_from_special_reg`.
    pub fn get_value_from_special_reg(&self, reg: SpecialRegister) -> u32 {
        match reg {
            SpecialRegister::Msp => self.msp,
            SpecialRegister::Psp => self.psp,
            SpecialRegister::Control => self.control.0,
            SpecialRegister::Ipsr => self.ipsr(),
            SpecialRegister::Lr => self.lr,
        }
    }

    /// `bx rm` to a regular code address — A7-205. Exception returns
    /// (`bx` to `0xFFFF_FFxx`) are handled by `Arm7::exception_return` in
    /// [`crate::exceptions`].
    pub fn bx(&mut self, target: u32) {
        requires!("bx", target < 0xF000_0000);
        self.pc = target & !1; // Clear the Thumb bit.
        self.trace.push("bx");
        ensures!("bx", self.pc == target & !1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_contracts::{take_violations, with_mode, Mode};
    use tt_hw::AddrRange;

    fn cpu() -> Arm7 {
        Arm7::new(
            AddrRange::new(0x2000_0000, 0x2000_1000),
            AddrRange::new(0x2000_1000, 0x2000_3000),
        )
    }

    #[test]
    fn movw_movt_build_32bit_constant() {
        let mut c = cpu();
        c.movw_imm(Gpr::R0, 0xBEEF);
        c.movt_imm(Gpr::R0, 0xDEAD);
        assert_eq!(c.gpr(Gpr::R0), 0xDEAD_BEEF);
    }

    #[test]
    fn movw_rejects_oversized_immediate() {
        with_mode(Mode::Observe, || {
            let mut c = cpu();
            c.movw_imm(Gpr::R0, 0x1_0000);
        });
        assert_eq!(take_violations().len(), 1);
    }

    #[test]
    fn msr_control_switches_privilege_in_thread_mode() {
        let mut c = cpu();
        c.movw_imm(Gpr::R0, 0b11);
        c.msr(SpecialRegister::Control, Gpr::R0);
        assert!(c.control.npriv());
        assert!(c.control.spsel());
        assert!(!c.is_privileged());
    }

    #[test]
    fn msr_control_ignored_when_unprivileged() {
        let mut c = cpu();
        c.movw_imm(Gpr::R0, 0b01);
        c.msr(SpecialRegister::Control, Gpr::R0); // Drop to unprivileged.
        c.movw_imm(Gpr::R1, 0b00);
        c.msr(SpecialRegister::Control, Gpr::R1); // Attempt to re-elevate.
        assert!(
            c.control.npriv(),
            "unprivileged code must not regain privilege via CONTROL"
        );
    }

    #[test]
    fn msr_spsel_write_ignored_in_handler_mode() {
        let mut c = cpu();
        c.mode = crate::cpu::CpuMode::Handler;
        c.movw_imm(Gpr::R0, 0b10);
        c.msr(SpecialRegister::Control, Gpr::R0);
        assert!(!c.control.spsel(), "SPSEL writes ignored in handler mode");
    }

    #[test]
    fn msr_rejects_ipsr_target() {
        with_mode(Mode::Observe, || {
            let mut c = cpu();
            c.msr(SpecialRegister::Ipsr, Gpr::R0);
        });
        assert!(!take_violations().is_empty());
    }

    #[test]
    fn msr_sp_requires_valid_ram_addr() {
        with_mode(Mode::Observe, || {
            let mut c = cpu();
            c.movw_imm(Gpr::R0, 0x4000); // 0x4000 is outside modelled RAM.
            c.msr(SpecialRegister::Psp, Gpr::R0);
        });
        assert!(take_violations()
            .iter()
            .any(|v| v.site == "msr" && v.predicate.contains("is_valid_sp_addr")));
    }

    #[test]
    fn msr_psp_sets_psp() {
        let mut c = cpu();
        c.set_gpr(Gpr::R2, 0x2000_2000);
        c.msr(SpecialRegister::Psp, Gpr::R2);
        assert_eq!(c.psp, 0x2000_2000);
    }

    #[test]
    fn mrs_reads_back_specials() {
        let mut c = cpu();
        c.psr = 0x0000_000F; // IPSR = 15 (SysTick).
        c.mrs(Gpr::R3, SpecialRegister::Ipsr);
        assert_eq!(c.gpr(Gpr::R3), 15);
        c.mrs(Gpr::R4, SpecialRegister::Msp);
        assert_eq!(c.gpr(Gpr::R4), c.msp);
    }

    #[test]
    fn ldr_str_roundtrip() {
        let mut c = cpu();
        c.set_gpr(Gpr::R1, 0x2000_2000);
        c.set_gpr(Gpr::R0, 0x1234_5678);
        c.str_imm(Gpr::R0, Gpr::R1, 8);
        c.set_gpr(Gpr::R2, 0);
        c.ldr_imm(Gpr::R2, Gpr::R1, 8);
        assert_eq!(c.gpr(Gpr::R2), 0x1234_5678);
    }

    #[test]
    fn ldr_rejects_invalid_address() {
        with_mode(Mode::Observe, || {
            let mut c = cpu();
            c.set_gpr(Gpr::R1, 0x9000_0000);
            c.ldr_imm(Gpr::R0, Gpr::R1, 0);
        });
        assert!(!take_violations().is_empty());
    }

    #[test]
    fn stmdb_ldmia_roundtrip_callee_saved() {
        let mut c = cpu();
        for (i, r) in Gpr::CALLEE_SAVED.iter().enumerate() {
            c.set_gpr(*r, 0x100 + i as u32);
        }
        c.set_gpr(Gpr::R0, c.msp);
        c.stmdb_wback(Gpr::R0, &Gpr::CALLEE_SAVED);
        let sp_after_push = c.gpr(Gpr::R0);
        assert_eq!(sp_after_push, c.msp - 32);
        // Clobber and restore.
        for r in Gpr::CALLEE_SAVED {
            c.set_gpr(r, 0);
        }
        c.ldmia_wback(Gpr::R0, &Gpr::CALLEE_SAVED);
        for (i, r) in Gpr::CALLEE_SAVED.iter().enumerate() {
            assert_eq!(c.gpr(*r), 0x100 + i as u32);
        }
        assert_eq!(c.gpr(Gpr::R0), sp_after_push + 32);
    }

    #[test]
    fn stm_uses_ascending_register_order() {
        let mut c = cpu();
        c.set_gpr(Gpr::R4, 44);
        c.set_gpr(Gpr::R5, 55);
        c.set_gpr(Gpr::R0, 0x2000_2000);
        // Pass registers in descending order; memory layout must still be
        // lowest register at lowest address.
        c.stmia(Gpr::R0, &[Gpr::R5, Gpr::R4]);
        assert_eq!(c.mem.read(0x2000_2000), 44);
        assert_eq!(c.mem.read(0x2000_2004), 55);
    }

    #[test]
    fn add_sub_wrap() {
        let mut c = cpu();
        c.set_gpr(Gpr::R1, u32::MAX);
        c.add_imm(Gpr::R0, Gpr::R1, 1);
        assert_eq!(c.gpr(Gpr::R0), 0);
        c.sub_imm(Gpr::R2, Gpr::R0, 1);
        assert_eq!(c.gpr(Gpr::R2), u32::MAX);
    }

    #[test]
    fn bx_clears_thumb_bit() {
        let mut c = cpu();
        c.bx(0x0000_1235);
        assert_eq!(c.pc, 0x0000_1234);
    }

    #[test]
    fn bx_rejects_exc_return_values() {
        with_mode(Mode::Observe, || {
            let mut c = cpu();
            c.bx(0xFFFF_FFF9);
        });
        assert!(!take_violations().is_empty());
    }

    #[test]
    fn cps_requires_privilege() {
        with_mode(Mode::Observe, || {
            let mut c = cpu();
            c.control = Control(0b01);
            c.cpsid_i();
        });
        assert_eq!(take_violations().len(), 1);
    }

    #[test]
    fn pseudo_ldr_special_only_targets_lr() {
        let mut c = cpu();
        c.pseudo_ldr_special(SpecialRegister::Lr, 0xFFFF_FFF9);
        assert_eq!(c.lr, 0xFFFF_FFF9);
        with_mode(Mode::Observe, || {
            c.pseudo_ldr_special(SpecialRegister::Msp, 0);
        });
        assert_eq!(take_violations().len(), 1);
    }

    #[test]
    fn svc_latches_immediate_and_takes_exception() {
        let mut c = cpu();
        c.svc(0xff);
        assert_eq!(c.last_svc_imm, Some(0xff));
        assert!(c.mode_is_handler());
        assert_eq!(c.ipsr(), 11);
        // A handler can dispatch on the service number.
        let imm = c.last_svc_imm.take().unwrap();
        assert_eq!(imm, 0xff);
    }

    #[test]
    fn svc_from_handler_mode_is_rejected() {
        with_mode(Mode::Observe, || {
            let mut c = cpu();
            c.mode = crate::cpu::CpuMode::Handler;
            c.svc(4);
        });
        assert!(take_violations().iter().any(|v| v.site == "svc"));
    }

    #[test]
    fn trace_records_instruction_shapes() {
        let mut c = cpu();
        c.movw_imm(Gpr::R0, 0);
        c.msr(SpecialRegister::Control, Gpr::R0);
        c.isb(Some(IsbOpt::Sys));
        assert_eq!(c.trace, vec!["movw", "msr", "isb"]);
    }
}
