//! The modelled context switch and whole-control-flow verification
//! (paper Fig. 8, right).
//!
//! `switch_to_user_part1` models how Tock enters a process,
//! [`Arm7::process`] models an arbitrary process execution (a havoc that
//! erases everything known about registers and process memory),
//! [`Arm7::preempt`] models the hardware taking an exception, and
//! `switch_to_user_part2` models the kernel-side epilogue. The whole flow
//! is checked by [`cpu_state_correct`]: callee-saved registers and the
//! kernel stack pointer are preserved, and the CPU lands back in privileged
//! thread mode.

use crate::cpu::{Arm7, Gpr, SpecialRegister};
use crate::exceptions::{ExceptionNumber, FRAME_BYTES};
use crate::handlers::IsrFn;
use crate::insns::IsbOpt;
use tt_contracts::{ensures, requires};

/// The kernel-held stored state of a process: callee-saved registers and
/// the process stack pointer (Tock's `CortexMStoredState`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredState {
    /// Saved r4–r11.
    pub regs: [u32; 8],
    /// Saved process stack pointer (points at a staged exception frame).
    pub psp: u32,
}

impl StoredState {
    /// Stages a brand-new process: writes an initial exception frame at the
    /// top of the process stack so the first `exception_return` "returns"
    /// into the process entry point, exactly how Tock bootstraps a process.
    pub fn new_for_process(cpu: &mut Arm7, entry_pc: u32, stack_top: u32) -> Self {
        requires!(
            "StoredState::new_for_process",
            cpu.is_valid_sp_addr(stack_top) && stack_top.is_multiple_of(8)
        );
        let frame_ptr = stack_top - FRAME_BYTES;
        requires!(
            "StoredState::new_for_process",
            cpu.process_ram.contains(frame_ptr as usize)
        );
        // r0-r3, r12, lr zeroed; pc = entry; psr = Thumb bit set.
        for i in 0..6u32 {
            cpu.mem.write(frame_ptr + 4 * i, 0);
        }
        cpu.mem.write(frame_ptr + 24, entry_pc);
        cpu.mem.write(frame_ptr + 28, 0x0100_0000);
        Self {
            regs: [0; 8],
            psp: frame_ptr,
        }
    }
}

/// The paper's `cpu_state_correct(new, old)`: the machine invariants the
/// kernel needs across a full kernel→process→kernel round trip.
pub fn cpu_state_correct(new: &Arm7, old: &Arm7) -> bool {
    let callee_saved_preserved = Gpr::CALLEE_SAVED.iter().all(|r| new.gpr(*r) == old.gpr(*r));
    callee_saved_preserved
        && new.msp == old.msp
        && new.mode_is_thread_privileged()
        && !new.control.spsel()
}

impl Arm7 {
    /// Kernel→process half of the context switch (Tock `switch_to_user`
    /// up to and including the `svc`).
    ///
    /// Saves the kernel's callee-saved registers on MSP, stages the process
    /// stack pointer and registers, and takes the SVC exception whose
    /// handler drops privilege and resumes the process from its staged
    /// frame on PSP.
    pub fn switch_to_user_part1(&mut self, state: &StoredState, svc_handler: IsrFn) {
        requires!("switch_to_user_part1", self.mode_is_thread_privileged());
        requires!("switch_to_user_part1", !self.control.spsel());
        requires!("switch_to_user_part1", self.is_valid_sp_addr(state.psp));

        // push {r4-r11}: save kernel registers on the kernel stack.
        self.push(&Gpr::CALLEE_SAVED);

        // msr psp, r0: install the process stack pointer.
        self.set_gpr(Gpr::R0, state.psp);
        self.msr(SpecialRegister::Psp, Gpr::R0);

        // Restore the process's callee-saved registers from stored state
        // (Tock: `ldmia r1!, {r4-r11}` from the stored-state buffer).
        for (i, r) in Gpr::CALLEE_SAVED.iter().enumerate() {
            self.set_gpr(*r, state.regs[i]);
        }
        self.trace.push("restore_process_regs");

        // svc 0xff: trap into the SVC handler, which configures CONTROL and
        // performs the exception return into the process. 0xff is Tock's
        // context-switch service number.
        self.svc(0xff);
        let exc_return = svc_handler(self);
        self.exception_return(exc_return);
        ensures!(
            "switch_to_user_part1",
            self.mode == crate::cpu::CpuMode::Thread
        );
    }

    /// Models an arbitrary process execution (paper: "erases all the
    /// information currently known about the state of the hardware
    /// registers and the process region of memory").
    ///
    /// The `requires!` here *is* the isolation obligation: if the context
    /// switch delivered us to process code still privileged, verification
    /// fails at this call — the paper's missed-mode-switch bug.
    pub fn process(&mut self, seed: u32) {
        requires!("process", self.mode_is_thread_unprivileged());
        requires!("process", self.control.spsel());
        let mut x = seed | 1;
        let mut next = |modulus: u32| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            x % modulus.max(1)
        };
        // Havoc every general register and the condition flags.
        for r in Gpr::ALL {
            let v = next(u32::MAX);
            self.set_gpr(r, v);
        }
        self.psr = (next(16) << 28) | (self.psr & 0x01FF_FFFF);
        // Havoc the process's own RAM.
        let ram = self.process_ram;
        self.mem.havoc_range(ram, seed);
        // Move PSP anywhere in the process stack with room for a frame,
        // 8-byte aligned as AAPCS requires.
        let span = (ram.len() as u32).saturating_sub(2 * FRAME_BYTES);
        let psp = ram.start as u32 + FRAME_BYTES + (next(span.max(8)) & !7);
        self.psp = psp;
        self.trace.push("process_run");
        ensures!("process", self.process_ram.contains(self.psp as usize));
    }

    /// Models a hardware preemption of the running thread: exception entry,
    /// the given top-half handler, and the handler's exception return.
    pub fn preempt(&mut self, exception: ExceptionNumber, isr: IsrFn) {
        requires!("preempt", self.mode == crate::cpu::CpuMode::Thread);
        self.exception_entry(exception);
        let exc_return = isr(self);
        self.exception_return(exc_return);
    }

    /// Process→kernel half of the context switch (Tock `switch_to_user`
    /// after the `svc` returns): saves the process's callee-saved registers
    /// and PSP into stored state and restores the kernel's registers.
    pub fn switch_to_user_part2(&mut self, state: &mut StoredState) {
        requires!("switch_to_user_part2", self.mode_is_thread_privileged());
        // Save process registers (Tock: `stmia r1!, {r4-r11}`).
        for (i, r) in Gpr::CALLEE_SAVED.iter().enumerate() {
            state.regs[i] = self.gpr(*r);
        }
        self.mrs(Gpr::R2, SpecialRegister::Psp);
        state.psp = self.gpr(Gpr::R2);
        self.trace.push("save_process_regs");

        // pop {r4-r11}: restore kernel registers from the kernel stack.
        self.pop(&Gpr::CALLEE_SAVED);
        self.isb(Some(IsbOpt::Sys));
        ensures!("switch_to_user_part2", self.mode_is_thread_privileged());
    }

    /// The paper's `control_flow_kernel_to_kernel` (Fig. 8, right): the
    /// complete kernel→process→kernel round trip, with the machine
    /// invariants checked as a postcondition.
    pub fn control_flow_kernel_to_kernel(
        &mut self,
        state: &mut StoredState,
        exception: ExceptionNumber,
        svc_handler: IsrFn,
        preempt_isr: IsrFn,
        seed: u32,
    ) {
        requires!(
            "control_flow_kernel_to_kernel",
            exception.number() >= 11 && self.mode_is_thread_privileged()
        );
        let old = self.clone();
        // Context switch asm.
        self.switch_to_user_part1(state, svc_handler);
        // Run a process.
        self.process(seed);
        // Preempt the process with an exception.
        self.preempt(exception, preempt_isr);
        // Run the rest of the context switch.
        self.switch_to_user_part2(state);
        ensures!(
            "control_flow_kernel_to_kernel",
            cpu_state_correct(self, &old)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handlers::{
        svc_handler_to_process, svc_handler_to_process_buggy, sys_tick_isr, sys_tick_isr_buggy,
    };
    use tt_contracts::{take_violations, with_mode, Mode};
    use tt_hw::AddrRange;

    fn kernel_cpu() -> (Arm7, StoredState) {
        let mut cpu = Arm7::new(
            AddrRange::new(0x2000_0000, 0x2000_1000),
            AddrRange::new(0x2000_1000, 0x2000_3000),
        );
        for (i, r) in Gpr::CALLEE_SAVED.iter().enumerate() {
            cpu.set_gpr(*r, K_BASE + i as u32);
        }
        let state = StoredState::new_for_process(&mut cpu, 0x0000_4000, 0x2000_3000);
        (cpu, state)
    }

    const K_BASE: u32 = 0x4400;

    #[test]
    fn full_round_trip_preserves_kernel_state() {
        let (mut cpu, mut state) = kernel_cpu();
        let old = cpu.clone();
        cpu.control_flow_kernel_to_kernel(
            &mut state,
            ExceptionNumber::SysTick,
            svc_handler_to_process,
            sys_tick_isr,
            0xABCD,
        );
        assert!(cpu_state_correct(&cpu, &old));
        assert_eq!(tt_contracts::violation_count(), 0);
    }

    #[test]
    fn round_trip_saves_process_state() {
        let (mut cpu, mut state) = kernel_cpu();
        cpu.control_flow_kernel_to_kernel(
            &mut state,
            ExceptionNumber::SysTick,
            svc_handler_to_process,
            sys_tick_isr,
            7,
        );
        // The process havocked its registers; the saved state must reflect
        // the process's values, not the kernel's.
        assert!(cpu.process_ram.contains(state.psp as usize));
    }

    #[test]
    fn repeated_round_trips_stay_correct() {
        let (mut cpu, mut state) = kernel_cpu();
        let old = cpu.clone();
        for seed in 0..16u32 {
            cpu.control_flow_kernel_to_kernel(
                &mut state,
                ExceptionNumber::SysTick,
                svc_handler_to_process,
                sys_tick_isr,
                seed,
            );
            assert!(cpu_state_correct(&cpu, &old), "seed {seed}");
        }
    }

    #[test]
    fn buggy_systick_fails_cpu_state_correct() {
        let violations = with_mode(Mode::Observe, || {
            let (mut cpu, mut state) = kernel_cpu();
            cpu.control_flow_kernel_to_kernel(
                &mut state,
                ExceptionNumber::SysTick,
                svc_handler_to_process,
                sys_tick_isr_buggy,
                42,
            );
            take_violations()
        });
        assert!(
            violations
                .iter()
                .any(|v| v.site == "control_flow_kernel_to_kernel"),
            "expected cpu_state_correct refutation, got {violations:?}"
        );
    }

    #[test]
    fn buggy_svc_fails_process_isolation_precondition() {
        let violations = with_mode(Mode::Observe, || {
            let (mut cpu, mut state) = kernel_cpu();
            cpu.control_flow_kernel_to_kernel(
                &mut state,
                ExceptionNumber::SysTick,
                svc_handler_to_process_buggy,
                sys_tick_isr,
                42,
            );
            take_violations()
        });
        assert!(
            violations.iter().any(|v| v.site == "process"),
            "expected privileged-process refutation, got {violations:?}"
        );
    }

    #[test]
    fn part1_lands_in_unprivileged_process_context() {
        let (mut cpu, state) = kernel_cpu();
        cpu.switch_to_user_part1(&state, svc_handler_to_process);
        assert!(cpu.mode_is_thread_unprivileged());
        assert!(cpu.control.spsel());
        assert_eq!(cpu.pc, 0x0000_4000, "resumed at the staged entry point");
    }

    #[test]
    fn part1_requires_privileged_kernel_thread() {
        let violations = with_mode(Mode::Observe, || {
            let (mut cpu, state) = kernel_cpu();
            cpu.control = crate::cpu::Control(0b01);
            cpu.switch_to_user_part1(&state, svc_handler_to_process);
            take_violations()
        });
        assert!(violations.iter().any(|v| v.site == "switch_to_user_part1"));
    }

    #[test]
    fn new_process_frame_is_staged_at_stack_top() {
        let (cpu, state) = kernel_cpu();
        let frame = cpu.peek_frame(state.psp);
        assert_eq!(frame.pc, 0x0000_4000);
        assert_eq!(frame.psr, 0x0100_0000);
        assert_eq!(state.psp, 0x2000_3000 - 32);
    }

    #[test]
    fn preempt_requires_thread_mode() {
        let violations = with_mode(Mode::Observe, || {
            let (mut cpu, _) = kernel_cpu();
            cpu.mode = crate::cpu::CpuMode::Handler;
            cpu.preempt(ExceptionNumber::SysTick, sys_tick_isr);
            take_violations()
        });
        assert!(violations.iter().any(|v| v.site == "preempt"));
    }
}
