//! Deterministic cycle cost model.
//!
//! The paper instruments Tock and TickTock process-abstraction methods with
//! a CPU cycle counter on the NRF52840 (§6.2, Fig. 11). Our substrate is a
//! simulator, so we substitute a deterministic cost model: each primitive the
//! kernel performs charges a fixed cycle cost to a thread-local counter.
//! Absolute numbers differ from silicon, but the *algorithmic* differences
//! the paper measures — recomputation, redundant MPU reconfiguration, loops
//! vs bitwise arithmetic — show up directly.
//!
//! Costs approximate a Cortex-M4: single-cycle ALU, 2-cycle loads/stores
//! (with flash wait states folded in), 2-cycle taken branches, 12-cycle
//! hardware divide worst case, and slower MMIO writes to the MPU's
//! peripheral bus.

use tt_contracts::simctx;

/// Cycle cost of one primitive operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cost {
    /// Register-to-register ALU op (add, sub, and, shift): 1 cycle.
    Alu,
    /// Compare + conditional branch: 2 cycles (pipeline refill).
    Branch,
    /// Memory load: 2 cycles.
    Load,
    /// Memory store: 2 cycles.
    Store,
    /// Integer divide / modulo: 12 cycles (Cortex-M4 worst case).
    Div,
    /// MMIO write to a peripheral register (MPU RBAR/RASR, PMP CSRs): 4 cycles.
    MmioWrite,
    /// MMIO read from a peripheral register: 3 cycles.
    MmioRead,
    /// Function call + return overhead: 4 cycles.
    Call,
    /// Exception entry or return (hardware stacking): 12 cycles.
    Exception,
    /// Raw cycle count for modelled code not broken into primitives.
    Raw(u64),
}

impl Cost {
    /// Returns the cycle cost of the primitive.
    pub const fn cycles(self) -> u64 {
        match self {
            Cost::Alu => 1,
            Cost::Branch => 2,
            Cost::Load => 2,
            Cost::Store => 2,
            Cost::Div => 12,
            Cost::MmioWrite => 4,
            Cost::MmioRead => 3,
            Cost::Call => 4,
            Cost::Exception => 12,
            Cost::Raw(n) => n,
        }
    }
}

/// Charges one primitive to the thread-local cycle counter.
///
/// One [`simctx::SimContext`] access: the enable flag and the counter
/// live in the same thread-local struct, so the disabled path is a
/// single flag load.
#[inline]
pub fn charge(cost: Cost) {
    simctx::with(|c| {
        if c.cycles_enabled.get() {
            c.cycles.set(c.cycles.get().wrapping_add(cost.cycles()));
        }
    });
}

/// Charges `n` repetitions of a primitive.
#[inline]
pub fn charge_n(cost: Cost, n: u64) {
    simctx::with(|c| {
        if c.cycles_enabled.get() {
            c.cycles
                .set(c.cycles.get().wrapping_add(cost.cycles().wrapping_mul(n)));
        }
    });
}

/// Returns the current cycle count.
#[inline]
pub fn now() -> u64 {
    simctx::with(|c| c.cycles.get())
}

/// Resets the counter to zero.
pub fn reset() {
    simctx::with(|c| c.cycles.set(0));
}

/// Sets the counter to an absolute value. Used by `tt_kernel::snapshot`
/// to rewind the clock to its capture point, so cycle-derived values
/// (sensor readings, recovery-latency spans) replay exactly as they
/// would on a fresh boot.
pub fn set_now(counter: u64) {
    simctx::with(|c| c.cycles.set(counter));
}

/// Enables or disables accounting (returns the previous state).
pub fn set_enabled(enabled: bool) -> bool {
    simctx::with(|c| c.cycles_enabled.replace(enabled))
}

/// Measures the cycles charged while running `f`.
///
/// Nested measurements compose: the inner span's cycles are also part of the
/// outer span, exactly like reading a hardware cycle counter twice.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = now();
    let value = f();
    (value, now() - start)
}

/// Capacity reserved for the per-method record buffer the first time
/// recording is enabled on a thread: one Fig. 11 run of the 21 release
/// tests plus the stress workload records a few thousand spans, so this
/// never grows in steady state.
const METHOD_RECORD_CAPACITY: usize = 8_192;

thread_local! {
    // The record buffer cannot join the scalar-only `SimContext`; it is
    // wrapped in `ManuallyDrop` so the thread-local carries no `Drop`
    // glue and keeps the const-init fast access path (see
    // `tt_hw::trace::RING` for the full rationale). Threads release the
    // storage explicitly via [`release_thread_buffers`]; the pool
    // workers in `tt_kernel::pool` do so before exiting.
    static METHOD_RECORDS: std::cell::RefCell<std::mem::ManuallyDrop<Vec<(&'static str, u64)>>> =
        const { std::cell::RefCell::new(std::mem::ManuallyDrop::new(Vec::new())) };
}

/// Frees this thread's method-record buffer. Long-lived threads that
/// enabled recording should call this before exiting; the work-stealing
/// pool workers do. Pending records are discarded.
pub fn release_thread_buffers() {
    METHOD_RECORDS.with(|m| {
        // Assigning a fresh `Vec` drops the old buffer normally —
        // `ManuallyDrop` only suppresses the (never-run) TLS destructor.
        **m.borrow_mut() = Vec::new();
    });
}

/// Enables or disables per-method cycle recording (returns previous state).
///
/// This is the reproduction of the paper's §6.2 instrumentation: "we
/// instrumented key methods implemented by the TickTock and Tock process
/// abstractions to count the number of CPU cycles spent in each".
/// Enabling pre-sizes the record buffer so steady-state recording never
/// reallocates.
pub fn set_recording(enabled: bool) -> bool {
    if enabled {
        METHOD_RECORDS.with(|m| {
            let mut records = m.borrow_mut();
            let len = records.len();
            if records.capacity() < METHOD_RECORD_CAPACITY {
                records.reserve(METHOD_RECORD_CAPACITY - len);
            }
        });
    }
    simctx::with(|c| c.recording.replace(enabled))
}

/// Records one timed invocation of an instrumented method. A single
/// [`simctx::SimContext`] flag load when recording is off; the buffer is
/// touched only when it is on.
#[inline]
pub fn record_method(name: &'static str, cycles: u64) {
    if simctx::with(|c| c.recording.get()) {
        METHOD_RECORDS.with(|m| m.borrow_mut().push((name, cycles)));
    }
}

/// Runs `f`, recording its cycle span under `name` when recording is on.
pub fn instrument<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let (value, span) = measure(f);
    record_method(name, span);
    value
}

/// Drains the per-method records collected on this thread.
///
/// The thread-local buffer keeps its capacity (it is cleared, not
/// `mem::take`n), so repeated instrumented runs on one thread reuse one
/// allocation instead of re-growing the buffer every run — the same
/// reuse discipline as `CortexMpu::drain_write_order`.
pub fn take_method_records() -> Vec<(&'static str, u64)> {
    METHOD_RECORDS.with(|m| {
        let mut records = m.borrow_mut();
        let out = records.to_vec();
        records.clear();
        out
    })
}

/// A running mean over benchmark samples, as the paper reports ("average of
/// three runs of the 21 tests").
#[derive(Debug, Clone, Default)]
pub struct CycleStats {
    samples: Vec<u64>,
}

impl CycleStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, cycles: u64) {
        self.samples.push(cycles);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean cycles across samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
        }
    }

    /// Minimum sample (0 if empty).
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Maximum sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        reset();
        charge(Cost::Alu);
        charge(Cost::Div);
        charge_n(Cost::Load, 3);
        assert_eq!(now(), 1 + 12 + 6);
        reset();
        assert_eq!(now(), 0);
    }

    #[test]
    fn measure_returns_span() {
        reset();
        charge(Cost::Alu);
        let ((), span) = measure(|| {
            charge(Cost::MmioWrite);
            charge(Cost::MmioWrite);
        });
        assert_eq!(span, 8);
        assert_eq!(now(), 9);
    }

    #[test]
    fn nested_measures_compose() {
        reset();
        let ((), outer) = measure(|| {
            charge(Cost::Alu);
            let ((), inner) = measure(|| charge(Cost::Branch));
            assert_eq!(inner, 2);
        });
        assert_eq!(outer, 3);
    }

    #[test]
    fn disabled_counter_charges_nothing() {
        reset();
        let prev = set_enabled(false);
        charge(Cost::Exception);
        set_enabled(prev);
        assert_eq!(now(), 0);
    }

    #[test]
    fn stats_mean_min_max() {
        let mut s = CycleStats::new();
        assert_eq!(s.mean(), 0.0);
        s.record(10);
        s.record(20);
        s.record(30);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 20.0);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 30);
    }

    #[test]
    fn raw_cost_passthrough() {
        assert_eq!(Cost::Raw(17).cycles(), 17);
    }

    #[test]
    fn method_recording_captures_instrumented_spans() {
        reset();
        let prev = set_recording(true);
        let v = instrument("brk", || {
            charge(Cost::Div);
            42
        });
        set_recording(prev);
        assert_eq!(v, 42);
        let records = take_method_records();
        assert_eq!(records, vec![("brk", 12)]);
        assert!(take_method_records().is_empty());
    }

    #[test]
    fn recording_disabled_by_default() {
        reset();
        instrument("x", || charge(Cost::Alu));
        assert!(take_method_records().is_empty());
    }
}
