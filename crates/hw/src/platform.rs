//! Chip profiles: the boards the paper runs TickTock on.
//!
//! §6 evaluates on a Nordic NRF52840dk (ARMv7-M) and, under QEMU, the
//! RISC-V chips Tock supports. Each profile bundles the memory map and the
//! protection hardware the kernel must drive.

use crate::addr::AddrRange;
use crate::cortexm::CortexMpu;
use crate::mem::{MemoryMap, PhysicalMemory};
use crate::riscv::{PmpChip, RiscvPmp};

/// The protection architecture of a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// ARMv7-M with the 8-region MPU.
    CortexM,
    /// RISC-V RV32 with PMP.
    Riscv32(PmpChip),
}

/// A chip profile: name, memory map, protection architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipProfile {
    /// Board/chip name.
    pub name: &'static str,
    /// Protection architecture.
    pub arch: Arch,
    /// Flash and RAM ranges.
    pub map: MemoryMap,
}

impl ChipProfile {
    /// Creates the zeroed physical memory for this chip.
    pub fn memory(&self) -> PhysicalMemory {
        PhysicalMemory::new(self.map)
    }
}

/// Nordic NRF52840dk: 1 MiB flash, 256 KiB RAM, Cortex-M4 MPU.
pub const NRF52840DK: ChipProfile = ChipProfile {
    name: "nrf52840dk",
    arch: Arch::CortexM,
    map: MemoryMap {
        flash: AddrRange {
            start: 0x0000_0000,
            end: 0x0010_0000,
        },
        ram: AddrRange {
            start: 0x2000_0000,
            end: 0x2004_0000,
        },
    },
};

/// SiFive HiFive1 rev B (FE310-G002): XIP flash at 0x2000_0000, 16 KiB DTIM.
pub const HIFIVE1: ChipProfile = ChipProfile {
    name: "hifive1",
    arch: Arch::Riscv32(PmpChip::SifiveE310),
    map: MemoryMap {
        flash: AddrRange {
            start: 0x2000_0000,
            end: 0x2040_0000,
        },
        ram: AddrRange {
            start: 0x8000_0000,
            end: 0x8000_4000,
        },
    },
};

/// Espressif ESP32-C3: 4 MiB flash mapping, 400 KiB SRAM.
pub const ESP32_C3: ChipProfile = ChipProfile {
    name: "esp32-c3",
    arch: Arch::Riscv32(PmpChip::Esp32C3),
    map: MemoryMap {
        flash: AddrRange {
            start: 0x4200_0000,
            end: 0x4240_0000,
        },
        ram: AddrRange {
            start: 0x3FC8_0000,
            end: 0x3FCE_4000,
        },
    },
};

/// lowRISC OpenTitan Earl Grey (Ibex): 1 MiB eFlash, 128 KiB SRAM.
pub const EARLGREY: ChipProfile = ChipProfile {
    name: "earlgrey",
    arch: Arch::Riscv32(PmpChip::IbexEarlGrey),
    map: MemoryMap {
        flash: AddrRange {
            start: 0x2000_0000,
            end: 0x2010_0000,
        },
        ram: AddrRange {
            start: 0x1000_0000,
            end: 0x1002_0000,
        },
    },
};

/// Atmel SAM4L (Hail / Imix boards): 512 KiB flash, 64 KiB RAM, Cortex-M4.
pub const SAM4L: ChipProfile = ChipProfile {
    name: "sam4l",
    arch: Arch::CortexM,
    map: MemoryMap {
        flash: AddrRange {
            start: 0x0000_0000,
            end: 0x0008_0000,
        },
        ram: AddrRange {
            start: 0x2000_0000,
            end: 0x2001_0000,
        },
    },
};

/// ST Nucleo STM32F446RE: 512 KiB flash at 0x0800_0000, 128 KiB RAM.
pub const STM32F446RE: ChipProfile = ChipProfile {
    name: "stm32f446re",
    arch: Arch::CortexM,
    map: MemoryMap {
        flash: AddrRange {
            start: 0x0800_0000,
            end: 0x0808_0000,
        },
        ram: AddrRange {
            start: 0x2000_0000,
            end: 0x2002_0000,
        },
    },
};

/// SparkFun RedBoard Artemis (Ambiq Apollo3): 1 MiB flash, 384 KiB RAM.
pub const APOLLO3: ChipProfile = ChipProfile {
    name: "apollo3",
    arch: Arch::CortexM,
    map: MemoryMap {
        flash: AddrRange {
            start: 0x0000_0000,
            end: 0x0010_0000,
        },
        ram: AddrRange {
            start: 0x1000_0000,
            end: 0x1006_0000,
        },
    },
};

/// Every profile the reproduction supports: four ARMv7-M boards (the
/// paper verifies "all ARMv7-M architectures Tock supports") and the
/// three RISC-V 32-bit chips.
pub const ALL_CHIPS: [ChipProfile; 7] = [
    NRF52840DK,
    SAM4L,
    STM32F446RE,
    APOLLO3,
    HIFIVE1,
    ESP32_C3,
    EARLGREY,
];

/// The protection unit of a chip, unified over architectures.
#[derive(Debug, Clone)]
pub enum Protection {
    /// Cortex-M MPU instance.
    Mpu(CortexMpu),
    /// RISC-V PMP instance.
    Pmp(RiscvPmp),
}

impl Protection {
    /// Creates the reset-state protection unit for a profile.
    pub fn for_chip(profile: &ChipProfile) -> Self {
        match profile.arch {
            Arch::CortexM => Protection::Mpu(CortexMpu::new()),
            Arch::Riscv32(chip) => Protection::Pmp(RiscvPmp::new(chip)),
        }
    }
}

impl crate::mem::ProtectionUnit for Protection {
    fn check(
        &self,
        addr: usize,
        size: usize,
        access: crate::mem::AccessType,
        priv_: crate::mem::Privilege,
    ) -> crate::mem::AccessDecision {
        match self {
            Protection::Mpu(m) => m.check(addr, size, access, priv_),
            Protection::Pmp(p) => p.check(addr, size, access, priv_),
        }
    }

    fn enabled(&self) -> bool {
        match self {
            Protection::Mpu(m) => m.enabled(),
            Protection::Pmp(p) => p.enabled(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Protection::Mpu(m) => m.name(),
            Protection::Pmp(p) => p.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{AccessType, Privilege, ProtectionUnit};

    #[test]
    fn all_chips_have_disjoint_flash_and_ram() {
        for chip in ALL_CHIPS {
            assert!(
                !chip.map.flash.overlaps(&chip.map.ram),
                "{}: flash/RAM overlap",
                chip.name
            );
            assert!(chip.map.flash.len() >= 64 * 1024);
            assert!(chip.map.ram.len() >= 16 * 1024);
        }
    }

    #[test]
    fn memory_matches_profile_map() {
        for chip in ALL_CHIPS {
            let mem = chip.memory();
            assert_eq!(mem.map(), chip.map);
            // RAM start is readable, one past RAM end is not.
            assert!(mem.read_u8(chip.map.ram.start).is_ok());
            assert!(mem.read_u8(chip.map.ram.end).is_err());
        }
    }

    #[test]
    fn protection_unit_matches_arch() {
        for chip in ALL_CHIPS {
            let p = Protection::for_chip(&chip);
            match (chip.arch, &p) {
                (Arch::CortexM, Protection::Mpu(_)) => {}
                (Arch::Riscv32(_), Protection::Pmp(_)) => {}
                _ => panic!("{}: wrong protection unit", chip.name),
            }
        }
    }

    #[test]
    fn reset_protection_denies_user_ram_on_riscv() {
        let p = Protection::for_chip(&HIFIVE1);
        assert!(!p
            .check(
                HIFIVE1.map.ram.start,
                4,
                AccessType::Read,
                Privilege::Unprivileged
            )
            .allowed());
    }
}
