//! Logical access permissions, shared by the kernel and all MPU drivers.
//!
//! Mirrors Tock's `kernel::platform::mpu::Permissions`: the architecture-
//! independent vocabulary in which the kernel states what a process may do
//! with a region. Each driver encodes these into hardware bits (AP/XN on
//! Cortex-M, R/W/X on PMP) — the encoding is part of what §4.4 verifies.

use crate::mem::AccessType;

/// Architecture-independent region permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permissions {
    /// Read, write and execute.
    ReadWriteExecute,
    /// Read and write (process RAM).
    ReadWriteOnly,
    /// Read and execute (process code in flash).
    ReadExecuteOnly,
    /// Read only.
    ReadOnly,
    /// Execute only.
    ExecuteOnly,
}

impl Permissions {
    /// Returns `true` if the permission set admits the access type.
    pub fn allows(self, access: AccessType) -> bool {
        match access {
            AccessType::Read => matches!(
                self,
                Permissions::ReadWriteExecute
                    | Permissions::ReadWriteOnly
                    | Permissions::ReadExecuteOnly
                    | Permissions::ReadOnly
            ),
            AccessType::Write => matches!(
                self,
                Permissions::ReadWriteExecute | Permissions::ReadWriteOnly
            ),
            AccessType::Execute => matches!(
                self,
                Permissions::ReadWriteExecute
                    | Permissions::ReadExecuteOnly
                    | Permissions::ExecuteOnly
            ),
        }
    }

    /// All permission values, for exhaustive driver-encoding checks.
    pub const ALL: [Permissions; 5] = [
        Permissions::ReadWriteExecute,
        Permissions::ReadWriteOnly,
        Permissions::ReadExecuteOnly,
        Permissions::ReadOnly,
        Permissions::ExecuteOnly,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_truth_table() {
        use AccessType::*;
        use Permissions::*;
        let table: [(Permissions, bool, bool, bool); 5] = [
            (ReadWriteExecute, true, true, true),
            (ReadWriteOnly, true, true, false),
            (ReadExecuteOnly, true, false, true),
            (ReadOnly, true, false, false),
            (ExecuteOnly, false, false, true),
        ];
        for (p, r, w, x) in table {
            assert_eq!(p.allows(Read), r, "{p:?} read");
            assert_eq!(p.allows(Write), w, "{p:?} write");
            assert_eq!(p.allows(Execute), x, "{p:?} execute");
        }
    }

    #[test]
    fn all_lists_every_variant() {
        assert_eq!(Permissions::ALL.len(), 5);
    }
}
