//! Bit-accurate hardware substrate for the TickTock reproduction.
//!
//! The paper runs on real silicon (NRF52840dk) and QEMU; this crate is the
//! substitute substrate: a byte-addressed physical memory ([`mem`]), the
//! ARMv7-M MPU ([`cortexm`]) and RISC-V PMP ([`riscv`]) protection models,
//! typed MMIO register fields ([`registers`]), refined pointers ([`addr`]),
//! the shared permission vocabulary ([`perms`]), chip profiles
//! ([`platform`]), and a deterministic cycle cost model ([`cycles`]) that
//! stands in for the paper's hardware cycle counters.
//!
//! Isolation — the property the whole artifact is about — is a statement
//! over this crate: with the kernel's configuration loaded, the
//! [`mem::ProtectionUnit`] admits an unprivileged access *iff* it falls in
//! the process's own code or RAM regions.

pub mod addr;
pub mod commit_cache;
pub mod cortexm;
pub mod cycles;
pub mod injection;
pub mod mem;
pub mod obligations;
pub mod perms;
pub mod platform;
pub mod registers;
pub mod riscv;
pub mod sched;
pub mod trace;

pub use addr::{AddrRange, PtrU8};
pub use mem::{
    AccessDecision, AccessType, Bus, FaultKind, PhysicalMemory, Privilege, ProtectionUnit,
};
pub use perms::Permissions;
