//! Deterministic, seeded fault injection ("isolation under fire").
//!
//! The differential oracle (PR 1) and the commit cache (PR 2) establish
//! that the two kernels agree *in fair weather*. This module makes the
//! weather: single-event upsets in the MPU/PMP register file (bit flips
//! applied to the value as it reaches the hardware), forced memory-access
//! faults, stack-overflow nudges, and corrupted syscall arguments.
//!
//! Everything is driven by an [`InjectionPlan`] derived from a 64-bit
//! seed, and every hook is consulted at a *trace-visible* point: when an
//! injection fires, a [`TraceEvent::FaultInjected`] event lands in the
//! ring **before** the corrupted value does, so a campaign run replays
//! exactly from `(seed, chip)` and any downstream divergence can be
//! attributed to the injection that precedes it.
//!
//! The engine is thread-local, like [`crate::cycles`] and
//! [`crate::trace`]: parallel campaign workers never interfere. An
//! injection only fires when the kernel-maintained process context
//! ([`crate::trace::current_pid`]) equals the plan's `target_pid` — the
//! blast radius of a plan is exactly one victim process, which is what
//! lets the campaign demand byte-identical observable traces from every
//! *other* process.

use std::cell::RefCell;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tt_contracts::simctx;

use crate::trace::{self, TraceEvent};

/// Where an [`Injection`] fires. Each point corresponds to one hook the
/// hardware model or the kernel consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InjectionPoint {
    /// A Cortex-M `MPU_RBAR` write: the value is bit-flipped on its way
    /// into the register file.
    ArmRbar,
    /// A Cortex-M `MPU_RASR` write, likewise.
    ArmRasr,
    /// A RISC-V `pmpcfg` byte write, likewise (flip confined to bits 0–7).
    PmpCfg,
    /// A checked user-mode memory access: the check is forced to deny,
    /// modelling a spurious MemManage/PMP access fault.
    UserAccess,
    /// A system-call argument register, XOR-corrupted between the app and
    /// the handler.
    SyscallArg,
    /// A context-switch-in: the kernel is told to model a stack push
    /// below the process's memory block (stack-overflow nudge).
    Stack,
}

/// All injection points, for plan generation and exhaustive tests.
pub const ALL_POINTS: [InjectionPoint; 6] = [
    InjectionPoint::ArmRbar,
    InjectionPoint::ArmRasr,
    InjectionPoint::PmpCfg,
    InjectionPoint::UserAccess,
    InjectionPoint::SyscallArg,
    InjectionPoint::Stack,
];

/// What an [`Injection`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionKind {
    /// XOR the written register value with `1 << bit` (register points).
    BitFlip {
        /// Bit to flip (0–31 for RBAR/RASR, 0–7 for pmpcfg).
        bit: u8,
    },
    /// Deny one checked user access ([`InjectionPoint::UserAccess`]).
    ForceFault,
    /// XOR one syscall argument with `xor` ([`InjectionPoint::SyscallArg`]).
    CorruptArg {
        /// Non-zero corruption mask.
        xor: u32,
    },
    /// Model one stack push below the memory block ([`InjectionPoint::Stack`]).
    StackNudge,
}

/// One scheduled fault: fire `kind` at the `at`-th time the target
/// process reaches `point` (0-based, counted per point since [`arm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Which hook.
    pub point: InjectionPoint,
    /// Which occurrence of the hook (0 = the first one the target hits).
    pub at: u32,
    /// What to do there.
    pub kind: InjectionKind,
}

/// A complete, replayable fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionPlan {
    /// Seed the plan was derived from (kept for reporting).
    pub seed: u64,
    /// The victim process: injections fire only in its context.
    pub target_pid: u32,
    /// The scheduled faults (each fires at most once).
    pub injections: Vec<Injection>,
}

impl InjectionPlan {
    /// Returns `true` if any scheduled injection would fire during a
    /// run prefix whose per-point occurrence counts (in target context,
    /// [`ALL_POINTS`] order) are `seen` — i.e. some injection's `at`
    /// falls *before* the counters a mid-run snapshot would resume from.
    /// Such plans cannot use the snapshot: the fault belongs in the
    /// skipped prefix, so the runner must fall back to a full run.
    pub fn fires_within(&self, seen: &[u32; ALL_POINTS.len()]) -> bool {
        self.injections
            .iter()
            .any(|inj| inj.at < seen[point_index(inj.point)])
    }

    /// Derives a plan deterministically from `seed`: one to three
    /// injections with bounded occurrence indices. The same `(seed,
    /// target_pid)` always yields the same plan, which is what makes
    /// campaign runs replayable.
    pub fn from_seed(seed: u64, target_pid: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(1..=3usize);
        let mut injections = Vec::with_capacity(count);
        for _ in 0..count {
            let point = ALL_POINTS[rng.gen_range(0..ALL_POINTS.len())];
            // Occurrence indices are kept small so most injections land
            // within a run's horizon; plans whose faults never trigger
            // still participate as pure determinism checks.
            let at = rng.gen_range(0..24u32);
            let kind = match point {
                InjectionPoint::ArmRbar | InjectionPoint::ArmRasr => InjectionKind::BitFlip {
                    bit: rng.gen_range(0..32u8),
                },
                InjectionPoint::PmpCfg => InjectionKind::BitFlip {
                    bit: rng.gen_range(0..8u8),
                },
                InjectionPoint::UserAccess => InjectionKind::ForceFault,
                InjectionPoint::SyscallArg => InjectionKind::CorruptArg {
                    xor: (rng.gen::<u32>() | 1).rotate_left(rng.gen_range(0..32u32)),
                },
                InjectionPoint::Stack => InjectionKind::StackNudge,
            };
            injections.push(Injection { point, at, kind });
        }
        Self {
            seed,
            target_pid,
            injections,
        }
    }
}

struct Engine {
    plan: InjectionPlan,
    /// Occurrences of each point seen in target context, indexed in
    /// [`ALL_POINTS`] order.
    seen: [u32; ALL_POINTS.len()],
    /// One-shot flags, parallel to `plan.injections`.
    fired: Vec<bool>,
    fired_count: u64,
}

thread_local! {
    // `ManuallyDrop` for the same reason as the trace ring: the engine's
    // `Vec`s would otherwise give the thread-local `Drop` glue, forcing
    // every `fire` hook — one per modelled MPU write, user access and
    // syscall argument — through the TLS registration state machine.
    // `arm`/`disarm` assign and `take` through the `DerefMut`, so engines
    // are still dropped normally; only a thread that exits while armed
    // leaks its (tiny) plan, and campaign workers always disarm.
    static ENGINE: RefCell<std::mem::ManuallyDrop<Option<Engine>>> =
        const { RefCell::new(std::mem::ManuallyDrop::new(None)) };
}

fn point_index(point: InjectionPoint) -> usize {
    ALL_POINTS
        .iter()
        .position(|p| *p == point)
        .expect("known point")
}

/// Arms the engine with a plan. Occurrence counters and one-shot flags
/// start fresh; any previously armed plan is discarded.
pub fn arm(plan: InjectionPlan) {
    debug_assert_ne!(plan.target_pid, simctx::NO_TARGET, "reserved sentinel");
    simctx::with(|c| c.injection_target.set(plan.target_pid));
    ENGINE.with(|e| {
        let fired = vec![false; plan.injections.len()];
        **e.borrow_mut() = Some(Engine {
            plan,
            seen: [0; ALL_POINTS.len()],
            fired,
            fired_count: 0,
        });
    });
}

/// Arms the engine with a plan whose occurrence counters start at
/// `seen` instead of zero — the mid-run-snapshot form of [`arm`]. A run
/// resumed from a snapshot taken after a prefix in which the target hit
/// each point `seen[i]` times behaves exactly like a full run armed
/// from zero, **provided** no injection was scheduled inside the prefix
/// (callers must check [`InjectionPlan::fires_within`] first).
pub fn arm_with_seen(plan: InjectionPlan, seen: [u32; ALL_POINTS.len()]) {
    debug_assert!(
        !plan.fires_within(&seen),
        "plan schedules an injection inside the skipped prefix"
    );
    debug_assert_ne!(plan.target_pid, simctx::NO_TARGET, "reserved sentinel");
    simctx::with(|c| c.injection_target.set(plan.target_pid));
    ENGINE.with(|e| {
        let fired = vec![false; plan.injections.len()];
        **e.borrow_mut() = Some(Engine {
            plan,
            seen,
            fired,
            fired_count: 0,
        });
    });
}

/// The per-point occurrence counters accumulated since [`arm`] (in
/// [`ALL_POINTS`] order), or `None` when disarmed. A snapshotting
/// runner reads these at capture time and replays them into
/// [`arm_with_seen`] on every restore.
pub fn seen_counts() -> Option<[u32; ALL_POINTS.len()]> {
    ENGINE.with(|e| e.borrow().as_ref().map(|eng| eng.seen))
}

/// Disarms the engine, returning how many injections fired since [`arm`].
pub fn disarm() -> u64 {
    simctx::with(|c| c.injection_target.set(simctx::NO_TARGET));
    ENGINE.with(|e| e.borrow_mut().take().map_or(0, |eng| eng.fired_count))
}

/// Returns `true` if a plan is armed on this thread.
pub fn is_armed() -> bool {
    ENGINE.with(|e| e.borrow().is_some())
}

/// Number of injections fired since the last [`arm`] (0 when disarmed).
pub fn fired_count() -> u64 {
    ENGINE.with(|e| e.borrow().as_ref().map_or(0, |eng| eng.fired_count))
}

/// Core hook: bumps the occurrence counter for `point` (in target
/// context only) and returns the kind of the injection that fires there,
/// if any. Records the [`TraceEvent::FaultInjected`] event.
fn fire(point: InjectionPoint) -> Option<InjectionKind> {
    // Fast path: one scalar TLS access (the same cell line that holds
    // `current_pid`) rejects every hook outside the armed plan's target
    // context — and every hook while disarmed, since the mirror is then
    // [`simctx::NO_TARGET`], which no context matches.
    if simctx::with(|c| c.current_pid.get() != c.injection_target.get()) {
        return None;
    }
    ENGINE.with(|e| {
        let mut slot = e.borrow_mut();
        let eng = slot.as_mut()?;
        debug_assert_eq!(trace::current_pid(), eng.plan.target_pid);
        let idx = point_index(point);
        let occurrence = eng.seen[idx];
        eng.seen[idx] = occurrence.wrapping_add(1);
        let hit = eng
            .plan
            .injections
            .iter()
            .enumerate()
            .find(|(i, inj)| !eng.fired[*i] && inj.point == point && inj.at == occurrence)
            .map(|(i, inj)| (i, *inj));
        let (i, inj) = hit?;
        eng.fired[i] = true;
        eng.fired_count += 1;
        let info = match inj.kind {
            InjectionKind::BitFlip { bit } => bit as u32,
            InjectionKind::CorruptArg { xor } => xor,
            InjectionKind::ForceFault | InjectionKind::StackNudge => 0,
        };
        trace::record(TraceEvent::FaultInjected {
            pid: eng.plan.target_pid,
            point,
            info,
        });
        Some(inj.kind)
    })
}

/// Register-write hook: called by the Cortex-M MPU (`RBAR`/`RASR`) and
/// RISC-V PMP (`pmpcfg`) register files with the value about to be
/// stored. Returns the (possibly bit-flipped) value that actually lands
/// in hardware — the `RegWrite` trace event and all readback paths see
/// the corrupted value, exactly like a real single-event upset.
#[inline]
pub fn mutate_reg_write(point: InjectionPoint, value: u32) -> u32 {
    match fire(point) {
        Some(InjectionKind::BitFlip { bit }) => value ^ (1u32 << (bit & 31)),
        _ => value,
    }
}

/// User-access hook: returns `true` when a checked user-mode access must
/// be forced to fault (spurious MemManage/PMP access fault).
#[inline]
pub fn force_user_fault() -> bool {
    matches!(
        fire(InjectionPoint::UserAccess),
        Some(InjectionKind::ForceFault)
    )
}

/// Syscall-argument hook: returns the (possibly corrupted) argument.
#[inline]
pub fn corrupt_syscall_arg(value: u32) -> u32 {
    match fire(InjectionPoint::SyscallArg) {
        Some(InjectionKind::CorruptArg { xor }) => value ^ xor,
        _ => value,
    }
}

/// Context-switch hook: returns `true` when the kernel should model a
/// stack push below the process's memory block this switch-in.
#[inline]
pub fn stack_nudge() -> bool {
    matches!(fire(InjectionPoint::Stack), Some(InjectionKind::StackNudge))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{self, NO_PID};

    fn plan(target: u32, injections: Vec<Injection>) -> InjectionPlan {
        InjectionPlan {
            seed: 0,
            target_pid: target,
            injections,
        }
    }

    #[test]
    fn disarmed_hooks_are_identity() {
        assert!(!is_armed());
        assert_eq!(mutate_reg_write(InjectionPoint::ArmRbar, 0x1234), 0x1234);
        assert!(!force_user_fault());
        assert_eq!(corrupt_syscall_arg(7), 7);
        assert!(!stack_nudge());
        assert_eq!(fired_count(), 0);
    }

    #[test]
    fn bit_flip_fires_once_at_the_scheduled_occurrence() {
        trace::set_current_pid(3);
        arm(plan(
            3,
            vec![Injection {
                point: InjectionPoint::ArmRasr,
                at: 2,
                kind: InjectionKind::BitFlip { bit: 4 },
            }],
        ));
        assert_eq!(mutate_reg_write(InjectionPoint::ArmRasr, 0), 0); // occurrence 0
        assert_eq!(mutate_reg_write(InjectionPoint::ArmRasr, 0), 0); // occurrence 1
        assert_eq!(mutate_reg_write(InjectionPoint::ArmRasr, 0), 1 << 4); // fires
        assert_eq!(mutate_reg_write(InjectionPoint::ArmRasr, 0), 0); // one-shot
        assert_eq!(disarm(), 1);
        trace::set_current_pid(NO_PID);
    }

    #[test]
    fn non_target_context_never_fires_and_does_not_consume_occurrences() {
        trace::set_current_pid(1);
        arm(plan(
            2,
            vec![Injection {
                point: InjectionPoint::UserAccess,
                at: 0,
                kind: InjectionKind::ForceFault,
            }],
        ));
        assert!(!force_user_fault()); // pid 1: not the target
        trace::set_current_pid(2);
        assert!(force_user_fault()); // occurrence 0 in target context
        assert_eq!(disarm(), 1);
        trace::set_current_pid(NO_PID);
    }

    #[test]
    fn fired_injection_records_a_trace_event() {
        trace::enable(16);
        trace::set_current_pid(5);
        arm(plan(
            5,
            vec![Injection {
                point: InjectionPoint::SyscallArg,
                at: 0,
                kind: InjectionKind::CorruptArg { xor: 0xFF },
            }],
        ));
        assert_eq!(corrupt_syscall_arg(0x0F), 0xF0);
        let t = trace::take();
        assert_eq!(
            t.events,
            vec![TraceEvent::FaultInjected {
                pid: 5,
                point: InjectionPoint::SyscallArg,
                info: 0xFF,
            }]
        );
        disarm();
        trace::set_current_pid(NO_PID);
        trace::disable();
    }

    #[test]
    fn plans_replay_exactly_and_vary_across_seeds() {
        for seed in 0..64u64 {
            let a = InjectionPlan::from_seed(seed, 0);
            let b = InjectionPlan::from_seed(seed, 0);
            assert_eq!(a, b, "seed {seed} must replay");
            assert!((1..=3).contains(&a.injections.len()));
            for inj in &a.injections {
                assert!(inj.at < 24);
                match (inj.point, inj.kind) {
                    (InjectionPoint::ArmRbar | InjectionPoint::ArmRasr, k) => {
                        assert!(matches!(k, InjectionKind::BitFlip { bit } if bit < 32));
                    }
                    (InjectionPoint::PmpCfg, k) => {
                        assert!(matches!(k, InjectionKind::BitFlip { bit } if bit < 8));
                    }
                    (InjectionPoint::UserAccess, k) => {
                        assert_eq!(k, InjectionKind::ForceFault);
                    }
                    (InjectionPoint::SyscallArg, k) => {
                        assert!(matches!(k, InjectionKind::CorruptArg { xor } if xor != 0));
                    }
                    (InjectionPoint::Stack, k) => {
                        assert_eq!(k, InjectionKind::StackNudge);
                    }
                }
            }
        }
        assert_ne!(
            InjectionPlan::from_seed(1, 0).injections,
            InjectionPlan::from_seed(2, 0).injections,
        );
    }

    #[test]
    fn arm_with_seen_resumes_occurrence_counting_mid_stream() {
        trace::set_current_pid(0);
        let p = plan(
            0,
            vec![Injection {
                point: InjectionPoint::ArmRasr,
                at: 3,
                kind: InjectionKind::BitFlip { bit: 0 },
            }],
        );
        // Full run: occurrences 0,1 form the "prefix", 2,3 the rest.
        arm(p.clone());
        assert_eq!(mutate_reg_write(InjectionPoint::ArmRasr, 0), 0);
        assert_eq!(mutate_reg_write(InjectionPoint::ArmRasr, 0), 0);
        let seen = seen_counts().expect("armed");
        assert_eq!(seen[1], 2); // ArmRasr is ALL_POINTS[1].
        assert!(!p.fires_within(&seen)); // at=3 is after the prefix.
        disarm();
        // Resumed run: counting continues from the recorded prefix.
        arm_with_seen(p, seen);
        assert_eq!(mutate_reg_write(InjectionPoint::ArmRasr, 0), 0); // occurrence 2
        assert_eq!(mutate_reg_write(InjectionPoint::ArmRasr, 0), 1); // occurrence 3: fires
        assert_eq!(disarm(), 1);
        trace::set_current_pid(NO_PID);
    }

    #[test]
    fn fires_within_flags_prefix_scheduled_injections() {
        let p = plan(
            0,
            vec![Injection {
                point: InjectionPoint::Stack,
                at: 1,
                kind: InjectionKind::StackNudge,
            }],
        );
        let mut seen = [0u32; ALL_POINTS.len()];
        assert!(!p.fires_within(&seen));
        seen[5] = 1; // Stack is ALL_POINTS[5]; at=1 not yet reached.
        assert!(!p.fires_within(&seen));
        seen[5] = 2; // Occurrence 1 happened inside the prefix.
        assert!(p.fires_within(&seen));
        // An empty plan never fires anywhere.
        assert!(!plan(0, vec![]).fires_within(&seen));
    }

    #[test]
    fn stack_nudge_point_is_independent_of_register_points() {
        trace::set_current_pid(0);
        arm(plan(
            0,
            vec![Injection {
                point: InjectionPoint::Stack,
                at: 1,
                kind: InjectionKind::StackNudge,
            }],
        ));
        // Register occurrences must not advance the Stack counter.
        assert_eq!(mutate_reg_write(InjectionPoint::ArmRbar, 9), 9);
        assert!(!stack_nudge()); // Stack occurrence 0
        assert!(stack_nudge()); // Stack occurrence 1: fires
        assert_eq!(disarm(), 1);
        trace::set_current_pid(NO_PID);
    }
}
