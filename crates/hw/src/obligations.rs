//! Verification obligations for the hardware model's refined pointers.
//!
//! [`crate::addr`] carries the lowest-level contracts in the workspace:
//! the `AddrRange` well-formedness invariant (`start <= end`) and the
//! overflow obligations on `PtrU8` arithmetic (`checked_add`/`checked_sub`
//! at the `PtrU8::offset`/`offset_back`/`sub` sites). Until this module,
//! those sites were enforced at runtime but never registered with the
//! `tt-contracts` [`Registry`] — invisible to the Fig. 12 verifier and,
//! once `tt-audit` exists, a cross-check failure. Registering them here
//! closes the gap.

use crate::addr::{AddrRange, PtrU8};
use tt_contracts::obligation::{CheckResult, Registry};
use tt_contracts::ContractKind;

/// The Fig. 10/12 component name for these obligations.
pub const COMPONENT: &str = "Hardware Model";

/// Registers the refined-pointer obligations.
pub fn register_obligations(registry: &mut Registry, density: usize) {
    registry.add_fn(
        COMPONENT,
        "AddrRange::new",
        ContractKind::Invariant,
        move || {
            let d = density.max(1);
            let mut cases = 0u64;
            // Walk a grid of (start, end) pairs; the invariant must flag
            // exactly the inverted ones.
            for i in 0..=(4 * d) {
                for j in 0..=(4 * d) {
                    let (start, end) = (i * 0x400, j * 0x400);
                    let violations = tt_contracts::with_mode(tt_contracts::Mode::Observe, || {
                        let _ = AddrRange::new(start, end);
                        tt_contracts::take_violations()
                    });
                    if violations.is_empty() != (start <= end) {
                        return CheckResult::Refuted {
                            counterexample: format!("start={start:#x} end={end:#x}"),
                        };
                    }
                    cases += 1;
                }
            }
            CheckResult::Verified { cases }
        },
    );

    registry.add_fn(
        COMPONENT,
        "PtrU8::offset",
        ContractKind::Overflow,
        move || {
            let d = density.max(1) as u64;
            let mut cases = 0u64;
            for k in 0..=(4 * d) {
                // Near-wraparound offsets: the checked_add site must fire on
                // overflow and stay silent otherwise.
                let base = usize::MAX - (k as usize) * 8;
                for bytes in [0usize, 4, 8, 64] {
                    let overflows = base.checked_add(bytes).is_none();
                    let violations = tt_contracts::with_mode(tt_contracts::Mode::Observe, || {
                        let _ = PtrU8::new(base).offset(bytes);
                        tt_contracts::take_violations()
                    });
                    if violations.is_empty() == overflows {
                        return CheckResult::Refuted {
                            counterexample: format!("base={base:#x} bytes={bytes}"),
                        };
                    }
                    cases += 1;
                }
            }
            CheckResult::Verified { cases }
        },
    );

    // The remaining pointer and range helpers carry builtin safety
    // obligations only.
    registry.add_builtin_safety(
        COMPONENT,
        &[
            "PtrU8::offset_back",
            "PtrU8::sub",
            "PtrU8::align_up",
            "PtrU8::is_aligned",
            "AddrRange::from_start_size",
            "AddrRange::len",
            "AddrRange::contains",
            "AddrRange::contains_range",
            "AddrRange::overlaps",
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refined_pointer_obligations_verify() {
        let mut r = Registry::new();
        register_obligations(&mut r, 2);
        assert_eq!(r.components(), vec![COMPONENT]);
        for o in r.obligations() {
            assert!((o.check)().passed(), "{} refuted", o.function);
        }
    }

    #[test]
    fn addr_range_obligation_actually_explores_inverted_ranges() {
        let mut r = Registry::new();
        register_obligations(&mut r, 1);
        let o = r
            .obligations()
            .iter()
            .find(|o| o.function == "AddrRange::new")
            .unwrap();
        match (o.check)() {
            CheckResult::Verified { cases } => assert!(cases >= 25),
            other => panic!("{other:?}"),
        }
    }
}
