//! The simulated physical address space: flash, RAM, and a protected bus.
//!
//! This is the substrate standing in for real silicon. The kernel sees a
//! [`PhysicalMemory`] it can always access (the MPU is disabled during
//! kernel execution, §2.1); user-mode accesses instead go through a
//! [`Bus`], which consults a [`ProtectionUnit`] — the Cortex-M MPU or
//! RISC-V PMP model — and faults exactly where hardware would.

use crate::addr::AddrRange;
use std::fmt;

/// The kind of memory access being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

/// The privilege level of the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Privilege {
    /// Kernel / machine mode.
    Privileged,
    /// User / unprivileged mode.
    Unprivileged,
}

/// Why an access was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No protection region matched an unprivileged access.
    NoRegionMatch,
    /// A region matched but its permissions forbid the access type.
    PermissionDenied,
    /// The address is outside the modelled address space entirely.
    Unmapped,
    /// A region matched but the covering subregion is disabled.
    SubregionDisabled,
    /// A locked PMP entry forbids even machine-mode access.
    LockedEntry,
}

/// The outcome of a protection check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDecision {
    /// Hardware admits the access.
    Allowed,
    /// Hardware raises a memory-management / access fault.
    Fault(FaultKind),
}

impl AccessDecision {
    /// Returns `true` if the access is admitted.
    pub fn allowed(&self) -> bool {
        matches!(self, AccessDecision::Allowed)
    }
}

/// A hardware memory-protection unit: Cortex-M MPU or RISC-V PMP.
///
/// The isolation property the paper verifies is a statement about this
/// trait's `check` method: with the kernel's configuration loaded, an
/// unprivileged access is allowed *iff* it falls in the process's own
/// flash (read/execute) or RAM (read/write) regions.
pub trait ProtectionUnit {
    /// Decides whether hardware admits the access.
    fn check(
        &self,
        addr: usize,
        size: usize,
        access: AccessType,
        priv_: Privilege,
    ) -> AccessDecision;

    /// Returns `true` if protection is currently enabled.
    fn enabled(&self) -> bool;

    /// Human-readable unit name for fault reports.
    fn name(&self) -> &'static str;
}

/// The memory map of a chip: where flash and RAM live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryMap {
    /// Flash (code) range.
    pub flash: AddrRange,
    /// RAM range.
    pub ram: AddrRange,
}

impl MemoryMap {
    /// Classifies an address.
    pub fn classify(&self, addr: usize) -> Option<Segment> {
        if self.flash.contains(addr) {
            Some(Segment::Flash)
        } else if self.ram.contains(addr) {
            Some(Segment::Ram)
        } else {
            None
        }
    }
}

/// Which backing segment an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Flash segment.
    Flash,
    /// RAM segment.
    Ram,
}

/// Dirty-tracking granule for [`MemSnapshot`] restore: one bit covers
/// this many bytes of RAM. 256 bytes keeps the bitmap tiny (128 bytes
/// per MiB of RAM) while a typical campaign run dirties only a handful
/// of granules, so restore copies kilobytes instead of the whole RAM.
pub const SNAPSHOT_PAGE_SIZE: usize = 256;
const PAGE_SHIFT: u32 = SNAPSHOT_PAGE_SIZE.trailing_zeros();

/// A point-in-time copy of a chip's memory, produced by
/// [`PhysicalMemory::snapshot`] and applied by
/// [`PhysicalMemory::restore`].
///
/// This is the memory half of the copy-on-write scheme in
/// `tt_kernel::snapshot`: the snapshot itself is a full copy taken once
/// per boot, and from that moment the live memory tracks which
/// [`SNAPSHOT_PAGE_SIZE`]-byte RAM pages a run dirtied. Restore copies
/// back only those pages (plus flash, only if it was reprogrammed), so
/// resetting a run costs proportional to what the run touched, not to
/// the chip's RAM size.
#[derive(Debug, Clone)]
pub struct MemSnapshot {
    flash: Vec<u8>,
    ram: Vec<u8>,
}

impl MemSnapshot {
    /// Total bytes held by the snapshot.
    pub fn bytes(&self) -> usize {
        self.flash.len() + self.ram.len()
    }
}

/// The simulated physical memory of a chip.
pub struct PhysicalMemory {
    map: MemoryMap,
    flash: Vec<u8>,
    ram: Vec<u8>,
    /// Dirty bitmap over RAM snapshot pages (one bit per
    /// [`SNAPSHOT_PAGE_SIZE`] bytes); empty until [`Self::snapshot`]
    /// arms tracking.
    ram_dirty: Vec<u64>,
    /// Whether flash was reprogrammed since tracking was armed.
    flash_dirty: bool,
}

impl fmt::Debug for PhysicalMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysicalMemory")
            .field("map", &self.map)
            .finish_non_exhaustive()
    }
}

/// Error raised by raw memory accesses that miss the address map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnmappedAccess {
    /// Offending address.
    pub addr: usize,
    /// Size in bytes.
    pub size: usize,
}

impl fmt::Display for UnmappedAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unmapped access at {:#010x} ({} bytes)",
            self.addr, self.size
        )
    }
}

impl std::error::Error for UnmappedAccess {}

impl PhysicalMemory {
    /// Creates zeroed memory for the given map.
    pub fn new(map: MemoryMap) -> Self {
        Self {
            map,
            flash: vec![0; map.flash.len()],
            ram: vec![0; map.ram.len()],
            ram_dirty: Vec::new(),
            flash_dirty: false,
        }
    }

    /// Marks the RAM byte range `[off, off + len)` dirty. A no-op until
    /// [`Self::snapshot`] arms tracking — one branch on the bitmap's
    /// emptiness, so untracked memory pays nothing on the write path.
    #[inline]
    fn mark_ram_dirty(&mut self, off: usize, len: usize) {
        if self.ram_dirty.is_empty() || len == 0 {
            return;
        }
        let first = off >> PAGE_SHIFT;
        let last = (off + len - 1) >> PAGE_SHIFT;
        for page in first..=last {
            self.ram_dirty[page >> 6] |= 1u64 << (page & 63);
        }
    }

    /// Takes a full copy of flash and RAM and arms dirty-page tracking,
    /// clearing any previously accumulated dirty state. Subsequent
    /// [`Self::restore`] calls copy back only the pages written since.
    pub fn snapshot(&mut self) -> MemSnapshot {
        let pages = self.ram.len().div_ceil(SNAPSHOT_PAGE_SIZE);
        self.ram_dirty = vec![0; pages.div_ceil(64)];
        self.flash_dirty = false;
        MemSnapshot {
            flash: self.flash.clone(),
            ram: self.ram.clone(),
        }
    }

    /// Restores memory to the snapshot's contents. With tracking armed
    /// (the snapshot came from this instance's [`Self::snapshot`]), only
    /// dirty RAM pages — and flash only after a reprogram — are copied;
    /// the dirty state is then cleared so tracking continues for the
    /// next run. Without tracking, the whole snapshot is copied back.
    ///
    /// Panics if the snapshot's geometry does not match this memory.
    pub fn restore(&mut self, snap: &MemSnapshot) {
        assert_eq!(snap.flash.len(), self.flash.len(), "flash size mismatch");
        assert_eq!(snap.ram.len(), self.ram.len(), "ram size mismatch");
        if self.ram_dirty.is_empty() {
            self.flash.copy_from_slice(&snap.flash);
            self.ram.copy_from_slice(&snap.ram);
            return;
        }
        if self.flash_dirty {
            self.flash.copy_from_slice(&snap.flash);
            self.flash_dirty = false;
        }
        for word in 0..self.ram_dirty.len() {
            let mut bits = self.ram_dirty[word];
            while bits != 0 {
                let page = (word << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let start = page << PAGE_SHIFT;
                let end = (start + SNAPSHOT_PAGE_SIZE).min(self.ram.len());
                self.ram[start..end].copy_from_slice(&snap.ram[start..end]);
            }
            self.ram_dirty[word] = 0;
        }
    }

    /// Number of RAM pages currently marked dirty (0 when tracking is
    /// not armed). Exposed for restore-cost accounting and tests.
    pub fn dirty_ram_pages(&self) -> usize {
        self.ram_dirty.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Copies out the current dirty-tracking state: the RAM page bitmap
    /// and the flash-reprogrammed flag. Empty until [`Self::snapshot`]
    /// arms tracking.
    ///
    /// This exists for holders of *multiple* snapshots of one memory:
    /// [`Self::snapshot`] clears accumulated dirt, so a caller capturing
    /// a second (e.g. mid-run) snapshot must save the pages dirtied
    /// since the first one and [`Self::merge_dirty_state`] them back in
    /// whenever it switches which snapshot it restores — otherwise the
    /// incremental restore would skip pages that differ between the two
    /// snapshots but were not touched by the run being reset.
    pub fn dirty_state(&self) -> (Vec<u64>, bool) {
        (self.ram_dirty.clone(), self.flash_dirty)
    }

    /// ORs a previously saved [`Self::dirty_state`] into the live
    /// tracking state, forcing the next [`Self::restore`] to also copy
    /// those pages (and flash, if flagged). A no-op when tracking is not
    /// armed; panics if the bitmap geometry does not match.
    pub fn merge_dirty_state(&mut self, ram_dirty: &[u64], flash_dirty: bool) {
        if self.ram_dirty.is_empty() {
            return;
        }
        assert_eq!(
            ram_dirty.len(),
            self.ram_dirty.len(),
            "dirty bitmap size mismatch"
        );
        for (live, saved) in self.ram_dirty.iter_mut().zip(ram_dirty) {
            *live |= saved;
        }
        self.flash_dirty |= flash_dirty;
    }

    /// Returns the memory map.
    pub fn map(&self) -> MemoryMap {
        self.map
    }

    fn slot(&self, addr: usize, size: usize) -> Result<(Segment, usize), UnmappedAccess> {
        let end = addr
            .checked_add(size)
            .ok_or(UnmappedAccess { addr, size })?;
        if addr >= self.map.flash.start && end <= self.map.flash.end {
            Ok((Segment::Flash, addr - self.map.flash.start))
        } else if addr >= self.map.ram.start && end <= self.map.ram.end {
            Ok((Segment::Ram, addr - self.map.ram.start))
        } else {
            Err(UnmappedAccess { addr, size })
        }
    }

    /// Reads one byte (privileged view: never faults on protection).
    pub fn read_u8(&self, addr: usize) -> Result<u8, UnmappedAccess> {
        let (seg, off) = self.slot(addr, 1)?;
        Ok(match seg {
            Segment::Flash => self.flash[off],
            Segment::Ram => self.ram[off],
        })
    }

    /// Writes one byte. Flash writes are rejected (it is not writable at
    /// run time on the modelled chips).
    pub fn write_u8(&mut self, addr: usize, value: u8) -> Result<(), UnmappedAccess> {
        let (seg, off) = self.slot(addr, 1)?;
        match seg {
            Segment::Flash => Err(UnmappedAccess { addr, size: 1 }),
            Segment::Ram => {
                self.ram[off] = value;
                self.mark_ram_dirty(off, 1);
                Ok(())
            }
        }
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: usize) -> Result<u32, UnmappedAccess> {
        let (seg, off) = self.slot(addr, 4)?;
        let bytes = match seg {
            Segment::Flash => &self.flash[off..off + 4],
            Segment::Ram => &self.ram[off..off + 4],
        };
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    /// Writes a little-endian `u32` to RAM.
    pub fn write_u32(&mut self, addr: usize, value: u32) -> Result<(), UnmappedAccess> {
        let (seg, off) = self.slot(addr, 4)?;
        match seg {
            Segment::Flash => Err(UnmappedAccess { addr, size: 4 }),
            Segment::Ram => {
                self.ram[off..off + 4].copy_from_slice(&value.to_le_bytes());
                self.mark_ram_dirty(off, 4);
                Ok(())
            }
        }
    }

    /// Programs flash contents (a load-time operation, e.g. flashing an app
    /// image; not reachable from simulated user code).
    pub fn program_flash(&mut self, addr: usize, data: &[u8]) -> Result<(), UnmappedAccess> {
        let (seg, off) = self.slot(addr, data.len())?;
        match seg {
            Segment::Flash => {
                self.flash[off..off + data.len()].copy_from_slice(data);
                if !self.ram_dirty.is_empty() {
                    self.flash_dirty = true;
                }
                Ok(())
            }
            Segment::Ram => Err(UnmappedAccess {
                addr,
                size: data.len(),
            }),
        }
    }

    /// Copies bytes out of memory (privileged view).
    pub fn read_bytes(&self, addr: usize, buf: &mut [u8]) -> Result<(), UnmappedAccess> {
        let (seg, off) = self.slot(addr, buf.len())?;
        let src = match seg {
            Segment::Flash => &self.flash[off..off + buf.len()],
            Segment::Ram => &self.ram[off..off + buf.len()],
        };
        buf.copy_from_slice(src);
        Ok(())
    }

    /// Writes bytes into RAM (privileged view).
    pub fn write_bytes(&mut self, addr: usize, data: &[u8]) -> Result<(), UnmappedAccess> {
        let (seg, off) = self.slot(addr, data.len())?;
        match seg {
            Segment::Flash => Err(UnmappedAccess {
                addr,
                size: data.len(),
            }),
            Segment::Ram => {
                self.ram[off..off + data.len()].copy_from_slice(data);
                self.mark_ram_dirty(off, data.len());
                Ok(())
            }
        }
    }
}

/// A memory access that went through the protected bus and faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusFault {
    /// Offending address.
    pub addr: usize,
    /// Access type attempted.
    pub access: AccessType,
    /// Fault cause.
    pub kind: FaultKind,
}

impl BusFault {
    /// The `Display` text, built without the `core::fmt` machinery: the
    /// kernel fault path renders one of these per injected fault, and the
    /// formatter dispatch was a visible slice of the fleet profile.
    pub fn to_reason(&self) -> String {
        let mut out = String::with_capacity(48);
        out.push_str("bus fault: ");
        out.push_str(match self.access {
            AccessType::Read => "Read",
            AccessType::Write => "Write",
            AccessType::Execute => "Execute",
        });
        out.push_str(" at 0x");
        let natural = (usize::BITS - self.addr.leading_zeros()).div_ceil(4).max(1);
        for i in (0..natural.max(8)).rev() {
            let d = (self.addr >> (i * 4)) & 0xF;
            out.push(char::from_digit(d as u32, 16).expect("nibble"));
        }
        out.push_str(" (");
        out.push_str(match self.kind {
            FaultKind::NoRegionMatch => "NoRegionMatch",
            FaultKind::PermissionDenied => "PermissionDenied",
            FaultKind::Unmapped => "Unmapped",
            FaultKind::SubregionDisabled => "SubregionDisabled",
            FaultKind::LockedEntry => "LockedEntry",
        });
        out.push(')');
        out
    }
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_reason())
    }
}

impl std::error::Error for BusFault {}

/// The protected bus: every access is checked against a protection unit
/// before touching memory, exactly as the AHB matrix consults the MPU.
pub struct Bus<'a, P: ProtectionUnit> {
    /// Backing memory.
    pub mem: &'a mut PhysicalMemory,
    /// Protection hardware in effect.
    pub protection: &'a P,
    /// Current privilege of the bus master.
    pub privilege: Privilege,
}

impl<'a, P: ProtectionUnit> Bus<'a, P> {
    /// Creates a bus view with the given privilege.
    pub fn new(mem: &'a mut PhysicalMemory, protection: &'a P, privilege: Privilege) -> Self {
        Self {
            mem,
            protection,
            privilege,
        }
    }

    fn check(&self, addr: usize, size: usize, access: AccessType) -> Result<(), BusFault> {
        match self.protection.check(addr, size, access, self.privilege) {
            AccessDecision::Allowed => Ok(()),
            AccessDecision::Fault(kind) => Err(BusFault { addr, access, kind }),
        }
    }

    /// Checked byte read.
    pub fn read_u8(&self, addr: usize) -> Result<u8, BusFault> {
        self.check(addr, 1, AccessType::Read)?;
        self.mem.read_u8(addr).map_err(|_| BusFault {
            addr,
            access: AccessType::Read,
            kind: FaultKind::Unmapped,
        })
    }

    /// Checked byte write.
    pub fn write_u8(&mut self, addr: usize, value: u8) -> Result<(), BusFault> {
        self.check(addr, 1, AccessType::Write)?;
        self.mem.write_u8(addr, value).map_err(|_| BusFault {
            addr,
            access: AccessType::Write,
            kind: FaultKind::Unmapped,
        })
    }

    /// Checked word read.
    pub fn read_u32(&self, addr: usize) -> Result<u32, BusFault> {
        self.check(addr, 4, AccessType::Read)?;
        self.mem.read_u32(addr).map_err(|_| BusFault {
            addr,
            access: AccessType::Read,
            kind: FaultKind::Unmapped,
        })
    }

    /// Checked word write.
    pub fn write_u32(&mut self, addr: usize, value: u32) -> Result<(), BusFault> {
        self.check(addr, 4, AccessType::Write)?;
        self.mem.write_u32(addr, value).map_err(|_| BusFault {
            addr,
            access: AccessType::Write,
            kind: FaultKind::Unmapped,
        })
    }

    /// Checked instruction fetch.
    pub fn fetch(&self, addr: usize) -> Result<u32, BusFault> {
        self.check(addr, 4, AccessType::Execute)?;
        self.mem.read_u32(addr).map_err(|_| BusFault {
            addr,
            access: AccessType::Execute,
            kind: FaultKind::Unmapped,
        })
    }
}

/// A protection unit that admits everything — the state of the world while
/// the MPU is disabled (kernel execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProtection;

impl ProtectionUnit for NoProtection {
    fn check(&self, _: usize, _: usize, _: AccessType, _: Privilege) -> AccessDecision {
        AccessDecision::Allowed
    }
    fn enabled(&self) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_map() -> MemoryMap {
        MemoryMap {
            flash: AddrRange::new(0x0000_0000, 0x0010_0000),
            ram: AddrRange::new(0x2000_0000, 0x2004_0000),
        }
    }

    #[test]
    fn ram_read_write_roundtrip() {
        let mut mem = PhysicalMemory::new(test_map());
        mem.write_u32(0x2000_0100, 0xDEAD_BEEF).unwrap();
        assert_eq!(mem.read_u32(0x2000_0100).unwrap(), 0xDEAD_BEEF);
        mem.write_u8(0x2000_0100, 0x42).unwrap();
        assert_eq!(mem.read_u32(0x2000_0100).unwrap(), 0xDEAD_BE42);
    }

    #[test]
    fn flash_is_programmable_but_not_writable() {
        let mut mem = PhysicalMemory::new(test_map());
        mem.program_flash(0x1000, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mem.read_u32(0x1000).unwrap(), 0x0403_0201);
        assert!(mem.write_u8(0x1000, 9).is_err());
        assert!(mem.write_u32(0x1000, 9).is_err());
    }

    #[test]
    fn unmapped_accesses_error() {
        let mem = PhysicalMemory::new(test_map());
        assert!(mem.read_u8(0x1000_0000).is_err());
        assert!(mem.read_u32(0x2004_0000 - 2).is_err()); // Straddles end.
        assert!(mem.read_u32(usize::MAX - 1).is_err()); // Overflow guarded.
    }

    #[test]
    fn byte_range_helpers() {
        let mut mem = PhysicalMemory::new(test_map());
        mem.write_bytes(0x2000_0000, &[9, 8, 7]).unwrap();
        let mut buf = [0u8; 3];
        mem.read_bytes(0x2000_0000, &mut buf).unwrap();
        assert_eq!(buf, [9, 8, 7]);
        assert!(mem.write_bytes(0x0, &[1]).is_err()); // Flash not writable.
        assert!(mem.program_flash(0x2000_0000, &[1]).is_err()); // RAM not flash.
    }

    #[test]
    fn classify_addresses() {
        let map = test_map();
        assert_eq!(map.classify(0x100), Some(Segment::Flash));
        assert_eq!(map.classify(0x2000_0000), Some(Segment::Ram));
        assert_eq!(map.classify(0x5000_0000), None);
    }

    #[test]
    fn bus_with_no_protection_passes_through() {
        let mut mem = PhysicalMemory::new(test_map());
        let prot = NoProtection;
        let mut bus = Bus::new(&mut mem, &prot, Privilege::Unprivileged);
        bus.write_u32(0x2000_0010, 7).unwrap();
        assert_eq!(bus.read_u32(0x2000_0010).unwrap(), 7);
        assert_eq!(bus.fetch(0x0).unwrap(), 0);
    }

    #[test]
    fn bus_surfaces_unmapped_as_fault() {
        let mut mem = PhysicalMemory::new(test_map());
        let prot = NoProtection;
        let bus = Bus::new(&mut mem, &prot, Privilege::Privileged);
        let err = bus.read_u8(0x9000_0000).unwrap_err();
        assert_eq!(err.kind, FaultKind::Unmapped);
    }

    /// A protection unit denying all writes, for bus fault plumbing tests.
    struct DenyWrites;
    impl ProtectionUnit for DenyWrites {
        fn check(&self, _: usize, _: usize, a: AccessType, _: Privilege) -> AccessDecision {
            if a == AccessType::Write {
                AccessDecision::Fault(FaultKind::PermissionDenied)
            } else {
                AccessDecision::Allowed
            }
        }
        fn enabled(&self) -> bool {
            true
        }
        fn name(&self) -> &'static str {
            "deny-writes"
        }
    }

    #[test]
    fn snapshot_restore_undoes_ram_writes() {
        let mut mem = PhysicalMemory::new(test_map());
        mem.write_u32(0x2000_0100, 0x1111_1111).unwrap();
        let snap = mem.snapshot();
        assert_eq!(mem.dirty_ram_pages(), 0);
        mem.write_u32(0x2000_0100, 0x2222_2222).unwrap();
        mem.write_u8(0x2003_FFFF, 9).unwrap(); // Last byte of RAM.
        assert_eq!(mem.dirty_ram_pages(), 2);
        mem.restore(&snap);
        assert_eq!(mem.read_u32(0x2000_0100).unwrap(), 0x1111_1111);
        assert_eq!(mem.read_u8(0x2003_FFFF).unwrap(), 0);
        assert_eq!(mem.dirty_ram_pages(), 0);
    }

    #[test]
    fn snapshot_restore_covers_flash_reprograms_and_page_straddles() {
        let mut mem = PhysicalMemory::new(test_map());
        mem.program_flash(0x100, &[1, 2, 3, 4]).unwrap();
        let snap = mem.snapshot();
        mem.program_flash(0x100, &[9, 9, 9, 9]).unwrap();
        // A write straddling two snapshot pages dirties both.
        mem.write_bytes(0x2000_0000 + SNAPSHOT_PAGE_SIZE - 2, &[7; 4])
            .unwrap();
        assert_eq!(mem.dirty_ram_pages(), 2);
        mem.restore(&snap);
        assert_eq!(mem.read_u32(0x100).unwrap(), 0x0403_0201);
        assert_eq!(
            mem.read_u32(0x2000_0000 + SNAPSHOT_PAGE_SIZE - 2).unwrap(),
            0
        );
        // Tracking stays armed: the next run's writes are tracked too.
        mem.write_u8(0x2000_0000, 1).unwrap();
        assert_eq!(mem.dirty_ram_pages(), 1);
        mem.restore(&snap);
        assert_eq!(mem.read_u8(0x2000_0000).unwrap(), 0);
    }

    #[test]
    fn restore_without_tracking_copies_everything() {
        let mut a = PhysicalMemory::new(test_map());
        a.write_u32(0x2000_0400, 0xAA).unwrap();
        let snap = a.snapshot();
        // A second instance never armed tracking; restore still works.
        let mut b = PhysicalMemory::new(test_map());
        b.write_u32(0x2000_0800, 0xBB).unwrap();
        b.restore(&snap);
        assert_eq!(b.read_u32(0x2000_0400).unwrap(), 0xAA);
        assert_eq!(b.read_u32(0x2000_0800).unwrap(), 0);
        assert!(snap.bytes() > 0);
    }

    #[test]
    fn merged_dirty_state_makes_snapshot_switching_sound() {
        // Two snapshots of one memory: S0, then a "prefix" write, then
        // S1 (which clears tracking). Restoring S1 and then switching
        // back to S0 must undo the prefix write even though the bitmap
        // no longer remembers it — that is what the merge is for.
        let mut mem = PhysicalMemory::new(test_map());
        let s0 = mem.snapshot();
        mem.write_u32(0x2000_0100, 0xAAAA_AAAA).unwrap(); // Prefix.
        let (prefix_pages, prefix_flash) = mem.dirty_state();
        assert!(!prefix_flash);
        let s1 = mem.snapshot();
        mem.write_u32(0x2000_0800, 0xBBBB_BBBB).unwrap(); // Run.
        mem.restore(&s1);
        assert_eq!(mem.read_u32(0x2000_0100).unwrap(), 0xAAAA_AAAA);
        assert_eq!(mem.read_u32(0x2000_0800).unwrap(), 0);
        // Without the merge, restoring S0 would skip the prefix page.
        mem.merge_dirty_state(&prefix_pages, prefix_flash);
        mem.restore(&s0);
        assert_eq!(mem.read_u32(0x2000_0100).unwrap(), 0);
        // And switching forward again also needs the merge (symmetric).
        mem.merge_dirty_state(&prefix_pages, prefix_flash);
        mem.restore(&s1);
        assert_eq!(mem.read_u32(0x2000_0100).unwrap(), 0xAAAA_AAAA);
    }

    #[test]
    fn merge_dirty_state_is_a_noop_without_tracking() {
        let mut mem = PhysicalMemory::new(test_map());
        assert_eq!(mem.dirty_state(), (Vec::new(), false));
        mem.merge_dirty_state(&[u64::MAX], true); // Ignored, no panic.
        assert_eq!(mem.dirty_ram_pages(), 0);
    }

    #[test]
    fn bus_consults_protection_before_memory() {
        let mut mem = PhysicalMemory::new(test_map());
        mem.write_u32(0x2000_0000, 5).unwrap();
        let prot = DenyWrites;
        let mut bus = Bus::new(&mut mem, &prot, Privilege::Unprivileged);
        assert_eq!(bus.read_u32(0x2000_0000).unwrap(), 5);
        let err = bus.write_u32(0x2000_0000, 6).unwrap_err();
        assert_eq!(err.kind, FaultKind::PermissionDenied);
        // The memory was not modified by the faulting write.
        assert_eq!(bus.read_u32(0x2000_0000).unwrap(), 5);
    }
}
