//! MMIO register field abstraction, in the style of `tock-registers`.
//!
//! The paper's MPU drivers manipulate hardware registers through typed field
//! values (`FieldValueU32<RegionBaseAddress::Register>`). We reproduce the
//! core of that abstraction: a [`Field`] names a contiguous bit range of a
//! 32-bit register, a [`FieldValue`] is a (mask, value) pair ready to be
//! OR-combined, and [`RegisterU32`] is a register copy the driver reads and
//! writes.
//!
//! The bit-twiddling here is exactly the code §4.4 verifies: "the bits of
//! the rbar (base address) and rasr registers are flipped to precisely match
//! the logical values that the kernel tracks".

use std::marker::PhantomData;
use std::ops::Add;

/// Marker trait tying fields to a specific hardware register type.
pub trait RegisterLongName: 'static {
    /// Human-readable register name, used by the trace hook on staged
    /// [`RegisterU32`] writes.
    const NAME: &'static str = "reg";
}

/// Generic register name for untyped use.
#[derive(Debug)]
pub enum Generic {}
impl RegisterLongName for Generic {}

/// A contiguous bit field of a 32-bit register.
#[derive(Debug)]
pub struct Field<R: RegisterLongName = Generic> {
    /// Unshifted mask (e.g. `0x1F` for a 5-bit field).
    pub mask: u32,
    /// Bit offset of the field's least significant bit.
    pub shift: u32,
    _reg: PhantomData<R>,
}

// Manual impls: `derive` would bound `R: Copy` unnecessarily.
impl<R: RegisterLongName> Clone for Field<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R: RegisterLongName> Copy for Field<R> {}

impl<R: RegisterLongName> Field<R> {
    /// Creates a field from an unshifted mask and a shift.
    pub const fn new(mask: u32, shift: u32) -> Self {
        Self {
            mask,
            shift,
            _reg: PhantomData,
        }
    }

    /// Extracts this field's value from a full register value.
    pub const fn read(&self, register: u32) -> u32 {
        (register >> self.shift) & self.mask
    }

    /// Returns `true` if the field is non-zero in `register`.
    pub const fn is_set(&self, register: u32) -> bool {
        self.read(register) != 0
    }

    /// Builds a [`FieldValue`] setting this field to `value` (truncated to
    /// the field width, as hardware would).
    pub const fn val(&self, value: u32) -> FieldValue<R> {
        FieldValue {
            mask: self.mask << self.shift,
            value: (value & self.mask) << self.shift,
            _reg: PhantomData,
        }
    }
}

/// A (mask, value) pair describing a write to one or more fields.
#[derive(Debug)]
pub struct FieldValue<R: RegisterLongName = Generic> {
    /// Shifted mask of all touched bits.
    pub mask: u32,
    /// Shifted value bits (within `mask`).
    pub value: u32,
    _reg: PhantomData<R>,
}

impl<R: RegisterLongName> Clone for FieldValue<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R: RegisterLongName> Copy for FieldValue<R> {}

impl<R: RegisterLongName> FieldValue<R> {
    /// A field value touching no bits.
    pub const fn empty() -> Self {
        Self {
            mask: 0,
            value: 0,
            _reg: PhantomData,
        }
    }

    /// Creates a raw (mask, value) pair.
    pub const fn raw(mask: u32, value: u32) -> Self {
        Self {
            mask,
            value: value & mask,
            _reg: PhantomData,
        }
    }

    /// Returns the raw register bits this value would write.
    pub const fn value(&self) -> u32 {
        self.value
    }

    /// Applies this field value over `register`, preserving untouched bits.
    pub const fn modify(&self, register: u32) -> u32 {
        (register & !self.mask) | self.value
    }

    /// Reads a field back out of this value.
    pub const fn read(&self, field: Field<R>) -> u32 {
        field.read(self.value)
    }

    /// Returns `true` if all of `other`'s value bits are set here.
    pub const fn matches_all(&self, other: FieldValue<R>) -> bool {
        self.value & other.mask == other.value
    }
}

impl<R: RegisterLongName> Add for FieldValue<R> {
    type Output = FieldValue<R>;
    /// Combines two field values (later fields win on overlap, like
    /// tock-registers' `+`).
    fn add(self, rhs: FieldValue<R>) -> FieldValue<R> {
        FieldValue {
            mask: self.mask | rhs.mask,
            value: (self.value & !rhs.mask) | rhs.value,
            _reg: PhantomData,
        }
    }
}

impl<R: RegisterLongName> Default for FieldValue<R> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<R: RegisterLongName> PartialEq for FieldValue<R> {
    fn eq(&self, other: &Self) -> bool {
        self.mask == other.mask && self.value == other.value
    }
}
impl<R: RegisterLongName> Eq for FieldValue<R> {}

/// A local copy of a 32-bit register (read-modify-write staging).
#[derive(Debug)]
pub struct RegisterU32<R: RegisterLongName = Generic> {
    value: u32,
    _reg: PhantomData<R>,
}

impl<R: RegisterLongName> Clone for RegisterU32<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R: RegisterLongName> Copy for RegisterU32<R> {}

impl<R: RegisterLongName> RegisterU32<R> {
    /// Creates a register copy holding `value`.
    pub const fn new(value: u32) -> Self {
        Self {
            value,
            _reg: PhantomData,
        }
    }

    /// Returns the raw 32-bit value.
    pub const fn get(&self) -> u32 {
        self.value
    }

    /// Overwrites the whole register.
    pub fn set(&mut self, value: u32) {
        self.value = value;
        self.trace();
    }

    /// Reads one field.
    pub const fn read(&self, field: Field<R>) -> u32 {
        field.read(self.value)
    }

    /// Returns `true` if the field is non-zero.
    pub const fn is_set(&self, field: Field<R>) -> bool {
        field.is_set(self.value)
    }

    /// Writes the given field values, zeroing all other bits.
    pub fn write(&mut self, fv: FieldValue<R>) {
        self.value = fv.value;
        self.trace();
    }

    /// Read-modify-writes the given field values.
    pub fn modify(&mut self, fv: FieldValue<R>) {
        self.value = fv.modify(self.value);
        self.trace();
    }

    fn trace(&self) {
        crate::trace::record(crate::trace::TraceEvent::RegWrite {
            reg: crate::trace::RegName::Staged(R::NAME),
            index: 0,
            value: self.value,
        });
    }
}

impl<R: RegisterLongName> Default for RegisterU32<R> {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Declares a register layout: a module with typed [`Field`] constants.
///
/// # Examples
///
/// ```
/// tt_hw::register_bitfields! { RegionAttributes:
///     ENABLE(0x1, 0),
///     SIZE(0x1F, 1),
///     SRD(0xFF, 8)
/// }
/// let rasr = RegionAttributes::SIZE.val(9) + RegionAttributes::ENABLE.val(1);
/// assert_eq!(rasr.value(), (9 << 1) | 1);
/// ```
#[macro_export]
macro_rules! register_bitfields {
    ($name:ident: $($(#[$meta:meta])* $field:ident($mask:expr, $shift:expr)),+ $(,)?) => {
        #[allow(non_snake_case, missing_docs)]
        pub mod $name {
            /// The register's long-name marker type.
            #[derive(Debug)]
            pub enum Register {}
            impl $crate::registers::RegisterLongName for Register {
                const NAME: &'static str = stringify!($name);
            }
            $(
                $(#[$meta])*
                pub const $field: $crate::registers::Field<Register> =
                    $crate::registers::Field::new($mask, $shift);
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::register_bitfields! { Test:
        ENABLE(0x1, 0),
        SIZE(0x1F, 1),
        SRD(0xFF, 8),
        AP(0x7, 24)
    }

    #[test]
    fn field_read_extracts_bits() {
        let reg = (0b10101 << 1) | 1;
        assert_eq!(Test::AP.read(0x0300_0000), 3);
        assert_eq!(Test::SIZE.read(reg), 0b10101);
        assert_eq!(Test::ENABLE.read(reg), 1);
        assert!(Test::ENABLE.is_set(reg));
        assert!(!Test::SRD.is_set(reg));
    }

    #[test]
    fn field_val_truncates_to_width() {
        let fv = Test::SIZE.val(0xFFFF_FFFF);
        assert_eq!(fv.value(), 0x1F << 1);
    }

    #[test]
    fn field_values_combine_with_add() {
        let fv = Test::SIZE.val(9) + Test::SRD.val(0b1110_0000) + Test::ENABLE.val(1);
        assert_eq!(fv.value(), (9 << 1) | (0b1110_0000 << 8) | 1);
        assert_eq!(fv.read(Test::SRD), 0b1110_0000);
    }

    #[test]
    fn later_field_wins_on_overlap() {
        let fv = Test::SIZE.val(0x1F) + Test::SIZE.val(3);
        assert_eq!(fv.read(Test::SIZE), 3);
    }

    #[test]
    fn modify_preserves_untouched_bits() {
        let mut r = RegisterU32::<Test::Register>::new(0);
        r.write(Test::SIZE.val(7) + Test::ENABLE.val(1));
        r.modify(Test::SRD.val(0xAA));
        assert_eq!(r.read(Test::SIZE), 7);
        assert_eq!(r.read(Test::ENABLE), 1);
        assert_eq!(r.read(Test::SRD), 0xAA);
        r.modify(Test::ENABLE.val(0));
        assert_eq!(r.read(Test::ENABLE), 0);
        assert_eq!(r.read(Test::SIZE), 7);
    }

    #[test]
    fn write_zeroes_other_bits() {
        let mut r = RegisterU32::<Test::Register>::new(0xFFFF_FFFF);
        r.write(Test::ENABLE.val(1));
        assert_eq!(r.get(), 1);
    }

    #[test]
    fn matches_all_checks_subset() {
        let fv = Test::SIZE.val(9) + Test::ENABLE.val(1);
        assert!(fv.matches_all(Test::ENABLE.val(1)));
        assert!(fv.matches_all(Test::SIZE.val(9)));
        assert!(!fv.matches_all(Test::SIZE.val(8)));
    }

    #[test]
    fn exhaustive_field_roundtrip() {
        // For every 5-bit value, val() then read() is the identity.
        for v in 0u32..32 {
            assert_eq!(Test::SIZE.val(v).read(Test::SIZE), v);
        }
        for v in 0u32..256 {
            assert_eq!(Test::SRD.val(v).read(Test::SRD), v);
        }
    }
}
