//! Thread-local switch (and accounting) for the MPU commit cache.
//!
//! PR 2 teaches the stack to skip hardware writes whose values are
//! already live in the register file: the Cortex-M register file elides
//! unchanged `RBAR`/`RASR` pairs, the granular PMP driver diff-commits
//! entries, and the machine layer skips whole commits when the
//! `(pid, generation)` pair matches. All three optimisations consult the
//! single flag in this module, so disabling it restores the exact
//! pre-cache cycle counts and Full-scope traces — that is what the
//! caching-on-vs-off equivalence proptests and the "before" column of
//! `BENCH_fig11.json` rely on.
//!
//! Like [`crate::cycles`] and [`crate::trace`], the state is
//! thread-local so parallel differential runs do not interfere.

use std::cell::Cell;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(true) };
    static ELIDED: Cell<u64> = const { Cell::new(0) };
}

/// Returns `true` when commit elision is enabled on this thread (the
/// default).
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Enables or disables commit elision (returns the previous state).
pub fn set_enabled(on: bool) -> bool {
    ENABLED.with(|e| e.replace(on))
}

/// Runs `f` with commit elision forced off, restoring the previous state
/// afterwards. This is the "before" configuration: every register write
/// reaches the register file and charges its full [`crate::cycles`] cost.
pub fn with_disabled<T>(f: impl FnOnce() -> T) -> T {
    let prev = set_enabled(false);
    let value = f();
    set_enabled(prev);
    value
}

/// Records `n` register writes elided because the live register values
/// already matched.
#[inline]
pub fn note_elided(n: u64) {
    ELIDED.with(|e| e.set(e.get().wrapping_add(n)));
}

/// Returns the number of register writes elided on this thread since the
/// last [`reset_elided`].
pub fn elided() -> u64 {
    ELIDED.with(|e| e.get())
}

/// Resets the elided-write counter to zero.
pub fn reset_elided() {
    ELIDED.with(|e| e.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_by_default_and_toggles() {
        assert!(enabled());
        let prev = set_enabled(false);
        assert!(prev);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    fn with_disabled_restores_state() {
        assert!(enabled());
        with_disabled(|| assert!(!enabled()));
        assert!(enabled());
    }

    #[test]
    fn elided_counter_accumulates_and_resets() {
        reset_elided();
        note_elided(2);
        note_elided(4);
        assert_eq!(elided(), 6);
        reset_elided();
        assert_eq!(elided(), 0);
    }
}
