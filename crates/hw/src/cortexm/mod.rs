//! ARMv7-M (Cortex-M) protected-memory system architecture, PMSAv7.
//!
//! Models the MPU the paper's ARM driver configures: eight regions, each a
//! power-of-two-sized, size-aligned block described by an RBAR/RASR register
//! pair, with eight independently disableable subregions per region (for
//! regions of 256 bytes or more). The access-check logic follows the
//! ARMv7-M Architecture Reference Manual §B3.5.

pub mod mpu;

pub use mpu::{CortexMpu, RegionAttributes, RegionBaseAddress, MIN_REGION_SIZE, NUM_REGIONS};
