//! The Cortex-M MPU register model and access-check semantics.
//!
//! This is the hardware side of the paper's trusted base: "writing to the
//! MPU registers … is part of TickTock's TCB because this behavior is
//! determined by the MPU hardware" (§6.1). Both allocator implementations
//! (legacy monolithic and granular) drive this same model, so a
//! misconfiguration — e.g. an enabled subregion overlapping the grant
//! region — produces a concrete, observable isolation break.

use crate::mem::{AccessDecision, AccessType, FaultKind, Privilege, ProtectionUnit};
use crate::register_bitfields;

/// Number of MPU regions on every ARMv7-M chip Tock supports.
pub const NUM_REGIONS: usize = 8;

/// Minimum region size in bytes (SIZE field value 4 → 2^5 = 32).
pub const MIN_REGION_SIZE: usize = 32;

/// Minimum region size for which subregions exist (2^8 = 256 bytes).
pub const MIN_SUBREGIONS_SIZE: usize = 256;

register_bitfields! { RegionBaseAddress:
    /// Region number to update when VALID is set.
    REGION(0xF, 0),
    /// Write the REGION field through to MPU_RNR.
    VALID(0x1, 4),
    /// Base address bits `[31:5]`.
    ADDR(0x7FF_FFFF, 5)
}

register_bitfields! { RegionAttributes:
    /// Region enable.
    ENABLE(0x1, 0),
    /// Region size exponent minus one: size = 2^(SIZE + 1).
    SIZE(0x1F, 1),
    /// Subregion disable bits (bit i disables subregion i).
    SRD(0xFF, 8),
    /// Access permissions (privileged / unprivileged), ARMv7-M AP encoding.
    AP(0x7, 24),
    /// Execute never.
    XN(0x1, 28)
}

/// Decoded access permission for one privilege level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ap {
    read: bool,
    write: bool,
}

/// Decodes the ARMv7-M AP field for the given privilege (ARM ARM B3.5.2).
fn decode_ap(ap: u32, priv_: Privilege) -> Ap {
    let (priv_ap, unpriv_ap) = match ap {
        0b000 => (
            Ap {
                read: false,
                write: false,
            },
            Ap {
                read: false,
                write: false,
            },
        ),
        0b001 => (
            Ap {
                read: true,
                write: true,
            },
            Ap {
                read: false,
                write: false,
            },
        ),
        0b010 => (
            Ap {
                read: true,
                write: true,
            },
            Ap {
                read: true,
                write: false,
            },
        ),
        0b011 => (
            Ap {
                read: true,
                write: true,
            },
            Ap {
                read: true,
                write: true,
            },
        ),
        0b101 => (
            Ap {
                read: true,
                write: false,
            },
            Ap {
                read: false,
                write: false,
            },
        ),
        0b110 | 0b111 => (
            Ap {
                read: true,
                write: false,
            },
            Ap {
                read: true,
                write: false,
            },
        ),
        // 0b100 is UNPREDICTABLE; the model treats it as no access.
        _ => (
            Ap {
                read: false,
                write: false,
            },
            Ap {
                read: false,
                write: false,
            },
        ),
    };
    match priv_ {
        Privilege::Privileged => priv_ap,
        Privilege::Unprivileged => unpriv_ap,
    }
}

/// One region's RBAR/RASR register pair, as held in hardware.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionRegs {
    /// Base-address register value.
    pub rbar: u32,
    /// Attributes-and-size register value.
    pub rasr: u32,
}

impl RegionRegs {
    /// Returns `true` if the region enable bit is set.
    pub fn enabled(&self) -> bool {
        RegionAttributes::ENABLE.is_set(self.rasr)
    }

    /// Returns the region size in bytes: `2^(SIZE + 1)`.
    pub fn size(&self) -> usize {
        let exp = RegionAttributes::SIZE.read(self.rasr) + 1;
        1usize << exp
    }

    /// Returns the base address (bits `[31:5]` of RBAR).
    pub fn base(&self) -> usize {
        (self.rbar & 0xFFFF_FFE0) as usize
    }

    /// Returns the SRD subregion-disable byte.
    pub fn srd(&self) -> u32 {
        RegionAttributes::SRD.read(self.rasr)
    }

    /// Returns whether `addr` hits this region, taking subregion disable
    /// bits into account. `None` means no hit; `Some(true)` means hit in an
    /// enabled subregion; `Some(false)` means hit in a disabled subregion.
    pub fn hit(&self, addr: usize) -> Option<bool> {
        if !self.enabled() {
            return None;
        }
        let size = self.size();
        let base = self.base();
        // Hardware behaviour: the region matches addresses where
        // (addr & ~(size-1)) == base; base is size-aligned by construction
        // because low RBAR bits below the size are ignored.
        let effective_base = base & !(size - 1);
        if addr & !(size - 1) != effective_base {
            return None;
        }
        if size >= MIN_SUBREGIONS_SIZE {
            let sub = (addr - effective_base) / (size / 8);
            let disabled = self.srd() & (1 << sub) != 0;
            Some(!disabled)
        } else {
            Some(true)
        }
    }

    /// Decodes whether the access type is permitted at the privilege level.
    pub fn permits(&self, access: AccessType, priv_: Privilege) -> bool {
        let ap = decode_ap(RegionAttributes::AP.read(self.rasr), priv_);
        match access {
            AccessType::Read => ap.read,
            AccessType::Write => ap.write,
            AccessType::Execute => ap.read && !RegionAttributes::XN.is_set(self.rasr),
        }
    }
}

/// The MPU peripheral: control register plus eight region register pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CortexMpu {
    /// MPU_CTRL.ENABLE.
    pub enable: bool,
    /// MPU_CTRL.PRIVDEFENA: privileged accesses fall back to the default
    /// memory map when no region matches.
    pub privdefena: bool,
    /// MPU_RNR: region number selected for RBAR/RASR writes.
    rnr: usize,
    /// The eight region register pairs.
    regions: [RegionRegs; NUM_REGIONS],
    /// Write log: region indices in the order RASR writes committed, used by
    /// the §6.1 differential test that caught the region write-order bug.
    write_order: Vec<usize>,
}

impl Default for CortexMpu {
    fn default() -> Self {
        Self::new()
    }
}

impl CortexMpu {
    /// Creates a reset-state MPU: disabled, all regions invalid.
    pub fn new() -> Self {
        Self {
            enable: false,
            privdefena: true,
            rnr: 0,
            regions: [RegionRegs::default(); NUM_REGIONS],
            write_order: Vec::new(),
        }
    }

    /// MPU_TYPE.DREGION.
    pub fn dregion(&self) -> usize {
        NUM_REGIONS
    }

    /// Writes MPU_CTRL.
    pub fn write_ctrl(&mut self, enable: bool, privdefena: bool) {
        crate::cycles::charge(crate::cycles::Cost::MmioWrite);
        crate::trace::record(crate::trace::TraceEvent::RegWrite {
            reg: crate::trace::RegName::Ctrl,
            index: 0,
            value: (enable as u32) | ((privdefena as u32) << 2),
        });
        self.enable = enable;
        self.privdefena = privdefena;
    }

    /// Writes MPU_RNR.
    pub fn write_rnr(&mut self, region: usize) {
        crate::cycles::charge(crate::cycles::Cost::MmioWrite);
        self.rnr = region % NUM_REGIONS;
        crate::trace::record(crate::trace::TraceEvent::RegWrite {
            reg: crate::trace::RegName::Rnr,
            index: self.rnr as u8,
            value: self.rnr as u32,
        });
    }

    /// Writes MPU_RBAR. If VALID is set, the REGION field also updates
    /// MPU_RNR — the write-through behaviour Tock's driver relies on.
    pub fn write_rbar(&mut self, value: u32) {
        crate::cycles::charge(crate::cycles::Cost::MmioWrite);
        // Fault-injection point: a single-event upset flips the value on
        // the bus, so the stored state, the trace and the VALID/REGION
        // decode below all see the corrupted word.
        let value =
            crate::injection::mutate_reg_write(crate::injection::InjectionPoint::ArmRbar, value);
        if RegionBaseAddress::VALID.is_set(value) {
            self.rnr = RegionBaseAddress::REGION.read(value) as usize % NUM_REGIONS;
        }
        self.regions[self.rnr].rbar = value;
        crate::trace::record(crate::trace::TraceEvent::RegWrite {
            reg: crate::trace::RegName::Rbar,
            index: self.rnr as u8,
            value,
        });
    }

    /// Writes MPU_RASR for the currently selected region.
    pub fn write_rasr(&mut self, value: u32) {
        crate::cycles::charge(crate::cycles::Cost::MmioWrite);
        let value =
            crate::injection::mutate_reg_write(crate::injection::InjectionPoint::ArmRasr, value);
        self.regions[self.rnr].rasr = value;
        self.write_order.push(self.rnr);
        crate::trace::record(crate::trace::TraceEvent::RegWrite {
            reg: crate::trace::RegName::Rasr,
            index: self.rnr as u8,
            value,
        });
    }

    /// Composes the RBAR value `write_region` commits for `region`: the
    /// aligned base with VALID set and the REGION field selecting the slot.
    pub fn compose_rbar(region: usize, rbar: u32) -> u32 {
        (rbar & !0x1F)
            | RegionBaseAddress::VALID.val(1).value()
            | RegionBaseAddress::REGION.val(region as u32).value()
    }

    /// Returns `true` if the live register pair for `region` already holds
    /// exactly what `write_region(region, rbar, rasr)` would commit. Used
    /// by the write-elision path and by the commit-cache soundness
    /// obligation; reads no hardware, charges no cycles.
    pub fn region_matches(&self, region: usize, rbar: u32, rasr: u32) -> bool {
        self.regions[region]
            == RegionRegs {
                rbar: Self::compose_rbar(region, rbar),
                rasr,
            }
    }

    /// Convenience: writes a whole region pair via the RBAR VALID path.
    ///
    /// When [`crate::commit_cache`] is enabled and the live register pair
    /// already holds exactly these values, the RNR-select and both data
    /// writes are elided: no `MmioWrite` is charged, no trace events are
    /// recorded, and the write-order log is untouched — the driver-level
    /// dirty-region optimisation the Tock retrospective describes.
    pub fn write_region(&mut self, region: usize, rbar: u32, rasr: u32) {
        if crate::commit_cache::enabled() && self.region_matches(region, rbar, rasr) {
            crate::commit_cache::note_elided(2);
            return;
        }
        self.write_rbar(Self::compose_rbar(region, rbar));
        self.write_rasr(rasr);
    }

    /// Reads back a region's registers (test/inspection interface).
    pub fn region(&self, region: usize) -> RegionRegs {
        self.regions[region]
    }

    /// Drains the RASR write-order log in commit order without giving up
    /// the log's allocation (the §6.1 differential path drains this after
    /// every commit, so a fresh `Vec` per drain would churn the allocator).
    pub fn drain_write_order(&mut self) -> std::vec::Drain<'_, usize> {
        self.write_order.drain(..)
    }

    /// Checks a single byte address (ARM ARM B3.5.3 permission check).
    // TRUSTED: this is the hardware semantics itself — the spec isolation
    // is judged against, validated by differential tests, not verified.
    fn check_byte(&self, addr: usize, access: AccessType, priv_: Privilege) -> AccessDecision {
        if !self.enable {
            return AccessDecision::Allowed;
        }
        // Higher-numbered regions take priority on overlap.
        let mut decision: Option<AccessDecision> = None;
        for region in self.regions.iter().rev() {
            match region.hit(addr) {
                Some(true) => {
                    decision = Some(if region.permits(access, priv_) {
                        AccessDecision::Allowed
                    } else {
                        AccessDecision::Fault(FaultKind::PermissionDenied)
                    });
                    break;
                }
                Some(false) => {
                    // A disabled subregion: the region does not match; lower
                    // priority regions may still match this address.
                    continue;
                }
                None => continue,
            }
        }
        match decision {
            Some(d) => d,
            None => {
                if priv_ == Privilege::Privileged && self.privdefena {
                    AccessDecision::Allowed
                } else {
                    AccessDecision::Fault(FaultKind::NoRegionMatch)
                }
            }
        }
    }
}

impl ProtectionUnit for CortexMpu {
    fn check(
        &self,
        addr: usize,
        size: usize,
        access: AccessType,
        priv_: Privilege,
    ) -> AccessDecision {
        // An access faults if any byte of it faults (unaligned accesses that
        // straddle region boundaries are checked per byte, ARM ARM B3.5.3).
        let size = size.max(1);
        for offset in 0..size {
            match self.check_byte(addr.wrapping_add(offset), access, priv_) {
                AccessDecision::Allowed => {}
                fault => return fault,
            }
        }
        AccessDecision::Allowed
    }

    fn enabled(&self) -> bool {
        self.enable
    }

    fn name(&self) -> &'static str {
        "armv7m-mpu"
    }
}

/// Encodes a region size in bytes into the RASR SIZE field value.
///
/// Size must be a power of two `>= 32`; returns `SIZE` such that
/// `2^(SIZE+1) == size`.
pub fn size_to_rasr_field(size: usize) -> u32 {
    debug_assert!(tt_contracts::math::is_pow2(size) && size >= MIN_REGION_SIZE);
    size.trailing_zeros() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rasr(size: usize, srd: u32, ap: u32, xn: u32) -> u32 {
        (RegionAttributes::ENABLE.val(1)
            + RegionAttributes::SIZE.val(size_to_rasr_field(size))
            + RegionAttributes::SRD.val(srd)
            + RegionAttributes::AP.val(ap)
            + RegionAttributes::XN.val(xn))
        .value()
    }

    fn unpriv_allowed(mpu: &CortexMpu, addr: usize, access: AccessType) -> bool {
        mpu.check(addr, 1, access, Privilege::Unprivileged)
            .allowed()
    }

    #[test]
    fn disabled_mpu_allows_everything() {
        let mpu = CortexMpu::new();
        assert!(unpriv_allowed(&mpu, 0xDEAD_0000, AccessType::Write));
    }

    #[test]
    fn enabled_mpu_denies_unmatched_unprivileged() {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        assert!(!unpriv_allowed(&mpu, 0x2000_0000, AccessType::Read));
        // Privileged access falls back to the default map (PRIVDEFENA).
        assert!(mpu
            .check(0x2000_0000, 4, AccessType::Read, Privilege::Privileged)
            .allowed());
    }

    #[test]
    fn region_grants_unprivileged_rw() {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        mpu.write_region(0, 0x2000_0000, rasr(1024, 0, 0b011, 1));
        assert!(unpriv_allowed(&mpu, 0x2000_0000, AccessType::Read));
        assert!(unpriv_allowed(&mpu, 0x2000_03FF, AccessType::Write));
        assert!(!unpriv_allowed(&mpu, 0x2000_0400, AccessType::Read));
        // XN = 1 forbids execution even with read permission.
        assert!(!unpriv_allowed(&mpu, 0x2000_0000, AccessType::Execute));
    }

    #[test]
    fn read_execute_region_for_flash() {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        mpu.write_region(2, 0x0004_0000, rasr(4096, 0, 0b110, 0));
        assert!(unpriv_allowed(&mpu, 0x0004_0000, AccessType::Execute));
        assert!(unpriv_allowed(&mpu, 0x0004_0FFC, AccessType::Read));
        assert!(!unpriv_allowed(&mpu, 0x0004_0000, AccessType::Write));
    }

    #[test]
    fn subregion_disable_bits_carve_holes() {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        // 2048-byte region, subregions of 256 bytes; disable subregions 6,7
        // (the top 512 bytes — the classic grant-region carve-out).
        mpu.write_region(0, 0x2000_0000, rasr(2048, 0b1100_0000, 0b011, 1));
        assert!(unpriv_allowed(&mpu, 0x2000_0000, AccessType::Write));
        assert!(unpriv_allowed(&mpu, 0x2000_05FF, AccessType::Write)); // Subregion 5.
        assert!(!unpriv_allowed(&mpu, 0x2000_0600, AccessType::Write)); // Subregion 6.
        assert!(!unpriv_allowed(&mpu, 0x2000_07FF, AccessType::Write)); // Subregion 7.
    }

    #[test]
    fn subregion_boundaries_are_exact() {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        // 4096-byte region at 0x2000_1000, each subregion 512 bytes; only
        // subregion 3 disabled.
        mpu.write_region(1, 0x2000_1000, rasr(4096, 0b0000_1000, 0b011, 1));
        for sub in 0..8usize {
            let addr = 0x2000_1000 + sub * 512;
            let expect = sub != 3;
            assert_eq!(
                unpriv_allowed(&mpu, addr, AccessType::Read),
                expect,
                "sub {sub} start"
            );
            assert_eq!(
                unpriv_allowed(&mpu, addr + 511, AccessType::Read),
                expect,
                "sub {sub} end"
            );
        }
    }

    #[test]
    fn higher_region_number_takes_priority() {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        // Region 0: RW over 4 KiB. Region 7: read-only over the top 1 KiB.
        mpu.write_region(0, 0x2000_0000, rasr(4096, 0, 0b011, 1));
        mpu.write_region(7, 0x2000_0C00, rasr(1024, 0, 0b110, 1));
        assert!(unpriv_allowed(&mpu, 0x2000_0000, AccessType::Write));
        assert!(unpriv_allowed(&mpu, 0x2000_0C00, AccessType::Read));
        assert!(!unpriv_allowed(&mpu, 0x2000_0C00, AccessType::Write));
    }

    #[test]
    fn disabled_subregion_falls_through_to_lower_region() {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        // Region 0 covers everything RW; region 1 overlaps with a disabled
        // subregion — ARM semantics: the disabled subregion does not match,
        // so region 0 still applies there.
        mpu.write_region(0, 0x2000_0000, rasr(8192, 0, 0b011, 1));
        mpu.write_region(1, 0x2000_0000, rasr(2048, 0b0000_0001, 0b110, 1));
        // Subregion 0 of region 1 disabled → region 0's RW applies.
        assert!(unpriv_allowed(&mpu, 0x2000_0000, AccessType::Write));
        // Subregion 1 of region 1 enabled → region 1's RO wins.
        assert!(!unpriv_allowed(&mpu, 0x2000_0100, AccessType::Write));
    }

    #[test]
    fn base_address_low_bits_ignored_per_size() {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        // A 1 KiB region programmed with a base not 1 KiB-aligned: hardware
        // ignores the low bits of the base below the region size.
        mpu.write_region(0, 0x2000_0123 & !0x1F, rasr(1024, 0, 0b011, 1));
        assert!(unpriv_allowed(&mpu, 0x2000_0000, AccessType::Read));
        assert!(!unpriv_allowed(&mpu, 0x2000_0400, AccessType::Read));
    }

    #[test]
    fn multi_byte_access_checks_every_byte() {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        mpu.write_region(0, 0x2000_0000, rasr(1024, 0, 0b011, 1));
        // A 4-byte access straddling the region end faults.
        assert!(!mpu
            .check(0x2000_03FE, 4, AccessType::Read, Privilege::Unprivileged)
            .allowed());
        assert!(mpu
            .check(0x2000_03FC, 4, AccessType::Read, Privilege::Unprivileged)
            .allowed());
    }

    #[test]
    fn rbar_valid_bit_selects_region() {
        let mut mpu = CortexMpu::new();
        let rbar = 0x2000_0000u32
            | RegionBaseAddress::VALID.val(1).value()
            | RegionBaseAddress::REGION.val(5).value();
        mpu.write_rbar(rbar);
        mpu.write_rasr(rasr(1024, 0, 0b011, 1));
        assert!(mpu.region(5).enabled());
        assert_eq!(mpu.region(5).base(), 0x2000_0000);
        assert_eq!(mpu.region(5).size(), 1024);
    }

    #[test]
    fn rnr_path_without_valid_bit() {
        let mut mpu = CortexMpu::new();
        mpu.write_rnr(3);
        mpu.write_rbar(0x2000_0400); // VALID clear: RNR stays 3.
        mpu.write_rasr(rasr(1024, 0, 0b110, 0));
        assert!(mpu.region(3).enabled());
        assert_eq!(mpu.region(3).base(), 0x2000_0400);
    }

    #[test]
    fn write_order_log_records_rasr_commits() {
        let mut mpu = CortexMpu::new();
        mpu.write_region(2, 0, rasr(32, 0, 0, 0));
        mpu.write_region(0, 0, rasr(32, 0, 0, 0));
        mpu.write_region(1, 0, rasr(32, 0, 0, 0));
        assert_eq!(mpu.drain_write_order().collect::<Vec<_>>(), vec![2, 0, 1]);
        assert_eq!(mpu.drain_write_order().next(), None);
    }

    #[test]
    fn write_region_elides_unchanged_pairs() {
        let mut mpu = CortexMpu::new();
        crate::commit_cache::set_enabled(true);
        crate::commit_cache::reset_elided();
        mpu.write_region(1, 0x2000_0000, rasr(1024, 0, 0b011, 1));
        let after_first = crate::cycles::now();
        // Same values again: no cycles, no write-order entry, elision noted.
        mpu.write_region(1, 0x2000_0000, rasr(1024, 0, 0b011, 1));
        assert_eq!(crate::cycles::now(), after_first);
        assert_eq!(mpu.drain_write_order().collect::<Vec<_>>(), vec![1]);
        assert_eq!(crate::commit_cache::elided(), 2);
        // A changed RASR still writes (and re-selects via RBAR VALID).
        mpu.write_region(1, 0x2000_0000, rasr(2048, 0, 0b011, 1));
        assert_eq!(mpu.region(1).size(), 2048);
        assert_eq!(mpu.drain_write_order().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn write_region_elision_respects_the_toggle() {
        let mut mpu = CortexMpu::new();
        mpu.write_region(0, 0x2000_0000, rasr(512, 0, 0b011, 1));
        let _ = mpu.drain_write_order();
        crate::commit_cache::with_disabled(|| {
            let before = crate::cycles::now();
            mpu.write_region(0, 0x2000_0000, rasr(512, 0, 0b011, 1));
            // Toggle off: both writes happen and charge 2 × MmioWrite.
            assert_eq!(crate::cycles::now() - before, 8);
        });
        assert_eq!(mpu.drain_write_order().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn ap_decoding_truth_table() {
        use Privilege::*;
        // (ap, priv read, priv write, unpriv read, unpriv write)
        let table = [
            (0b000u32, false, false, false, false),
            (0b001, true, true, false, false),
            (0b010, true, true, true, false),
            (0b011, true, true, true, true),
            (0b101, true, false, false, false),
            (0b110, true, false, true, false),
            (0b111, true, false, true, false),
        ];
        for (ap, pr, pw, ur, uw) in table {
            let p = decode_ap(ap, Privileged);
            let u = decode_ap(ap, Unprivileged);
            assert_eq!(
                (p.read, p.write, u.read, u.write),
                (pr, pw, ur, uw),
                "ap {ap:03b}"
            );
        }
    }

    #[test]
    fn size_field_roundtrip() {
        for exp in 5..=31u32 {
            let size = 1usize << exp;
            let field = size_to_rasr_field(size);
            let r = RegionRegs {
                rbar: 0,
                rasr: (RegionAttributes::ENABLE.val(1) + RegionAttributes::SIZE.val(field)).value(),
            };
            assert_eq!(r.size(), size);
        }
    }

    #[test]
    fn small_regions_ignore_srd() {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        // 128-byte region: SRD must be ignored (subregions need >= 256 B).
        mpu.write_region(0, 0x2000_0000, rasr(128, 0xFF, 0b011, 1));
        assert!(unpriv_allowed(&mpu, 0x2000_0000, AccessType::Read));
    }
}
