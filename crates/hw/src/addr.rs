//! Refined addresses: the reproduction of Flux-STD's `PtrU8`.
//!
//! The paper wraps raw `*const u8` pointers into a `PtrU8` that tracks the
//! address as a refinement index, enabling verified (non-overflowing)
//! pointer arithmetic (§5). In the simulator all addresses are plain
//! integers into the modelled physical address space, so `PtrU8` is an
//! address-carrying newtype whose arithmetic is contract-checked.

use std::fmt;
use std::ops::{Add, Sub};
use tt_contracts::{checked_add, checked_sub};

/// A refined byte pointer: an address in the simulated physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PtrU8(usize);

impl PtrU8 {
    /// Creates a pointer to `addr`.
    pub const fn new(addr: usize) -> Self {
        Self(addr)
    }

    /// The null pointer.
    pub const fn null() -> Self {
        Self(0)
    }

    /// Returns the raw address (the paper's `as_usize`).
    pub const fn as_usize(self) -> usize {
        self.0
    }

    /// Offsets the pointer forward, reporting an overflow obligation if the
    /// addition wraps (Flux would reject such code).
    pub fn offset(self, bytes: usize) -> Self {
        Self(checked_add("PtrU8::offset", self.0, bytes))
    }

    /// Offsets the pointer backward, reporting an underflow obligation if
    /// the subtraction wraps.
    pub fn offset_back(self, bytes: usize) -> Self {
        Self(checked_sub("PtrU8::offset_back", self.0, bytes))
    }

    /// Returns `true` if the address is aligned to power-of-two `align`.
    pub fn is_aligned(self, align: usize) -> bool {
        tt_contracts::math::is_aligned(self.0, align)
    }

    /// Aligns the address up to power-of-two `align`.
    pub fn align_up(self, align: usize) -> Self {
        Self(tt_contracts::math::align_up(self.0, align))
    }
}

impl Add<usize> for PtrU8 {
    type Output = PtrU8;
    fn add(self, rhs: usize) -> PtrU8 {
        self.offset(rhs)
    }
}

impl Sub<PtrU8> for PtrU8 {
    type Output = usize;
    fn sub(self, rhs: PtrU8) -> usize {
        checked_sub("PtrU8::sub", self.0, rhs.0)
    }
}

impl fmt::LowerHex for PtrU8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Display for PtrU8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl From<usize> for PtrU8 {
    fn from(addr: usize) -> Self {
        Self(addr)
    }
}

/// A half-open address range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    /// Inclusive start address.
    pub start: usize,
    /// Exclusive end address.
    pub end: usize,
}

impl AddrRange {
    /// Creates a range; `start <= end` is an invariant.
    pub fn new(start: usize, end: usize) -> Self {
        tt_contracts::invariant!("AddrRange", start <= end);
        Self { start, end }
    }

    /// Creates a range from a start pointer and a length.
    pub fn from_start_size(start: PtrU8, size: usize) -> Self {
        Self::new(start.as_usize(), start.offset(size).as_usize())
    }

    /// Returns the number of bytes covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns `true` if `addr` lies inside the range.
    pub fn contains(&self, addr: usize) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Returns `true` if `other` lies entirely inside this range.
    pub fn contains_range(&self, other: &AddrRange) -> bool {
        other.is_empty() || (other.start >= self.start && other.end <= self.end)
    }

    /// Returns `true` if the two ranges share at least one byte.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_contracts::{take_violations, with_mode, Mode};

    #[test]
    fn ptr_arithmetic_roundtrip() {
        let p = PtrU8::new(0x2000_0000);
        assert_eq!((p + 0x100).as_usize(), 0x2000_0100);
        assert_eq!((p + 0x100) - p, 0x100);
        assert_eq!(p.offset_back(0x10).as_usize(), 0x1FFF_FFF0);
    }

    #[test]
    fn ptr_overflow_is_an_obligation_not_a_wrap() {
        with_mode(Mode::Observe, || {
            let p = PtrU8::new(usize::MAX);
            assert_eq!(p.offset(2).as_usize(), usize::MAX); // Saturates.
            let q = PtrU8::new(0);
            assert_eq!(q.offset_back(1).as_usize(), 0);
        });
        assert_eq!(take_violations().len(), 2);
    }

    #[test]
    fn ptr_alignment_helpers() {
        let p = PtrU8::new(0x2000_0011);
        assert!(!p.is_aligned(32));
        assert_eq!(p.align_up(32).as_usize(), 0x2000_0020);
        assert!(PtrU8::new(0x2000_0020).is_aligned(32));
    }

    #[test]
    fn range_contains_and_len() {
        let r = AddrRange::new(100, 200);
        assert_eq!(r.len(), 100);
        assert!(r.contains(100));
        assert!(r.contains(199));
        assert!(!r.contains(200));
        assert!(!r.contains(99));
        assert!(!r.is_empty());
        assert!(AddrRange::new(5, 5).is_empty());
    }

    #[test]
    fn range_overlap_cases() {
        let a = AddrRange::new(100, 200);
        assert!(a.overlaps(&AddrRange::new(150, 250)));
        assert!(a.overlaps(&AddrRange::new(50, 101)));
        assert!(a.overlaps(&AddrRange::new(120, 130)));
        assert!(!a.overlaps(&AddrRange::new(200, 300))); // Touching, no share.
        assert!(!a.overlaps(&AddrRange::new(0, 100)));
        assert!(!a.overlaps(&AddrRange::new(150, 150))); // Empty never overlaps.
    }

    #[test]
    fn range_containment() {
        let a = AddrRange::new(100, 200);
        assert!(a.contains_range(&AddrRange::new(100, 200)));
        assert!(a.contains_range(&AddrRange::new(150, 160)));
        assert!(a.contains_range(&AddrRange::new(120, 120))); // Empty fits anywhere.
        assert!(!a.contains_range(&AddrRange::new(99, 150)));
        assert!(!a.contains_range(&AddrRange::new(150, 201)));
    }

    #[test]
    fn inverted_range_violates_invariant() {
        with_mode(Mode::Observe, || {
            let _ = AddrRange::new(10, 5);
        });
        assert_eq!(take_violations().len(), 1);
    }

    #[test]
    fn display_formats_as_hex() {
        assert_eq!(PtrU8::new(0x20001000).to_string(), "0x20001000");
    }
}
