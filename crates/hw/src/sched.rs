//! Deterministic interrupt-arrival schedules ("adversarial timing").
//!
//! The fault-injection engine ([`crate::injection`]) decides *what* goes
//! wrong; this module decides *when* the timer interrupt lands. The
//! paper's isolation argument (§4.5) exists precisely because interrupt
//! timing around syscall and MPU/PMP commit boundaries is where seeded
//! tests cannot reach — a bug may only manifest when an interrupt lands
//! *between* a staged protection write and its hardware commit.
//!
//! An [`InterruptSchedule`] names up to [`MAX_ARRIVALS`] arrival points:
//! "the `at`-th time execution passes boundary `point`, the timer
//! interrupt fires there instead of at the next tick top". The kernel
//! consults [`arrival`] at each boundary; when it returns `true` the
//! kernel services the interrupt at that exact spot. Schedules encode to
//! a compact 64-bit [`InterruptSchedule::id`] so any exploration failure
//! is a one-line deterministic repro, exactly like an injection seed.
//!
//! The engine is thread-local like the injection engine: occurrence
//! counters live per worker, [`arm_with_seen`] resumes them across a
//! mid-run snapshot, and the disarmed fast path is a single scalar read
//! of [`tt_contracts::simctx::SimContext::sched_armed`].

use std::cell::RefCell;

use tt_contracts::simctx;

/// Where an interrupt arrival may be scheduled. Each point corresponds
/// to one boundary the kernel consults, identified in the trace ring by
/// the event that brackets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArrivalPoint {
    /// Immediately after a syscall handler records `SyscallEnter` —
    /// the interrupt preempts the handler before it does any work.
    SyscallEnter,
    /// Immediately before a syscall handler records `SyscallExit` —
    /// the interrupt lands after the handler's work, before the return.
    SyscallExit,
    /// Inside the kernel's MPU/PMP commit helper, *between* the staged
    /// configuration being decided and the hardware write-out — the
    /// stage→commit window of §4.5.
    MpuCommit,
    /// At a scheduler decision boundary: after the scheduler picks a
    /// process and establishes its protection, before its slice runs.
    SchedulerDecision,
}

/// All arrival points, for schedule enumeration and exhaustive tests.
pub const ALL_ARRIVAL_POINTS: [ArrivalPoint; 4] = [
    ArrivalPoint::SyscallEnter,
    ArrivalPoint::SyscallExit,
    ArrivalPoint::MpuCommit,
    ArrivalPoint::SchedulerDecision,
];

/// Largest occurrence index a schedule slot can encode (13 bits).
pub const MAX_AT: u32 = (1 << 13) - 1;

/// Most arrivals one schedule can carry (one per 16-bit ID slot).
pub const MAX_ARRIVALS: usize = 4;

/// One scheduled interrupt arrival: the timer fires at the `at`-th time
/// execution passes `point` (0-based, counted since [`arm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Arrival {
    /// Which boundary.
    pub point: ArrivalPoint,
    /// Which occurrence of the boundary (0 = the first since arming).
    pub at: u32,
}

/// A complete, replayable interrupt-arrival schedule for one run.
///
/// Canonical form (what [`Self::new`] and [`Self::from_id`] produce):
/// arrivals sorted by `(point, at)` with duplicates removed, so equal
/// schedules compare equal and `id` round-trips bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InterruptSchedule {
    /// The scheduled arrivals (each fires at most once).
    pub arrivals: Vec<Arrival>,
}

fn point_index(point: ArrivalPoint) -> usize {
    ALL_ARRIVAL_POINTS
        .iter()
        .position(|p| *p == point)
        .expect("known point")
}

impl InterruptSchedule {
    /// The empty schedule: armed runs count boundary occurrences (so a
    /// snapshot can record them) but never fire an interrupt.
    pub fn empty() -> Self {
        Self { arrivals: vec![] }
    }

    /// Builds a canonical schedule from arrivals (sorted, deduped,
    /// truncated to [`MAX_ARRIVALS`], occurrence clamped to [`MAX_AT`]).
    pub fn new(mut arrivals: Vec<Arrival>) -> Self {
        for a in &mut arrivals {
            a.at = a.at.min(MAX_AT);
        }
        arrivals.sort_by_key(|a| (point_index(a.point), a.at));
        arrivals.dedup();
        arrivals.truncate(MAX_ARRIVALS);
        Self { arrivals }
    }

    /// The single-arrival schedule — the explorer's bread and butter.
    pub fn single(point: ArrivalPoint, at: u32) -> Self {
        Self::new(vec![Arrival { point, at }])
    }

    /// Encodes the schedule as a replayable 64-bit ID: four 16-bit
    /// slots, each `0` (empty) or `(point_index + 1) << 13 | at`.
    pub fn id(&self) -> u64 {
        let mut id = 0u64;
        for (slot, a) in self.arrivals.iter().take(MAX_ARRIVALS).enumerate() {
            let v = ((point_index(a.point) as u64 + 1) << 13) | u64::from(a.at.min(MAX_AT));
            id |= v << (16 * slot);
        }
        id
    }

    /// Decodes a schedule ID back into its canonical schedule. Every
    /// value [`Self::id`] produces round-trips exactly; unknown point
    /// tags in foreign IDs decode as empty slots.
    pub fn from_id(id: u64) -> Self {
        let mut arrivals = Vec::with_capacity(MAX_ARRIVALS);
        for slot in 0..MAX_ARRIVALS {
            let v = (id >> (16 * slot)) & 0xFFFF;
            let tag = (v >> 13) as usize;
            if tag == 0 || tag > ALL_ARRIVAL_POINTS.len() {
                continue;
            }
            arrivals.push(Arrival {
                point: ALL_ARRIVAL_POINTS[tag - 1],
                at: (v & MAX_AT as u64) as u32,
            });
        }
        Self::new(arrivals)
    }

    /// Returns `true` if any scheduled arrival would fire during a run
    /// prefix whose per-point occurrence counts
    /// ([`ALL_ARRIVAL_POINTS`] order) are `seen` — i.e. the arrival
    /// belongs in the prefix a mid-run snapshot would skip, so the
    /// runner must fall back to a full run (the schedule analogue of
    /// `InjectionPlan::fires_within`).
    pub fn fires_within(&self, seen: &[u32; ALL_ARRIVAL_POINTS.len()]) -> bool {
        self.arrivals
            .iter()
            .any(|a| a.at < seen[point_index(a.point)])
    }
}

struct Engine {
    schedule: InterruptSchedule,
    /// Occurrences of each point, indexed in [`ALL_ARRIVAL_POINTS`] order.
    seen: [u32; ALL_ARRIVAL_POINTS.len()],
    /// One-shot flags, parallel to `schedule.arrivals`.
    fired: Vec<bool>,
    fired_count: u64,
}

thread_local! {
    // `ManuallyDrop` for the same reason as the injection engine: keep
    // the const-initialized TLS fast path for every boundary the kernel
    // passes. `arm`/`disarm` assign and `take` through the `DerefMut`,
    // so engines still drop normally; only a thread exiting while armed
    // leaks its (tiny) schedule, and exploration workers always disarm.
    static ENGINE: RefCell<std::mem::ManuallyDrop<Option<Engine>>> =
        const { RefCell::new(std::mem::ManuallyDrop::new(None)) };
}

/// Arms the engine with a schedule. Occurrence counters and one-shot
/// flags start fresh; any previously armed schedule is discarded.
pub fn arm(schedule: InterruptSchedule) {
    arm_with_seen(schedule, [0; ALL_ARRIVAL_POINTS.len()]);
}

/// Arms the engine with occurrence counters starting at `seen` — the
/// mid-run-snapshot form of [`arm`]. Sound only when no arrival was
/// scheduled inside the skipped prefix (callers must check
/// [`InterruptSchedule::fires_within`] first).
pub fn arm_with_seen(schedule: InterruptSchedule, seen: [u32; ALL_ARRIVAL_POINTS.len()]) {
    debug_assert!(
        !schedule.fires_within(&seen),
        "schedule fires inside the skipped prefix"
    );
    simctx::with(|c| c.sched_armed.set(true));
    ENGINE.with(|e| {
        let fired = vec![false; schedule.arrivals.len()];
        **e.borrow_mut() = Some(Engine {
            schedule,
            seen,
            fired,
            fired_count: 0,
        });
    });
}

/// The per-point occurrence counters accumulated since [`arm`] (in
/// [`ALL_ARRIVAL_POINTS`] order), or `None` when disarmed. A mid-run
/// snapshot records these at capture time and replays them into
/// [`arm_with_seen`] on every restore.
pub fn seen_counts() -> Option<[u32; ALL_ARRIVAL_POINTS.len()]> {
    ENGINE.with(|e| e.borrow().as_ref().map(|eng| eng.seen))
}

/// Disarms the engine, returning how many arrivals fired since [`arm`].
pub fn disarm() -> u64 {
    simctx::with(|c| c.sched_armed.set(false));
    ENGINE.with(|e| e.borrow_mut().take().map_or(0, |eng| eng.fired_count))
}

/// Returns `true` if a schedule is armed on this thread.
pub fn is_armed() -> bool {
    ENGINE.with(|e| e.borrow().is_some())
}

/// Number of arrivals fired since the last [`arm`] (0 when disarmed).
pub fn fired_count() -> u64 {
    ENGINE.with(|e| e.borrow().as_ref().map_or(0, |eng| eng.fired_count))
}

/// Boundary hook: bumps the occurrence counter for `point` and returns
/// `true` when the armed schedule fires the timer interrupt here. The
/// kernel then services the interrupt at this exact spot (and records
/// the trace events — the engine only answers the timing question).
///
/// Unlike injection hooks, arrivals are not pid-scoped: a timer
/// interrupt lands wherever the boundary is, in any process context.
#[inline]
pub fn arrival(point: ArrivalPoint) -> bool {
    // Fast path: one scalar TLS flag rejects every boundary while no
    // schedule is armed — the common case for every non-explorer run.
    if simctx::with(|c| !c.sched_armed.get()) {
        return false;
    }
    ENGINE.with(|e| {
        let mut slot = e.borrow_mut();
        let Some(eng) = slot.as_mut() else {
            return false;
        };
        let idx = point_index(point);
        let occurrence = eng.seen[idx];
        eng.seen[idx] = occurrence.wrapping_add(1);
        let hit = eng
            .schedule
            .arrivals
            .iter()
            .enumerate()
            .find(|(i, a)| !eng.fired[*i] && a.point == point && a.at == occurrence)
            .map(|(i, _)| i);
        let Some(i) = hit else {
            return false;
        };
        eng.fired[i] = true;
        eng.fired_count += 1;
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_arrivals_never_fire() {
        assert!(!is_armed());
        for p in ALL_ARRIVAL_POINTS {
            assert!(!arrival(p));
        }
        assert_eq!(fired_count(), 0);
        assert_eq!(seen_counts(), None);
    }

    #[test]
    fn arrival_fires_once_at_the_scheduled_occurrence() {
        arm(InterruptSchedule::single(ArrivalPoint::MpuCommit, 2));
        assert!(!arrival(ArrivalPoint::MpuCommit)); // occurrence 0
        assert!(!arrival(ArrivalPoint::SyscallEnter)); // other point
        assert!(!arrival(ArrivalPoint::MpuCommit)); // occurrence 1
        assert!(arrival(ArrivalPoint::MpuCommit)); // occurrence 2: fires
        assert!(!arrival(ArrivalPoint::MpuCommit)); // one-shot
        assert_eq!(disarm(), 1);
        assert!(!is_armed());
    }

    #[test]
    fn empty_schedule_counts_occurrences_without_firing() {
        arm(InterruptSchedule::empty());
        assert!(!arrival(ArrivalPoint::SyscallExit));
        assert!(!arrival(ArrivalPoint::SyscallExit));
        assert!(!arrival(ArrivalPoint::SchedulerDecision));
        let seen = seen_counts().expect("armed");
        assert_eq!(seen, [0, 2, 0, 1]);
        assert_eq!(disarm(), 0);
    }

    #[test]
    fn ids_round_trip_for_all_single_and_multi_arrival_schedules() {
        for point in ALL_ARRIVAL_POINTS {
            for at in [0, 1, 7, 100, MAX_AT] {
                let s = InterruptSchedule::single(point, at);
                assert_eq!(InterruptSchedule::from_id(s.id()), s, "{point:?}@{at}");
            }
        }
        let multi = InterruptSchedule::new(vec![
            Arrival {
                point: ArrivalPoint::SchedulerDecision,
                at: 9,
            },
            Arrival {
                point: ArrivalPoint::SyscallEnter,
                at: 3,
            },
            Arrival {
                point: ArrivalPoint::MpuCommit,
                at: 0,
            },
        ]);
        assert_eq!(InterruptSchedule::from_id(multi.id()), multi);
        assert_eq!(InterruptSchedule::from_id(0), InterruptSchedule::empty());
        assert_eq!(InterruptSchedule::empty().id(), 0);
    }

    #[test]
    fn new_canonicalizes_order_duplicates_and_bounds() {
        let a = InterruptSchedule::new(vec![
            Arrival {
                point: ArrivalPoint::SyscallExit,
                at: 5,
            },
            Arrival {
                point: ArrivalPoint::SyscallEnter,
                at: MAX_AT + 100, // clamped
            },
            Arrival {
                point: ArrivalPoint::SyscallExit,
                at: 5, // duplicate
            },
        ]);
        assert_eq!(
            a.arrivals,
            vec![
                Arrival {
                    point: ArrivalPoint::SyscallEnter,
                    at: MAX_AT,
                },
                Arrival {
                    point: ArrivalPoint::SyscallExit,
                    at: 5,
                },
            ]
        );
        // Same content, different construction order: same ID.
        let b = InterruptSchedule::new(vec![
            Arrival {
                point: ArrivalPoint::SyscallEnter,
                at: MAX_AT,
            },
            Arrival {
                point: ArrivalPoint::SyscallExit,
                at: 5,
            },
        ]);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn arm_with_seen_resumes_occurrence_counting_mid_stream() {
        let s = InterruptSchedule::single(ArrivalPoint::SyscallEnter, 3);
        arm(s.clone());
        assert!(!arrival(ArrivalPoint::SyscallEnter)); // 0
        assert!(!arrival(ArrivalPoint::SyscallEnter)); // 1
        let seen = seen_counts().expect("armed");
        assert_eq!(seen[0], 2);
        assert!(!s.fires_within(&seen)); // at=3 is after the prefix
        disarm();
        arm_with_seen(s, seen);
        assert!(!arrival(ArrivalPoint::SyscallEnter)); // 2
        assert!(arrival(ArrivalPoint::SyscallEnter)); // 3: fires
        assert_eq!(disarm(), 1);
    }

    #[test]
    fn fires_within_flags_prefix_scheduled_arrivals() {
        let s = InterruptSchedule::single(ArrivalPoint::SchedulerDecision, 1);
        let mut seen = [0u32; ALL_ARRIVAL_POINTS.len()];
        assert!(!s.fires_within(&seen));
        seen[3] = 1; // SchedulerDecision; at=1 not yet reached.
        assert!(!s.fires_within(&seen));
        seen[3] = 2; // Occurrence 1 happened inside the prefix.
        assert!(s.fires_within(&seen));
        assert!(!InterruptSchedule::empty().fires_within(&seen));
    }
}
