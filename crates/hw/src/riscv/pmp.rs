//! PMP entry matching and permission semantics.
//!
//! Each PMP entry is a `pmpcfg` byte (R, W, X, A, L fields) plus a
//! `pmpaddr` CSR holding `address >> 2`. Matching follows the privileged
//! spec: the **lowest-numbered** matching entry decides; machine mode is
//! allowed by default when no entry matches, user mode is denied.
//! Contrast with the Cortex-M MPU, where the *highest*-numbered region wins
//! — one of the architecture asymmetries the granular abstraction hides.

use crate::mem::{AccessDecision, AccessType, FaultKind, Privilege, ProtectionUnit};

/// pmpcfg.R: read permission bit.
pub const PMP_R: u8 = 1 << 0;
/// pmpcfg.W: write permission bit.
pub const PMP_W: u8 = 1 << 1;
/// pmpcfg.X: execute permission bit.
pub const PMP_X: u8 = 1 << 2;
/// pmpcfg.L: lock bit (entry also applies to machine mode).
pub const PMP_L: u8 = 1 << 7;

/// pmpcfg.A address-matching mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressMode {
    /// Entry disabled.
    Off,
    /// Top-of-range: matches `[pmpaddr[i-1] << 2, pmpaddr[i] << 2)`.
    Tor,
    /// Naturally aligned four-byte region.
    Na4,
    /// Naturally aligned power-of-two region, size >= 8.
    Napot,
}

impl AddressMode {
    /// Encodes into the 2-bit A field.
    pub const fn encode(self) -> u8 {
        match self {
            AddressMode::Off => 0,
            AddressMode::Tor => 1,
            AddressMode::Na4 => 2,
            AddressMode::Napot => 3,
        }
    }

    /// Decodes from the 2-bit A field.
    pub const fn decode(bits: u8) -> Self {
        match bits & 0b11 {
            0 => AddressMode::Off,
            1 => AddressMode::Tor,
            2 => AddressMode::Na4,
            _ => AddressMode::Napot,
        }
    }
}

/// A decoded PMP entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmpEntry {
    /// Raw pmpcfg byte.
    pub cfg: u8,
    /// Raw pmpaddr CSR value (`address >> 2`).
    pub addr: u32,
}

impl PmpEntry {
    /// Returns the address-matching mode.
    pub fn mode(&self) -> AddressMode {
        AddressMode::decode(self.cfg >> 3)
    }

    /// Returns `true` if the entry is locked.
    pub fn locked(&self) -> bool {
        self.cfg & PMP_L != 0
    }

    /// Returns the matched byte range `[start, end)` for non-TOR modes.
    /// TOR needs the previous entry's address, so it is handled by the unit.
    fn napot_range(&self) -> Option<(usize, usize)> {
        match self.mode() {
            AddressMode::Na4 => {
                let start = (self.addr as usize) << 2;
                Some((start, start + 4))
            }
            AddressMode::Napot => {
                // Trailing ones in pmpaddr encode the size:
                // size = 8 << trailing_ones.
                let ones = self.addr.trailing_ones();
                let size = 8usize << ones;
                let base = ((self.addr as usize) << 2) & !(size - 1);
                Some((base, base + size))
            }
            _ => None,
        }
    }

    /// Returns `true` if the permission bits admit the access type.
    fn permits(&self, access: AccessType) -> bool {
        match access {
            AccessType::Read => self.cfg & PMP_R != 0,
            AccessType::Write => self.cfg & PMP_W != 0,
            AccessType::Execute => self.cfg & PMP_X != 0,
        }
    }
}

/// Chip profile: how many PMP entries the silicon provides and its
/// granularity. These are the three RISC-V chips the paper verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmpChip {
    /// SiFive Freedom E310 (HiFive1 rev B): 8 usable entries, G = 4 B.
    SifiveE310,
    /// Espressif ESP32-C3: 16 entries, G = 4 B.
    Esp32C3,
    /// lowRISC Ibex in OpenTitan Earl Grey: 16 entries, NA4 disabled
    /// (granularity 8 B, so NA4 is architecturally unavailable).
    IbexEarlGrey,
}

impl PmpChip {
    /// Number of PMP entries.
    pub const fn entries(self) -> usize {
        match self {
            PmpChip::SifiveE310 => 8,
            PmpChip::Esp32C3 => 16,
            PmpChip::IbexEarlGrey => 16,
        }
    }

    /// PMP granularity in bytes.
    pub const fn granularity(self) -> usize {
        match self {
            PmpChip::SifiveE310 | PmpChip::Esp32C3 => 4,
            PmpChip::IbexEarlGrey => 8,
        }
    }

    /// Whether NA4 mode is supported (it is not when G > 4).
    pub const fn supports_na4(self) -> bool {
        self.granularity() == 4
    }

    /// All profiles, for exhaustive driver tests.
    pub const ALL: [PmpChip; 3] = [PmpChip::SifiveE310, PmpChip::Esp32C3, PmpChip::IbexEarlGrey];
}

/// The PMP unit: an array of entries plus the chip profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiscvPmp {
    chip: PmpChip,
    entries: Vec<PmpEntry>,
    /// Model of mseccfg.MMWP-style lockdown is not needed for Tock; user
    /// isolation only requires entry matching. Kernel runs in M-mode.
    enabled: bool,
}

impl RiscvPmp {
    /// Creates a reset-state PMP for the given chip (all entries OFF).
    pub fn new(chip: PmpChip) -> Self {
        Self {
            chip,
            entries: vec![PmpEntry::default(); chip.entries()],
            enabled: true,
        }
    }

    /// Returns the chip profile.
    pub fn chip(&self) -> PmpChip {
        self.chip
    }

    /// Writes one pmpcfg byte. Writes to locked entries are ignored, as in
    /// hardware.
    pub fn write_cfg(&mut self, index: usize, cfg: u8) {
        crate::cycles::charge(crate::cycles::Cost::MmioWrite);
        // Fault-injection point: the flip lands before lock/NA4 handling,
        // as a corrupted CSR write would.
        let cfg = crate::injection::mutate_reg_write(
            crate::injection::InjectionPoint::PmpCfg,
            cfg as u32,
        ) as u8;
        if index < self.entries.len() && !self.entries[index].locked() {
            let mut cfg = cfg;
            // G > 4 chips: NA4 is reserved; hardware reads it back as OFF.
            if !self.chip.supports_na4() && AddressMode::decode(cfg >> 3) == AddressMode::Na4 {
                cfg &= !(0b11 << 3);
            }
            self.entries[index].cfg = cfg;
            crate::trace::record(crate::trace::TraceEvent::RegWrite {
                reg: crate::trace::RegName::PmpCfg,
                index: index as u8,
                value: cfg as u32,
            });
        }
    }

    /// Writes one pmpaddr CSR. Ignored if the entry (or the next entry in
    /// TOR mode) is locked.
    pub fn write_addr(&mut self, index: usize, addr: u32) {
        crate::cycles::charge(crate::cycles::Cost::MmioWrite);
        if index >= self.entries.len() || self.entries[index].locked() {
            return;
        }
        if index + 1 < self.entries.len() {
            let next = self.entries[index + 1];
            if next.locked() && next.mode() == AddressMode::Tor {
                return;
            }
        }
        self.entries[index].addr = addr;
        crate::trace::record(crate::trace::TraceEvent::RegWrite {
            reg: crate::trace::RegName::PmpAddr,
            index: index as u8,
            value: addr,
        });
    }

    /// Reads back one entry (test/inspection interface).
    pub fn entry(&self, index: usize) -> PmpEntry {
        self.entries[index]
    }

    /// Returns `true` if entry `index` already holds the state that
    /// `write_addr(index, addr)` + `write_cfg(index, cfg)` would leave
    /// behind, applying the same NA4-reserved normalisation the write path
    /// does on G > 4 chips. Used by the granular driver's diff-commit and
    /// the commit-cache soundness obligation; charges no cycles.
    pub fn entry_matches(&self, index: usize, addr: u32, cfg: u8) -> bool {
        let Some(entry) = self.entries.get(index) else {
            return false;
        };
        let mut cfg = cfg;
        if !self.chip.supports_na4() && AddressMode::decode(cfg >> 3) == AddressMode::Na4 {
            cfg &= !(0b11 << 3);
        }
        *entry == PmpEntry { cfg, addr }
    }

    /// Clears every (unlocked) entry to OFF.
    pub fn clear(&mut self) {
        for i in 0..self.entries.len() {
            self.write_cfg(i, 0);
            self.write_addr(i, 0);
        }
    }

    /// Returns the byte range matched by entry `index`, resolving TOR
    /// against the previous entry's address.
    pub fn entry_range(&self, index: usize) -> Option<(usize, usize)> {
        let e = self.entries[index];
        match e.mode() {
            AddressMode::Off => None,
            AddressMode::Tor => {
                let lo = if index == 0 {
                    0
                } else {
                    (self.entries[index - 1].addr as usize) << 2
                };
                let hi = (e.addr as usize) << 2;
                if lo < hi {
                    Some((lo, hi))
                } else {
                    // An empty TOR range matches nothing.
                    None
                }
            }
            _ => e.napot_range(),
        }
    }

    // TRUSTED: the PMP matching semantics from the privileged spec.
    fn check_byte(&self, addr: usize, access: AccessType, priv_: Privilege) -> AccessDecision {
        // Lowest-numbered matching entry has priority.
        for (i, e) in self.entries.iter().enumerate() {
            let Some((lo, hi)) = self.entry_range(i) else {
                continue;
            };
            if addr < lo || addr >= hi {
                continue;
            }
            // Matched. M-mode ignores unlocked entries; locked entries and
            // all U-mode accesses use the permission bits.
            return match priv_ {
                Privilege::Privileged if !e.locked() => AccessDecision::Allowed,
                Privilege::Privileged => {
                    if e.permits(access) {
                        AccessDecision::Allowed
                    } else {
                        AccessDecision::Fault(FaultKind::LockedEntry)
                    }
                }
                Privilege::Unprivileged => {
                    if e.permits(access) {
                        AccessDecision::Allowed
                    } else {
                        AccessDecision::Fault(FaultKind::PermissionDenied)
                    }
                }
            };
        }
        // No match: M-mode default-allow, U-mode default-deny.
        match priv_ {
            Privilege::Privileged => AccessDecision::Allowed,
            Privilege::Unprivileged => AccessDecision::Fault(FaultKind::NoRegionMatch),
        }
    }
}

impl ProtectionUnit for RiscvPmp {
    fn check(
        &self,
        addr: usize,
        size: usize,
        access: AccessType,
        priv_: Privilege,
    ) -> AccessDecision {
        let size = size.max(1);
        for offset in 0..size {
            match self.check_byte(addr.wrapping_add(offset), access, priv_) {
                AccessDecision::Allowed => {}
                fault => return fault,
            }
        }
        AccessDecision::Allowed
    }

    fn enabled(&self) -> bool {
        self.enabled
    }

    fn name(&self) -> &'static str {
        match self.chip {
            PmpChip::SifiveE310 => "pmp-e310",
            PmpChip::Esp32C3 => "pmp-esp32c3",
            PmpChip::IbexEarlGrey => "pmp-ibex",
        }
    }
}

/// Encodes a NAPOT region `[base, base + size)` into a pmpaddr value.
///
/// `size` must be a power of two `>= 8` and `base` aligned to `size`.
pub fn napot_addr(base: usize, size: usize) -> u32 {
    debug_assert!(tt_contracts::math::is_pow2(size) && size >= 8);
    debug_assert!(base.is_multiple_of(size));
    ((base >> 2) | ((size >> 3) - 1)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unpriv(pmp: &RiscvPmp, addr: usize, access: AccessType) -> bool {
        pmp.check(addr, 1, access, Privilege::Unprivileged)
            .allowed()
    }

    #[test]
    fn empty_pmp_denies_user_allows_machine() {
        let pmp = RiscvPmp::new(PmpChip::SifiveE310);
        assert!(!unpriv(&pmp, 0x2000_0000, AccessType::Read));
        assert!(pmp
            .check(0x2000_0000, 4, AccessType::Write, Privilege::Privileged)
            .allowed());
    }

    #[test]
    fn tor_pair_grants_user_range() {
        let mut pmp = RiscvPmp::new(PmpChip::SifiveE310);
        // Entry 0: bottom of range marker; entry 1: TOR with RW.
        pmp.write_addr(0, (0x8002_0000u32) >> 2);
        pmp.write_cfg(0, 0); // OFF, used only as the TOR base.
        pmp.write_addr(1, (0x8002_2000u32) >> 2);
        pmp.write_cfg(1, PMP_R | PMP_W | (AddressMode::Tor.encode() << 3));
        assert!(unpriv(&pmp, 0x8002_0000, AccessType::Read));
        assert!(unpriv(&pmp, 0x8002_1FFF, AccessType::Write));
        assert!(!unpriv(&pmp, 0x8002_2000, AccessType::Read));
        assert!(!unpriv(&pmp, 0x8001_FFFF, AccessType::Read));
        assert!(!unpriv(&pmp, 0x8002_0000, AccessType::Execute));
    }

    #[test]
    fn tor_entry0_bases_at_zero() {
        let mut pmp = RiscvPmp::new(PmpChip::Esp32C3);
        pmp.write_addr(0, 0x1000 >> 2);
        pmp.write_cfg(0, PMP_R | PMP_X | (AddressMode::Tor.encode() << 3));
        assert!(unpriv(&pmp, 0x0, AccessType::Execute));
        assert!(unpriv(&pmp, 0xFFF, AccessType::Read));
        assert!(!unpriv(&pmp, 0x1000, AccessType::Read));
    }

    #[test]
    fn napot_region_matching() {
        let mut pmp = RiscvPmp::new(PmpChip::Esp32C3);
        pmp.write_addr(0, napot_addr(0x4000_0000, 4096));
        pmp.write_cfg(0, PMP_R | PMP_W | (AddressMode::Napot.encode() << 3));
        assert!(unpriv(&pmp, 0x4000_0000, AccessType::Read));
        assert!(unpriv(&pmp, 0x4000_0FFF, AccessType::Write));
        assert!(!unpriv(&pmp, 0x4000_1000, AccessType::Read));
        assert!(!unpriv(&pmp, 0x3FFF_FFFF, AccessType::Read));
    }

    #[test]
    fn napot_encoding_roundtrip() {
        for exp in 3..20u32 {
            let size = 1usize << exp;
            let base = 0x8000_0000usize;
            let mut pmp = RiscvPmp::new(PmpChip::Esp32C3);
            pmp.write_addr(0, napot_addr(base, size));
            pmp.write_cfg(0, PMP_R | (AddressMode::Napot.encode() << 3));
            let (lo, hi) = pmp.entry_range(0).unwrap();
            assert_eq!((lo, hi), (base, base + size), "size {size}");
        }
    }

    #[test]
    fn na4_matches_exactly_four_bytes() {
        let mut pmp = RiscvPmp::new(PmpChip::SifiveE310);
        pmp.write_addr(0, 0x8000_0100 >> 2);
        pmp.write_cfg(0, PMP_R | (AddressMode::Na4.encode() << 3));
        assert!(unpriv(&pmp, 0x8000_0100, AccessType::Read));
        assert!(unpriv(&pmp, 0x8000_0103, AccessType::Read));
        assert!(!unpriv(&pmp, 0x8000_0104, AccessType::Read));
    }

    #[test]
    fn ibex_rejects_na4_mode() {
        let mut pmp = RiscvPmp::new(PmpChip::IbexEarlGrey);
        pmp.write_cfg(0, PMP_R | (AddressMode::Na4.encode() << 3));
        assert_eq!(pmp.entry(0).mode(), AddressMode::Off);
    }

    #[test]
    fn lowest_numbered_entry_wins() {
        let mut pmp = RiscvPmp::new(PmpChip::Esp32C3);
        // Entry 0: read-only over a NAPOT block. Entry 1: RW over a
        // superset. PMP semantics: entry 0 decides inside its range.
        pmp.write_addr(0, napot_addr(0x8000_0000, 1024));
        pmp.write_cfg(0, PMP_R | (AddressMode::Napot.encode() << 3));
        pmp.write_addr(1, napot_addr(0x8000_0000, 8192));
        pmp.write_cfg(1, PMP_R | PMP_W | (AddressMode::Napot.encode() << 3));
        assert!(!unpriv(&pmp, 0x8000_0000, AccessType::Write)); // Entry 0 RO.
        assert!(unpriv(&pmp, 0x8000_0400, AccessType::Write)); // Entry 1 RW.
    }

    #[test]
    fn locked_entry_constrains_machine_mode() {
        let mut pmp = RiscvPmp::new(PmpChip::SifiveE310);
        pmp.write_addr(0, napot_addr(0x8000_0000, 1024));
        pmp.write_cfg(0, PMP_R | PMP_L | (AddressMode::Napot.encode() << 3));
        // M-mode read allowed, write denied by the locked RO entry.
        assert!(pmp
            .check(0x8000_0000, 4, AccessType::Read, Privilege::Privileged)
            .allowed());
        assert!(!pmp
            .check(0x8000_0000, 4, AccessType::Write, Privilege::Privileged)
            .allowed());
        // Locked entries ignore further writes.
        pmp.write_cfg(0, PMP_R | PMP_W);
        assert!(pmp.entry(0).locked());
        pmp.write_addr(0, 0);
        assert_eq!(pmp.entry(0).addr, napot_addr(0x8000_0000, 1024));
    }

    #[test]
    fn unlocked_entry_is_transparent_to_machine_mode() {
        let mut pmp = RiscvPmp::new(PmpChip::SifiveE310);
        pmp.write_addr(0, napot_addr(0x8000_0000, 1024));
        pmp.write_cfg(0, PMP_R | (AddressMode::Napot.encode() << 3));
        // M-mode may write despite the entry granting only R to U-mode.
        assert!(pmp
            .check(0x8000_0000, 4, AccessType::Write, Privilege::Privileged)
            .allowed());
    }

    #[test]
    fn empty_tor_range_matches_nothing() {
        let mut pmp = RiscvPmp::new(PmpChip::SifiveE310);
        pmp.write_addr(0, 0x8000_1000 >> 2);
        pmp.write_cfg(0, 0);
        pmp.write_addr(1, 0x8000_1000 >> 2); // hi == lo.
        pmp.write_cfg(1, PMP_R | PMP_W | (AddressMode::Tor.encode() << 3));
        assert!(!unpriv(&pmp, 0x8000_1000, AccessType::Read));
        assert_eq!(pmp.entry_range(1), None);
    }

    #[test]
    fn multi_byte_straddle_faults() {
        let mut pmp = RiscvPmp::new(PmpChip::Esp32C3);
        pmp.write_addr(0, napot_addr(0x8000_0000, 1024));
        pmp.write_cfg(0, PMP_R | (AddressMode::Napot.encode() << 3));
        assert!(pmp
            .check(0x8000_03FC, 4, AccessType::Read, Privilege::Unprivileged)
            .allowed());
        assert!(!pmp
            .check(0x8000_03FE, 4, AccessType::Read, Privilege::Unprivileged)
            .allowed());
    }

    #[test]
    fn chip_profiles_expose_limits() {
        assert_eq!(PmpChip::SifiveE310.entries(), 8);
        assert_eq!(PmpChip::Esp32C3.entries(), 16);
        assert_eq!(PmpChip::IbexEarlGrey.granularity(), 8);
        assert!(PmpChip::Esp32C3.supports_na4());
        assert!(!PmpChip::IbexEarlGrey.supports_na4());
    }

    #[test]
    fn clear_resets_unlocked_entries() {
        let mut pmp = RiscvPmp::new(PmpChip::Esp32C3);
        pmp.write_addr(2, napot_addr(0x8000_0000, 64));
        pmp.write_cfg(2, PMP_R | (AddressMode::Napot.encode() << 3));
        pmp.clear();
        assert_eq!(pmp.entry(2), PmpEntry::default());
    }
}
