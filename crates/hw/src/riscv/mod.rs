//! RISC-V physical memory protection (PMP), priv. spec v1.12 §3.7.
//!
//! Models the PMP unit the paper's RISC-V driver configures, for the three
//! 32-bit chips TickTock verifies: SiFive E310 (HiFive1), Espressif
//! ESP32-C3, and the lowRISC Ibex core in OpenTitan Earl Grey.

pub mod pmp;

pub use pmp::{AddressMode, PmpChip, PmpEntry, RiscvPmp};
