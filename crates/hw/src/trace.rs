//! Kernel event tracing: a fixed-capacity ring buffer of typed events.
//!
//! The differential oracle in `tt-kernel` compares *final* run outcomes;
//! two kernels can diverge mid-run (a wrong MPU register write, a missed
//! fault, a mis-ordered upcall) and still converge to the same console
//! output. This module records *what the system observably did*, step by
//! step, so the oracle can report the first divergent event instead.
//!
//! Like [`crate::cycles`], the sink is thread-local so parallel tests do
//! not interfere. The enabled flag lives *inside* the ring's own
//! thread-local cell (mirrored into
//! [`tt_contracts::simctx::SimContext`] for cheap [`is_enabled`]
//! queries), so [`record`] is **one** TLS access per event — flag check
//! and ring push behind a single `with` — and a single flag load when
//! tracing is disabled (the default). Recording is zero-allocation in
//! steady state:
//! the buffer is allocated once at [`enable`], retained across
//! enable/disable cycles, and events are `Copy`; when the ring is full
//! the oldest event is overwritten and a drop counter is bumped. Drained
//! event buffers can be handed back with [`recycle`] so a long campaign
//! of enable/record/[`take`] runs on one thread settles into zero
//! allocations per run.
//!
//! Crucially, tracing never calls into [`crate::cycles`]: enabling a
//! trace must not perturb the cycle-accurate cost model that Fig. 11/12
//! experiments depend on.

use tt_contracts::simctx;

/// Which hardware register a [`TraceEvent::RegWrite`] hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegName {
    /// Cortex-M `MPU_CTRL` (value bit0 = ENABLE, bit2 = PRIVDEFENA).
    Ctrl,
    /// Cortex-M `MPU_RNR` region number register.
    Rnr,
    /// Cortex-M `MPU_RBAR` region base address register.
    Rbar,
    /// Cortex-M `MPU_RASR` region attribute and size register.
    Rasr,
    /// RISC-V `pmpcfg` byte for one entry.
    PmpCfg,
    /// RISC-V `pmpaddr` CSR for one entry.
    PmpAddr,
    /// A staged [`crate::registers::RegisterU32`] copy (driver-side
    /// read-modify-write staging, not yet committed to hardware).
    Staged(&'static str),
}

/// Which system call a [`TraceEvent::SyscallEnter`]/`SyscallExit` pair
/// describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SyscallKind {
    /// `brk(new_break)`.
    Brk,
    /// `sbrk(delta)`.
    Sbrk,
    /// `memop(op, arg)`.
    Memop,
    /// `subscribe(driver, upcall)`.
    Subscribe,
    /// `allow_ro(driver, addr, len)`.
    AllowRo,
    /// `allow_rw(driver, addr, len)`.
    AllowRw,
    /// `command(driver, cmd, arg)`.
    Command,
    /// The debug `print` syscall.
    Print,
}

/// Direction of a [`TraceEvent::ContextSwitch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SwitchDir {
    /// The process is being switched onto the (virtual) CPU.
    In,
    /// The process is being switched off.
    Out,
}

/// Sentinel pid recorded when no process context is active (e.g. register
/// writes during kernel boot).
pub const NO_PID: u32 = u32::MAX;

/// One step of the kernel's fault-recovery protocol, carried by
/// [`TraceEvent::Recovery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecoveryStep {
    /// The faulted process's grant allocations were reclaimed (kernel
    /// break raised back to the top of the memory block).
    GrantsReclaimed,
    /// The faulted process's `AppBreaks`/region state was scrubbed and
    /// re-derived, and its invariants re-checked.
    StateRederived,
    /// A restart was scheduled `delay` ticks in the future under the
    /// exponential-backoff policy.
    BackoffScheduled {
        /// Backoff delay in scheduler ticks.
        delay: u64,
    },
    /// The restart cap was exhausted; the process is being permanently
    /// killed.
    RestartExhausted,
}

/// One observable step of a kernel run.
///
/// Events are `Copy` and fixed-size so the ring buffer never allocates
/// after [`enable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// A system call handler was entered.
    SyscallEnter {
        /// Calling process.
        pid: u32,
        /// Which syscall.
        call: SyscallKind,
        /// First raw argument (meaning depends on `call`).
        arg0: u32,
        /// Second raw argument.
        arg1: u32,
        /// Third raw argument.
        arg2: u32,
    },
    /// A system call handler returned.
    SyscallExit {
        /// Calling process.
        pid: u32,
        /// Which syscall.
        call: SyscallKind,
        /// Whether the call succeeded.
        ok: bool,
        /// Raw return value (0 on plain success).
        value: u32,
    },
    /// The scheduler switched a process in or out.
    ContextSwitch {
        /// The process being switched.
        pid: u32,
        /// In or out.
        dir: SwitchDir,
    },
    /// A process's full MPU/PMP configuration was committed to hardware
    /// (the kernel-level `setup_mpu` path). The raw register values follow
    /// as [`TraceEvent::RegWrite`] events from the hardware hooks.
    MpuCommit {
        /// Process whose configuration was committed.
        pid: u32,
    },
    /// The granular (`ticktock`) allocator pushed its region array to the
    /// driver — the §4.4 "commit" path. Legacy flavors never emit this.
    AllocatorCommit {
        /// Number of committed regions.
        regions: u8,
    },
    /// A write reached the hardware register file (or a staged register
    /// copy, for [`RegName::Staged`]).
    RegWrite {
        /// Which register.
        reg: RegName,
        /// Region / PMP entry index (0 for indexless registers).
        index: u8,
        /// Raw 32-bit value written.
        value: u32,
    },
    /// A user-mode access was denied by the protection unit.
    BusFault {
        /// Faulting process.
        pid: u32,
        /// Faulting address.
        addr: u32,
        /// `true` for a write access, `false` for a read.
        write: bool,
    },
    /// An upcall was delivered to a subscribed process.
    UpcallDeliver {
        /// Receiving process.
        pid: u32,
        /// Driver that scheduled the upcall.
        driver: u32,
        /// Upcall payload value.
        value: u32,
    },
    /// A process image was loaded and its memory allocated.
    ProcessLoad {
        /// New process.
        pid: u32,
    },
    /// A faulted process was restarted.
    ProcessRestart {
        /// Restarted process.
        pid: u32,
    },
    /// A process was marked faulted by the kernel.
    ProcessFault {
        /// Faulted process.
        pid: u32,
    },
    /// A process was permanently killed by the fault-recovery policy
    /// (either [`crate::injection`]-driven or a restart-cap exhaustion).
    ProcessKill {
        /// Killed process.
        pid: u32,
    },
    /// One step of the kernel's fault-recovery protocol completed.
    Recovery {
        /// Recovering process.
        pid: u32,
        /// What the step did.
        step: RecoveryStep,
    },
    /// The fault-injection engine fired one scheduled injection
    /// ([`crate::injection`]). Recorded at the exact point the fault is
    /// introduced, so a campaign divergence can be attributed to the
    /// injection that precedes it.
    FaultInjected {
        /// Process context the injection fired in (the plan's target).
        pid: u32,
        /// Where the fault was introduced.
        point: crate::injection::InjectionPoint,
        /// Point-specific detail: the flipped bit for register flips, the
        /// XOR mask for argument corruption, 0 otherwise.
        info: u32,
    },
    /// A scheduled timer interrupt arrived at an adversarial boundary
    /// ([`crate::sched`]) and the kernel entered its service routine.
    /// Recorded before any service work, so downstream divergence can be
    /// attributed to the arrival that precedes it.
    IrqEnter {
        /// Process context the interrupt landed in ([`NO_PID`] when it
        /// landed outside any process slice).
        pid: u32,
        /// The boundary the arrival was scheduled at.
        point: crate::sched::ArrivalPoint,
    },
    /// The interrupt service routine returned to the interrupted context.
    IrqExit {
        /// Process context being resumed.
        pid: u32,
    },
    /// The scheduler exited because every live process yielded with no
    /// alarm pending and no restart due — a wedged workload, distinct
    /// from the everyone-`Exited` completion path (which ends a trace
    /// without this marker). Lets the oracle tell a clean run from a
    /// deadlocked one instead of inferring it from trace truncation.
    IdleExit,
}

/// A drained trace: the surviving events in record order plus how many
/// older events were overwritten by ring wraparound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in the order they were recorded (oldest first).
    pub events: Vec<TraceEvent>,
    /// Number of events lost to wraparound before `events[0]`.
    pub dropped: u64,
}

struct Ring {
    /// Whether tracing is on. Kept here — not (only) in `SimContext` —
    /// so [`record`] decides and pushes behind one TLS access.
    /// [`enable`]/[`disable`] keep the `SimContext` mirror in sync.
    enabled: bool,
    /// Storage, kept sized to exactly `capacity` (pre-filled at
    /// [`Ring::reset`]) so [`Ring::push`] is always one indexed store —
    /// no `Vec::push` length bookkeeping, no fill-vs-wrap branch.
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next slot to write. The oldest live event sits `len` slots behind
    /// it (mod `capacity`).
    write: usize,
    /// Number of live events (≤ capacity).
    len: usize,
    dropped: u64,
    /// A drained event buffer handed back via [`recycle`], reused by the
    /// next [`Ring::drain`] so steady-state take() allocates nothing.
    spare: Vec<TraceEvent>,
}

/// Placeholder event pre-filling ring slots that have not been written
/// yet; never observable through [`Ring::drain`] (which copies only the
/// `len` live slots).
const FILL_EVENT: TraceEvent = TraceEvent::ProcessLoad { pid: NO_PID };

impl Ring {
    /// Re-arms the ring for a new run, reusing the existing storage when
    /// the capacity is unchanged (the common campaign case: every run
    /// asks for the same capacity).
    fn reset(&mut self, capacity: usize) {
        if capacity != self.buf.len() {
            self.buf.clear();
            self.buf.resize(capacity, FILL_EVENT);
        }
        self.capacity = capacity;
        self.write = 0;
        self.len = 0;
        self.dropped = 0;
    }

    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        // One indexed store plus a branchy wrap: capacity need not be a
        // power of two, and `%` is an integer divide on the hot path.
        self.buf[self.write] = ev;
        self.write += 1;
        if self.write == self.capacity {
            self.write = 0;
        }
        if self.len == self.capacity {
            self.dropped += 1;
        } else {
            self.len += 1;
        }
    }

    fn drain(&mut self) -> Trace {
        // Reuse a recycled buffer when one is parked, and copy the live
        // region out as (at most) two contiguous slices instead of an
        // element-by-element modulo walk.
        let mut events = std::mem::take(&mut self.spare);
        events.clear();
        events.reserve(self.len);
        let head = if self.write >= self.len {
            self.write - self.len
        } else {
            self.write + self.capacity - self.len
        };
        let end = head + self.len;
        if end <= self.capacity {
            events.extend_from_slice(&self.buf[head..end]);
        } else {
            events.extend_from_slice(&self.buf[head..self.capacity]);
            events.extend_from_slice(&self.buf[..end - self.capacity]);
        }
        let dropped = self.dropped;
        self.write = 0;
        self.len = 0;
        self.dropped = 0;
        Trace { events, dropped }
    }
}

thread_local! {
    // The ring lives in its own cell (its `Vec`s cannot join the
    // scalar-only `SimContext`), wrapped in `ManuallyDrop` so the
    // thread-local carries no `Drop` glue: a payload with a destructor
    // forces every access through the registration state machine, which
    // measurably slows the per-event path. The cost of the trade is that
    // a thread which traced and never calls [`release_thread_buffers`]
    // leaks its ring storage at thread exit — bounded by one ring per
    // thread, freed explicitly by the `tt_kernel::pool` workers, and
    // reclaimed at process exit everywhere else.
    static RING: std::cell::RefCell<std::mem::ManuallyDrop<Ring>> = const {
        std::cell::RefCell::new(std::mem::ManuallyDrop::new(Ring {
            enabled: false,
            buf: Vec::new(),
            capacity: 0,
            write: 0,
            len: 0,
            dropped: 0,
            spare: Vec::new(),
        }))
    };
}

/// Frees this thread's ring storage (both the live buffer and the
/// [`recycle`] spare). Long-lived threads that traced should call this
/// before exiting; the work-stealing pool workers do. Tracing state is
/// reset to disabled-with-zero-capacity; a later [`enable`] starts from
/// a fresh allocation.
pub fn release_thread_buffers() {
    RING.with(|r| {
        // Assigning a fresh empty ring drops the old buffers normally —
        // `ManuallyDrop` only suppresses the (never-run) TLS destructor.
        **r.borrow_mut() = Ring {
            enabled: false,
            buf: Vec::new(),
            capacity: 0,
            write: 0,
            len: 0,
            dropped: 0,
            spare: Vec::new(),
        };
    });
    simctx::with(|c| c.trace_enabled.set(false));
}

/// Starts tracing on this thread with a ring of `capacity` events,
/// discarding any previously recorded events. The ring storage from an
/// earlier enable/disable cycle on this thread is reused, so re-enabling
/// with the same (or smaller) capacity allocates nothing.
pub fn enable(capacity: usize) {
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        ring.reset(capacity);
        ring.enabled = true;
    });
    simctx::with(|c| c.trace_enabled.set(true));
}

/// Bulk-installs an already-recorded event prefix into the (enabled,
/// empty) ring — the zero-copy half of snapshot restore. Semantically
/// identical to [`record`]ing each event in order, but one `memcpy`
/// behind the write cursor instead of a TLS round-trip per event.
///
/// Panics if tracing is disabled, the ring is not empty, or the prefix
/// exceeds the ring capacity (a captured prefix always fits: capture
/// asserts the ring never wrapped).
pub fn install_prefix(events: &[TraceEvent]) {
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        assert!(ring.enabled, "install_prefix on a disabled ring");
        assert_eq!(ring.len, 0, "install_prefix on a non-empty ring");
        assert!(
            events.len() <= ring.capacity,
            "prefix of {} events exceeds ring capacity {}",
            events.len(),
            ring.capacity
        );
        ring.buf[..events.len()].copy_from_slice(events);
        ring.len = events.len();
        ring.write = if events.len() == ring.capacity {
            0
        } else {
            events.len()
        };
    });
}

/// Stops tracing. Events not yet [`take`]n are lost; the ring storage is
/// retained (cleared) so a later [`enable`] on this thread reuses it.
pub fn disable() {
    simctx::with(|c| {
        c.trace_enabled.set(false);
        c.current_pid.set(NO_PID);
    });
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        let capacity = ring.capacity;
        ring.reset(capacity);
        ring.enabled = false;
    });
}

/// Returns `true` if tracing is enabled on this thread.
#[inline]
pub fn is_enabled() -> bool {
    simctx::with(|c| c.trace_enabled.get())
}

/// The capacity of this thread's ring (0 if [`enable`] never ran).
/// `tt_kernel::snapshot` records it at capture so restore can re-arm
/// tracing with the same ring geometry.
pub fn capacity() -> usize {
    RING.with(|r| r.borrow().capacity)
}

/// Records one event. One TLS access either way: the enabled flag lives
/// in the ring's own cell, so the disabled path (the default) is a
/// single flag load and the enabled path checks and pushes behind the
/// same borrow.
#[inline]
pub fn record(ev: TraceEvent) {
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        if ring.enabled {
            ring.push(ev);
        }
    });
}

/// Runs `f` over the recorded events (oldest first) *in place*: the
/// live region is presented as two contiguous slices — the second is
/// empty unless the ring wrapped — plus the dropped-event count. Unlike
/// [`take`], nothing is copied and the ring is left untouched. The
/// fleet oracle uses this to compare a run's trace against the
/// reference without paying the per-run drain `memcpy`, then clears the
/// ring via [`disable`] instead of draining it.
pub fn with_events<R>(f: impl FnOnce(&[TraceEvent], &[TraceEvent], u64) -> R) -> R {
    RING.with(|r| {
        let ring = r.borrow();
        let head = if ring.write >= ring.len {
            ring.write - ring.len
        } else {
            ring.write + ring.capacity - ring.len
        };
        let end = head + ring.len;
        if end <= ring.capacity {
            f(&ring.buf[head..end], &[], ring.dropped)
        } else {
            f(
                &ring.buf[head..ring.capacity],
                &ring.buf[..end - ring.capacity],
                ring.dropped,
            )
        }
    })
}

/// Drains the recorded events (oldest first), leaving tracing enabled
/// with an empty ring. The returned buffer comes from the [`recycle`]
/// pool when one is available.
pub fn take() -> Trace {
    RING.with(|r| r.borrow_mut().drain())
}

/// Hands a drained [`Trace`]'s event buffer back for reuse by the next
/// [`take`] on this thread. Callers that fully consume a trace before
/// the next run (the campaign workers do) get allocation-free
/// enable/record/take cycles; traces that outlive the run are simply
/// dropped instead.
pub fn recycle(trace: Trace) {
    let mut events = trace.events;
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        if events.capacity() > ring.spare.capacity() {
            events.clear();
            ring.spare = events;
        }
    });
}

/// Sets the process context attributed to subsequent low-level events
/// (register writes don't know which process they configure; the kernel
/// tells us). Use [`NO_PID`] for "no process".
#[inline]
pub fn set_current_pid(pid: u32) {
    simctx::with(|c| c.current_pid.set(pid));
}

/// Returns the process context last set via [`set_current_pid`].
#[inline]
pub fn current_pid() -> u32 {
    simctx::with(|c| c.current_pid.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(value: u32) -> TraceEvent {
        TraceEvent::RegWrite {
            reg: RegName::Rasr,
            index: 0,
            value,
        }
    }

    #[test]
    fn disabled_by_default_and_record_is_noop() {
        disable();
        assert!(!is_enabled());
        record(ev(1));
        assert_eq!(take(), Trace::default());
    }

    #[test]
    fn records_in_order_below_capacity() {
        enable(8);
        for v in 0..5 {
            record(ev(v));
        }
        let t = take();
        assert_eq!(t.dropped, 0);
        assert_eq!(t.events, (0..5).map(ev).collect::<Vec<_>>());
        // Ring stays enabled and empty after take().
        assert!(is_enabled());
        assert_eq!(take().events, vec![]);
        disable();
    }

    #[test]
    fn wraparound_overwrites_oldest_and_counts_drops() {
        enable(4);
        for v in 0..10 {
            record(ev(v));
        }
        let t = take();
        assert_eq!(t.dropped, 6);
        assert_eq!(t.events, (6..10).map(ev).collect::<Vec<_>>());
        disable();
    }

    #[test]
    fn wraparound_exactly_at_capacity_boundary() {
        enable(3);
        for v in 0..3 {
            record(ev(v));
        }
        let t = take();
        assert_eq!(t.dropped, 0);
        assert_eq!(t.events.len(), 3);
        // One more than capacity drops exactly one.
        for v in 0..4 {
            record(ev(v));
        }
        let t = take();
        assert_eq!(t.dropped, 1);
        assert_eq!(t.events, (1..4).map(ev).collect::<Vec<_>>());
        disable();
    }

    #[test]
    fn ring_reuses_storage_across_take() {
        enable(4);
        for v in 0..3 {
            record(ev(v));
        }
        let _ = take();
        for v in 10..16 {
            record(ev(v));
        }
        let t = take();
        assert_eq!(t.dropped, 2);
        assert_eq!(t.events, (12..16).map(ev).collect::<Vec<_>>());
        disable();
    }

    #[test]
    fn zero_capacity_drops_everything() {
        enable(0);
        record(ev(1));
        record(ev(2));
        let t = take();
        assert_eq!(t.events, vec![]);
        assert_eq!(t.dropped, 2);
        disable();
    }

    #[test]
    fn reenable_reuses_the_ring_storage() {
        enable(8);
        for v in 0..5 {
            record(ev(v));
        }
        disable();
        // Disable clears pending events but keeps the allocation.
        enable(8);
        assert_eq!(take(), Trace::default());
        record(ev(9));
        let t = take();
        assert_eq!(t.events, vec![ev(9)]);
        assert_eq!(t.dropped, 0);
        disable();
    }

    #[test]
    fn recycle_feeds_the_next_take() {
        enable(16);
        for v in 0..10 {
            record(ev(v));
        }
        let t = take();
        let ptr = t.events.as_ptr();
        let cap = t.events.capacity();
        recycle(t);
        for v in 10..14 {
            record(ev(v));
        }
        let t2 = take();
        assert_eq!(t2.events, (10..14).map(ev).collect::<Vec<_>>());
        // The recycled buffer (same allocation) backs the second trace.
        assert_eq!(t2.events.as_ptr(), ptr);
        assert_eq!(t2.events.capacity(), cap);
        disable();
    }

    #[test]
    fn recycle_on_a_fresh_thread_does_not_enable_tracing() {
        std::thread::spawn(|| {
            recycle(Trace {
                events: vec![ev(1)],
                dropped: 0,
            });
            assert!(!is_enabled());
            record(ev(2));
            assert_eq!(take(), Trace::default());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn enable_with_larger_capacity_grows_the_reused_ring() {
        enable(2);
        for v in 0..5 {
            record(ev(v));
        }
        disable();
        enable(4);
        for v in 0..5 {
            record(ev(v));
        }
        let t = take();
        assert_eq!(t.dropped, 1);
        assert_eq!(t.events, (1..5).map(ev).collect::<Vec<_>>());
        disable();
    }

    #[test]
    fn install_prefix_matches_per_event_replay() {
        let prefix: Vec<TraceEvent> = (0..6).map(ev).collect();
        // Reference semantics: record each event individually.
        enable(8);
        for e in &prefix {
            record(*e);
        }
        let replayed = take();
        disable();
        // Bulk install must be indistinguishable, including for events
        // recorded after the prefix.
        enable(8);
        install_prefix(&prefix);
        record(ev(100));
        record(ev(101));
        let bulk = take();
        disable();
        assert_eq!(bulk.dropped, 0);
        assert_eq!(&bulk.events[..6], &replayed.events[..]);
        assert_eq!(&bulk.events[6..], &[ev(100), ev(101)]);
    }

    #[test]
    fn install_prefix_at_exact_capacity_wraps_cleanly() {
        let prefix: Vec<TraceEvent> = (0..4).map(ev).collect();
        enable(4);
        install_prefix(&prefix);
        // The ring is full; the next record overwrites the oldest.
        record(ev(9));
        let t = take();
        assert_eq!(t.dropped, 1);
        assert_eq!(t.events, vec![ev(1), ev(2), ev(3), ev(9)]);
        disable();
    }

    #[test]
    fn install_prefix_rejects_oversized_and_disabled() {
        disable();
        assert!(std::panic::catch_unwind(|| install_prefix(&[ev(1)])).is_err());
        enable(2);
        assert!(std::panic::catch_unwind(|| install_prefix(&[ev(1); 3])).is_err());
        disable();
    }

    #[test]
    fn with_events_on_a_completely_full_wrapped_ring() {
        // Fill past capacity so the ring is full *and* wrapped: write has
        // lapped back to the head position (head == write with live data
        // in every slot), the rarest slice shape the streaming oracle can
        // see. capacity 4, 6 records → write = 2, len = 4, head = 2.
        enable(4);
        for v in 0..6 {
            record(ev(v));
        }
        with_events(|a, b, dropped| {
            assert_eq!(dropped, 2);
            assert!(!a.is_empty() && !b.is_empty(), "full ring must wrap");
            assert_eq!(a.len() + b.len(), 4);
            let joined: Vec<TraceEvent> = a.iter().chain(b.iter()).copied().collect();
            assert_eq!(joined, (2..6).map(ev).collect::<Vec<_>>());
        });
        // with_events leaves the ring untouched: draining afterwards sees
        // the identical live region.
        let t = take();
        assert_eq!(t.dropped, 2);
        assert_eq!(t.events, (2..6).map(ev).collect::<Vec<_>>());
        disable();
    }

    #[test]
    fn with_events_on_a_full_unwrapped_ring_uses_one_slice() {
        // Exactly capacity events with write back at 0: full but the live
        // region is contiguous, so the second slice must be empty.
        enable(4);
        for v in 0..4 {
            record(ev(v));
        }
        with_events(|a, b, dropped| {
            assert_eq!(dropped, 0);
            assert_eq!(a, (0..4).map(ev).collect::<Vec<_>>());
            assert!(b.is_empty());
        });
        disable();
    }

    #[test]
    fn enabled_flag_mirrors_into_simctx() {
        enable(4);
        assert!(is_enabled());
        record(ev(1));
        release_thread_buffers();
        // Release resets both the ring flag and the simctx mirror.
        assert!(!is_enabled());
        record(ev(2));
        assert_eq!(take(), Trace::default());
    }

    #[test]
    fn current_pid_roundtrip() {
        assert_eq!(current_pid(), NO_PID);
        set_current_pid(3);
        assert_eq!(current_pid(), 3);
        set_current_pid(NO_PID);
    }
}
