//! Kernel event tracing: a fixed-capacity ring buffer of typed events.
//!
//! The differential oracle in `tt-kernel` compares *final* run outcomes;
//! two kernels can diverge mid-run (a wrong MPU register write, a missed
//! fault, a mis-ordered upcall) and still converge to the same console
//! output. This module records *what the system observably did*, step by
//! step, so the oracle can report the first divergent event instead.
//!
//! Like [`crate::cycles`], the sink is thread-local so parallel tests do
//! not interfere. Recording is zero-allocation in steady state: the
//! buffer is allocated once at [`enable`] and events are `Copy`; when the
//! ring is full the oldest event is overwritten and a drop counter is
//! bumped. When tracing is disabled (the default), [`record`] is a single
//! thread-local flag check.
//!
//! Crucially, tracing never calls into [`crate::cycles`]: enabling a
//! trace must not perturb the cycle-accurate cost model that Fig. 11/12
//! experiments depend on.

use std::cell::{Cell, RefCell};

/// Which hardware register a [`TraceEvent::RegWrite`] hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegName {
    /// Cortex-M `MPU_CTRL` (value bit0 = ENABLE, bit2 = PRIVDEFENA).
    Ctrl,
    /// Cortex-M `MPU_RNR` region number register.
    Rnr,
    /// Cortex-M `MPU_RBAR` region base address register.
    Rbar,
    /// Cortex-M `MPU_RASR` region attribute and size register.
    Rasr,
    /// RISC-V `pmpcfg` byte for one entry.
    PmpCfg,
    /// RISC-V `pmpaddr` CSR for one entry.
    PmpAddr,
    /// A staged [`crate::registers::RegisterU32`] copy (driver-side
    /// read-modify-write staging, not yet committed to hardware).
    Staged(&'static str),
}

/// Which system call a [`TraceEvent::SyscallEnter`]/`SyscallExit` pair
/// describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SyscallKind {
    /// `brk(new_break)`.
    Brk,
    /// `sbrk(delta)`.
    Sbrk,
    /// `memop(op, arg)`.
    Memop,
    /// `subscribe(driver, upcall)`.
    Subscribe,
    /// `allow_ro(driver, addr, len)`.
    AllowRo,
    /// `allow_rw(driver, addr, len)`.
    AllowRw,
    /// `command(driver, cmd, arg)`.
    Command,
    /// The debug `print` syscall.
    Print,
}

/// Direction of a [`TraceEvent::ContextSwitch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SwitchDir {
    /// The process is being switched onto the (virtual) CPU.
    In,
    /// The process is being switched off.
    Out,
}

/// Sentinel pid recorded when no process context is active (e.g. register
/// writes during kernel boot).
pub const NO_PID: u32 = u32::MAX;

/// One step of the kernel's fault-recovery protocol, carried by
/// [`TraceEvent::Recovery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecoveryStep {
    /// The faulted process's grant allocations were reclaimed (kernel
    /// break raised back to the top of the memory block).
    GrantsReclaimed,
    /// The faulted process's `AppBreaks`/region state was scrubbed and
    /// re-derived, and its invariants re-checked.
    StateRederived,
    /// A restart was scheduled `delay` ticks in the future under the
    /// exponential-backoff policy.
    BackoffScheduled {
        /// Backoff delay in scheduler ticks.
        delay: u64,
    },
    /// The restart cap was exhausted; the process is being permanently
    /// killed.
    RestartExhausted,
}

/// One observable step of a kernel run.
///
/// Events are `Copy` and fixed-size so the ring buffer never allocates
/// after [`enable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// A system call handler was entered.
    SyscallEnter {
        /// Calling process.
        pid: u32,
        /// Which syscall.
        call: SyscallKind,
        /// First raw argument (meaning depends on `call`).
        arg0: u32,
        /// Second raw argument.
        arg1: u32,
        /// Third raw argument.
        arg2: u32,
    },
    /// A system call handler returned.
    SyscallExit {
        /// Calling process.
        pid: u32,
        /// Which syscall.
        call: SyscallKind,
        /// Whether the call succeeded.
        ok: bool,
        /// Raw return value (0 on plain success).
        value: u32,
    },
    /// The scheduler switched a process in or out.
    ContextSwitch {
        /// The process being switched.
        pid: u32,
        /// In or out.
        dir: SwitchDir,
    },
    /// A process's full MPU/PMP configuration was committed to hardware
    /// (the kernel-level `setup_mpu` path). The raw register values follow
    /// as [`TraceEvent::RegWrite`] events from the hardware hooks.
    MpuCommit {
        /// Process whose configuration was committed.
        pid: u32,
    },
    /// The granular (`ticktock`) allocator pushed its region array to the
    /// driver — the §4.4 "commit" path. Legacy flavors never emit this.
    AllocatorCommit {
        /// Number of committed regions.
        regions: u8,
    },
    /// A write reached the hardware register file (or a staged register
    /// copy, for [`RegName::Staged`]).
    RegWrite {
        /// Which register.
        reg: RegName,
        /// Region / PMP entry index (0 for indexless registers).
        index: u8,
        /// Raw 32-bit value written.
        value: u32,
    },
    /// A user-mode access was denied by the protection unit.
    BusFault {
        /// Faulting process.
        pid: u32,
        /// Faulting address.
        addr: u32,
        /// `true` for a write access, `false` for a read.
        write: bool,
    },
    /// An upcall was delivered to a subscribed process.
    UpcallDeliver {
        /// Receiving process.
        pid: u32,
        /// Driver that scheduled the upcall.
        driver: u32,
        /// Upcall payload value.
        value: u32,
    },
    /// A process image was loaded and its memory allocated.
    ProcessLoad {
        /// New process.
        pid: u32,
    },
    /// A faulted process was restarted.
    ProcessRestart {
        /// Restarted process.
        pid: u32,
    },
    /// A process was marked faulted by the kernel.
    ProcessFault {
        /// Faulted process.
        pid: u32,
    },
    /// A process was permanently killed by the fault-recovery policy
    /// (either [`crate::injection`]-driven or a restart-cap exhaustion).
    ProcessKill {
        /// Killed process.
        pid: u32,
    },
    /// One step of the kernel's fault-recovery protocol completed.
    Recovery {
        /// Recovering process.
        pid: u32,
        /// What the step did.
        step: RecoveryStep,
    },
    /// The fault-injection engine fired one scheduled injection
    /// ([`crate::injection`]). Recorded at the exact point the fault is
    /// introduced, so a campaign divergence can be attributed to the
    /// injection that precedes it.
    FaultInjected {
        /// Process context the injection fired in (the plan's target).
        pid: u32,
        /// Where the fault was introduced.
        point: crate::injection::InjectionPoint,
        /// Point-specific detail: the flipped bit for register flips, the
        /// XOR mask for argument corruption, 0 otherwise.
        info: u32,
    },
}

/// A drained trace: the surviving events in record order plus how many
/// older events were overwritten by ring wraparound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in the order they were recorded (oldest first).
    pub events: Vec<TraceEvent>,
    /// Number of events lost to wraparound before `events[0]`.
    pub dropped: u64,
}

struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest live event.
    head: usize,
    /// Number of live events (≤ capacity).
    len: usize,
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            // Still filling the preallocated storage: no reallocation
            // happens because `buf` was created `with_capacity(capacity)`.
            self.buf.push(ev);
            self.len += 1;
        } else {
            let slot = (self.head + self.len) % self.capacity;
            self.buf[slot] = ev;
            if self.len == self.capacity {
                self.head = (self.head + 1) % self.capacity;
                self.dropped += 1;
            } else {
                self.len += 1;
            }
        }
    }

    fn drain(&mut self) -> Trace {
        let mut events = Vec::with_capacity(self.len);
        for i in 0..self.len {
            events.push(self.buf[(self.head + i) % self.capacity]);
        }
        let dropped = self.dropped;
        self.head = 0;
        self.len = 0;
        self.buf.clear();
        self.dropped = 0;
        Trace { events, dropped }
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RING: RefCell<Option<Ring>> = const { RefCell::new(None) };
    static CURRENT_PID: Cell<u32> = const { Cell::new(NO_PID) };
}

/// Starts tracing on this thread with a ring of `capacity` events,
/// discarding any previously recorded events.
pub fn enable(capacity: usize) {
    RING.with(|r| *r.borrow_mut() = Some(Ring::new(capacity)));
    ENABLED.with(|e| e.set(true));
}

/// Stops tracing and frees the ring. Events not yet [`take`]n are lost.
pub fn disable() {
    ENABLED.with(|e| e.set(false));
    RING.with(|r| *r.borrow_mut() = None);
    CURRENT_PID.with(|p| p.set(NO_PID));
}

/// Returns `true` if tracing is enabled on this thread.
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Records one event. A no-op (one flag check) when tracing is disabled.
#[inline]
pub fn record(ev: TraceEvent) {
    if !is_enabled() {
        return;
    }
    RING.with(|r| {
        if let Some(ring) = r.borrow_mut().as_mut() {
            ring.push(ev);
        }
    });
}

/// Drains the recorded events (oldest first), leaving tracing enabled
/// with an empty ring.
pub fn take() -> Trace {
    RING.with(|r| r.borrow_mut().as_mut().map(Ring::drain).unwrap_or_default())
}

/// Sets the process context attributed to subsequent low-level events
/// (register writes don't know which process they configure; the kernel
/// tells us). Use [`NO_PID`] for "no process".
pub fn set_current_pid(pid: u32) {
    CURRENT_PID.with(|p| p.set(pid));
}

/// Returns the process context last set via [`set_current_pid`].
pub fn current_pid() -> u32 {
    CURRENT_PID.with(|p| p.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(value: u32) -> TraceEvent {
        TraceEvent::RegWrite {
            reg: RegName::Rasr,
            index: 0,
            value,
        }
    }

    #[test]
    fn disabled_by_default_and_record_is_noop() {
        disable();
        assert!(!is_enabled());
        record(ev(1));
        assert_eq!(take(), Trace::default());
    }

    #[test]
    fn records_in_order_below_capacity() {
        enable(8);
        for v in 0..5 {
            record(ev(v));
        }
        let t = take();
        assert_eq!(t.dropped, 0);
        assert_eq!(t.events, (0..5).map(ev).collect::<Vec<_>>());
        // Ring stays enabled and empty after take().
        assert!(is_enabled());
        assert_eq!(take().events, vec![]);
        disable();
    }

    #[test]
    fn wraparound_overwrites_oldest_and_counts_drops() {
        enable(4);
        for v in 0..10 {
            record(ev(v));
        }
        let t = take();
        assert_eq!(t.dropped, 6);
        assert_eq!(t.events, (6..10).map(ev).collect::<Vec<_>>());
        disable();
    }

    #[test]
    fn wraparound_exactly_at_capacity_boundary() {
        enable(3);
        for v in 0..3 {
            record(ev(v));
        }
        let t = take();
        assert_eq!(t.dropped, 0);
        assert_eq!(t.events.len(), 3);
        // One more than capacity drops exactly one.
        for v in 0..4 {
            record(ev(v));
        }
        let t = take();
        assert_eq!(t.dropped, 1);
        assert_eq!(t.events, (1..4).map(ev).collect::<Vec<_>>());
        disable();
    }

    #[test]
    fn ring_reuses_storage_across_take() {
        enable(4);
        for v in 0..3 {
            record(ev(v));
        }
        let _ = take();
        for v in 10..16 {
            record(ev(v));
        }
        let t = take();
        assert_eq!(t.dropped, 2);
        assert_eq!(t.events, (12..16).map(ev).collect::<Vec<_>>());
        disable();
    }

    #[test]
    fn zero_capacity_drops_everything() {
        enable(0);
        record(ev(1));
        record(ev(2));
        let t = take();
        assert_eq!(t.events, vec![]);
        assert_eq!(t.dropped, 2);
        disable();
    }

    #[test]
    fn current_pid_roundtrip() {
        assert_eq!(current_pid(), NO_PID);
        set_current_pid(3);
        assert_eq!(current_pid(), 3);
        set_current_pid(NO_PID);
    }
}
