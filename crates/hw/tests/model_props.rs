//! Property tests pinning the protection-hardware models against
//! independent reference semantics.
//!
//! The hardware models are this reproduction's trusted base (the analogue
//! of silicon), so they get the heaviest scrutiny: for random
//! configurations, the optimized `check` path must agree with a naive
//! reference evaluator derived directly from the manuals' prose.

use proptest::prelude::*;
use tt_hw::cortexm::mpu::{size_to_rasr_field, RegionAttributes};
use tt_hw::cortexm::CortexMpu;
use tt_hw::mem::{AccessType, Privilege, ProtectionUnit};
use tt_hw::riscv::pmp::{napot_addr, AddressMode, PMP_R, PMP_W, PMP_X};
use tt_hw::riscv::{PmpChip, RiscvPmp};

/// Naive reference for one Cortex-M region: byte-level match + permission,
/// written straight from the ARMv7-M manual's description.
fn arm_region_allows(
    base: usize,
    size: usize,
    srd: u32,
    ap: u32,
    xn: u32,
    addr: usize,
    access: AccessType,
) -> Option<bool> {
    let effective_base = base & !(size - 1);
    if addr < effective_base || addr >= effective_base + size {
        return None;
    }
    if size >= 256 {
        let sub = (addr - effective_base) / (size / 8);
        if srd & (1 << sub) != 0 {
            return None; // Disabled subregion: no match.
        }
    }
    let (read, write) = match ap {
        0b011 => (true, true),
        0b010 | 0b110 | 0b111 => (true, false),
        _ => (false, false),
    };
    Some(match access {
        AccessType::Read => read,
        AccessType::Write => write,
        AccessType::Execute => read && xn == 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A single enabled region: the model's unprivileged byte decisions
    /// equal the reference at every probed offset.
    #[test]
    fn cortexm_single_region_matches_reference(
        size_exp in 5u32..16,
        base_mult in 0usize..64,
        srd in 0u32..256,
        ap in prop::sample::select(vec![0b000u32, 0b001, 0b010, 0b011, 0b101, 0b110, 0b111]),
        xn in 0u32..2,
        probe_off in 0usize..0x2_0000,
        access in prop::sample::select(vec![AccessType::Read, AccessType::Write, AccessType::Execute]),
    ) {
        let size = 1usize << size_exp;
        let base = 0x2000_0000 + base_mult * size;
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        let rasr = (RegionAttributes::ENABLE.val(1)
            + RegionAttributes::SIZE.val(size_to_rasr_field(size))
            + RegionAttributes::SRD.val(srd)
            + RegionAttributes::AP.val(ap)
            + RegionAttributes::XN.val(xn))
        .value();
        mpu.write_region(0, base as u32, rasr);

        let addr = 0x2000_0000 + probe_off;
        // No match → unprivileged default-deny.
        let expected = arm_region_allows(base, size, if size >= 256 { srd } else { 0 }, ap, xn, addr, access)
            .unwrap_or_default();
        let got = mpu
            .check(addr, 1, access, Privilege::Unprivileged)
            .allowed();
        prop_assert_eq!(got, expected, "addr {:#x} size {} srd {:#x} ap {:03b}", addr, size, srd, ap);
    }

    /// Privileged accesses with PRIVDEFENA fall back to the default map
    /// whenever no region matches.
    #[test]
    fn cortexm_privdefena_default_map(
        probe in 0usize..0xFFFF_FFFF,
        access in prop::sample::select(vec![AccessType::Read, AccessType::Write, AccessType::Execute]),
    ) {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        prop_assert!(mpu.check(probe, 1, access, Privilege::Privileged).allowed());
        prop_assert!(!mpu.check(probe, 1, access, Privilege::Unprivileged).allowed());
    }

    /// PMP: a NAPOT entry admits exactly its power-of-two block.
    #[test]
    fn pmp_napot_matches_block_exactly(
        size_exp in 3u32..16,
        base_mult in 0usize..64,
        bits in 0u8..8,
        probe_off in 0usize..0x2_0000,
    ) {
        let size = 1usize << size_exp;
        let base = 0x8000_0000 + base_mult * size;
        let cfg = (bits & (PMP_R | PMP_W | PMP_X)) | (AddressMode::Napot.encode() << 3);
        let mut pmp = RiscvPmp::new(PmpChip::Esp32C3);
        pmp.write_addr(0, napot_addr(base, size));
        pmp.write_cfg(0, cfg);

        let addr = 0x8000_0000 + probe_off;
        let inside = addr >= base && addr < base + size;
        for (access, bit) in [
            (AccessType::Read, PMP_R),
            (AccessType::Write, PMP_W),
            (AccessType::Execute, PMP_X),
        ] {
            let expected = inside && (cfg & bit != 0);
            let got = pmp.check(addr, 1, access, Privilege::Unprivileged).allowed();
            prop_assert_eq!(got, expected, "addr {:#x} base {:#x} size {} cfg {:#x}", addr, base, size, cfg);
        }
    }

    /// PMP: TOR pairs admit exactly `[lo, hi)`.
    #[test]
    fn pmp_tor_matches_range_exactly(
        lo_q in 0usize..0x4000,
        len_q in 1usize..0x4000,
        probe_q in 0usize..0x10000,
    ) {
        let lo = 0x8000_0000 + lo_q * 4;
        let hi = lo + len_q * 4;
        let mut pmp = RiscvPmp::new(PmpChip::SifiveE310);
        pmp.write_addr(0, (lo >> 2) as u32);
        pmp.write_cfg(0, 0);
        pmp.write_addr(1, (hi >> 2) as u32);
        pmp.write_cfg(1, PMP_R | PMP_W | (AddressMode::Tor.encode() << 3));

        let addr = 0x8000_0000 + probe_q * 4;
        let expected = addr >= lo && addr < hi;
        prop_assert_eq!(
            pmp.check(addr, 1, AccessType::Read, Privilege::Unprivileged).allowed(),
            expected
        );
        // Machine mode is unconstrained by unlocked entries.
        prop_assert!(pmp.check(addr, 1, AccessType::Write, Privilege::Privileged).allowed());
    }

    /// Multi-byte accesses are allowed iff every byte is allowed.
    #[test]
    fn multibyte_equals_conjunction_of_bytes(
        start_off in 0usize..2048,
        len in 1usize..16,
    ) {
        let mut mpu = CortexMpu::new();
        mpu.write_ctrl(true, true);
        let rasr = (RegionAttributes::ENABLE.val(1)
            + RegionAttributes::SIZE.val(size_to_rasr_field(1024))
            + RegionAttributes::AP.val(0b011)
            + RegionAttributes::XN.val(1))
        .value();
        mpu.write_region(0, 0x2000_0000, rasr);
        let addr = 0x2000_0000 + start_off;
        let whole = mpu.check(addr, len, AccessType::Write, Privilege::Unprivileged).allowed();
        let bytes = (0..len).all(|i| {
            mpu.check(addr + i, 1, AccessType::Write, Privilege::Unprivileged).allowed()
        });
        prop_assert_eq!(whole, bytes);
    }
}
