//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * **SRD masks, loop vs bitwise** — the paper attributes part of the
//!   Fig. 11 `brk` speedup to "verified bitwise arithmetic (instead of
//!   loops) to set certain fields in the MPU configuration".
//! * **Disagreement recomputation** — what the loader's layout
//!   recomputation costs per process load in the monolithic design.
//! * **Grant path with and without MPU recomputation** — the structural
//!   source of the `allocate_grant` 2×.
//! * **Incremental re-verification** — the cost of re-checking an
//!   unchanged kernel with and without the verification cache.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ticktock::cortexm::CortexMRegion;
use ticktock::mpu::Mpu;
use ticktock::region::RegionDescriptor;
use tt_contracts::verifier::{VerificationCache, Verifier};
use tt_hw::Permissions;
use tt_hw::PtrU8;
use tt_legacy::{BugVariant, LegacyCortexM};

/// Bitwise SRD mask computation (TickTock's replacement).
fn srd_masks_bitwise(enabled: usize) -> (u32, u32) {
    let k0 = enabled.min(8) as u32;
    let k1 = enabled.saturating_sub(8) as u32;
    let m0 = if k0 >= 8 { 0 } else { (!0u32 << k0) & 0xFF };
    let m1 = if k1 >= 8 { 0 } else { (!0u32 << k1) & 0xFF };
    (m0, m1)
}

fn bench_srd_masks(c: &mut Criterion) {
    let mut group = c.benchmark_group("srd_masks");
    group.bench_function("loop(legacy)", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for n in 0..=16usize {
                let (a, bm) = LegacyCortexM::srd_masks_loop(black_box(n));
                acc ^= a ^ bm;
            }
            acc
        })
    });
    group.bench_function("bitwise(ticktock)", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for n in 0..=16usize {
                let (a, bm) = srd_masks_bitwise(black_box(n));
                acc ^= a ^ bm;
            }
            acc
        })
    });
    group.finish();
}

fn bench_disagreement_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("loader_layout");
    // Monolithic: the loader re-derives the split from (start, size).
    group.bench_function("recompute(legacy)", |b| {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        b.iter(|| {
            let layout = mpu.compute_alloc_layout(black_box(0x2000_0000), 0, 3000, 1024);
            tt_legacy::process::recompute_breaks(
                layout.region_start,
                layout.mem_size_po2,
                3000,
                1024,
            )
        })
    });
    // Granular: the breaks are read straight off the returned regions.
    group.bench_function("derive_from_regions(ticktock)", |b| {
        b.iter(|| {
            let pair = ticktock::cortexm::GranularCortexM::new_regions(
                1,
                PtrU8::new(black_box(0x2000_0000)),
                0x2_0000,
                3000,
                Permissions::ReadWriteOnly,
            )
            .unwrap();
            let start = pair.fst.start().unwrap();
            let size = pair.fst.size().unwrap() + pair.snd.size().unwrap_or(0);
            (start, size)
        })
    });
    group.finish();
}

fn bench_region_decode(c: &mut Criterion) {
    // Decoding start/size out of the raw RBAR/RASR encodings — the §4.4
    // driver obligation — must stay cheap enough to sit on hot paths.
    let region = CortexMRegion::new(0, 0x2000_0000, 4096, 5, Permissions::ReadWriteOnly);
    c.bench_function("region_decode/start_size", |b| {
        b.iter(|| {
            let s = black_box(&region).start().unwrap();
            let z = black_box(&region).size().unwrap();
            (s, z)
        })
    });
}

fn bench_incremental_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_verification");
    group.sample_size(10);
    let build = || {
        let mut r = tt_contracts::obligation::Registry::new();
        ticktock::obligations::register_obligations(&mut r, 2);
        tt_fluxarm::contracts::register_obligations(&mut r, 4);
        r
    };
    group.bench_function("cold(no cache)", |b| {
        let registry = build();
        b.iter(|| {
            let report = Verifier::new().verify(&registry);
            assert!(report.all_verified());
            report
        })
    });
    group.bench_function("warm(cached)", |b| {
        let registry = build();
        let verifier = Verifier::new();
        let mut cache = VerificationCache::new();
        let _ = verifier.verify_with_cache(&registry, &mut cache);
        b.iter(|| {
            let report = verifier.verify_with_cache(&registry, &mut cache);
            assert!(report.all_verified());
            report
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_srd_masks,
    bench_disagreement_recompute,
    bench_region_decode,
    bench_incremental_verification
);
criterion_main!(benches);
