//! Criterion bench behind Figure 12: verification time of the monolithic
//! kernel, the granular kernel, and the interrupt semantics.
//!
//! The headline ratio — granular verifies an order of magnitude faster
//! than monolithic at equal domain density — shows up directly in the
//! per-iteration times.

use criterion::{criterion_group, criterion_main, Criterion};
use tt_contracts::obligation::Registry;
use tt_contracts::verifier::Verifier;
use tt_legacy::BugVariant;

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification");
    group.sample_size(10);

    group.bench_function("monolithic", |b| {
        b.iter(|| {
            let mut registry = Registry::new();
            tt_legacy::obligations::register_obligations(&mut registry, BugVariant::Fixed, 2);
            let report = Verifier::new().verify(&registry);
            assert!(report.all_verified());
            report
        })
    });

    group.bench_function("granular", |b| {
        b.iter(|| {
            let mut registry = Registry::new();
            ticktock::obligations::register_obligations(&mut registry, 2);
            let report = Verifier::new().verify(&registry);
            assert!(report.all_verified());
            report
        })
    });

    group.bench_function("interrupts", |b| {
        b.iter(|| {
            let mut registry = Registry::new();
            tt_fluxarm::contracts::register_obligations(&mut registry, 4);
            let report = Verifier::new().verify(&registry);
            assert!(report.all_verified());
            report
        })
    });

    group.finish();
}

fn bench_bug_rediscovery(c: &mut Criterion) {
    // How long it takes the verifier to REFUTE the buggy code: the
    // bug-finding workflow of §2.2.
    let mut group = c.benchmark_group("bug_rediscovery");
    group.sample_size(10);

    group.bench_function("monolithic_buggy", |b| {
        b.iter(|| {
            let mut registry = Registry::new();
            tt_legacy::obligations::register_obligations(&mut registry, BugVariant::Buggy, 1);
            let report = Verifier::new().verify(&registry);
            assert!(!report.all_verified());
            report
        })
    });

    group.bench_function("interrupt_handlers_buggy", |b| {
        b.iter(|| {
            let mut registry = Registry::new();
            tt_fluxarm::contracts::register_buggy_obligations(&mut registry);
            let report = Verifier::new().verify(&registry);
            assert_eq!(report.refuted().len(), 2);
            report
        })
    });

    group.finish();
}

criterion_group!(benches, bench_verification, bench_bug_rediscovery);
criterion_main!(benches);
