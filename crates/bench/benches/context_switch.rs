//! Criterion bench for the PR 2 MPU commit cache: wall-clock cost of the
//! switch-in `setup_mpu` call, warm (cache hit) vs cold (post-`brk`
//! generation bump) vs cache-off baseline, on one ARM and one RISC-V
//! chip.
//!
//! The cycle-model counterpart lives in `tt_bench::switch` (and the
//! `fig11_cycles --json` artifact); this bench confirms the same ordering
//! holds for real wall-clock time of the simulated operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tt_hw::platform::{ChipProfile, EARLGREY, NRF52840DK};
use tt_hw::PtrU8;
use tt_kernel::loader::flash_app;
use tt_kernel::machine::Machine;
use tt_kernel::process::{Flavor, Process};

fn chips() -> [(&'static str, &'static ChipProfile); 2] {
    [("arm", &NRF52840DK), ("riscv", &EARLGREY)]
}

fn mk(chip: &ChipProfile) -> (Machine, Process) {
    let mut mem = chip.memory();
    let img = flash_app(
        &mut mem,
        chip.map.flash.start + 0x4_0000,
        "bench",
        0x1000,
        3000,
        2048,
    )
    .unwrap();
    let machine = Machine::for_chip(chip);
    let p = Process::create(
        0,
        Flavor::Granular,
        &machine,
        &img,
        PtrU8::new(chip.map.ram.start),
        0x2_0000,
    )
    .unwrap();
    p.setup_mpu();
    (machine, p)
}

fn bench_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_switch_warm");
    for (arch, chip) in chips() {
        group.bench_function(BenchmarkId::from_parameter(arch), |b| {
            let (machine, p) = mk(chip);
            b.iter(|| {
                machine.disable_user_protection();
                p.setup_mpu()
            });
        });
    }
    group.finish();
}

fn bench_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_switch_cold");
    for (arch, chip) in chips() {
        group.bench_function(BenchmarkId::from_parameter(arch), |b| {
            let (machine, mut p) = mk(chip);
            let mut toggle = false;
            b.iter(|| {
                // brk traffic between switches moves the generation, so
                // every switch-in is a cache miss (a real re-commit).
                toggle = !toggle;
                p.sbrk(if toggle { 32 } else { -32 }).unwrap();
                machine.disable_user_protection();
                p.setup_mpu()
            });
        });
    }
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_switch_cache_off");
    for (arch, chip) in chips() {
        group.bench_function(BenchmarkId::from_parameter(arch), |b| {
            let (machine, p) = mk(chip);
            b.iter(|| {
                tt_hw::commit_cache::with_disabled(|| {
                    machine.disable_user_protection();
                    p.setup_mpu()
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_warm, bench_cold, bench_baseline);
criterion_main!(benches);
