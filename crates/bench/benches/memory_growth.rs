//! Criterion bench behind the §6.2 memory microbenchmark: the cost of the
//! grow-by-1-byte-until-failure loop (dominated by the per-`brk` work each
//! kernel does) and of the full release-suite run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tt_kernel::process::Flavor;
use tt_legacy::BugVariant;

fn flavors() -> [(&'static str, Flavor); 2] {
    [
        ("tock", Flavor::Legacy(BugVariant::Fixed)),
        ("ticktock", Flavor::Granular),
    ]
}

fn bench_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("grow_until_failure");
    group.sample_size(10);
    for (name, flavor) in flavors() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| tt_bench::e62::measure(flavor, 0))
        });
    }
    group.finish();
}

fn bench_release_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("release_suite");
    group.sample_size(10);
    for (name, flavor) in flavors() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                for test in tt_kernel::apps::release_tests() {
                    let outcome = tt_kernel::differential::run_one(&test, flavor);
                    std::hint::black_box(outcome);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_growth, bench_release_suite);
criterion_main!(benches);
