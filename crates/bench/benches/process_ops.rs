//! Criterion bench behind Figure 11: wall-clock cost of the six
//! instrumented process-abstraction methods on both kernels.
//!
//! The paper's numbers are simulated CPU cycles (see `fig11_cycles`); this
//! bench confirms the same ordering holds for real wall-clock time of the
//! simulated operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tt_hw::platform::NRF52840DK;
use tt_hw::PtrU8;
use tt_kernel::loader::flash_app;
use tt_kernel::machine::Machine;
use tt_kernel::process::{Flavor, Process};
use tt_legacy::BugVariant;

fn flavors() -> [(&'static str, Flavor); 2] {
    [
        ("tock", Flavor::Legacy(BugVariant::Fixed)),
        ("ticktock", Flavor::Granular),
    ]
}

fn mk_process(flavor: Flavor) -> Process {
    let mut mem = NRF52840DK.memory();
    let img = flash_app(&mut mem, 0x0004_0000, "bench", 0x1000, 3000, 2048).unwrap();
    let machine = Machine::for_chip(&NRF52840DK);
    Process::create(0, flavor, &machine, &img, PtrU8::new(0x2000_0000), 0x2_0000).unwrap()
}

fn bench_create(c: &mut Criterion) {
    let mut group = c.benchmark_group("create");
    for (name, flavor) in flavors() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut mem = NRF52840DK.memory();
            let img = flash_app(&mut mem, 0x0004_0000, "bench", 0x1000, 3000, 2048).unwrap();
            b.iter(|| {
                let machine = Machine::for_chip(&NRF52840DK);
                black_box(
                    Process::create(0, flavor, &machine, &img, PtrU8::new(0x2000_0000), 0x2_0000)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_brk(c: &mut Criterion) {
    let mut group = c.benchmark_group("brk");
    for (name, flavor) in flavors() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut p = mk_process(flavor);
            let ms = p.memory_start();
            let mut toggle = false;
            b.iter(|| {
                toggle = !toggle;
                let target = if toggle { ms + 2048 } else { ms + 2304 };
                p.brk(PtrU8::new(black_box(target))).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_allocate_grant(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate_grant");
    for (name, flavor) in flavors() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || mk_process(flavor),
                |mut p| black_box(p.allocate_grant(0, 64).unwrap()),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_buffers(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_buffers");
    for (name, flavor) in flavors() {
        let mut p = mk_process(flavor);
        let ms = p.memory_start();
        group.bench_function(BenchmarkId::new("readwrite", name), |b| {
            b.iter(|| p.build_readwrite_buffer(PtrU8::new(black_box(ms + 64)), 128))
        });
        group.bench_function(BenchmarkId::new("readonly", name), |b| {
            b.iter(|| p.build_readonly_buffer(PtrU8::new(black_box(ms + 64)), 128))
        });
    }
    group.finish();
}

fn bench_setup_mpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("setup_mpu");
    for (name, flavor) in flavors() {
        let p = mk_process(flavor);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| p.setup_mpu())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_create,
    bench_brk,
    bench_allocate_grant,
    bench_buffers,
    bench_setup_mpu
);
criterion_main!(benches);
