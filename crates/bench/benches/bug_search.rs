//! Criterion bench for the bug-hunting workloads of §2.2/§3.4: how fast
//! the adversarial parameter grids find the historical isolation bugs in
//! the buggy legacy drivers, and confirm their absence in the fixed and
//! granular code.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tt_contracts::domain::alloc_param_grid;
use tt_legacy::{BugVariant, LegacyCortexM};

const RAM: usize = 0x2000_0000;

/// Counts BUG1 postcondition violations over the adversarial grid.
fn count_violations(variant: BugVariant, density: usize) -> usize {
    let mpu = LegacyCortexM::with_fresh_hardware(variant);
    alloc_param_grid(RAM, 0x4_0000, density)
        .iter()
        .filter(|p| {
            !mpu.compute_alloc_layout(p.unalloc_start, p.min_size, p.app_size, p.kernel_size)
                .isolation_holds()
        })
        .count()
}

fn bench_bug1_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("bug1_grid_search");
    group.bench_function("buggy", |b| {
        b.iter(|| {
            let found = count_violations(BugVariant::Buggy, 2);
            assert!(found > 0, "BUG1 must be discoverable on the grid");
            black_box(found)
        })
    });
    group.bench_function("fixed", |b| {
        b.iter(|| {
            let found = count_violations(BugVariant::Fixed, 2);
            assert_eq!(found, 0, "the fix must hold across the whole grid");
            black_box(found)
        })
    });
    group.finish();
}

fn bench_interrupt_bug_replay(c: &mut Criterion) {
    use tt_fluxarm::cpu::{Arm7, Gpr};
    use tt_fluxarm::exceptions::ExceptionNumber;
    use tt_fluxarm::handlers;
    use tt_fluxarm::switch::{cpu_state_correct, StoredState};
    use tt_hw::AddrRange;

    let mut group = c.benchmark_group("interrupt_replay");
    group.bench_function("verified_round_trip", |b| {
        b.iter(|| {
            let mut cpu = Arm7::new(
                AddrRange::new(0x2000_0000, 0x2000_1000),
                AddrRange::new(0x2000_1000, 0x2000_3000),
            );
            for (i, r) in Gpr::CALLEE_SAVED.iter().enumerate() {
                cpu.set_gpr(*r, 0x4000 + i as u32);
            }
            let mut state = StoredState::new_for_process(&mut cpu, 0x4000, 0x2000_3000);
            let old = cpu.clone();
            cpu.control_flow_kernel_to_kernel(
                &mut state,
                ExceptionNumber::SysTick,
                handlers::svc_handler_to_process,
                handlers::sys_tick_isr,
                black_box(7),
            );
            assert!(cpu_state_correct(&cpu, &old));
            black_box(cpu)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bug1_search, bench_interrupt_bug_replay);
criterion_main!(benches);
