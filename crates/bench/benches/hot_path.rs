//! Microbench for the simulator's per-event hot path: `trace::record`,
//! `cycles::charge`/`charge_n`, `cycles::record_method` and a `requires!`
//! contract check, in enabled / disabled / observe configurations.
//!
//! Every simulated register write pays some combination of these, so their
//! per-call cost is pure interpreter overhead. The throughput-engine PR
//! consolidates the thread-local state they touch into one `SimContext`;
//! this bench is the before/after evidence. Each sample performs
//! `BATCH` calls so the measured medians are well above timer resolution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tt_contracts::{requires, with_mode, Mode};
use tt_hw::cycles::{self, Cost};
use tt_hw::trace::{self, RegName, TraceEvent};

/// Calls per timed sample.
const BATCH: u32 = 100_000;

fn ev(value: u32) -> TraceEvent {
    TraceEvent::RegWrite {
        reg: RegName::Rasr,
        index: 1,
        value,
    }
}

fn bench_trace_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_path");
    g.bench_function(format!("trace_record_disabled_x{BATCH}"), |b| {
        trace::disable();
        b.iter(|| {
            for v in 0..BATCH {
                trace::record(black_box(ev(v)));
            }
        });
    });
    g.bench_function(format!("trace_record_enabled_x{BATCH}"), |b| {
        // The realistic enabled shape: the kernel traces into a 64k-event
        // ring and a release test records a few thousand events, so the
        // steady-state push is the *append* path (no wraparound). The
        // re-`enable` per sample re-arms the same storage (no allocation
        // after the first sample). The event is materialized once outside
        // the loop so the measurement is the record path, not the
        // per-iteration event construction scaffolding.
        let e = black_box(ev(7));
        b.iter(|| {
            trace::enable(BATCH as usize);
            for _ in 0..BATCH {
                trace::record(e);
            }
        });
        trace::disable();
    });
    g.bench_function(format!("trace_record_wrapped_x{BATCH}"), |b| {
        // Saturated-ring shape: every push overwrites the oldest event.
        // Only pathological runs (ring much smaller than the event
        // stream) live here, but the wrap path must stay cheap too.
        trace::enable(4096);
        let e = black_box(ev(7));
        b.iter(|| {
            for _ in 0..BATCH {
                trace::record(e);
            }
        });
        trace::disable();
    });
    g.bench_function("trace_enable_take_cycle_x100".to_string(), |b| {
        // The per-run setup path: enable a 64k ring, record a little,
        // drain. Run-per-run allocation shows up here.
        b.iter(|| {
            for _ in 0..100 {
                trace::enable(65_536);
                for v in 0..64 {
                    trace::record(ev(v));
                }
                let t = trace::take();
                black_box(t.events.len());
            }
        });
        trace::disable();
    });
    g.finish();
}

fn bench_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_path");
    g.bench_function(format!("cycles_charge_enabled_x{BATCH}"), |b| {
        cycles::reset();
        b.iter(|| {
            for _ in 0..BATCH {
                cycles::charge(black_box(Cost::Alu));
            }
        });
    });
    g.bench_function(format!("cycles_charge_disabled_x{BATCH}"), |b| {
        let prev = cycles::set_enabled(false);
        b.iter(|| {
            for _ in 0..BATCH {
                cycles::charge(black_box(Cost::Alu));
            }
        });
        cycles::set_enabled(prev);
    });
    g.bench_function(format!("record_method_recording_x{BATCH}"), |b| {
        let prev = cycles::set_recording(true);
        b.iter(|| {
            for v in 0..BATCH {
                cycles::record_method("hot_path", u64::from(v));
            }
            // Drain so the buffer cannot grow across samples.
            black_box(cycles::take_method_records().len());
        });
        cycles::set_recording(prev);
    });
    g.bench_function("record_method_run_cycle_x100", |b| {
        // The Fig. 11 shape: a run records on the order of a thousand
        // method spans, then the harness drains them. Run-per-run buffer
        // (re)allocation shows up here.
        let prev = cycles::set_recording(true);
        b.iter(|| {
            for _ in 0..100 {
                for v in 0..1_000u32 {
                    cycles::record_method("hot_path", u64::from(v));
                }
                black_box(cycles::take_method_records().len());
            }
        });
        cycles::set_recording(prev);
    });
    g.finish();
}

fn bench_contracts(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_path");
    g.bench_function(format!("requires_enforce_pass_x{BATCH}"), |b| {
        b.iter(|| {
            for v in 0..BATCH {
                requires!("hot_path::bench", black_box(v) < BATCH);
            }
        });
    });
    g.bench_function(format!("requires_observe_pass_x{BATCH}"), |b| {
        with_mode(Mode::Observe, || {
            b.iter(|| {
                for v in 0..BATCH {
                    requires!("hot_path::bench", black_box(v) < BATCH);
                }
            });
        });
    });
    g.bench_function(format!("requires_off_x{BATCH}"), |b| {
        with_mode(Mode::Off, || {
            b.iter(|| {
                for v in 0..BATCH {
                    requires!("hot_path::bench", black_box(v) < BATCH);
                }
            });
        });
    });
    g.finish();
}

criterion_group!(hot_path, bench_trace_record, bench_cycles, bench_contracts);
criterion_main!(hot_path);
