//! The throughput engine's determinism contract, end to end: every
//! artifact the parallel runners produce — campaign text report,
//! `BENCH_fault.json`, `BENCH_e61.json` — must be byte-identical to the
//! serial runner's, at any worker count and across repeated invocations
//! of the same seeds.
//!
//! This is the property that makes the work-stealing pool safe to gate
//! CI on: scheduling order may vary freely, observable output may not.
//! Wall-clock fields are pinned to 0 via the `reports` renderers so the
//! comparison covers simulation results only.

use proptest::prelude::*;
use tt_bench::reports;
use tt_bench::throughput::measure;
use tt_hw::platform::{HIFIVE1, NRF52840DK};
use tt_kernel::campaign::{render_report as render_campaign, run_campaign_on};
use tt_kernel::differential::{
    render_report as render_diff, run_release_suite_all_chips_with_threads,
    run_release_suite_on_with_threads,
};

#[test]
fn campaign_artifacts_are_byte_identical_serial_vs_parallel() {
    let chips = [NRF52840DK, HIFIVE1];
    let serial = run_campaign_on(&chips, 3, 1);
    let serial_text = render_campaign(&serial, 3);
    let serial_json = reports::campaign_json(&serial, 3, 0.0);
    for threads in [2, 8] {
        let parallel = run_campaign_on(&chips, 3, threads);
        assert_eq!(
            serial_text,
            render_campaign(&parallel, 3),
            "threads = {threads}"
        );
        assert_eq!(
            serial_json,
            reports::campaign_json(&parallel, 3, 0.0),
            "threads = {threads}"
        );
    }
}

#[test]
fn e61_artifacts_are_byte_identical_serial_vs_parallel() {
    let serial_chip = render_diff(&run_release_suite_on_with_threads(&NRF52840DK, 1));
    assert_eq!(
        serial_chip,
        render_diff(&run_release_suite_on_with_threads(&NRF52840DK, 8))
    );
    let serial_all = reports::e61_json(&run_release_suite_all_chips_with_threads(1), 0.0);
    assert_eq!(
        serial_all,
        reports::e61_json(&run_release_suite_all_chips_with_threads(8), 0.0)
    );
}

#[test]
fn same_seed_invocations_are_byte_identical() {
    // Two full measurements of the same workload at a parallel worker
    // count: scheduling differs between invocations, artifacts may not.
    let a = measure(2, 4);
    let b = measure(2, 4);
    assert_eq!(a.campaign_artifact, b.campaign_artifact);
    assert_eq!(a.diff_artifact, b.diff_artifact);
    assert_eq!(a.sample.campaign_runs, b.sample.campaign_runs);
    assert_eq!(a.sample.diff_runs, b.sample.diff_runs);
}

proptest! {
    // Shrunk case count: each case boots dozens of simulated kernels.
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn campaign_json_is_thread_count_invariant(
        seeds in 1u64..4,
        threads in 2usize..10,
    ) {
        let chips = [NRF52840DK];
        let serial = reports::campaign_json(&run_campaign_on(&chips, seeds, 1), seeds, 0.0);
        let parallel = reports::campaign_json(&run_campaign_on(&chips, seeds, threads), seeds, 0.0);
        prop_assert_eq!(serial, parallel);
    }
}
