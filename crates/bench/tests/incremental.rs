//! Staleness gates for the incremental verification engine.
//!
//! The cache must *never* reuse a verdict across a change: a changed
//! function body, a changed spec (obligation set), or a changed allowlist
//! entry each have to force a re-discharge. These tests drive the full
//! on-disk path — a seeded source tree, a persisted `ci/verify_cache.bin`
//! format file, an edit, a re-run — plus a property test perturbing
//! arbitrary function spans, and the corrupt-cache degradation path on
//! the real workspace.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use tt_bench::fig12::Effort;
use tt_bench::incremental;
use tt_contracts::obligation::{CheckResult, Registry};
use tt_contracts::span::{scan_text, SourceIndex};
use tt_contracts::vcache::{LoadOutcome, VerdictCache};
use tt_contracts::verifier::Verifier;
use tt_contracts::ContractKind;

/// A unique scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tt-stale-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Seeds a one-crate source tree whose `beta` body is parameterized.
fn seed_tree(root: &Path, beta_body: &str) {
    let src = root.join("crates/k/src");
    fs::create_dir_all(&src).expect("mkdir");
    let lib = format!(
        "pub fn alpha(x: u32) -> u32 {{\n    x + 1\n}}\n\n\
         pub fn beta(x: u32) -> u32 {{\n    {beta_body}\n}}\n\n\
         pub fn gamma(x: u32) -> u32 {{\n    x * 3\n}}\n"
    );
    fs::write(src.join("lib.rs"), lib).expect("write lib.rs");
}

/// Scans the seeded tree into a content-hash index.
fn index_of(root: &Path) -> SourceIndex {
    let files: Vec<_> = tt_analysis::source::workspace_sources(root)
        .iter()
        .filter_map(|p| tt_analysis::source::scan_file(root, p))
        .collect();
    SourceIndex::from_files(&files)
}

/// Registers one verified obligation per seeded function.
fn seeded_registry() -> Registry {
    let mut r = Registry::new();
    for name in ["alpha", "beta", "gamma"] {
        r.add_fn("k", name, ContractKind::Post, || CheckResult::Verified {
            cases: 4,
        });
    }
    r
}

/// Returns the set of function names served from cache in a report.
fn cached_fns(report: &tt_contracts::verifier::VerificationReport) -> Vec<&str> {
    report
        .functions
        .iter()
        .filter(|f| f.cached)
        .map(|f| f.function.as_str())
        .collect()
}

#[test]
fn editing_a_registered_fn_on_disk_rediscarges_only_that_fn() {
    // Satellite (c): seed a tree, cold-run, edit one registered fn body on
    // disk, re-run incrementally — the stale verdict must be re-discharged
    // while untouched fns hit the cache.
    let root = scratch("edit");
    let cache_file = root.join("verify_cache.bin");
    seed_tree(&root, "x + 2");

    let registry = seeded_registry();
    let mut cache = VerdictCache::new(42);
    let cold = Verifier::new().verify_incremental(&registry, &mut cache, &index_of(&root));
    assert!(cold.all_verified());
    assert!(cached_fns(&cold).is_empty(), "cold run has no hits");
    cache.save(&cache_file).expect("save cache");

    // Edit beta's body on disk; alpha and gamma are untouched.
    seed_tree(&root, "x + 99");

    let (mut cache, outcome) = VerdictCache::load_or_cold(&cache_file, 42);
    assert!(outcome.is_warm(), "{outcome:?}");
    let warm = Verifier::new().verify_incremental(&registry, &mut cache, &index_of(&root));
    assert!(warm.all_verified());
    assert_eq!(
        cached_fns(&warm),
        vec!["alpha", "gamma"],
        "the edited fn must be re-discharged, the others served from cache"
    );

    // A further unchanged re-run hits everything.
    cache.save(&cache_file).expect("save cache");
    let (mut cache, _) = VerdictCache::load_or_cold(&cache_file, 42);
    let warm2 = Verifier::new().verify_incremental(&registry, &mut cache, &index_of(&root));
    assert_eq!(cached_fns(&warm2), vec!["alpha", "beta", "gamma"]);

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn changing_the_spec_rediscarges_the_fn_with_an_unchanged_body() {
    // The spec leg of the staleness model: same sources, same fn bodies,
    // but `beta` gains an obligation — its domain hash changes and the
    // cached verdict must not be reused.
    let root = scratch("spec");
    seed_tree(&root, "x + 2");
    let index = index_of(&root);

    let registry = seeded_registry();
    let mut cache = VerdictCache::new(42);
    let _ = Verifier::new().verify_incremental(&registry, &mut cache, &index);

    let mut widened = seeded_registry();
    widened.add_fn("k", "beta", ContractKind::Invariant, || {
        CheckResult::Verified { cases: 2 }
    });
    let rerun = Verifier::new().verify_incremental(&widened, &mut cache, &index);
    assert!(rerun.all_verified());
    assert_eq!(
        cached_fns(&rerun),
        vec!["alpha", "gamma"],
        "a changed obligation set must force a re-discharge"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn config_hash_mismatch_discards_the_whole_cache() {
    // The toolchain leg: same tree, same specs, different config hash —
    // the cache load degrades to cold and nothing is reused.
    let root = scratch("cfg");
    let cache_file = root.join("verify_cache.bin");
    seed_tree(&root, "x + 2");
    let registry = seeded_registry();
    let mut cache = VerdictCache::new(42);
    let _ = Verifier::new().verify_incremental(&registry, &mut cache, &index_of(&root));
    cache.save(&cache_file).expect("save");

    let (mut cache, outcome) = VerdictCache::load_or_cold(&cache_file, 43);
    assert!(matches!(outcome, LoadOutcome::ConfigChanged), "{outcome:?}");
    let rerun = Verifier::new().verify_incremental(&registry, &mut cache, &index_of(&root));
    assert!(
        cached_fns(&rerun).is_empty(),
        "no reuse across config changes"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn bit_flipped_cache_degrades_to_a_full_cold_run() {
    // Satellite (f) on the real workspace: corrupt the persisted cache and
    // the next `verify_all`-style run must detect it, warn (outcome), and
    // re-discharge everything — never partial reuse.
    let path = std::env::temp_dir().join(format!("tt-stale-flip-{}.bin", std::process::id()));
    let _ = fs::remove_file(&path);
    let cold = incremental::run(Effort::QUICK, &path, true);
    assert!(cold.report.all_verified());

    let mut bytes = fs::read(&path).expect("cache written");
    assert!(bytes.len() > 48, "cache unexpectedly small");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    fs::write(&path, &bytes).expect("rewrite");

    let run = incremental::run(Effort::QUICK, &path, false);
    assert!(
        matches!(run.outcome, LoadOutcome::Corrupt(_)),
        "{:?}",
        run.outcome
    );
    assert_eq!(run.hit_rate, 0.0, "no partial reuse from a corrupt cache");
    assert!(run.report.all_verified());
    // The run rewrote a valid cache: the next one is warm again.
    let warm = incremental::run(Effort::QUICK, &path, false);
    assert!(warm.outcome.is_warm(), "{:?}", warm.outcome);
    assert!(warm.hit_rate >= 0.95);
    let _ = fs::remove_file(&path);
}

/// Builds one function's source with a body derived from `salt`.
fn fn_src(i: usize, salt: u32) -> String {
    format!("pub fn span_fn_{i}(x: u32) -> u32 {{\n    x + {salt}\n}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Perturbing an arbitrary function span changes that function's
    /// content hash — and only that function's — so a cached verdict keyed
    /// on the old hash can never be served for the perturbed span.
    #[test]
    fn perturbing_any_span_invalidates_exactly_that_fn(
        target in 0usize..6,
        salt in 1u32..10_000,
    ) {
        let base: String = (0..6).map(|i| fn_src(i, 0)).collect::<Vec<_>>().join("\n");
        let perturbed: String = (0..6)
            .map(|i| fn_src(i, if i == target { salt } else { 0 }))
            .collect::<Vec<_>>()
            .join("\n");
        let i0 = SourceIndex::from_files(&[scan_text("crates/k/src/lib.rs", &base)]);
        let i1 = SourceIndex::from_files(&[scan_text("crates/k/src/lib.rs", &perturbed)]);
        for i in 0..6 {
            let name = format!("span_fn_{i}");
            prop_assert!(i0.is_anchored(&name));
            if i == target {
                prop_assert_ne!(
                    i0.anchor_hash(&name), i1.anchor_hash(&name),
                    "perturbed span kept its hash"
                );
            } else {
                prop_assert_eq!(
                    i0.anchor_hash(&name), i1.anchor_hash(&name),
                    "untouched span changed hash"
                );
            }
        }
        // The cache-level consequence: verdicts stored against the old
        // index hit only for untouched spans.
        let mut cache = VerdictCache::new(7);
        let mut registry = Registry::new();
        for i in 0..6 {
            registry.add_fn("k", format!("span_fn_{i}"), ContractKind::Post, || {
                CheckResult::Verified { cases: 1 }
            });
        }
        let _ = Verifier::new().verify_incremental(&registry, &mut cache, &i0);
        let rerun = Verifier::new().verify_incremental(&registry, &mut cache, &i1);
        let hit: Vec<&str> = cached_fns(&rerun);
        prop_assert_eq!(hit.len(), 5);
        let target_name = format!("span_fn_{target}");
        let target_hit = hit.contains(&target_name.as_str());
        prop_assert!(!target_hit, "perturbed fn {} served from cache", target_name);
    }
}
