//! Context-switch-in cost under the PR 2 MPU commit cache.
//!
//! The quantity the cache optimises is the `setup_mpu` call on the
//! switch-in edge. Three variants are measured per chip, in cycles of the
//! `tt_hw::cycles` model:
//!
//! * **hit** — the process whose configuration is live in the register
//!   file is switched back in unchanged. On ARM this pays a single
//!   MPU_CTRL re-enable; on RISC-V it is free (the kernel never disabled
//!   anything).
//! * **miss** — the process ran `brk`/`sbrk` since its last commit, so the
//!   generation moved and the switch-in must re-commit (diff-commit still
//!   elides registers whose values are unchanged).
//! * **baseline** — the pre-cache kernel: caching and register-file
//!   elision forced off via [`tt_hw::commit_cache::with_disabled`], every
//!   switch-in recommits every register.

use tt_hw::cycles;
use tt_hw::platform::{Arch, ChipProfile};
use tt_kernel::loader::flash_app;
use tt_kernel::process::Flavor;
use tt_kernel::Kernel;

/// Context-switch-in cycle costs for one chip.
#[derive(Debug, Clone, Copy)]
pub struct SwitchCost {
    /// Chip name.
    pub chip: &'static str,
    /// `"arm"` or `"riscv"`.
    pub arch: &'static str,
    /// Cache-hit switch-in cycles.
    pub hit: u64,
    /// Cache-miss (post-`sbrk`) switch-in cycles.
    pub miss: u64,
    /// Cache-disabled (pre-PR-2) switch-in cycles.
    pub baseline: u64,
}

impl SwitchCost {
    /// Percentage reduction of the cache-hit path relative to the
    /// cache-off baseline (the PR's acceptance number: ≥ 30%).
    pub fn hit_reduction_pct(&self) -> f64 {
        if self.baseline == 0 {
            return 0.0;
        }
        (self.baseline - self.hit) as f64 / self.baseline as f64 * 100.0
    }
}

/// Short architecture label for a chip profile.
pub fn arch_name(chip: &ChipProfile) -> &'static str {
    match chip.arch {
        Arch::CortexM => "arm",
        Arch::Riscv32(_) => "riscv",
    }
}

/// Measures hit/miss/baseline switch-in cycles on one chip.
///
/// The run is fully deterministic: the cycle model is thread-local and
/// the simulator has no timing noise, so the numbers are exact counts,
/// not means.
pub fn measure_on(chip: &ChipProfile) -> SwitchCost {
    cycles::reset();
    let mut kernel = Kernel::boot(Flavor::Granular, chip);
    let image = flash_app(
        &mut kernel.mem,
        chip.map.flash.start + 0x4_0000,
        "switch",
        0x1000,
        4096,
        2048,
    )
    .unwrap();
    let pid = kernel.load_process(&image).unwrap();
    // First switch-in: full commit, populates the cache.
    kernel.processes[pid].setup_mpu();

    // Hit: kernel ran in between (user protection dropped), process
    // memory untouched.
    kernel.machine.disable_user_protection();
    let ((), hit) = cycles::measure(|| kernel.processes[pid].setup_mpu());

    // Miss: the process grew its break since the last commit, so the
    // generation moved and the switch-in must re-commit.
    kernel.processes[pid].sbrk(64).unwrap();
    kernel.machine.disable_user_protection();
    let ((), miss) = cycles::measure(|| kernel.processes[pid].setup_mpu());

    // Baseline: the pre-cache kernel. Forcing the toggle off disables the
    // machine-level cache AND the register-file elision, so this is the
    // exact cost every switch-in paid before PR 2.
    let baseline = tt_hw::commit_cache::with_disabled(|| {
        kernel.machine.disable_user_protection();
        let ((), cost) = cycles::measure(|| kernel.processes[pid].setup_mpu());
        cost
    });

    SwitchCost {
        chip: chip.name,
        arch: arch_name(chip),
        hit,
        miss,
        baseline,
    }
}

/// Measures all seven chip profiles.
pub fn measure_all() -> Vec<SwitchCost> {
    tt_hw::platform::ALL_CHIPS.iter().map(measure_on).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hit_cuts_switch_in_cost_at_least_30pct_on_both_arches() {
        // The PR's acceptance number, checked on every chip.
        for cost in measure_all() {
            assert!(
                cost.hit_reduction_pct() >= 30.0,
                "{} ({}): hit {} vs baseline {} is only {:.1}%",
                cost.chip,
                cost.arch,
                cost.hit,
                cost.baseline,
                cost.hit_reduction_pct()
            );
            assert!(
                cost.hit < cost.miss && cost.miss <= cost.baseline,
                "{}: expected hit < miss <= baseline, got {} / {} / {}",
                cost.chip,
                cost.hit,
                cost.miss,
                cost.baseline
            );
        }
    }

    #[test]
    fn riscv_hits_are_free_and_arm_hits_pay_one_ctrl_write() {
        for cost in measure_all() {
            match cost.arch {
                "riscv" => assert_eq!(cost.hit, 0, "{}", cost.chip),
                _ => assert_eq!(cost.hit, 4, "{} (one MPU_CTRL write)", cost.chip),
            }
        }
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = measure_on(&tt_hw::platform::NRF52840DK);
        let b = measure_on(&tt_hw::platform::NRF52840DK);
        assert_eq!((a.hit, a.miss, a.baseline), (b.hit, b.miss, b.baseline));
    }
}
