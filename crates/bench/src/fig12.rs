//! Figure 12: verification time per component.
//!
//! Builds the three obligation registries — `TickTock (Monolithic)`,
//! `TickTock (Granular)`, `Interrupts` — and runs the verifier over each,
//! reporting `Fns / Total / Max / Mean / StdDev` exactly as Fig. 12 does.
//!
//! The densities below set how hard each domain is explored. They are
//! chosen so a laptop run finishes in tens of seconds while preserving the
//! paper's structure: at *equal* effort per point, the monolithic kernel's
//! entangled allocation spec dominates everything (the paper's 5m19s vs
//! 36s), and the interrupt semantics have the highest per-function cost.

use tt_contracts::obligation::Registry;
use tt_contracts::verifier::{VerificationReport, Verifier};
use tt_legacy::BugVariant;

/// Verification effort configuration.
#[derive(Debug, Clone, Copy)]
pub struct Effort {
    /// Parameter-grid density for the monolithic allocator spec.
    pub monolithic_density: usize,
    /// Domain density for the granular obligations.
    pub granular_density: usize,
    /// Bit-pattern depth for the interrupt obligations.
    pub interrupt_depth: usize,
}

impl Effort {
    /// The quick configuration used by tests and CI.
    pub const QUICK: Effort = Effort {
        monolithic_density: 2,
        granular_density: 2,
        interrupt_depth: 4,
    };

    /// The full configuration used by the `fig12_verification_time`
    /// binary: every component explores its domains at the same per-point
    /// density (20), and the interrupt bit-vector domains at depth 100.
    pub const FULL: Effort = Effort {
        monolithic_density: 20,
        granular_density: 20,
        interrupt_depth: 100,
    };
}

/// Builds the full Fig. 12 registry: the paper's three components plus
/// the reproduction's own additions (the PR 2 commit-cache soundness
/// obligation and the refined-pointer obligations of the hardware model).
pub fn build_registry(effort: Effort) -> Registry {
    let mut registry = Registry::new();
    tt_legacy::obligations::register_obligations(
        &mut registry,
        BugVariant::Fixed,
        effort.monolithic_density,
    );
    ticktock::obligations::register_obligations(&mut registry, effort.granular_density);
    tt_fluxarm::contracts::register_obligations(&mut registry, effort.interrupt_depth);
    tt_kernel::obligations::register_obligations(&mut registry, effort.granular_density);
    tt_kernel::recovery::register_obligations(&mut registry, effort.granular_density);
    tt_kernel::explore::register_obligations(&mut registry, effort.granular_density);
    tt_hw::obligations::register_obligations(&mut registry, effort.granular_density);
    registry
}

/// Runs the verifier over the registry.
pub fn run(effort: Effort) -> VerificationReport {
    Verifier::new().verify(&build_registry(effort))
}

/// Renders the Fig. 12 table.
pub fn render(report: &VerificationReport) -> String {
    report.render_fig12()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticktock::obligations::COMPONENT as GRANULAR;
    use tt_fluxarm::contracts::COMPONENT as INTERRUPTS;
    use tt_legacy::obligations::COMPONENT as MONOLITHIC;

    #[test]
    fn everything_verifies_at_quick_effort() {
        let report = run(Effort::QUICK);
        assert!(
            report.all_verified(),
            "refuted: {:?}",
            report
                .refuted()
                .iter()
                .map(|f| (&f.function, &f.refutations))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn fig12_shape_holds() {
        let report = run(Effort::QUICK);
        let mono = report.component_stats(MONOLITHIC);
        let gran = report.component_stats(GRANULAR);
        let intr = report.component_stats(INTERRUPTS);

        // Headline: the monolithic kernel takes several times longer than
        // the granular one (5m19s vs 36s in the paper).
        assert!(
            mono.total.as_secs_f64() > gran.total.as_secs_f64() * 3.0,
            "monolithic {:?} vs granular {:?}",
            mono.total,
            gran.total
        );
        // >90% of monolithic time goes to allocate_app_mem_region.
        let alloc = report
            .functions
            .iter()
            .find(|f| f.function == "CortexM::allocate_app_mem_region")
            .unwrap();
        assert!(
            alloc.duration.as_secs_f64() > mono.total.as_secs_f64() * 0.5,
            "alloc {:?} of mono total {:?}",
            alloc.duration,
            mono.total
        );
        // Interrupts: fewer functions, but the highest mean per function
        // (1.63s vs 0.05s in the paper).
        assert!(intr.fns < gran.fns);
        assert!(
            intr.mean.as_secs_f64() > gran.mean.as_secs_f64() * 3.0,
            "interrupt mean {:?} vs granular mean {:?}",
            intr.mean,
            gran.mean
        );
    }

    #[test]
    fn rendered_table_has_all_components() {
        let report = run(Effort::QUICK);
        let table = render(&report);
        for c in [
            MONOLITHIC,
            GRANULAR,
            INTERRUPTS,
            tt_kernel::obligations::COMPONENT,
            tt_kernel::recovery::COMPONENT,
            tt_hw::obligations::COMPONENT,
        ] {
            assert!(table.contains(c), "missing {c}");
        }
    }
}
