//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation (§5, §6).
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Fig. 10 proof effort | [`fig10`] | `fig10_proof_effort` |
//! | Fig. 11 CPU cycles | [`fig11`] | `fig11_cycles` |
//! | Fig. 12 verification time | [`fig12`] | `fig12_verification_time` |
//! | §6.1 differential testing | `tt_kernel::differential` | `e61_differential` |
//! | §6.2 memory usage | [`e62`] | `e62_memory_usage` |
//!
//! Absolute numbers are not expected to match the paper (the substrate is
//! a simulator, not an NRF52840dk + Flux/z3); the *shape* — who wins, by
//! roughly what factor, where the crossovers fall — is the reproduction
//! target, recorded in `EXPERIMENTS.md`.

pub mod e62;
pub mod explore;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fleet;
pub mod incremental;
pub mod json;
pub mod reports;
pub mod switch;
pub mod throughput;

/// Formats a `±x.xx%` difference the way Fig. 11 prints it.
pub fn pct_diff(ticktock: f64, tock: f64) -> String {
    if tock == 0.0 {
        return "n/a".into();
    }
    let diff = (ticktock - tock) / tock * 100.0;
    format!("{diff:+.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_diff_formats_both_signs() {
        assert_eq!(pct_diff(50.0, 100.0), "-50.00%");
        assert_eq!(pct_diff(108.0, 100.0), "+8.00%");
        assert_eq!(pct_diff(1.0, 0.0), "n/a");
    }
}
