//! Incremental verification wiring for `verify_all` / Fig. 12.
//!
//! Reproduces the verification economics §6.3 leans on: Flux "checks each
//! function in isolation", so after one cold run only *changed* functions
//! are re-solved. Here the cold run discharges every obligation and
//! persists one verdict per function in `ci/verify_cache.bin`
//! ([`tt_contracts::vcache`]); a warm run re-scans the workspace sources
//! ([`tt_contracts::span::SourceIndex`]), and every function whose content
//! hash and obligation-domain hash are unchanged is served from the cache.
//! The CI gate (`--check`) requires the warm run on an unchanged tree to
//! be sub-second, ≥10x faster than the recorded cold wall, with ≥95% hit
//! rate — the floors live in `ci/bench_baseline.json`.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::fig12::Effort;
use crate::json;
use tt_contracts::span::{Fnv, SourceIndex};
use tt_contracts::vcache::{LoadOutcome, VerdictCache};
use tt_contracts::verifier::VerificationReport;

/// Default on-disk location of the verdict cache (workspace-relative,
/// gitignored — the cache is a build product, not a source of truth).
pub const DEFAULT_CACHE: &str = "ci/verify_cache.bin";

/// The cache schema generation for `verify_all`; bump to force a cold run
/// when the meaning of a verdict changes.
const SCHEMA: u64 = 1;

/// The toolchain/config hash: compiler + crate version, build profile,
/// cache schema, and the effort densities. Any of these changing makes
/// every cached verdict unreachable (a full cold run) — the "toolchain
/// hash" leg of the staleness model.
pub fn config_hash(effort: Effort) -> u64 {
    let mut h = Fnv::new();
    h.mix_u64(SCHEMA);
    h.mix_u64(tt_contracts::vcache::VERSION as u64);
    h.mix_str(env!("CARGO_PKG_VERSION"));
    h.mix_str(option_env!("CARGO_PKG_RUST_VERSION").unwrap_or(""));
    h.mix_u64(cfg!(debug_assertions) as u64);
    h.mix_u64(effort.monolithic_density as u64);
    h.mix_u64(effort.granular_density as u64);
    h.mix_u64(effort.interrupt_depth as u64);
    h.finish()
}

/// Scans the audited workspace sources into a content-hash index.
pub fn source_index(root: &Path) -> SourceIndex {
    let files: Vec<_> = tt_analysis::source::workspace_sources(root)
        .iter()
        .filter_map(|p| tt_analysis::source::scan_file(root, p))
        .collect();
    SourceIndex::from_files(&files)
}

/// Resolves the cache path: absolute stays as given, relative is anchored
/// at the workspace root (so `verify_all` works from any cwd).
pub fn cache_path(arg: Option<&str>) -> PathBuf {
    let p = PathBuf::from(arg.unwrap_or(DEFAULT_CACHE));
    if p.is_absolute() {
        p
    } else {
        tt_analysis::audit::workspace_root().join(p)
    }
}

/// One incremental `verify_all` run: everything the JSON artifact and the
/// CI gate need.
pub struct IncrementalRun {
    /// The verification report (per-function results, cached flags set).
    pub report: VerificationReport,
    /// How the cache load resolved ([`LoadOutcome::Warm`] only when the
    /// file was valid and config-matched).
    pub outcome: LoadOutcome,
    /// Wall-clock of source indexing + verification for *this* run.
    pub wall: Duration,
    /// The cold-run wall recorded in the cache header (this run's own wall
    /// if this run was cold).
    pub cold_wall: Duration,
    /// Cache lookup hit rate for this run.
    pub hit_rate: f64,
}

impl IncrementalRun {
    /// Warm-over-cold speedup (1.0 for the cold run itself).
    pub fn speedup(&self) -> f64 {
        let warm = self.wall.as_secs_f64();
        if warm <= 0.0 {
            return f64::INFINITY;
        }
        self.cold_wall.as_secs_f64() / warm
    }
}

/// Runs the verifier incrementally against the cache at `path`.
///
/// `force_cold` discards any existing cache first (the `--cold` leg of the
/// CI job). A missing, corrupt, or config-mismatched cache degrades to
/// exactly the same cold run — corruption is reported in the outcome so
/// the caller can warn, and never causes partial reuse. The (updated)
/// cache is saved back unless the run had refutations that should stay
/// un-cached anyway (refuted verdicts are never stored either way).
pub fn run(effort: Effort, path: &Path, force_cold: bool) -> IncrementalRun {
    let cfg = config_hash(effort);
    let (mut cache, outcome) = if force_cold {
        let _ = std::fs::remove_file(path);
        (VerdictCache::new(cfg), LoadOutcome::NoFile)
    } else {
        VerdictCache::load_or_cold(path, cfg)
    };

    let start = Instant::now();
    let index = source_index(&tt_analysis::audit::workspace_root());
    let registry = crate::fig12::build_registry(effort);
    let report =
        tt_contracts::verifier::Verifier::new().verify_incremental(&registry, &mut cache, &index);
    let wall = start.elapsed();

    let hit_rate = cache.hit_rate();
    if !outcome.is_warm() {
        // This run *was* the cold baseline: record its wall for warm gates.
        cache.set_cold_wall_ns(wall.as_nanos().min(u64::MAX as u128) as u64);
    }
    let cold_wall = Duration::from_nanos(cache.cold_wall_ns());
    if let Err(e) = cache.save(path) {
        eprintln!(
            "warning: could not save verdict cache {}: {e}",
            path.display()
        );
    }
    IncrementalRun {
        report,
        outcome,
        wall,
        cold_wall,
        hit_rate,
    }
}

/// Renders BENCH_fig12.json: per-component Fig. 12 stats plus the
/// incremental-cache section (`cache_hit_rate`, cold/warm wall, per-
/// component skip counts).
pub fn to_json(run: &IncrementalRun, effort_name: &str) -> String {
    let ms = |d: Duration| json::num(d.as_secs_f64() * 1000.0);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"generator\": \"verify_all\",\n");
    out.push_str(&format!(
        "  \"effort\": \"{}\",\n",
        json::escape(effort_name)
    ));
    let mode = if run.outcome.is_warm() {
        "warm"
    } else {
        "cold"
    };
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"cache_hit_rate\": {},\n",
        format_args!("{:.4}", run.hit_rate)
    ));
    out.push_str(&format!("  \"wall_ms\": {},\n", ms(run.wall)));
    out.push_str(&format!("  \"cold_wall_ms\": {},\n", ms(run.cold_wall)));
    out.push_str(&format!("  \"speedup\": {},\n", json::num(run.speedup())));
    let all = run.report.component_stats("");
    out.push_str(&format!("  \"fns\": {},\n", all.fns));
    out.push_str(&format!("  \"skipped_fns\": {},\n", all.cached_fns));
    out.push_str(&format!("  \"refuted_fns\": {},\n", all.refuted_fns));
    out.push_str("  \"components\": {\n");
    let by = run.report.by_component();
    let last = by.len().saturating_sub(1);
    for (i, (component, stats)) in by.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"fns\": {}, \"total_ms\": {}, \"max_ms\": {}, \"mean_ms\": {}, \
             \"stddev_ms\": {}, \"cached_fns\": {}, \"refuted_fns\": {}}}{}\n",
            json::escape(component),
            stats.fns,
            ms(stats.total),
            ms(stats.max),
            ms(stats.mean),
            ms(stats.stddev),
            stats.cached_fns,
            stats.refuted_fns,
            if i == last { "" } else { "," },
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Applies the warm-run CI floors from `ci/bench_baseline.json`:
/// `min_warm_hit_rate`, `max_warm_verify_ms`, `min_incremental_speedup`.
/// Returns the violated gates (empty = pass). A non-warm run fails
/// outright: the gate certifies the *incremental* path, so running it
/// against a cold cache means the job is miswired.
pub fn check(run: &IncrementalRun, baseline: &str) -> Vec<String> {
    let mut violations = Vec::new();
    if !run.outcome.is_warm() {
        violations.push(format!(
            "warm gate ran against a non-warm cache ({:?}); run a cold pass first",
            run.outcome
        ));
        return violations;
    }
    let min_hit = json::read_number(baseline, "min_warm_hit_rate").unwrap_or(0.95);
    let max_ms = json::read_number(baseline, "max_warm_verify_ms").unwrap_or(1000.0);
    let min_speedup = json::read_number(baseline, "min_incremental_speedup").unwrap_or(10.0);
    if run.hit_rate < min_hit {
        violations.push(format!(
            "cache_hit_rate {:.4} below floor {min_hit} on an unchanged tree",
            run.hit_rate
        ));
    }
    let wall_ms = run.wall.as_secs_f64() * 1000.0;
    if wall_ms > max_ms {
        violations.push(format!(
            "warm re-verify took {wall_ms:.1} ms, above the {max_ms} ms ceiling"
        ));
    }
    if run.speedup() < min_speedup {
        violations.push(format!(
            "warm speedup {:.1}x below the {min_speedup}x floor (cold {:.1} ms, warm {wall_ms:.1} ms)",
            run.speedup(),
            run.cold_wall.as_secs_f64() * 1000.0,
        ));
    }
    if run.report.component_stats("").refuted_fns > 0 {
        violations.push("refutations present in the gated run".into());
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ttvc-inc-{tag}-{}.bin", std::process::id()))
    }

    #[test]
    fn cold_then_warm_hits_everything_on_an_unchanged_tree() {
        let path = temp_cache("warm");
        let cold = run(Effort::QUICK, &path, true);
        assert!(cold.report.all_verified());
        assert!(!cold.outcome.is_warm());
        assert_eq!(cold.hit_rate, 0.0);
        assert!(cold.cold_wall == cold.wall);

        let warm = run(Effort::QUICK, &path, false);
        assert!(warm.report.all_verified());
        assert!(warm.outcome.is_warm(), "{:?}", warm.outcome);
        assert!(
            warm.hit_rate >= 0.95,
            "hit rate {:.4} on an unchanged tree",
            warm.hit_rate
        );
        assert_eq!(
            warm.report.component_stats("").cached_fns,
            warm.report.component_stats("").fns
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn different_effort_means_different_config_hash() {
        assert_ne!(config_hash(Effort::QUICK), config_hash(Effort::FULL));
    }

    #[test]
    fn json_artifact_has_the_gated_fields() {
        let path = temp_cache("json");
        let cold = run(Effort::QUICK, &path, true);
        let doc = to_json(&cold, "quick");
        for key in [
            "cache_hit_rate",
            "wall_ms",
            "cold_wall_ms",
            "speedup",
            "skipped_fns",
            "components",
            "TickTock (Monolithic)",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        assert_eq!(json::read_number(&doc, "cache_hit_rate"), Some(0.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn check_fails_a_cold_run_and_passes_a_warm_one() {
        let path = temp_cache("check");
        let baseline = r#"{"min_warm_hit_rate": 0.95, "max_warm_verify_ms": 60000.0, "min_incremental_speedup": 0.0}"#;
        let cold = run(Effort::QUICK, &path, true);
        assert!(
            !check(&cold, baseline).is_empty(),
            "cold run must not pass the warm gate"
        );
        let warm = run(Effort::QUICK, &path, false);
        let violations = check(&warm, baseline);
        assert!(violations.is_empty(), "{violations:?}");
        let _ = std::fs::remove_file(&path);
    }
}
