//! §6.2 memory usage: the grow-until-failure microbenchmark.
//!
//! "We wrote an application which incrementally grows its memory by 1 byte
//! until failure." The table reports total block size, application memory
//! (stack+data+heap), grant memory, and unused bytes for Tock, TickTock,
//! and a padded TickTock whose total matches Tock's power-of-two block.

use tt_kernel::loader::flash_app;
use tt_kernel::process::Flavor;
use tt_kernel::Kernel;
use tt_legacy::BugVariant;

/// The app's requested RAM (stack + data + heap), as in the paper's setup.
pub const APP_RAM_REQUEST: usize = 6000;
/// The kernel's grant reservation; the paper's runs used ~1.2 KiB of grant
/// memory.
pub const GRANT_BYTES: usize = 1200;

/// Memory-footprint measurements for one kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemUsage {
    /// Total bytes allocated for the process block.
    pub total: usize,
    /// Application-usable bytes at the point of failure.
    pub app: usize,
    /// Grant bytes actually allocated.
    pub grant: usize,
    /// Bytes in the block serving neither purpose.
    pub unused: usize,
}

impl MemUsage {
    /// Percentage of the block that is unused.
    pub fn unused_pct(&self) -> f64 {
        self.unused as f64 / self.total as f64 * 100.0
    }
}

/// Runs the grow-by-1-byte-until-failure app on the given kernel flavour.
///
/// `extra_reservation` implements the paper's padding configuration: extra
/// grant-side reservation that rounds TickTock's block up to Tock's
/// power-of-two total.
pub fn measure(flavor: Flavor, extra_reservation: usize) -> MemUsage {
    tt_hw::cycles::reset();
    let mut kernel = Kernel::boot(flavor, &tt_hw::platform::NRF52840DK);
    let image = flash_app(
        &mut kernel.mem,
        0x0004_0000,
        "grow",
        0x1000,
        APP_RAM_REQUEST,
        GRANT_BYTES + extra_reservation,
    )
    .unwrap();
    let pid = kernel.load_process(&image).unwrap();
    kernel.processes[pid].setup_mpu();

    // The kernel's drivers consume the grant budget as the app uses them;
    // model the paper's ~1.2 KiB of grant usage directly.
    // 8-byte-aligned chunks so alignment never eats into the budget.
    let mut granted = 0usize;
    let mut grant_id = 0usize;
    while granted + 144 <= GRANT_BYTES {
        kernel.processes[pid]
            .allocate_grant(grant_id, 144)
            .expect("grant within reservation");
        granted += 144;
        grant_id += 1;
    }

    // Grow by one byte until failure.
    while kernel.sys_sbrk(pid, 1).is_ok() {}

    let p = &kernel.processes[pid];
    let total = p.memory_size();
    let app = p.app_break() - p.memory_start();
    let memory_end = p.memory_start() + total;
    let grant = memory_end - p.kernel_break();
    MemUsage {
        total,
        app,
        grant,
        unused: total - app - grant,
    }
}

/// Runs the three configurations of the §6.2 table.
pub fn run() -> (MemUsage, MemUsage, MemUsage) {
    let tock = measure(Flavor::Legacy(BugVariant::Fixed), 0);
    let ticktock = measure(Flavor::Granular, 0);
    // Padded TickTock: round the block up to Tock's power-of-two total.
    let pad = tock.total.saturating_sub(ticktock.total);
    let padded = measure(Flavor::Granular, pad);
    (tock, ticktock, padded)
}

/// Renders the §6.2 comparison.
pub fn render(tock: &MemUsage, ticktock: &MemUsage, padded: &MemUsage) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>8} {:>8} {:>8} {:>8} {:>9}\n",
        "Config", "Total", "App", "Grant", "Unused", "Unused%"
    ));
    for (name, m) in [
        ("Tock", tock),
        ("TickTock", ticktock),
        ("TickTock (padded)", padded),
    ] {
        out.push_str(&format!(
            "{:<20} {:>8} {:>8} {:>8} {:>8} {:>8.2}%\n",
            name,
            m.total,
            m.app,
            m.grant,
            m.unused,
            m.unused_pct()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_adds_up() {
        let (tock, ticktock, padded) = run();
        for m in [tock, ticktock, padded] {
            assert_eq!(m.app + m.grant + m.unused, m.total, "{m:?}");
            assert!(m.grant >= GRANT_BYTES - 150 && m.grant <= GRANT_BYTES + 64);
        }
    }

    #[test]
    fn section_6_2_shape_holds() {
        let (tock, ticktock, padded) = run();
        // TickTock allocates less total memory than Tock (7,780 vs 8,192
        // in the paper) because its block is not forced to a power of two.
        assert!(
            ticktock.total < tock.total,
            "ticktock {ticktock:?} vs tock {tock:?}"
        );
        // Tock's block IS a power of two.
        assert!(tock.total.is_power_of_two(), "{tock:?}");
        // Grant usage is nearly equal (1,200 vs 1,284 in the paper).
        assert!((ticktock.grant as i64 - tock.grant as i64).unsigned_abs() < 128);
        // Padded TickTock matches Tock's total, and its unused memory is
        // within ~100 bytes of Tock's (84 in the paper).
        assert_eq!(padded.total, tock.total);
        assert!(
            (padded.unused as i64 - tock.unused as i64).unsigned_abs() <= 100,
            "padded {padded:?} vs tock {tock:?}"
        );
    }

    #[test]
    fn app_memory_is_substantial_in_both() {
        let (tock, ticktock, _) = run();
        assert!(tock.app >= APP_RAM_REQUEST);
        assert!(ticktock.app >= APP_RAM_REQUEST - 64);
    }

    #[test]
    fn render_lists_three_configs() {
        let (t, tt, p) = run();
        let table = render(&t, &tt, &p);
        assert!(table.contains("Tock"));
        assert!(table.contains("TickTock (padded)"));
    }
}
