//! Fleet-scale schedule exploration: the `e_explore` engine and gate.
//!
//! Wraps `tt_kernel::explore` in the same shape as the fault-campaign
//! machinery: a pool of thread-affine [`FleetRunner`]s walks every
//! `(chip, baseline)` unit — the clean baseline plus `--seeds` injected
//! ones per chip — and explores one interrupt-arrival representative per
//! commuting class. The gate demands a schedule-clean campaign, a DPOR
//! pruning ratio above the `min_explore_prune_ratio` floor in
//! `ci/bench_baseline.json`, and detector power: the planted
//! commit-window bug ([`tt_kernel::explore::planted`]) must be invisible
//! to a seed sweep, found by exploration, and absent on the control
//! kernel when its minimized schedule is replayed.
//!
//! Findings persist as version-2 [`CorpusRecord`]s (`ci/corpus/
//! schedules.bin`): the 64-bit schedule ID plus baseline seed (or the
//! `clean` flag) are the whole input, so a later run replays them first.

use std::path::Path;
use std::time::Instant;

use tt_hw::injection::InjectionPlan;
use tt_hw::platform::{ChipProfile, ALL_CHIPS};
use tt_hw::sched::InterruptSchedule;
use tt_kernel::campaign::{FleetRunner, VICTIM};
use tt_kernel::corpus::{read_corpus, CorpusRecord};
use tt_kernel::explore::{
    bystander_reference, explore, planted, validate_scheduled, ExploreOutcome, Finding,
};
use tt_kernel::pool;

use crate::json;

/// One fleet-scale exploration: every chip, clean + seeded baselines.
#[derive(Debug)]
pub struct ExploreFleet {
    /// Injected baselines explored per chip (the clean one rides free).
    pub seeds_per_chip: u64,
    /// Worker count.
    pub threads: usize,
    /// Wall clock, milliseconds.
    pub wall_ms: f64,
    /// Per-unit outcomes in `(chip, baseline)` order.
    pub outcomes: Vec<ExploreOutcome>,
}

impl ExploreFleet {
    /// Candidate arrivals enumerated across all units.
    pub fn candidates(&self) -> usize {
        self.outcomes.iter().map(|o| o.candidates).sum()
    }

    /// Representatives actually executed.
    pub fn explored(&self) -> usize {
        self.outcomes.iter().map(|o| o.explored).sum()
    }

    /// Candidates pruned as commuting with an executed representative.
    pub fn pruned(&self) -> usize {
        self.outcomes.iter().map(|o| o.pruned).sum()
    }

    /// Units a wall-clock budget or cap stopped early.
    pub fn truncated_units(&self) -> usize {
        self.outcomes.iter().filter(|o| o.truncated).count()
    }

    /// All findings across units.
    pub fn findings(&self) -> Vec<&Finding> {
        self.outcomes.iter().flat_map(|o| &o.findings).collect()
    }

    /// Rendered oracle failures across all findings.
    pub fn failures(&self) -> Vec<&String> {
        self.outcomes
            .iter()
            .flat_map(|o| &o.findings)
            .flat_map(|f| &f.failures)
            .collect()
    }

    /// Aggregate candidates-per-executed-run over *complete* units only.
    /// Truncated units would inflate the ratio (their candidates count
    /// but their runs were cut short), so they are excluded — the CI
    /// floor gates honest pruning, not budget exhaustion.
    pub fn prune_ratio(&self) -> f64 {
        let (cand, expl) = self
            .outcomes
            .iter()
            .filter(|o| !o.truncated)
            .fold((0usize, 0usize), |(c, e), o| {
                (c + o.candidates, e + o.explored)
            });
        if expl == 0 {
            0.0
        } else {
            cand as f64 / expl as f64
        }
    }
}

/// Explores every `(chip, baseline)` unit on a work-stealing pool.
///
/// Baselines per chip: clean (`None`) plus seeds `0..seeds`. Each worker
/// keeps one [`FleetRunner`] per chip it touches (runners are
/// thread-affine), so outcomes are a pure function of the unit —
/// byte-identical across thread counts. `cap` bounds representatives per
/// unit; `budget_ms` is a fleet-wide wall-clock budget — units starting
/// past it report `truncated` with zero work instead of running (the one
/// deliberately nondeterministic knob, for CI).
pub fn run_explore_fleet(
    chips: &[ChipProfile],
    seeds: u64,
    cap: Option<usize>,
    threads: usize,
    budget_ms: Option<f64>,
) -> ExploreFleet {
    let t0 = Instant::now();
    let units: Vec<(usize, Option<u64>)> = (0..chips.len())
        .flat_map(|c| std::iter::once((c, None)).chain((0..seeds).map(move |s| (c, Some(s)))))
        .collect();
    let outcomes = pool::run_indexed_ctx(
        &units,
        threads,
        Vec::new,
        |runners: &mut Vec<Option<FleetRunner>>, _, &(c, seed)| {
            if budget_ms.is_some_and(|ms| t0.elapsed().as_secs_f64() * 1e3 >= ms) {
                return ExploreOutcome {
                    chip: chips[c].name.to_string(),
                    seed,
                    candidates: 0,
                    classes: 0,
                    explored: 0,
                    pruned: 0,
                    truncated: true,
                    findings: Vec::new(),
                };
            }
            if runners.len() < chips.len() {
                runners.resize_with(chips.len(), || None);
            }
            let runner = runners[c].get_or_insert_with(|| FleetRunner::new(&chips[c]));
            explore(runner, seed, cap)
        },
    );
    ExploreFleet {
        seeds_per_chip: seeds,
        threads,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        outcomes,
    }
}

/// The detector-power demonstration on one chip: the planted
/// commit-window bug must slip past a seed sweep and fall to the
/// explorer, whose minimized schedule must be harmless on the control
/// kernel.
#[derive(Debug)]
pub struct PlantedDemo {
    /// Chip the demonstration ran on.
    pub chip: String,
    /// Seeded (uninterrupted) campaign runs swept on the buggy kernel.
    pub campaign_seeds: u64,
    /// Seeds whose run failed the oracle — expected 0 (the bug only
    /// bites when an interrupt lands inside the commit window).
    pub seed_failures: usize,
    /// Exploration of the buggy kernel's clean baseline — expected to
    /// carry at least one finding.
    pub outcome: ExploreOutcome,
    /// Oracle failures when each finding's minimized schedule replays on
    /// the *correct* kernel — expected 0 (the schedule exposes the bug,
    /// not a broken oracle).
    pub control_failures: usize,
}

/// Runs the planted-bug demonstration: `campaign_seeds` seeded runs on
/// the buggy kernel (all expected green), one full exploration (expected
/// to find the bug), and a control replay of every minimized schedule.
pub fn planted_demo(chip: &ChipProfile, campaign_seeds: u64) -> PlantedDemo {
    let mut runner = planted::runner(chip);
    let reference = bystander_reference(&runner.run_plan(None));
    let mut seed_failures = 0;
    for s in 0..campaign_seeds {
        let run = runner.run_seed(Some(s));
        seed_failures += usize::from(!validate_scheduled(chip, &run, 0, &reference).is_empty());
    }
    let outcome = explore(&mut runner, None, None);
    let mut control = planted::control_runner(chip);
    let control_reference = bystander_reference(&control.run_plan(None));
    let mut control_failures = 0;
    for f in &outcome.findings {
        let schedule = InterruptSchedule::from_id(f.minimized);
        let run = control.run_scheduled(None, &schedule);
        control_failures += validate_scheduled(chip, &run, f.minimized, &control_reference).len();
    }
    PlantedDemo {
        chip: chip.name.to_string(),
        campaign_seeds,
        seed_failures,
        outcome,
        control_failures,
    }
}

/// Reduces a fleet's findings to version-2 corpus records: the minimized
/// schedule ID plus its baseline (seed, or the `clean` flag) re-drive
/// the failing run exactly.
pub fn explore_records(outcomes: &[ExploreOutcome]) -> Vec<CorpusRecord> {
    outcomes
        .iter()
        .flat_map(|o| {
            let chip = ALL_CHIPS
                .iter()
                .position(|c| c.name == o.chip)
                .unwrap_or(u8::MAX as usize) as u8;
            o.findings.iter().map(move |f| CorpusRecord {
                chip,
                cold: false,
                killed: false,
                clean: o.seed.is_none(),
                seed: o.seed.unwrap_or(0),
                schedule: f.minimized,
                fired: f.irq_fired.min(u64::from(u16::MAX)) as u16,
                restarts: 0,
                recoveries: 0,
                failures: f.failures.len().min(u16::MAX as usize) as u16,
                trace_len: 0,
                recovery_cycles: 0,
            })
        })
        .collect()
}

/// Replays persisted schedule records against the standard campaign
/// scenario, returning every oracle failure that still reproduces (a
/// previously-found schedule that now passes contributes nothing).
pub fn replay_schedule_records(records: &[CorpusRecord]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut runners: Vec<Option<(FleetRunner, Vec<Vec<tt_hw::trace::TraceEvent>>)>> =
        std::iter::repeat_with(|| None)
            .take(ALL_CHIPS.len())
            .collect();
    for r in records.iter().filter(|r| r.schedule != 0) {
        let idx = r.chip as usize;
        if idx >= ALL_CHIPS.len() {
            failures.push(format!("corpus chip index {} out of range", r.chip));
            continue;
        }
        let (runner, reference) = runners[idx].get_or_insert_with(|| {
            let mut runner = FleetRunner::new(&ALL_CHIPS[idx]);
            let reference = bystander_reference(&runner.run_plan(None));
            (runner, reference)
        });
        let plan = (!r.clean).then(|| InjectionPlan::from_seed(r.seed, VICTIM as u32));
        let run = runner.run_scheduled(plan, &InterruptSchedule::from_id(r.schedule));
        failures.extend(validate_scheduled(
            &ALL_CHIPS[idx],
            &run,
            r.schedule,
            reference,
        ));
    }
    failures
}

/// Reads `<dir>/schedules.bin` into replayable records. A missing file
/// is an empty corpus; a malformed one is a real error.
pub fn schedule_corpus(dir: &Path) -> std::io::Result<Vec<CorpusRecord>> {
    let path = dir.join("schedules.bin");
    if !path.exists() {
        return Ok(Vec::new());
    }
    read_corpus(&path)
}

/// Renders the per-chip exploration table plus the planted-bug summary.
pub fn render(fleet: &ExploreFleet, demo: &PlantedDemo) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "schedule exploration: {} chips x (1 clean + {} seeded) baselines, {} threads\n",
        fleet.outcomes.len() / (fleet.seeds_per_chip as usize + 1).max(1),
        fleet.seeds_per_chip,
        fleet.threads,
    ));
    out.push_str(&format!(
        "{:<14} {:>6} {:>10} {:>8} {:>9} {:>8} {:>7} {:>9} {:>6}\n",
        "chip",
        "units",
        "candidates",
        "classes",
        "explored",
        "pruned",
        "ratio",
        "findings",
        "trunc"
    ));
    for chip in &ALL_CHIPS {
        let rows: Vec<&ExploreOutcome> = fleet
            .outcomes
            .iter()
            .filter(|o| o.chip == chip.name)
            .collect();
        if rows.is_empty() {
            continue;
        }
        let cand: usize = rows.iter().map(|o| o.candidates).sum();
        let explored: usize = rows.iter().map(|o| o.explored).sum();
        out.push_str(&format!(
            "{:<14} {:>6} {:>10} {:>8} {:>9} {:>8} {:>7} {:>9} {:>6}\n",
            chip.name,
            rows.len(),
            cand,
            rows.iter().map(|o| o.classes).sum::<usize>(),
            explored,
            rows.iter().map(|o| o.pruned).sum::<usize>(),
            if explored == 0 {
                "-".to_string()
            } else {
                format!("{:.2}x", cand as f64 / explored as f64)
            },
            rows.iter().map(|o| o.findings.len()).sum::<usize>(),
            rows.iter().filter(|o| o.truncated).count(),
        ));
    }
    out.push_str(&format!(
        "total: {} candidates -> {} executed ({} pruned, {:.2}x), {} finding(s)\n",
        fleet.candidates(),
        fleet.explored(),
        fleet.pruned(),
        fleet.prune_ratio(),
        fleet.findings().len(),
    ));
    for f in fleet.failures() {
        out.push_str(&format!("  FINDING {f}\n"));
    }
    out.push_str(&format!(
        "planted commit-window bug ({}): {} seeds -> {} failure(s); explorer: {} \
         finding(s) in {} runs; control replay failures: {}\n",
        demo.chip,
        demo.campaign_seeds,
        demo.seed_failures,
        demo.outcome.findings.len(),
        demo.outcome.explored,
        demo.control_failures,
    ));
    for f in &demo.outcome.findings {
        out.push_str(&format!(
            "  planted repro: schedule {:#x} -> minimized {:#x} ({} arrival(s) fired)\n",
            f.schedule, f.minimized, f.irq_fired
        ));
    }
    out
}

/// Renders the `BENCH_explore.json` document. Wall-clock lives inside
/// `fleet`; determinism tests pin it and compare whole documents.
pub fn explore_json(fleet: &ExploreFleet, demo: &PlantedDemo) -> String {
    let mut doc = String::new();
    doc.push_str("{\n  \"experiment\": \"e_explore\",\n");
    doc.push_str(&format!(
        "  \"seeds_per_chip\": {},\n  \"threads\": {},\n",
        fleet.seeds_per_chip, fleet.threads
    ));
    doc.push_str(&format!(
        "  \"candidates\": {},\n  \"explored\": {},\n  \"pruned\": {},\n",
        fleet.candidates(),
        fleet.explored(),
        fleet.pruned()
    ));
    doc.push_str(&format!(
        "  \"prune_ratio\": {},\n  \"findings\": {},\n  \"truncated_units\": {},\n",
        json::num(fleet.prune_ratio()),
        fleet.findings().len(),
        fleet.truncated_units()
    ));
    doc.push_str(&format!(
        "  \"wall_clock_ms\": {},\n",
        json::num(fleet.wall_ms)
    ));
    doc.push_str("  \"chips\": [\n");
    let chips: Vec<&ChipProfile> = ALL_CHIPS
        .iter()
        .filter(|c| fleet.outcomes.iter().any(|o| o.chip == c.name))
        .collect();
    for (i, chip) in chips.iter().enumerate() {
        let rows: Vec<&ExploreOutcome> = fleet
            .outcomes
            .iter()
            .filter(|o| o.chip == chip.name)
            .collect();
        let cand: usize = rows.iter().map(|o| o.candidates).sum();
        let explored: usize = rows.iter().map(|o| o.explored).sum();
        doc.push_str(&format!(
            "    {{\"chip\": \"{}\", \"units\": {}, \"candidates\": {}, \"classes\": {}, \
             \"explored\": {}, \"pruned\": {}, \"prune_ratio\": {}, \"findings\": {}, \
             \"truncated\": {}}}{}\n",
            json::escape(chip.name),
            rows.len(),
            cand,
            rows.iter().map(|o| o.classes).sum::<usize>(),
            explored,
            rows.iter().map(|o| o.pruned).sum::<usize>(),
            if explored == 0 {
                "null".to_string()
            } else {
                json::num(cand as f64 / explored as f64)
            },
            rows.iter().map(|o| o.findings.len()).sum::<usize>(),
            rows.iter().filter(|o| o.truncated).count(),
            if i + 1 < chips.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ],\n");
    doc.push_str(&format!(
        "  \"planted\": {{\"chip\": \"{}\", \"campaign_seeds\": {}, \"seed_failures\": {}, \
         \"explorer_findings\": {}, \"explorer_runs\": {}, \"minimized\": [{}], \
         \"control_failures\": {}}}\n",
        json::escape(&demo.chip),
        demo.campaign_seeds,
        demo.seed_failures,
        demo.outcome.findings.len(),
        demo.outcome.explored,
        demo.outcome
            .findings
            .iter()
            .map(|f| format!("\"{:#x}\"", f.minimized))
            .collect::<Vec<_>>()
            .join(", "),
        demo.control_failures,
    ));
    doc.push_str("}\n");
    doc
}

/// The CI gate. Fails on: any schedule finding on the real campaign
/// scenario, a replayed corpus schedule still failing, a pruning ratio
/// under the baseline's `min_explore_prune_ratio` floor (complete units
/// only — and at least one unit must have completed), or a planted-bug
/// demonstration that lost detector power.
pub fn check(
    fleet: &ExploreFleet,
    demo: &PlantedDemo,
    replayed: &[String],
    baseline: &str,
) -> Result<Vec<String>, Vec<String>> {
    let mut failures = Vec::new();
    let mut notes = Vec::new();
    for f in fleet.failures() {
        failures.push(format!("campaign schedule: {f}"));
    }
    if fleet.failures().is_empty() {
        notes.push(format!(
            "campaign schedules: {} representatives clean ({} candidates, {} pruned)",
            fleet.explored(),
            fleet.candidates(),
            fleet.pruned()
        ));
    }
    for f in replayed {
        failures.push(format!("corpus replay: {f}"));
    }
    if fleet.outcomes.iter().all(|o| o.truncated) {
        failures.push("every exploration unit was truncated; raise the budget".into());
    } else {
        match json::read_number(baseline, "min_explore_prune_ratio") {
            Some(floor) => {
                let ratio = fleet.prune_ratio();
                if ratio < floor {
                    failures.push(format!(
                        "prune ratio {ratio:.2}x below floor {floor:.2}x \
                         ({} candidates / {} executed over complete units)",
                        fleet.candidates(),
                        fleet.explored()
                    ));
                } else {
                    notes.push(format!("prune ratio: {ratio:.2}x >= floor {floor:.2}x"));
                }
            }
            None => notes.push("baseline has no min_explore_prune_ratio; floor skipped".into()),
        }
    }
    if demo.seed_failures > 0 {
        failures.push(format!(
            "planted bug: {} of {} seeded runs failed — the bug is not \
             schedule-only, the demonstration is broken",
            demo.seed_failures, demo.campaign_seeds
        ));
    }
    if demo.outcome.findings.is_empty() {
        failures.push("planted bug: the explorer found nothing — detector power lost".into());
    }
    if demo.control_failures > 0 {
        failures.push(format!(
            "planted bug: minimized schedule fails {} check(s) on the correct \
             kernel — the oracle, not the bug, is tripping",
            demo.control_failures
        ));
    }
    if demo.seed_failures == 0 && !demo.outcome.findings.is_empty() && demo.control_failures == 0 {
        notes.push(format!(
            "planted bug: {} seeds green, explorer found {} schedule(s), control clean",
            demo.campaign_seeds,
            demo.outcome.findings.len()
        ));
    }
    if failures.is_empty() {
        Ok(notes)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::platform::NRF52840DK;
    use tt_hw::sched::ArrivalPoint;

    // Pins the two honestly-varying fields (wall clock, worker count) so
    // whole documents can be compared for determinism.
    fn pinned(mut fleet: ExploreFleet) -> ExploreFleet {
        fleet.wall_ms = 1.0;
        fleet.threads = 1;
        fleet
    }

    #[test]
    fn fleet_is_deterministic_across_thread_counts_and_json_round_trips() {
        let serial = pinned(run_explore_fleet(&ALL_CHIPS[..1], 1, Some(6), 1, None));
        let pooled = pinned(run_explore_fleet(&ALL_CHIPS[..1], 1, Some(6), 3, None));
        let demo = planted_demo(&NRF52840DK, 3);
        let a = explore_json(&serial, &demo);
        let b = explore_json(&pooled, &demo);
        assert_eq!(a, b, "exploration must not depend on the thread count");
        assert_eq!(json::read_number(&a, "seeds_per_chip"), Some(1.0));
        assert_eq!(
            json::read_number(&a, "explored"),
            Some(serial.explored() as f64)
        );
        assert!(json::read_number(&a, "prune_ratio").is_some());
        // Both units ran under the cap: 6 representatives each, max.
        assert!(serial.explored() <= 12);
        assert_eq!(serial.truncated_units(), 2);
    }

    #[test]
    fn gate_passes_clean_runs_and_fails_weak_pruning_or_lost_detector_power() {
        let fleet = pinned(run_explore_fleet(&ALL_CHIPS[..1], 0, None, 1, None));
        let demo = planted_demo(&NRF52840DK, 3);
        assert!(fleet.failures().is_empty());
        let notes = check(&fleet, &demo, &[], "{\"min_explore_prune_ratio\": 2.0}").unwrap();
        assert!(notes.iter().any(|n| n.contains("prune ratio")));
        // An absurd floor fails the gate.
        let err = check(&fleet, &demo, &[], "{\"min_explore_prune_ratio\": 999.0}").unwrap_err();
        assert!(err.iter().any(|f| f.contains("below floor")));
        // A still-reproducing corpus replay fails the gate.
        let err = check(&fleet, &demo, &["chip X schedule 0x123: boom".into()], "{}").unwrap_err();
        assert!(err.iter().any(|f| f.contains("corpus replay")));
        // A demo whose explorer found nothing fails the gate.
        let blind = PlantedDemo {
            chip: demo.chip.clone(),
            campaign_seeds: demo.campaign_seeds,
            seed_failures: 0,
            outcome: ExploreOutcome {
                findings: Vec::new(),
                ..demo.outcome.clone()
            },
            control_failures: 0,
        };
        let err = check(&fleet, &blind, &[], "{}").unwrap_err();
        assert!(err.iter().any(|f| f.contains("detector power")));
    }

    #[test]
    fn planted_demo_has_detector_power() {
        let demo = planted_demo(&NRF52840DK, 5);
        assert_eq!(demo.seed_failures, 0, "seeds must miss the planted bug");
        assert!(
            !demo.outcome.findings.is_empty(),
            "the explorer must find the planted bug"
        );
        assert_eq!(demo.control_failures, 0, "control kernel must survive");
    }

    #[test]
    fn findings_round_trip_through_the_schedule_corpus() {
        let demo = planted_demo(&NRF52840DK, 0);
        let records = explore_records(std::slice::from_ref(&demo.outcome));
        assert_eq!(records.len(), demo.outcome.findings.len());
        assert!(records.iter().all(|r| r.schedule != 0 && r.clean));
        let dir = std::env::temp_dir().join(format!("tt-explore-corpus-{}", std::process::id()));
        tt_kernel::corpus::write_corpus(&dir.join("schedules.bin"), &records).unwrap();
        assert_eq!(schedule_corpus(&dir).unwrap(), records);
        std::fs::remove_dir_all(&dir).unwrap();
        // Replaying a schedule the standard campaign survives yields no
        // failures; an out-of-range chip index is a loud error.
        let survivor = CorpusRecord {
            chip: 0,
            schedule: InterruptSchedule::single(ArrivalPoint::SyscallEnter, 1).id(),
            clean: true,
            ..records[0]
        };
        assert!(replay_schedule_records(&[survivor]).is_empty());
        let bogus = CorpusRecord {
            chip: u8::MAX,
            ..survivor
        };
        assert_eq!(replay_schedule_records(&[bogus]).len(), 1);
    }
}
