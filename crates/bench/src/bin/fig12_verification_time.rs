//! Regenerates Figure 12: verification time per component.
//!
//! Pass `--quick` for the CI-sized effort configuration.

use tt_bench::fig12::{render, run, Effort};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let effort = if quick { Effort::QUICK } else { Effort::FULL };
    println!("Figure 12: Time taken to verify TickTock ({effort:?})");
    let report = run(effort);
    println!("{}", render(&report));
    if report.all_verified() {
        println!("all components verified");
    } else {
        println!("REFUTED:");
        for f in report.refuted() {
            println!("  {}: {:?}", f.function, f.refutations);
        }
    }
    println!(
        "(paper: Monolithic 660 fns / 5m19s; Granular 791 fns / 36s; Interrupts 95 fns / 2m34s)"
    );
}
