//! CI entry point: verify the whole project, exactly as §6.3 envisions
//! ("it takes around three minutes to verify the entire project, making
//! verification feasible as part of a CI pipeline").
//!
//! Runs every registered obligation — monolithic (fixed), granular, and
//! interrupts — plus the trusted-lemma exhaustive discharge, and exits
//! non-zero if anything is refuted.

use std::process::ExitCode;
use tt_bench::fig12::{build_registry, Effort};
use tt_contracts::verifier::{fmt_duration, Verifier};

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let effort = if quick { Effort::QUICK } else { Effort::FULL };

    // The Lean stand-in: exhaustive structural discharge of the lemmas.
    let lemma_cases = tt_contracts::lemmas::discharge_all_exhaustively();
    println!("lemmas: {lemma_cases} cases discharged exhaustively");

    let registry = build_registry(effort);
    let report = Verifier::new().verify(&registry);
    for (component, stats) in report.by_component() {
        println!(
            "{component}: {} fns in {} ({} refuted)",
            stats.fns,
            fmt_duration(stats.total),
            stats.refuted_fns
        );
    }
    if report.all_verified() {
        println!("VERIFIED: the entire project checks");
        ExitCode::SUCCESS
    } else {
        println!("REFUTED:");
        for f in report.refuted() {
            println!("  {} :: {}", f.component, f.function);
            for r in &f.refutations {
                println!("    {r}");
            }
        }
        ExitCode::FAILURE
    }
}
