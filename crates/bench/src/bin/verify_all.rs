//! CI entry point: verify the whole project, exactly as §6.3 envisions
//! ("it takes around three minutes to verify the entire project, making
//! verification feasible as part of a CI pipeline").
//!
//! Runs every registered obligation — monolithic (fixed), granular, and
//! interrupts — plus the trusted-lemma exhaustive discharge, and exits
//! non-zero if anything is refuted.
//!
//! Incremental mode (the default) persists per-function verdicts in
//! `ci/verify_cache.bin`: a warm re-run on an unchanged tree skips every
//! discharge and finishes sub-second. Flags:
//!
//! * `--quick`            — reduced effort densities (tier-1 CI)
//! * `--cold`             — discard any existing cache first (records the
//!   cold wall the warm speedup gate divides against)
//! * `--no-cache`         — legacy non-incremental run, no cache I/O
//! * `--cache <path>`     — cache file location (default `ci/verify_cache.bin`)
//! * `--json <path>`      — write the BENCH_fig12.json artifact
//! * `--check <baseline>` — enforce the warm-run floors from
//!   `ci/bench_baseline.json` (hit rate, wall ceiling, speedup)

use std::process::ExitCode;
use tt_bench::fig12::{build_registry, Effort};
use tt_bench::incremental;
use tt_contracts::vcache::LoadOutcome;
use tt_contracts::verifier::{fmt_duration, Verifier};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cold = args.iter().any(|a| a == "--cold");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let json_path = arg_value(&args, "--json");
    let check_path = arg_value(&args, "--check");
    let cache_arg = arg_value(&args, "--cache");
    let effort = if quick { Effort::QUICK } else { Effort::FULL };
    let effort_name = if quick { "quick" } else { "full" };

    // The Lean stand-in: exhaustive structural discharge of the lemmas.
    // Lemmas are axioms of everything else, so they are re-discharged on
    // every run, warm or cold — they are cheap and must never go stale.
    let lemma_cases = tt_contracts::lemmas::discharge_all_exhaustively();
    println!("lemmas: {lemma_cases} cases discharged exhaustively");

    let (report, run) = if no_cache {
        let registry = build_registry(effort);
        (Verifier::new().verify(&registry), None)
    } else {
        let path = incremental::cache_path(cache_arg.as_deref());
        let run = incremental::run(effort, &path, cold);
        if let LoadOutcome::Corrupt(e) = &run.outcome {
            eprintln!(
                "warning: verdict cache {} is corrupt ({e}); falling back to a full cold run",
                path.display()
            );
        }
        (run.report.clone(), Some(run))
    };

    for (component, stats) in report.by_component() {
        println!(
            "{component}: {} fns in {} ({} refuted, {} cached)",
            stats.fns,
            fmt_duration(stats.total),
            stats.refuted_fns,
            stats.cached_fns
        );
    }
    if let Some(run) = &run {
        let mode = if run.outcome.is_warm() {
            "warm"
        } else {
            "cold"
        };
        println!(
            "incremental: {mode} run, hit rate {:.1}%, wall {} (cold {}), speedup {:.1}x",
            run.hit_rate * 100.0,
            fmt_duration(run.wall),
            fmt_duration(run.cold_wall),
            run.speedup()
        );
        if let Some(path) = &json_path {
            let doc = incremental::to_json(run, effort_name);
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        if let Some(baseline_path) = &check_path {
            let baseline = match std::fs::read_to_string(baseline_path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: could not read baseline {baseline_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let violations = incremental::check(run, &baseline);
            if !violations.is_empty() {
                println!("INCREMENTAL GATE FAILED:");
                for v in &violations {
                    println!("  {v}");
                }
                return ExitCode::FAILURE;
            }
            println!("incremental gate: warm floors hold");
        }
    } else if json_path.is_some() || check_path.is_some() {
        eprintln!("error: --json/--check require the incremental cache (drop --no-cache)");
        return ExitCode::FAILURE;
    }

    if report.all_verified() {
        println!("VERIFIED: the entire project checks");
        ExitCode::SUCCESS
    } else {
        println!("REFUTED:");
        for f in report.refuted() {
            println!("  {} :: {}", f.component, f.function);
            for r in &f.refutations {
                println!("    {r}");
            }
        }
        ExitCode::FAILURE
    }
}
