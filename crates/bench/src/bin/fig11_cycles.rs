//! Regenerates Figure 11: average CPU cycles for process tasks.
//!
//! Runs the 21 release tests plus the memory-stress workload on both
//! kernels, three times each (as in §6.2), under cycle instrumentation.

fn main() {
    let rows = tt_bench::fig11::run(3);
    println!("Figure 11: Average CPU cycles for process tasks (3 runs, 21 tests + stress)");
    println!("{}", tt_bench::fig11::render(&rows));
    println!("(paper: allocate_grant -50%, brk -22%, build_ro -20%, build_rw -34%, create +0.7%, setup_mpu +8%)");
}
