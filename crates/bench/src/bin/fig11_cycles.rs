//! Regenerates Figure 11: average CPU cycles for process tasks.
//!
//! Runs the 21 release tests plus the memory-stress workload on both
//! kernels, three times each (as in §6.2), under cycle instrumentation.
//!
//! `--json [path]` additionally writes `BENCH_fig11.json` (per-method
//! cycles plus the PR 2 context-switch hit/miss/baseline split per chip).
//! `--check <baseline.json>` compares the cache-hit context-switch cycles
//! against a committed baseline and exits non-zero on a >10% regression —
//! the CI gate for the commit cache.

use std::process::ExitCode;

use tt_bench::fig11::{render, run, Fig11Row};
use tt_bench::switch::{measure_all, SwitchCost};
use tt_bench::{json, pct_diff};

fn render_json(rows: &[Fig11Row], switches: &[SwitchCost], wall_ms: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"figure\": \"fig11\",\n  \"runs\": 3,\n");
    out.push_str(&format!("  \"wall_clock_ms\": {},\n", json::num(wall_ms)));
    out.push_str("  \"methods\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"method\": \"{}\", \"ticktock_cycles\": {}, \"tock_cycles\": {}, \"pct_diff\": {}}}{}\n",
            json::escape(row.method),
            json::num(row.ticktock),
            json::num(row.tock),
            json::num(row.pct()),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"context_switch\": [\n");
    for (i, s) in switches.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"chip\": \"{}\", \"arch\": \"{}\", \"hit_cycles\": {}, \"miss_cycles\": {}, \"baseline_cycles\": {}, \"hit_reduction_pct\": {}}}{}\n",
            json::escape(s.chip),
            s.arch,
            s.hit,
            s.miss,
            s.baseline,
            json::num(s.hit_reduction_pct()),
            if i + 1 < switches.len() { "," } else { "" }
        ));
    }
    let arch_hit = |arch: &str| {
        switches
            .iter()
            .filter(|s| s.arch == arch)
            .map(|s| s.hit)
            .max()
            .unwrap_or(0)
    };
    out.push_str("  ],\n");
    out.push_str(&format!("  \"arm_hit\": {},\n", arch_hit("arm")));
    out.push_str(&format!("  \"riscv_hit\": {}\n}}\n", arch_hit("riscv")));
    out
}

/// Fails (returns an error message) if either arch's cache-hit cycles
/// regressed more than 10% against the committed baseline, or if any
/// per-method TickTock cycle mean pinned in the baseline drifted more
/// than 10% in either direction. The cycle model is deterministic, so a
/// drift means the accounting itself changed — the gate that keeps the
/// hot-path fast lane from silently altering what `cycles::charge`
/// records.
fn check_against(baseline: &str, rows: &[Fig11Row], switches: &[SwitchCost]) -> Result<(), String> {
    for arch in ["arm", "riscv"] {
        let key = format!("{arch}_hit");
        let allowed = json::read_number(baseline, &key)
            .ok_or_else(|| format!("baseline is missing \"{key}\""))?;
        let current = switches
            .iter()
            .filter(|s| s.arch == arch)
            .map(|s| s.hit)
            .max()
            .unwrap_or(0) as f64;
        // >10% regression fails; a baseline of 0 admits no regression.
        if current > allowed * 1.1 && current > allowed {
            return Err(format!(
                "{arch} cache-hit context switch regressed: {current} cycles vs baseline {allowed} (>10%)"
            ));
        }
    }
    for row in rows {
        let key = format!("ticktock_{}", row.method);
        // Only methods the baseline pins are checked, so the baseline
        // can grow one method at a time.
        let Some(pinned) = json::read_number(baseline, &key) else {
            continue;
        };
        if (row.ticktock - pinned).abs() > pinned * 0.1 {
            return Err(format!(
                "{} cycle accounting drifted: {:.2} cycles vs baseline {pinned} (>10%)",
                row.method, row.ticktock
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_fig11.json".into())
    });
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1).cloned());

    let started = std::time::Instant::now();
    let rows = run(3);
    let switches = measure_all();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    println!("Figure 11: Average CPU cycles for process tasks (3 runs, 21 tests + stress)");
    println!("{}", render(&rows));
    println!("(paper: allocate_grant -50%, brk -22%, build_ro -20%, build_rw -34%, create +0.7%, setup_mpu +8%)");
    println!();
    println!("Context switch-in (PR 2 commit cache), cycles per switch:");
    for s in &switches {
        println!(
            "  {:<12} {:<5} hit {:>4}  miss {:>4}  baseline {:>4}  ({} vs baseline)",
            s.chip,
            s.arch,
            s.hit,
            s.miss,
            s.baseline,
            pct_diff(s.hit as f64, s.baseline as f64)
        );
    }

    if let Some(path) = json_path {
        let doc = render_json(&rows, &switches, wall_ms);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(msg) = check_against(&baseline, &rows, &switches) {
            eprintln!("REGRESSION: {msg}");
            return ExitCode::FAILURE;
        }
        println!("cache-hit context-switch cycles within 10% of {path}");
    }
    ExitCode::SUCCESS
}
