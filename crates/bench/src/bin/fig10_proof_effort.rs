//! Regenerates Figure 10: the proof-effort table.

fn main() {
    let (rows, total) = tt_bench::fig10::run();
    println!("Figure 10: Proof Effort");
    println!("{}", tt_bench::fig10::render(&rows, &total));
    println!("(paper: 22,131 source LOC, 2,581 fns (125 trusted), 3,603 spec LOC (186 trusted))");
}
