//! Simulation throughput gate: runs/sec across the worker-count ladder.
//!
//! Runs the fault-injection campaign (`--seeds N` per chip, default 10)
//! and the §6.1 differential suite across all chips at 1, N/2 and N
//! workers (N = `TT_BENCH_THREADS` or the host core count) and prints
//! runs-per-second for each rung.
//!
//! With `--json [path]`, writes `BENCH_throughput.json`. With
//! `--check [baseline]` (default `ci/bench_baseline.json`), exits
//! non-zero if any rung's campaign or differential artifact is not
//! byte-identical to the serial rung's, or — on multi-core hosts — if
//! the best campaign speedup misses the baseline's
//! `min_parallel_speedup` floor. This is the CI gate for the
//! work-stealing pool: determinism is checked everywhere, the speedup
//! floor only where the hardware can express one.

use std::process::ExitCode;

use tt_bench::throughput::{check, host_cores, render, render_json, run_ladder};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_throughput.json".into())
    });
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "ci/bench_baseline.json".into())
    });

    let cores = host_cores();
    println!(
        "Simulation throughput (campaign --seeds {seeds} + differential suite, {cores} core(s))"
    );
    let entries = run_ladder(seeds);
    print!("{}", render(&entries));

    if let Some(path) = json_path {
        let doc = render_json(&entries, seeds, cores);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} rungs)", entries.len());
    }

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check(&entries, &baseline, cores) {
            Ok(notes) => {
                for note in notes {
                    println!("check: {note}");
                }
            }
            Err(failures) => {
                for f in failures {
                    eprintln!("THROUGHPUT GATE FAILED: {f}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
