//! Regenerates the §6.1 differential-testing result: 21 release tests run
//! on both kernels, 5 expected output differences.

use tt_kernel::differential::{render_report, run_release_suite};

fn main() {
    println!("Section 6.1: Differential testing (Tock vs TickTock, 21 release tests)");
    let results = run_release_suite();
    println!("{}", render_report(&results));
    for r in &results {
        if !r.matches() {
            println!("--- {} ---", r.name);
            println!("  tock:     {:?}", r.tock.console);
            println!("  ticktock: {:?}", r.ticktock.console);
        }
    }
    println!("(paper: 21 tests, 5 differing — all layout- or sensor-dependent)");
}
