//! Regenerates the §6.1 differential-testing result: 21 release tests run
//! on both kernels, 5 expected output differences.
//!
//! Exits non-zero if any test's verdict is UNEXPECTED (a difference where
//! §6.1 expects none, or vice versa) — this is the CI gate.
//!
//! With `--trace`, additionally prints the first observable trace
//! divergence for every differing test (not just the console diff), using
//! the trace-equivalence oracle in `tt_kernel::trace`.

use std::process::ExitCode;

use tt_kernel::differential::{render_report, run_release_suite};
use tt_kernel::trace::render_divergence;

fn main() -> ExitCode {
    let trace_mode = std::env::args().any(|a| a == "--trace");
    println!("Section 6.1: Differential testing (Tock vs TickTock, 21 release tests)");
    let results = run_release_suite();
    println!("{}", render_report(&results));
    for r in &results {
        if !r.matches() {
            println!("--- {} ---", r.name);
            println!("  tock:     {:?}", r.tock.console);
            println!("  ticktock: {:?}", r.ticktock.console);
            if trace_mode {
                match &r.trace_divergence {
                    Some(d) => print!("  {}", render_divergence(d, "tock", "ticktock")),
                    None => println!("  (traces observably equivalent; console-only diff)"),
                }
            }
        }
    }
    println!("(paper: 21 tests, 5 differing — all layout- or sensor-dependent)");
    let unexpected: Vec<&str> = results
        .iter()
        .filter(|r| r.matches() == r.expect_differs)
        .map(|r| r.name)
        .collect();
    if !unexpected.is_empty() {
        eprintln!("UNEXPECTED differential results: {unexpected:?}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
