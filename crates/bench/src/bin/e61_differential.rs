//! Regenerates the §6.1 differential-testing result: 21 release tests run
//! on both kernels, 5 expected output differences.
//!
//! Exits non-zero if any test's verdict is UNEXPECTED (a difference where
//! §6.1 expects none, or vice versa) — this is the CI gate.
//!
//! With `--trace`, additionally prints the first observable trace
//! divergence for every differing test (not just the console diff), using
//! the trace-equivalence oracle in `tt_kernel::trace`.
//!
//! With `--json [path]`, runs the suite on all seven chip profiles —
//! every `(chip, test)` diff is one unit of work on the work-stealing
//! pool (`TT_BENCH_THREADS` sets the worker count) — and writes
//! `BENCH_e61.json` with the per-chip 21/5 shape and the suite
//! wall-clock.

use std::process::ExitCode;

use tt_bench::reports;
use tt_kernel::differential::{render_report, run_release_suite, run_release_suite_all_chips};
use tt_kernel::trace::render_divergence;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_mode = args.iter().any(|a| a == "--trace");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_e61.json".into())
    });

    println!("Section 6.1: Differential testing (Tock vs TickTock, 21 release tests)");
    let results = run_release_suite();
    println!("{}", render_report(&results));
    for r in &results {
        if !r.matches() {
            println!("--- {} ---", r.name);
            println!("  tock:     {:?}", r.tock.console);
            println!("  ticktock: {:?}", r.ticktock.console);
            if trace_mode {
                match &r.trace_divergence {
                    Some(d) => print!("  {}", render_divergence(d, "tock", "ticktock")),
                    None => println!("  (traces observably equivalent; console-only diff)"),
                }
            }
        }
    }
    println!("(paper: 21 tests, 5 differing — all layout- or sensor-dependent)");
    let mut unexpected: Vec<String> = results
        .iter()
        .filter(|r| r.matches() == r.expect_differs)
        .map(|r| r.name.to_string())
        .collect();

    if let Some(path) = json_path {
        let started = std::time::Instant::now();
        let per_chip = run_release_suite_all_chips();
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        unexpected.extend(reports::e61_unexpected(&per_chip));
        let doc = reports::e61_json(&per_chip, wall_ms);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} chips, {:.0} ms)", per_chip.len(), wall_ms);
    }

    if !unexpected.is_empty() {
        eprintln!("UNEXPECTED differential results: {unexpected:?}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
