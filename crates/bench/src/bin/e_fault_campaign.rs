//! The fault-injection campaign gate: isolation under fire.
//!
//! Runs `--seeds N` (default 75) seeded injection campaigns per chip,
//! each seed twice — commit cache enabled (warm) and disabled (cold) —
//! across all seven chip profiles: 75 × 2 × 7 = 1050 injected runs. Every
//! run must satisfy the three-part oracle in `tt_kernel::campaign`:
//!
//! 1. bystander processes' observable traces are byte-identical to an
//!    uninjected reference run (isolation holds under injected faults);
//! 2. no contract obligation is violated at any recovery step;
//! 3. recovery converges — bystanders exit, the victim ends `Exited` or
//!    (restart cap) `Killed`, never a livelock.
//!
//! With `--check`, exits non-zero on any oracle failure (the CI gate).
//! With `--json [path]`, writes `BENCH_fault.json` with per-chip recovery
//! latency (warm vs cold commit cache) and campaign counters.

use std::process::ExitCode;

use tt_bench::reports;
use tt_kernel::campaign::{render_report, run_campaign};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(75);
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_fault.json".into())
    });

    println!("Fault-injection campaign (seeded, deterministic; victim pid 0, 2 bystanders)");
    let started = std::time::Instant::now();
    let reports = run_campaign(seeds);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    print!("{}", render_report(&reports, seeds));
    println!("wall clock: {wall_ms:.0} ms");

    let failures: usize = reports.iter().map(|r| r.failures.len()).sum();

    if let Some(path) = json_path {
        let doc = reports::campaign_json(&reports, seeds, wall_ms);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} chips)", reports.len());
    }

    if check && failures > 0 {
        eprintln!("fault campaign FAILED: {failures} oracle violations");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
