//! The fault-injection campaign gate: isolation under fire.
//!
//! Runs `--seeds N` (default 75) seeded injection campaigns per chip,
//! each seed twice — commit cache enabled (warm) and disabled (cold) —
//! across all seven chip profiles: 75 × 2 × 7 = 1050 injected runs. Every
//! run must satisfy the three-part oracle in `tt_kernel::campaign`:
//!
//! 1. bystander processes' observable traces are byte-identical to an
//!    uninjected reference run (isolation holds under injected faults);
//! 2. no contract obligation is violated at any recovery step;
//! 3. recovery converges — bystanders exit, the victim ends `Exited` or
//!    (restart cap) `Killed`, never a livelock.
//!
//! With `--check`, exits non-zero on any oracle failure (the CI gate).
//! With `--json [path]`, writes `BENCH_fault.json` with per-chip recovery
//! latency (warm vs cold commit cache) and campaign counters. With
//! `--explore`, the interrupt-interleaving explorer rides along: every
//! chip's clean and first two seeded baselines are swept for
//! schedule-sensitive oracle failures (one representative per DPOR
//! commuting class), the planted commit-window demonstration runs, and
//! both fold into the `--check` verdict.

use std::process::ExitCode;

use tt_bench::explore::{planted_demo, render as render_explore, run_explore_fleet};
use tt_bench::reports;
use tt_hw::platform::{ALL_CHIPS, NRF52840DK};
use tt_kernel::campaign::{render_report, run_campaign};
use tt_kernel::pool;

/// Injected baselines per chip the folded explorer sweeps (the
/// standalone `e_explore` bin takes `--seeds` for wider sweeps).
const EXPLORE_SEEDS: u64 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let explore = args.iter().any(|a| a == "--explore");
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(75);
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_fault.json".into())
    });

    println!("Fault-injection campaign (seeded, deterministic; victim pid 0, 2 bystanders)");
    let started = std::time::Instant::now();
    let reports = run_campaign(seeds);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    print!("{}", render_report(&reports, seeds));
    println!("wall clock: {wall_ms:.0} ms");

    let mut failures: usize = reports.iter().map(|r| r.failures.len()).sum();

    if explore {
        let fleet = run_explore_fleet(
            &ALL_CHIPS,
            EXPLORE_SEEDS,
            None,
            pool::default_threads(),
            None,
        );
        let demo = planted_demo(&NRF52840DK, seeds.min(25));
        print!("{}", render_explore(&fleet, &demo));
        failures += fleet.failures().len();
        // Detector power is part of the folded gate: losing the planted
        // bug (or tripping the control kernel) is a failure even though
        // the campaign itself stayed green.
        if demo.seed_failures > 0 || demo.outcome.findings.is_empty() || demo.control_failures > 0 {
            eprintln!("explore: planted-bug demonstration lost detector power");
            failures += 1;
        }
    }

    if let Some(path) = json_path {
        let doc = reports::campaign_json(&reports, seeds, wall_ms);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} chips)", reports.len());
    }

    if check && failures > 0 {
        eprintln!("fault campaign FAILED: {failures} oracle violations");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
