//! Regenerates the §6.2 memory-usage microbenchmark: grow by 1 byte until
//! failure; report total/app/grant/unused for Tock, TickTock, and padded
//! TickTock.

fn main() {
    println!("Section 6.2: Memory usage (grow-by-1-byte-until-failure)");
    let (tock, ticktock, padded) = tt_bench::e62::run();
    println!("{}", tt_bench::e62::render(&tock, &ticktock, &padded));
    println!("(paper: Tock 8,192 total / 6,656 app / 1,284 grant / 252 unused (3.08%);");
    println!("        TickTock 7,780 / 6,144 / 1,200 / 436 (5.60%); padded TickTock unused 336)");
}
