//! Regenerates the §6.2 memory-usage microbenchmark: grow by 1 byte until
//! failure; report total/app/grant/unused for Tock, TickTock, and padded
//! TickTock.
//!
//! `--json [path]` additionally writes `BENCH_e62.json` with the three
//! configurations' measurements and the run's wall-clock.

use tt_bench::e62::MemUsage;
use tt_bench::json;

fn row(name: &str, m: &MemUsage) -> String {
    format!(
        "    {{\"config\": \"{}\", \"total\": {}, \"app\": {}, \"grant\": {}, \"unused\": {}, \"unused_pct\": {}}}",
        json::escape(name),
        m.total,
        m.app,
        m.grant,
        m.unused,
        json::num(m.unused_pct())
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_e62.json".into())
    });

    println!("Section 6.2: Memory usage (grow-by-1-byte-until-failure)");
    let started = std::time::Instant::now();
    let (tock, ticktock, padded) = tt_bench::e62::run();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    println!("{}", tt_bench::e62::render(&tock, &ticktock, &padded));
    println!("(paper: Tock 8,192 total / 6,656 app / 1,284 grant / 252 unused (3.08%);");
    println!("        TickTock 7,780 / 6,144 / 1,200 / 436 (5.60%); padded TickTock unused 336)");

    if let Some(path) = json_path {
        let doc = format!(
            "{{\n  \"experiment\": \"e62_memory_usage\",\n  \"wall_clock_ms\": {},\n  \"configs\": [\n{},\n{},\n{}\n  ]\n}}\n",
            json::num(wall_ms),
            row("tock", &tock),
            row("ticktock", &ticktock),
            row("ticktock_padded", &padded),
        );
        match std::fs::write(&path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
